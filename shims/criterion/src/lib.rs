//! Offline stand-in for the subset of the `criterion` API this workspace
//! uses. The build environment has no registry access, so the real crate
//! cannot be vendored.
//!
//! Each `bench_function` runs its routine a small fixed number of times and
//! prints the mean wall-clock — enough to eyeball regressions and to keep
//! `cargo test` / `cargo bench` compiling and passing. No statistics, no
//! plots, no CLI filtering.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How `iter_batched` amortizes setup (accepted for source compatibility;
/// every size batches identically here).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// Fresh setup for every routine call.
    PerIteration,
}

/// A benchmark identifier.
#[derive(Debug, Clone)]
pub struct BenchmarkId(String);

impl BenchmarkId {
    /// An id from a `name/parameter` pair.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId(format!("{name}/{parameter}"))
    }

    /// An id that is just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId(parameter.to_string())
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

/// The per-benchmark timing harness.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine` over a few iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            std::hint::black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` with un-timed fresh `setup` output per iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let mut total = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            std::hint::black_box(routine(input));
            total += start.elapsed();
        }
        self.elapsed = total;
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the iteration count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, mut f: F) {
        let iters = self.criterion.iters();
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
        };
        f(&mut b);
        let mean = b.elapsed.as_secs_f64() / iters as f64;
        println!(
            "{}/{id}: {:.3} ms/iter over {iters} iters",
            self.name,
            mean * 1e3
        );
    }

    /// Ends the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// The benchmark driver.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10 }
    }
}

impl Criterion {
    /// Sets the nominal sample size (mapped to a small iteration count).
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Opens a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            criterion: self,
        }
    }

    /// Runs one stand-alone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) {
        self.benchmark_group("bench").bench_function(id, f);
    }

    /// Iterations per benchmark: tiny under `cargo test` (smoke), small
    /// otherwise.
    fn iters(&self) -> u64 {
        if std::env::args().any(|a| a == "--test") {
            1
        } else {
            (self.sample_size as u64).min(5)
        }
    }
}

/// Re-export point used by generated code.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a benchmark group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the benchmark `main` that runs the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut c = Criterion::default().sample_size(3);
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group.bench_function(BenchmarkId::from_parameter("x"), |b| {
            b.iter(|| runs += 1);
        });
        group.bench_function("batched", |b| {
            b.iter_batched(|| 1u64, |x| x + 1, BatchSize::PerIteration);
        });
        group.finish();
        assert!(runs > 0);
    }
}
