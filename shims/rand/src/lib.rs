//! Offline stand-in for the subset of the `rand` 0.8 API this workspace
//! uses (`SmallRng`, `SeedableRng::seed_from_u64`, `Rng::{gen_range,
//! gen_bool}`, `seq::SliceRandom::shuffle`, `rand::random`).
//!
//! The build environment has no registry access, so the real crate cannot
//! be vendored; this shim keeps every generator deterministic (xoshiro256++
//! seeded via splitmix64, the same construction the real `SmallRng` uses on
//! 64-bit targets) which is exactly what the workload generators need.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Seedable random generators (subset: seeding from a `u64`).
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// The user-facing generator trait (subset).
pub trait Rng {
    /// The next 64 raw bits.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range`.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p must be in [0,1]");
        unit_f64(self.next_u64()) < p
    }
}

/// A uniform f64 in `[0, 1)` from 53 random bits.
#[inline]
fn unit_f64(bits: u64) -> f64 {
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Ranges a [`Rng`] can sample uniformly.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Named generators.
pub mod rngs {
    use super::SeedableRng;

    /// A small, fast, deterministic generator: xoshiro256++ seeded through
    /// splitmix64 (matching the real `SmallRng`'s construction on 64-bit
    /// targets, though not its exact stream).
    #[derive(Debug, Clone)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E3779B97F4A7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl super::Rng for SmallRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }

    /// The standard generator is the same shim generator here.
    pub type StdRng = SmallRng;
}

pub use rngs::SmallRng;

/// Slice helpers.
pub mod seq {
    use super::Rng;

    /// Random slice operations (subset: `shuffle`).
    pub trait SliceRandom {
        /// Element type.
        type Item;
        /// Fisher–Yates shuffles the slice in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = (rng.next_u64() % (i as u64 + 1)) as usize;
                self.swap(i, j);
            }
        }
    }
}

/// Types `random()` can produce.
pub trait Standard {
    /// Builds a value from raw bits.
    fn from_bits(bits: u64) -> Self;
}

impl Standard for u64 {
    fn from_bits(bits: u64) -> Self {
        bits
    }
}

impl Standard for u32 {
    fn from_bits(bits: u64) -> Self {
        bits as u32
    }
}

impl Standard for bool {
    fn from_bits(bits: u64) -> Self {
        bits & 1 == 1
    }
}

/// A process-global convenience generator (deterministic per process start,
/// unique per call — callers in this workspace use it only for tempfile
/// names).
pub fn random<T: Standard>() -> T {
    use std::sync::atomic::{AtomicU64, Ordering};
    static STATE: AtomicU64 = AtomicU64::new(0);
    let n = STATE.fetch_add(1, Ordering::Relaxed);
    let seed = n ^ (std::process::id() as u64) << 32;
    let mut z = seed.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    T::from_bits(z ^ (z >> 31))
}

#[cfg(test)]
mod tests {
    use super::seq::SliceRandom;
    use super::*;

    #[test]
    fn seeding_is_deterministic() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x = rng.gen_range(10u64..20);
            assert!((10..20).contains(&x));
            let y = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&y));
            let z = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&z));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "hits {hits}");
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
