//! Offline stand-in for the subset of the `proptest` API this workspace
//! uses. The build environment has no registry access, so the real crate
//! cannot be vendored.
//!
//! Supported surface: the [`proptest!`] macro (with an optional leading
//! `#![proptest_config(..)]`), [`Strategy`] with `prop_map`, ranges and
//! tuples as strategies, `any::<T>()` for primitives, `Just`,
//! [`prop_oneof!`] with weights, `prop::collection::{vec, btree_set}`, and
//! the `prop_assert*` macros.
//!
//! Semantics differ from real proptest in one deliberate way: failing cases
//! are **not shrunk** — the macro simply panics with the failing assertion,
//! which is enough for CI. Generation is deterministic per test name, so a
//! failure reproduces on re-run.
//!
//! Like real proptest, a **regression corpus** is honored: the macro reads
//! `proptest-regressions/<source file stem>.txt` under the calling crate's
//! manifest dir and replays every `cc <test_name> <hex-seed>` line *before*
//! the random sweep, so once a failing seed is checked in the bug stays
//! fixed. Each random case runs from its own pinnable seed; on failure the
//! exact `cc` line to check in is printed alongside the panic.

#![forbid(unsafe_code)]

use std::collections::BTreeSet;
use std::ops::{Range, RangeInclusive};

// ---------------------------------------------------------------------
// Deterministic generator.
// ---------------------------------------------------------------------

/// The generator handed to strategies (xoshiro256++ seeded via splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

impl TestRng {
    /// A generator seeded deterministically from a label (the test name).
    pub fn deterministic(label: &str) -> Self {
        let mut h: u64 = 0xcbf29ce484222325;
        for b in label.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100000001b3);
        }
        Self::from_seed(h)
    }

    /// A generator from a numeric seed.
    pub fn from_seed(seed: u64) -> Self {
        let mut sm = seed;
        let mut next = || {
            sm = sm.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        TestRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// The next 64 raw bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        out
    }

    /// A uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A uniform usize in `[0, n)`; `n` must be non-zero.
    pub fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
}

// ---------------------------------------------------------------------
// Strategy.
// ---------------------------------------------------------------------

/// A recipe for generating values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Keeps only values satisfying `f` (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(
        self,
        _whence: &'static str,
        f: F,
    ) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, f }
    }
}

/// The [`Strategy::prop_map`] adapter.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// The [`Strategy::prop_filter`] adapter.
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1000 candidates in a row");
    }
}

/// Always generates a clone of the given value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

// Ranges.
macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                self.start.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as u128) - (lo as u128) + 1;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

// Tuples.
macro_rules! tuple_strategy {
    ($(($($name:ident),+)),+ $(,)?) => {$(
        #[allow(non_snake_case)]
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )+};
}

tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, G)
);

// ---------------------------------------------------------------------
// any::<T>().
// ---------------------------------------------------------------------

/// Types with a canonical full-domain strategy.
pub trait Arbitrary {
    /// Draws a uniform value over the whole domain.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.unit_f64()
    }
}

/// The strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// A full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

// ---------------------------------------------------------------------
// Weighted unions (prop_oneof!).
// ---------------------------------------------------------------------

/// One weighted arm of a [`OneOf`] union: a weight and a generator.
pub type OneOfArm<V> = (u32, Box<dyn Fn(&mut TestRng) -> V>);

/// A weighted union of same-valued strategies, built by [`prop_oneof!`].
pub struct OneOf<V> {
    arms: Vec<OneOfArm<V>>,
    total: u64,
}

impl<V> OneOf<V> {
    /// Builds the union; weights must not all be zero.
    pub fn new(arms: Vec<OneOfArm<V>>) -> Self {
        let total: u64 = arms.iter().map(|(w, _)| u64::from(*w)).sum();
        assert!(total > 0, "prop_oneof: weights sum to zero");
        OneOf { arms, total }
    }
}

impl<V> Strategy for OneOf<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.next_u64() % self.total;
        for (w, f) in &self.arms {
            let w = u64::from(*w);
            if pick < w {
                return f(rng);
            }
            pick -= w;
        }
        unreachable!("weighted pick out of range")
    }
}

// ---------------------------------------------------------------------
// Collections.
// ---------------------------------------------------------------------

/// Collection strategies (`prop::collection` in real proptest).
pub mod collection {
    use super::*;

    /// A `Vec` strategy with a size drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates vectors of elements drawn from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// A `BTreeSet` strategy; like proptest it treats `size` as a target,
    /// so duplicate draws can make the set smaller than requested.
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// Generates ordered sets of elements drawn from `element`.
    pub fn btree_set<S>(element: S, size: Range<usize>) -> BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        BTreeSetStrategy { element, size }
    }

    impl<S> Strategy for BTreeSetStrategy<S>
    where
        S: Strategy,
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let n = self.size.clone().generate(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------
// Config + macros.
// ---------------------------------------------------------------------

/// A failed test case (bodies may `?` these like in real proptest).
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// A failure with a reason.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }

    /// Accepted for compatibility; rejection is treated as failure here.
    pub fn reject(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.0.fmt(f)
    }
}

impl std::error::Error for TestCaseError {}

// ---------------------------------------------------------------------
// Regression corpus.
// ---------------------------------------------------------------------

/// Reads the pinned regression seeds for `test_name` from
/// `<manifest_dir>/proptest-regressions/<stem of source_file>.txt`.
///
/// The file format is one case per line, `cc <test_name> <hex-seed>`
/// (the seed without a `0x` prefix); blank lines and `#` comments are
/// ignored. A missing file means an empty corpus. The [`proptest!`] macro
/// replays these seeds before its random sweep; hand-rolled harnesses can
/// call this directly with `env!("CARGO_MANIFEST_DIR")` and `file!()`.
pub fn corpus_seeds(manifest_dir: &str, source_file: &str, test_name: &str) -> Vec<u64> {
    let stem = std::path::Path::new(source_file)
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("unknown");
    let path = std::path::Path::new(manifest_dir)
        .join("proptest-regressions")
        .join(format!("{stem}.txt"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let mut parts = line.split_whitespace();
            if parts.next() != Some("cc") || parts.next() != Some(test_name) {
                return None;
            }
            u64::from_str_radix(parts.next()?, 16).ok()
        })
        .collect()
}

/// Prints the corpus line for a failing case while the panic unwinds, so
/// the seed survives even when the failure is an `assert!` (which bypasses
/// the macro's own error path). Used by [`proptest!`]; not public API in
/// real proptest.
#[doc(hidden)]
pub struct SeedReporter {
    name: &'static str,
    seed: u64,
    armed: bool,
}

impl SeedReporter {
    /// Arms the reporter for one case.
    pub fn new(name: &'static str, seed: u64) -> Self {
        SeedReporter {
            name,
            seed,
            armed: true,
        }
    }

    /// The case finished cleanly; stay silent.
    pub fn disarm(&mut self) {
        self.armed = false;
    }
}

impl Drop for SeedReporter {
    fn drop(&mut self) {
        if self.armed && std::thread::panicking() {
            eprintln!(
                "proptest shim: pin this failure in proptest-regressions/ with: cc {} {:016x}",
                self.name, self.seed
            );
        }
    }
}

/// Per-test configuration (`cases` is the only honored knob).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
    /// Accepted for source compatibility; ignored (no shrinking here).
    pub max_shrink_iters: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_shrink_iters: 0,
        }
    }
}

/// Defines `#[test]` functions whose arguments are drawn from strategies.
///
/// Accepts an optional leading `#![proptest_config(expr)]`. Each function
/// body runs `config.cases` times with freshly generated inputs; a panic
/// (from `prop_assert!` or anything else) fails the test and prints the
/// case number via the panic message of the harness.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr); $($(#[$meta:meta])* fn $name:ident($($pat:pat in $strat:expr),+ $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            #[test]
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Replay the checked-in regression corpus first: a pinned
                // seed that ever failed must keep passing forever.
                let __corpus = $crate::corpus_seeds(
                    env!("CARGO_MANIFEST_DIR"),
                    file!(),
                    stringify!($name),
                );
                let mut __label_rng = $crate::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
                let __seeds = __corpus
                    .into_iter()
                    .chain((0..config.cases).map(|_| __label_rng.next_u64()));
                for (__case, __seed) in __seeds.enumerate() {
                    let mut __reporter = $crate::SeedReporter::new(stringify!($name), __seed);
                    let mut __rng = $crate::TestRng::from_seed(__seed);
                    $(let $pat = $crate::Strategy::generate(&($strat), &mut __rng);)+
                    // The IIFE gives `?` (prop_assert!) somewhere to land.
                    #[allow(clippy::redundant_closure_call)]
                    let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                        $body
                        Ok(())
                    })();
                    if let Err(e) = __result {
                        panic!(
                            "proptest case {} failed (pin with: cc {} {:016x}): {e}",
                            __case + 1,
                            stringify!($name),
                            __seed,
                        );
                    }
                    __reporter.disarm();
                }
            }
        )*
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($arg:tt)*) => { assert!($($arg)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($arg:tt)*) => { assert_eq!($($arg)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($arg:tt)*) => { assert_ne!($($arg)*) };
}

/// A weighted union of strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::OneOf::new(vec![
            $(
                (($weight) as u32, {
                    let __s = $strat;
                    ::std::boxed::Box::new(move |rng: &mut $crate::TestRng| {
                        $crate::Strategy::generate(&__s, rng)
                    }) as ::std::boxed::Box<dyn Fn(&mut $crate::TestRng) -> _>
                })
            ),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::prop_oneof!($(1 => $strat),+)
    };
}

/// The `proptest::prelude`-compatible namespace.
pub mod prelude {
    pub use crate::{
        any, corpus_seeds, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError, TestRng,
    };

    /// The `prop::` namespace (`prop::collection::vec` etc.).
    pub mod prop {
        pub use crate::collection;
    }
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn ranges_tuples_and_maps_generate() {
        let mut rng = TestRng::deterministic("t1");
        let s = (0u64..10, any::<bool>()).prop_map(|(n, b)| if b { n } else { n + 100 });
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!(v < 10 || (100..110).contains(&v));
        }
    }

    #[test]
    fn oneof_respects_zero_weightless_arms() {
        let mut rng = TestRng::deterministic("t2");
        let s = prop_oneof![
            3 => Just(1u8),
            1 => Just(2u8),
        ];
        let mut seen = [0u32; 3];
        for _ in 0..1000 {
            seen[s.generate(&mut rng) as usize] += 1;
        }
        assert_eq!(seen[0], 0);
        assert!(seen[1] > seen[2]);
        assert!(seen[2] > 0);
    }

    #[test]
    fn collections_honor_size_bounds() {
        let mut rng = TestRng::deterministic("t3");
        let vs = crate::collection::vec(any::<u8>(), 1..40);
        let ss = crate::collection::btree_set(0u64..5, 0..60);
        for _ in 0..50 {
            let v = vs.generate(&mut rng);
            assert!((1..40).contains(&v.len()));
            let s = ss.generate(&mut rng);
            assert!(s.len() <= 5, "only five distinct candidates exist");
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]
        fn the_macro_itself_runs(x in 0u32..100, mut v in crate::collection::vec(any::<u8>(), 0..8)) {
            v.push(x as u8);
            prop_assert!(v.len() <= 8);
            prop_assert_eq!(*v.last().unwrap(), x as u8);
            prop_assert_ne!(v.len(), 0);
        }
    }

    #[test]
    fn corpus_parser_reads_matching_cc_lines_only() {
        let dir = std::env::temp_dir().join(format!("proptest-shim-corpus-{}", std::process::id()));
        std::fs::create_dir_all(dir.join("proptest-regressions")).unwrap();
        std::fs::write(
            dir.join("proptest-regressions/my_suite.txt"),
            "# pinned regressions\n\
             cc my_test 00000000000000ff\n\
             cc other_test 0000000000000001\n\
             cc my_test dead_not_hex\n\
             \n\
             cc my_test 1a2b\n",
        )
        .unwrap();
        let seeds = crate::corpus_seeds(dir.to_str().unwrap(), "some/path/my_suite.rs", "my_test");
        assert_eq!(seeds, vec![0xff, 0x1a2b]);
        assert!(crate::corpus_seeds(dir.to_str().unwrap(), "missing.rs", "my_test").is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }
}
