//! Offline stand-in for the subset of `parking_lot` this workspace uses:
//! [`RwLock`] and [`Mutex`] with panic-free (`unwrap`-less) guard accessors.
//!
//! Backed by `std::sync`; a poisoned lock recovers the inner guard the way
//! `parking_lot` would (it has no poisoning), so a panicking writer does not
//! wedge every later reader.

#![forbid(unsafe_code)]

/// Shared-data guard types re-exported from std.
pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A reader-writer lock with `parking_lot`'s unwrapped guard API.
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Takes a shared read guard.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().unwrap_or_else(|e| e.into_inner())
    }

    /// Takes an exclusive write guard.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

/// A mutual-exclusion lock with `parking_lot`'s unwrapped guard API.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Takes the guard.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        self.0.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write_round_trip() {
        let l = RwLock::new(1u32);
        assert_eq!(*l.read(), 1);
        *l.write() = 2;
        assert_eq!(*l.read(), 2);
        assert_eq!(l.into_inner(), 2);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(*m.lock(), vec![1, 2, 3]);
    }

    #[test]
    fn poisoned_locks_recover() {
        let l = std::sync::Arc::new(RwLock::new(0u32));
        let l2 = std::sync::Arc::clone(&l);
        let _ = std::thread::spawn(move || {
            let _g = l2.write();
            panic!("poison it");
        })
        .join();
        *l.write() = 9;
        assert_eq!(*l.read(), 9);
    }
}
