//! End-to-end tests of the `dsf` command-line tool: every subcommand runs
//! against a real snapshot file on disk.

use std::path::PathBuf;
use std::process::{Command, Output};

fn dsf(dir: &PathBuf, args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_dsf"))
        .current_dir(dir)
        .args(args)
        .output()
        .expect("binary runs")
}

fn stdout(out: &Output) -> String {
    String::from_utf8_lossy(&out.stdout).into_owned()
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("dsf-cli-{tag}-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn full_cli_round_trip() {
    let dir = tempdir("roundtrip");

    let out = dsf(
        &dir,
        &[
            "create",
            "t.dsf",
            "--pages",
            "64",
            "--min-density",
            "4",
            "--max-density",
            "24",
        ],
    );
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("capacity 256 records"));

    let out = dsf(&dir, &["insert", "t.dsf", "42", "hello world"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("inserted 42"));

    let out = dsf(&dir, &["get", "t.dsf", "42"]);
    assert_eq!(stdout(&out), "hello world\n");

    let out = dsf(&dir, &["insert", "t.dsf", "42", "replaced"]);
    assert!(stdout(&out).contains("was: hello world"));

    // Bulk load from CSV.
    std::fs::write(
        dir.join("rows.csv"),
        "1,one\n2,two\n3,three\n# comment\n\n10,ten\n",
    )
    .unwrap();
    let out = dsf(&dir, &["load", "t.dsf", "rows.csv"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("loaded 4 records"));

    let out = dsf(&dir, &["scan", "t.dsf", "--limit", "3"]);
    assert_eq!(stdout(&out), "1,one\n2,two\n3,three\n");

    let out = dsf(
        &dir,
        &["scan", "t.dsf", "--from", "42", "--rev", "--limit", "2"],
    );
    assert_eq!(stdout(&out), "42,replaced\n10,ten\n");

    let out = dsf(&dir, &["rank", "t.dsf", "10"]);
    assert_eq!(stdout(&out), "3\n");

    let out = dsf(&dir, &["remove", "t.dsf", "2"]);
    assert!(stdout(&out).contains("removed 2 (was: two)"));
    let out = dsf(&dir, &["remove", "t.dsf", "2"]);
    assert!(stdout(&out).contains("not found"));

    let out = dsf(&dir, &["stats", "t.dsf"]);
    let s = stdout(&out);
    assert!(s.contains("CONTROL 2"), "{s}");
    assert!(s.contains("records:     4 of 256"), "{s}");

    let out = dsf(&dir, &["verify", "t.dsf"]);
    assert!(stdout(&out).contains("all invariants hold"));

    // bench runs in memory and leaves the file untouched.
    let before = std::fs::read(dir.join("t.dsf")).unwrap();
    let out = dsf(
        &dir,
        &["bench", "t.dsf", "--workload", "hammer", "--ops", "100"],
    );
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("page accesses/command"));
    assert_eq!(std::fs::read(dir.join("t.dsf")).unwrap(), before);
    let out = dsf(&dir, &["bench", "t.dsf", "--workload", "nope"]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_error_paths() {
    let dir = tempdir("errors");

    // Unknown command.
    let out = dsf(&dir, &["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    // Missing file.
    let out = dsf(&dir, &["get", "missing.dsf", "1"]);
    assert!(!out.status.success());

    // Refuses to clobber an existing file.
    let out = dsf(
        &dir,
        &[
            "create",
            "exists.dsf",
            "--pages",
            "8",
            "--min-density",
            "1",
            "--max-density",
            "4",
        ],
    );
    assert!(out.status.success());
    let out = dsf(
        &dir,
        &[
            "create",
            "exists.dsf",
            "--pages",
            "8",
            "--min-density",
            "1",
            "--max-density",
            "4",
        ],
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("already exists"));

    // Invalid geometry.
    let out = dsf(
        &dir,
        &[
            "create",
            "bad.dsf",
            "--pages",
            "8",
            "--min-density",
            "5",
            "--max-density",
            "5",
        ],
    );
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("d < D"));

    // Corrupt snapshot.
    std::fs::write(dir.join("garbage.dsf"), b"not a snapshot at all").unwrap();
    let out = dsf(&dir, &["verify", "garbage.dsf"]);
    assert!(!out.status.success());

    // Capacity exhaustion surfaces cleanly.
    let out = dsf(
        &dir,
        &[
            "create",
            "tiny.dsf",
            "--pages",
            "2",
            "--min-density",
            "1",
            "--max-density",
            "4",
        ],
    );
    assert!(out.status.success());
    assert!(dsf(&dir, &["insert", "tiny.dsf", "1", "a"])
        .status
        .success());
    assert!(dsf(&dir, &["insert", "tiny.dsf", "2", "b"])
        .status
        .success());
    let out = dsf(&dir, &["insert", "tiny.dsf", "3", "c"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("capacity"));

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_trace_record_and_replay() {
    let dir = tempdir("trace");
    let out = dsf(
        &dir,
        &[
            "create",
            "t.dsf",
            "--pages",
            "128",
            "--min-density",
            "8",
            "--max-density",
            "40",
        ],
    );
    assert!(out.status.success());
    let out = dsf(
        &dir,
        &[
            "gen-trace",
            "ops.trace",
            "--workload",
            "mixed",
            "--ops",
            "300",
        ],
    );
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("300 operations"));

    // Dry run leaves the file untouched.
    let before = std::fs::read(dir.join("t.dsf")).unwrap();
    let out = dsf(&dir, &["replay", "t.dsf", "ops.trace", "--dry-run"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("dry run"));
    assert_eq!(std::fs::read(dir.join("t.dsf")).unwrap(), before);

    // A real replay persists, deterministically.
    let out = dsf(&dir, &["replay", "t.dsf", "ops.trace"]);
    assert!(out.status.success(), "{out:?}");
    let out = dsf(&dir, &["verify", "t.dsf"]);
    assert!(out.status.success(), "{out:?}");
    let n_line = stdout(&dsf(&dir, &["stats", "t.dsf"]));
    assert!(n_line.contains("records:"), "{n_line}");

    // Same trace replayed into a fresh file gives the same record count.
    let out = dsf(
        &dir,
        &[
            "create",
            "u.dsf",
            "--pages",
            "128",
            "--min-density",
            "8",
            "--max-density",
            "40",
        ],
    );
    assert!(out.status.success());
    dsf(&dir, &["replay", "u.dsf", "ops.trace"]);
    let a = stdout(&dsf(&dir, &["stats", "t.dsf"]));
    let b = stdout(&dsf(&dir, &["stats", "u.dsf"]));
    let rec = |s: &str| {
        s.lines()
            .find(|l| l.contains("records:"))
            .unwrap()
            .to_string()
    };
    assert_eq!(rec(&a), rec(&b));

    // Garbage traces are rejected.
    std::fs::write(dir.join("bad.trace"), "i 1\nfrobnicate 2\n").unwrap();
    let out = dsf(&dir, &["replay", "t.dsf", "bad.trace"]);
    assert!(!out.status.success());

    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_physical_image_round_trip() {
    let dir = tempdir("image");
    let out = dsf(
        &dir,
        &[
            "create",
            "t.dsf",
            "--pages",
            "64",
            "--min-density",
            "4",
            "--max-density",
            "24",
        ],
    );
    assert!(out.status.success());
    for k in [10u64, 20, 30, 40] {
        dsf(&dir, &["insert", "t.dsf", &k.to_string(), &format!("v{k}")]);
    }
    let out = dsf(
        &dir,
        &["image-export", "t.dsf", "t.img", "--page-bytes", "1024"],
    );
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("4 records"));

    let out = dsf(
        &dir,
        &["image-stream", "t.img", "--from", "15", "--to", "35"],
    );
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("20,v20"), "{s}");
    assert!(s.contains("30,v30"), "{s}");
    assert!(!s.contains("10,v10"), "{s}");
    assert!(s.contains("seeks"), "{s}");

    // Opening garbage fails cleanly.
    std::fs::write(dir.join("junk.img"), b"nope").unwrap();
    let out = dsf(&dir, &["image-stream", "junk.img"]);
    assert!(!out.status.success());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_top_renders_spine_and_span_ring_gauges() {
    let dir = tempdir("top");
    let out = dsf(
        &dir,
        &[
            "create",
            "t.dsf",
            "--pages",
            "64",
            "--min-density",
            "4",
            "--max-density",
            "24",
        ],
    );
    assert!(out.status.success(), "{out:?}");
    let out = dsf(
        &dir,
        &["top", "t.dsf", "--workload", "uniform", "--ops", "200"],
    );
    assert!(out.status.success(), "{out:?}");
    let s = stdout(&out);
    assert!(s.contains("drove 200 uniform inserts"), "{s}");
    assert!(s.contains("spans retained"), "{s}");
    assert!(s.contains("dsf_commands_total"), "{s}");
    // The span ring's health gauges must be in the table (satellite of the
    // flight-recorder ISSUE: drop counter + capacity as gauges).
    assert!(s.contains("dsf_span_ring_capacity"), "{s}");
    assert!(s.contains("dsf_span_ring_dropped"), "{s}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_serve_metrics_oneshot_serves_valid_exposition() {
    use std::io::{BufRead, BufReader, Read, Write};

    let dir = tempdir("serve");
    let out = dsf(
        &dir,
        &[
            "create",
            "t.dsf",
            "--pages",
            "64",
            "--min-density",
            "4",
            "--max-density",
            "24",
        ],
    );
    assert!(out.status.success(), "{out:?}");

    // `--port 0` asks the kernel for a free port; the child prints the
    // resolved address before blocking on the single permitted request.
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsf"))
        .current_dir(&dir)
        .args([
            "serve-metrics",
            "t.dsf",
            "--port",
            "0",
            "--oneshot",
            "--workload",
            "uniform",
            "--ops",
            "150",
        ])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut reader = BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "child exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("serving http://") {
            break rest.split('/').next().unwrap().to_string();
        }
    };

    let mut sock = std::net::TcpStream::connect(&addr).expect("connect to oneshot server");
    sock.write_all(b"GET /metrics HTTP/1.0\r\nHost: dsf\r\n\r\n")
        .unwrap();
    let mut response = String::new();
    sock.read_to_string(&mut response).unwrap();
    let status = child.wait().expect("child exits");
    assert!(status.success(), "serve-metrics --oneshot failed: {status}");

    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("HTTP response has a header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "{head}");
    assert!(head.contains("text/plain; version=0.0.4"), "{head}");

    // The strict 0.0.4 parser rejects duplicate samples, untyped families,
    // and malformed lines — this is the no-duplicate-samples guarantee.
    let summary =
        willard_dsf::telemetry::parse_exposition(body).expect("exposition must parse strictly");
    assert!(summary.families >= 5, "families: {}", summary.families);
    assert!(summary.samples > summary.families);
    assert!(body.contains("dsf_command_page_accesses_count"), "{body}");
    assert!(body.contains("dsf_span_ring_capacity"), "{body}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_flight_example52_and_bench_gate() {
    let dir = tempdir("flight");

    // Record the paper's Example 5.2 run; the summary quotes the spine's
    // histogram max for cross-checking against the flight log.
    let out = dsf(&dir, &["flight", "record", "ex52.flight", "--example52"]);
    assert!(out.status.success(), "{out:?}");
    let rec = stdout(&out);
    let hist_max: u64 = rec
        .lines()
        .find_map(|l| l.strip_prefix("dsf_command_page_accesses_max "))
        .expect("record quotes the histogram max")
        .trim()
        .parse()
        .unwrap();
    assert!(hist_max > 0, "{rec}");

    let out = dsf(&dir, &["flight", "replay", "ex52.flight"]);
    assert!(out.status.success(), "{out:?}");
    let rep = stdout(&out);
    assert!(rep.contains("commands: 2 complete, 0 cancelled"), "{rep}");
    assert!(rep.contains("attribution reconciles: true"), "{rep}");
    assert!(rep.contains("audit: OK"), "{rep}");

    let out = dsf(&dir, &["flight", "explain", "ex52.flight", "--top", "3"]);
    assert!(out.status.success(), "{out:?}");
    let exp = stdout(&out);
    assert!(exp.contains("worst command: seq"), "{exp}");
    assert!(exp.contains("breakdown: user"), "{exp}");
    assert!(exp.contains("flag-stable moments"), "{exp}");
    // Acceptance criterion: the worst command the flight log reconstructs
    // carries exactly the page total the live histogram saw.
    let worst_total: u64 = exp
        .lines()
        .skip_while(|l| !l.starts_with("worst command"))
        .find_map(|l| {
            let (head, _) = l.split_once(" page accesses")?;
            head.rsplit(' ').next()?.parse().ok()
        })
        .expect("explain states the worst command's page total");
    assert_eq!(worst_total, hist_max, "{exp}");

    // bench-gate: identical numbers pass; a doctored 20% regression fails.
    let base =
        "{\n  \"io_call_ratio\": 3.20,\n  \"overhead_ratio\": 1.20,\n  \"max_accesses\": 18\n}\n";
    std::fs::write(dir.join("base.json"), base).unwrap();
    std::fs::write(dir.join("same.json"), base).unwrap();
    std::fs::write(
        dir.join("bad.json"),
        "{\n  \"io_call_ratio\": 2.56,\n  \"overhead_ratio\": 1.20,\n  \"max_accesses\": 18\n}\n",
    )
    .unwrap();
    let out = dsf(&dir, &["bench-gate", "base.json", "same.json"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("bench-gate: PASS"));
    let out = dsf(
        &dir,
        &[
            "bench-gate",
            "base.json",
            "bad.json",
            "--report",
            "gate.txt",
        ],
    );
    assert!(!out.status.success(), "doctored regression must fail");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("regression in io_call_ratio"), "{err}");
    assert!(std::fs::read_to_string(dir.join("gate.txt"))
        .unwrap()
        .contains("REGRESSION"));

    // Per-scenario E17 keys gate at 0% slack: equal passes even when the
    // key is well inside the 15% threshold window, +1 page fails, and a
    // scenario missing from the candidate fails.
    let sb = "{\n  \"max_accesses_adversarial\": 203,\n  \"max_accesses_zipfian\": 14\n}\n";
    std::fs::write(dir.join("sc_base.json"), sb).unwrap();
    std::fs::write(dir.join("sc_same.json"), sb).unwrap();
    std::fs::write(
        dir.join("sc_bump.json"),
        "{\n  \"max_accesses_adversarial\": 204,\n  \"max_accesses_zipfian\": 14\n}\n",
    )
    .unwrap();
    std::fs::write(
        dir.join("sc_drop.json"),
        "{\n  \"max_accesses_adversarial\": 203\n}\n",
    )
    .unwrap();
    let out = dsf(&dir, &["bench-gate", "sc_base.json", "sc_same.json"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).contains("bench-gate: PASS"));
    let out = dsf(&dir, &["bench-gate", "sc_base.json", "sc_bump.json"]);
    assert!(!out.status.success(), "+1 page on a scenario must fail");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(
        err.contains("regression in max_accesses_adversarial"),
        "{err}"
    );
    let out = dsf(&dir, &["bench-gate", "sc_base.json", "sc_drop.json"]);
    assert!(!out.status.success(), "dropped scenario must fail");
    let err = String::from_utf8_lossy(&out.stderr).into_owned();
    assert!(err.contains("regression in max_accesses_zipfian"), "{err}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_control1_files() {
    let dir = tempdir("control1");
    let out = dsf(
        &dir,
        &[
            "create",
            "c1.dsf",
            "--pages",
            "32",
            "--min-density",
            "4",
            "--max-density",
            "20",
            "--control1",
        ],
    );
    assert!(out.status.success());
    for k in 0..50u64 {
        assert!(dsf(&dir, &["insert", "c1.dsf", &k.to_string(), "v"])
            .status
            .success());
    }
    let out = dsf(&dir, &["stats", "c1.dsf"]);
    assert!(stdout(&out).contains("CONTROL 1"));
    let out = dsf(&dir, &["verify", "c1.dsf"]);
    assert!(out.status.success(), "{out:?}");
    std::fs::remove_dir_all(&dir).ok();
}

/// Spawns `dsf serve`, reads the announce line, and returns the child,
/// its address, and the stdout reader (which must stay alive — dropping
/// it breaks the child's pipe and turns its exit message into a panic).
fn spawn_serve(
    dir: &PathBuf,
    extra: &[&str],
) -> (
    std::process::Child,
    String,
    std::io::BufReader<std::process::ChildStdout>,
) {
    use std::io::BufRead;
    // The store dir (if any) must be the first argument after `serve`.
    let mut args = vec!["serve"];
    args.extend_from_slice(extra);
    args.extend_from_slice(&["--addr", "127.0.0.1:0"]);
    let mut child = Command::new(env!("CARGO_BIN_EXE_dsf"))
        .current_dir(dir)
        .args(&args)
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("binary runs");
    let mut reader = std::io::BufReader::new(child.stdout.take().unwrap());
    let addr = loop {
        let mut line = String::new();
        assert!(
            reader.read_line(&mut line).unwrap() > 0,
            "serve exited before announcing its address"
        );
        if let Some(rest) = line.trim().strip_prefix("serving dsf://") {
            break rest.split_whitespace().next().unwrap().to_string();
        }
    };
    (child, addr, reader)
}

#[test]
fn cli_serve_memory_round_trip() {
    let dir = tempdir("serve-mem");
    let (mut child, addr, _out) = spawn_serve(&dir, &["--memory", "--shards", "2"]);

    let out = dsf(&dir, &["client", &addr, "ping"]);
    assert!(out.status.success(), "{out:?}");
    assert_eq!(stdout(&out), "pong\n");

    let out = dsf(&dir, &["client", &addr, "insert", "42", "answer"]);
    assert!(out.status.success(), "{out:?}");
    assert!(stdout(&out).starts_with("inserted"), "{out:?}");

    let out = dsf(
        &dir,
        &["client", &addr, "insert", "42", "revised", "--relaxed"],
    );
    assert!(stdout(&out).contains("replaced (was: answer"), "{out:?}");

    let out = dsf(&dir, &["client", &addr, "get", "42"]);
    assert_eq!(stdout(&out), "revised\n");

    let out = dsf(&dir, &["client", &addr, "count"]);
    assert_eq!(stdout(&out), "1 records\n");

    let out = dsf(&dir, &["client", &addr, "scan", "--limit", "10"]);
    assert!(stdout(&out).contains("42\trevised"), "{out:?}");

    let out = dsf(&dir, &["client", &addr, "remove", "42"]);
    assert!(stdout(&out).contains("removed (was: revised"), "{out:?}");

    let out = dsf(&dir, &["client", &addr, "shutdown"]);
    assert_eq!(stdout(&out), "server shutting down\n");

    let status = child.wait().expect("serve exits");
    assert!(status.success(), "serve exited with {status}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn cli_serve_durable_survives_restart() {
    let dir = tempdir("serve-dur");
    let (mut child, addr, _out) = spawn_serve(&dir, &["store", "--shards", "2", "--pages", "64"]);

    for k in 0..20u64 {
        let durability: &[&str] = if k % 2 == 0 { &[] } else { &["--relaxed"] };
        let mut args = vec!["client", &addr, "insert"];
        let ks = k.to_string();
        let vs = format!("v{k}");
        args.push(&ks);
        args.push(&vs);
        args.extend_from_slice(durability);
        let out = dsf(&dir, &args);
        assert!(out.status.success(), "insert {k}: {out:?}");
    }
    let out = dsf(&dir, &["client", &addr, "flush"]);
    assert_eq!(stdout(&out), "flushed\n");
    let out = dsf(&dir, &["client", &addr, "shutdown"]);
    assert!(out.status.success(), "{out:?}");
    assert!(child.wait().expect("serve exits").success());

    // Restart over the same directory: every acked record is still there.
    let (mut child, addr, _out) = spawn_serve(&dir, &["store"]);
    let out = dsf(&dir, &["client", &addr, "count"]);
    assert_eq!(stdout(&out), "20 records\n");
    let out = dsf(&dir, &["client", &addr, "get", "13"]);
    assert_eq!(stdout(&out), "v13\n");
    let out = dsf(&dir, &["client", &addr, "shutdown"]);
    assert!(out.status.success(), "{out:?}");
    assert!(child.wait().expect("serve exits").success());
    std::fs::remove_dir_all(&dir).ok();
}
