//! Every [`InvariantViolation`] variant, constructed and detected.
//!
//! The crash-consistency harness leans on `check_invariants` as its oracle:
//! a recovery bug that corrupts structure must surface as a violation. That
//! only holds if the checker actually fires on each kind of damage, so this
//! suite fabricates all ten variants through the [`DenseFile::audit`] back
//! door — raw store/calibrator mutation with no invariant maintenance — and
//! asserts each one is reported.

use dsf_core::{DenseFile, DenseFileConfig, InvariantViolation};

fn names(errs: &[InvariantViolation]) -> Vec<&'static str> {
    errs.iter().map(|v| v.name()).collect()
}

/// A CONTROL 1 file (no flag legality checks to co-fire) with `per_slot`
/// records in each of its 8 slots, keys spaced 100 apart.
fn control1_file(per_slot: u64) -> DenseFile<u64, u32> {
    let mut f: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control1(8, 4, 16)).unwrap();
    f.bulk_load((0..8 * per_slot).map(|k| (k * 100, 1)))
        .unwrap();
    f.check_invariants().unwrap();
    f
}

#[test]
fn slot_unsorted_is_the_only_violation_reported() {
    let mut f = control1_file(4);
    // Same keys, same count, same minimum — only the interior order is off,
    // so the report must be exactly one SlotUnsorted.
    f.audit()
        .corrupt_slot(0, vec![(0, 1), (200, 1), (100, 1), (300, 1)]);
    let errs = f.check_invariants().unwrap_err();
    assert_eq!(errs, vec![InvariantViolation::SlotUnsorted { slot: 0 }]);
}

#[test]
fn cross_slot_order_is_the_only_violation_reported() {
    let mut f = control1_file(4);
    // Slot 0 stays sorted but its maximum (450) now passes slot 1's
    // minimum (400).
    f.audit()
        .corrupt_slot(0, vec![(0, 1), (100, 1), (200, 1), (450, 1)]);
    let errs = f.check_invariants().unwrap_err();
    assert_eq!(
        errs,
        vec![InvariantViolation::CrossSlotOrder {
            slot_a: 0,
            slot_b: 1
        }]
    );
}

#[test]
fn slot_over_capacity_is_detected() {
    let mut f = control1_file(1); // sparse, so the total stays within N
    let max = f.config().slot_max;
    // slot_max + 1 sorted records, all below slot 1's minimum of 100.
    let recs: Vec<(u64, u32)> = (0..=max).map(|k| (k, 1)).collect();
    f.audit().corrupt_slot(0, recs);
    let errs = f.check_invariants().unwrap_err();
    assert!(
        errs.contains(&InvariantViolation::SlotOverCapacity {
            slot: 0,
            len: max + 1,
            max,
        }),
        "{:?}",
        names(&errs)
    );
    // A slot past D# is also past its leaf's BALANCE bound — the checker
    // reports both, never masks one with the other.
    assert!(names(&errs).contains(&"BalanceViolated"));
}

#[test]
fn count_mismatch_is_detected() {
    let mut f = control1_file(2);
    f.audit().calibrator_mut().add_count(3, 5);
    let errs = f.check_invariants().unwrap_err();
    assert!(
        names(&errs).contains(&"CountMismatch"),
        "{:?}",
        names(&errs)
    );
}

#[test]
fn min_key_mismatch_is_detected() {
    let mut f = control1_file(2);
    f.audit().calibrator_mut().refresh_min(0, Some(99_999));
    let errs = f.check_invariants().unwrap_err();
    assert!(
        names(&errs).contains(&"MinKeyMismatch"),
        "{:?}",
        names(&errs)
    );
}

#[test]
fn balance_violated_is_detected_without_any_slot_over_capacity() {
    // control1(8, 4, 20): L = 3, so g(leaf,1) = D# = 20 and the depth-2
    // bound is 4 + ⅔·16 ≈ 14.7. Packing all 32 records into slots 0..2 at
    // 16 apiece stays under every leaf bound (and under N) but pushes the
    // depth-2 node over slots 0..2 to p = 16 > 14.7: a pure BALANCE
    // violation.
    let mut f: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control1(8, 4, 20)).unwrap();
    f.bulk_load((0..32u64).map(|k| (k * 10, 1))).unwrap();
    f.check_invariants().unwrap();
    let mut audit = f.audit();
    for slot in 0..2u32 {
        let lo = u64::from(slot) * 16;
        audit.corrupt_slot(slot, (lo..lo + 16).map(|k| (k * 10, 1)).collect());
    }
    for slot in 2..8u32 {
        audit.corrupt_slot(slot, Vec::new());
    }
    let errs = f.check_invariants().unwrap_err();
    assert!(
        errs.iter()
            .all(|v| matches!(v, InvariantViolation::BalanceViolated { .. })),
        "{:?}",
        names(&errs)
    );
    assert!(!errs.is_empty());
}

#[test]
fn over_capacity_is_detected() {
    // control1(4, 2, 10): N = 8. Ten records anywhere exceed it.
    let mut f: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control1(4, 2, 10)).unwrap();
    f.bulk_load((0..8u64).map(|k| (k * 100, 1))).unwrap();
    f.check_invariants().unwrap();
    // Four records in slot 0 (all below slot 1's minimum of 200) push the
    // total to 10 > 8 without overfilling any single slot.
    f.audit()
        .corrupt_slot(0, vec![(0, 1), (10, 1), (20, 1), (30, 1)]);
    let errs = f.check_invariants().unwrap_err();
    assert!(
        errs.contains(&InvariantViolation::OverCapacity {
            len: 10,
            capacity: 8
        }),
        "{:?}",
        names(&errs)
    );
}

#[test]
fn stale_warning_and_dest_out_of_range_are_detected() {
    let mut f: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
    f.bulk_load((0..10u64).map(|k| (k, 1))).unwrap();
    f.check_invariants().unwrap();
    // A warning on a cold node violates Fact 5.1(a); a DEST outside the
    // father's range violates pointer containment.
    let mut audit = f.audit();
    let cal = audit.calibrator_mut();
    let leaf = cal.leaf_of(0);
    cal.set_warning(leaf, true);
    cal.set_dest(leaf, 7); // the leaf's father spans slots 0..=1
    let errs = f.check_invariants().unwrap_err();
    let got = names(&errs);
    assert!(got.contains(&"StaleWarning"), "{got:?}");
    assert!(got.contains(&"DestOutOfRange"), "{got:?}");
}

#[test]
fn missing_warning_is_detected() {
    // control2(8, 4, 20) meets the gap assumption (16 > 3L = 9). A leaf
    // holding 19 records is past g(leaf,⅔) ≈ 18.2 yet under both D# = 20
    // and g(leaf,1) = 20 — hot enough that Fact 5.1(b) demands a warning,
    // which the corruption below withholds.
    let mut f: DenseFile<u64, u32> = DenseFile::new(DenseFileConfig::control2(8, 4, 20)).unwrap();
    f.bulk_load((0..8u64).map(|k| (k * 1000, 1))).unwrap();
    f.check_invariants().unwrap();
    assert!(f.calibrator().warned_nodes().is_empty());
    f.audit()
        .corrupt_slot(7, (0..19u64).map(|k| (7000 + k, 1)).collect());
    let errs = f.check_invariants().unwrap_err();
    assert!(
        names(&errs).contains(&"MissingWarning"),
        "{:?}",
        names(&errs)
    );
}

#[test]
fn variant_names_are_distinct_and_cover_all_ten() {
    use InvariantViolation::*;
    let all = [
        SlotUnsorted { slot: 0 },
        CrossSlotOrder {
            slot_a: 0,
            slot_b: 1,
        },
        SlotOverCapacity {
            slot: 0,
            len: 9,
            max: 8,
        },
        CountMismatch {
            node: 1,
            cached: 2,
            actual: 3,
        },
        MinKeyMismatch { node: 1 },
        BalanceViolated {
            node: 1,
            count: 9,
            width: 1,
        },
        StaleWarning { node: 1 },
        MissingWarning { node: 1 },
        DestOutOfRange { node: 1, dest: 9 },
        OverCapacity {
            len: 9,
            capacity: 8,
        },
    ];
    let mut seen: Vec<&str> = all.iter().map(|v| v.name()).collect();
    seen.sort_unstable();
    seen.dedup();
    assert_eq!(seen.len(), 10, "{seen:?}");
    // Display stays informative alongside the machine name.
    for v in &all {
        assert!(!v.to_string().is_empty());
    }
}
