//! Property tests for the telemetry histogram against `OpStats` replay.
//!
//! `dsf_command_page_accesses` and `OpStats::histogram` implement the
//! same power-of-two bucketing independently (one in relaxed atomics, one
//! in plain integers). For *any* access sequence the two must agree on
//! count, sum, max, and every one of the 33 buckets — this is what lets
//! the exporter's `_max` sample stand in for `OpStats::max_accesses`.
//!
//! These cases build private `Registry` instances, so they are safe to
//! run in-process alongside each other (the global spine is untouched).

use proptest::prelude::*;
use willard_dsf::core_::OpStats;
use willard_dsf::telemetry::{Registry, HISTOGRAM_BUCKETS};

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Replaying one access stream into both sides yields identical
    /// count/sum/max and bucket-for-bucket equality; the rendered
    /// cumulative `le` buckets re-sum to the flat counts.
    fn histogram_reconciles_with_op_stats(accesses in prop::collection::vec(0u64..100_000, 0..300)) {
        let reg = Registry::new();
        reg.enable();
        let hist = reg.histogram("acc", "per-command accesses");

        let mut stats = OpStats::default();
        for &a in &accesses {
            hist.record(a);
            stats.record_command(a);
        }

        prop_assert_eq!(hist.count(), stats.commands);
        prop_assert_eq!(hist.sum(), stats.total_accesses);
        prop_assert_eq!(hist.max(), stats.max_accesses);

        let tel_buckets = hist.bucket_counts();
        let ops_buckets = stats.histogram.bucket_counts();
        prop_assert_eq!(tel_buckets, ops_buckets);
        prop_assert_eq!(tel_buckets.iter().sum::<u64>(), stats.commands);

        // Cumulative property of the exposition: each bucket's running
        // total is monotone and the final one equals the count.
        let mut cumulative = 0u64;
        for (i, &b) in tel_buckets.iter().enumerate() {
            cumulative += b;
            prop_assert!(cumulative <= stats.commands, "bucket {} overshoots", i);
        }
        prop_assert_eq!(cumulative, stats.commands);
    }

    /// Merging two OpStats streams matches recording their concatenation
    /// into one telemetry histogram — merge() is the per-shard
    /// aggregation the sharded wrapper relies on.
    fn merged_op_stats_matches_concatenated_histogram(
        left in prop::collection::vec(0u64..50_000, 0..150),
        right in prop::collection::vec(0u64..50_000, 0..150),
    ) {
        let reg = Registry::new();
        reg.enable();
        let hist = reg.histogram("acc", "per-command accesses");

        let mut a = OpStats::default();
        let mut b = OpStats::default();
        for &v in &left {
            a.record_command(v);
            hist.record(v);
        }
        for &v in &right {
            b.record_command(v);
            hist.record(v);
        }
        a.merge(&b);

        prop_assert_eq!(hist.count(), a.commands);
        prop_assert_eq!(hist.sum(), a.total_accesses);
        prop_assert_eq!(hist.max(), a.max_accesses);
        prop_assert_eq!(hist.bucket_counts(), a.histogram.bucket_counts());
        prop_assert_eq!(a.histogram.bucket_counts().len(), HISTOGRAM_BUCKETS);
    }
}
