//! Model-based property tests: every structure in the workspace, driven by
//! random operation sequences, must behave exactly like
//! `std::collections::BTreeMap` — and the dense file must additionally hold
//! every paper invariant after every command.

use proptest::prelude::*;
use std::collections::BTreeMap;
use willard_dsf::{
    AmortizedPma, BPlusTree, BTreeConfig, DenseFile, DenseFileConfig, DsfError, MacroBlocking,
    NaiveSequentialFile, PmaConfig,
};

/// A compact op encoding for proptest.
#[derive(Debug, Clone, Copy)]
enum MOp {
    Insert(u16, u8),
    Remove(u16),
    Get(u16),
}

fn op_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| MOp::Insert(k, v)),
        2 => any::<u16>().prop_map(MOp::Remove),
        1 => any::<u16>().prop_map(MOp::Get),
    ]
}

fn check_against_model(
    f: &mut DenseFile<u16, u8>,
    model: &mut BTreeMap<u16, u8>,
    ops: &[MOp],
    check_every: usize,
) {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            MOp::Insert(k, v) => {
                if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                    let got = f.insert(k, v).unwrap();
                    assert_eq!(got, model.insert(k, v), "insert({k}) disagreed");
                } else {
                    assert!(matches!(
                        f.insert(k, v),
                        Err(DsfError::CapacityExceeded { .. })
                    ));
                }
            }
            MOp::Remove(k) => assert_eq!(f.remove(&k), model.remove(&k), "remove({k}) disagreed"),
            MOp::Get(k) => assert_eq!(f.get(&k), model.get(&k), "get({k}) disagreed"),
        }
        if i % check_every == 0 {
            if let Err(v) = f.check_invariants() {
                panic!("invariants broken at op #{i} ({op:?}): {v:?}");
            }
        }
    }
    if let Err(v) = f.check_invariants() {
        panic!("invariants broken at end: {v:?}");
    }
    // Full-content equivalence via an ordered scan.
    let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "scan disagreed with the model");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// CONTROL 2, base regime.
    #[test]
    fn control2_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let cfg = DenseFileConfig::control2(32, 8, 48);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 7);
    }

    /// CONTROL 2 with a forced small J — still correct (contents-wise) even
    /// when the worst-case *bound* is configured tightly.
    #[test]
    fn control2_small_j_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = DenseFileConfig::control2(32, 8, 48).with_j(4);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 11);
    }

    /// CONTROL 2 in the macro-block regime (K > 1).
    #[test]
    fn control2_macroblock_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = DenseFileConfig::control2(64, 6, 8); // tiny gap → K > 1
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        prop_assert!(f.config().k > 1);
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 13);
    }

    /// CONTROL 1 (amortized).
    #[test]
    fn control1_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let cfg = DenseFileConfig::control1(32, 8, 48);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 7);
    }

    /// CONTROL 1 without the density-gap assumption (out-of-contract
    /// parameters): contents must still match even if redistribution has to
    /// iterate.
    #[test]
    fn control1_tight_gap_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let cfg = DenseFileConfig::control1(32, 7, 9)
            .with_macro_blocking(MacroBlocking::Disabled);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => {
                    if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                        assert_eq!(f.insert(k, v).unwrap(), model.insert(k, v));
                    }
                }
                MOp::Remove(k) => assert_eq!(f.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(f.get(&k), model.get(&k)),
            }
        }
        let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The B+-tree comparator.
    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..500)) {
        let mut t: BPlusTree<u16, u8> = BPlusTree::new(BTreeConfig::with_page_capacity(8)).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => assert_eq!(t.insert(k, v), model.insert(k, v)),
                MOp::Remove(k) => assert_eq!(t.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(t.get(&k), model.get(&k)),
            }
        }
        t.check_structure().map_err(TestCaseError::fail)?;
        let got = t.collect_all();
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The amortized PMA baseline.
    #[test]
    fn pma_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut p: AmortizedPma<u16, u8> =
            AmortizedPma::new(PmaConfig::for_pages(64, 16, 8)).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => {
                    if model.contains_key(&k) || (model.len() as u64) < p.capacity() {
                        assert_eq!(p.insert(k, v).unwrap(), model.insert(k, v));
                    }
                }
                MOp::Remove(k) => assert_eq!(p.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(p.get(&k), model.get(&k)),
            }
        }
        p.check_structure().map_err(TestCaseError::fail)?;
        let mut got = Vec::new();
        p.scan_from(&0, usize::MAX, |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The naive sequential file.
    #[test]
    fn naive_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut n: NaiveSequentialFile<u16, u8> = NaiveSequentialFile::new(8);
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => assert_eq!(n.insert(k, v), model.insert(k, v)),
                MOp::Remove(k) => assert_eq!(n.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(n.get(&k), model.get(&k)),
            }
        }
        let mut got = Vec::new();
        n.scan_from(&0, usize::MAX, |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Range scans agree with the model over arbitrary bounds.
    #[test]
    fn range_scans_match_model(
        keys in prop::collection::btree_set(any::<u16>(), 0..300),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let cfg = DenseFileConfig::control2(32, 16, 64);
        let mut f: DenseFile<u16, u16> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        for &k in &keys {
            f.insert(k, k).unwrap();
            model.insert(k, k);
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let got: Vec<u16> = f.range(lo..hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
        let got: Vec<u16> = f.range(lo..=hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }
}
