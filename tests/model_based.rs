//! Model-based property tests: every structure in the workspace, driven by
//! random operation sequences, must behave exactly like
//! `std::collections::BTreeMap` — and the dense file must additionally hold
//! every paper invariant after every command.

use proptest::prelude::*;
use std::collections::BTreeMap;
use willard_dsf::{
    AmortizedPma, BPlusTree, BTreeConfig, DenseFile, DenseFileConfig, DsfError, DurableFile,
    MacroBlocking, NaiveSequentialFile, PmaConfig, SyncPolicy,
};

/// A compact op encoding for proptest.
///
/// `Sync`, `Checkpoint`, and `Reopen` only act on [`DurableFile`]; the
/// in-memory structures treat them as no-ops so one op vocabulary drives
/// every model test.
#[derive(Debug, Clone, Copy)]
enum MOp {
    Insert(u16, u8),
    Remove(u16),
    Get(u16),
    Sync,
    Checkpoint,
    Reopen,
}

fn op_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        3 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| MOp::Insert(k, v)),
        2 => any::<u16>().prop_map(MOp::Remove),
        1 => any::<u16>().prop_map(MOp::Get),
    ]
}

/// The durable-file vocabulary: mutations plus durability boundaries and
/// full process-restart round-trips.
fn durable_op_strategy() -> impl Strategy<Value = MOp> {
    prop_oneof![
        6 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| MOp::Insert(k, v)),
        4 => any::<u16>().prop_map(MOp::Remove),
        2 => any::<u16>().prop_map(MOp::Get),
        1 => Just(MOp::Sync),
        1 => Just(MOp::Checkpoint),
        1 => Just(MOp::Reopen),
    ]
}

fn check_against_model(
    f: &mut DenseFile<u16, u8>,
    model: &mut BTreeMap<u16, u8>,
    ops: &[MOp],
    check_every: usize,
) {
    for (i, op) in ops.iter().enumerate() {
        match *op {
            MOp::Insert(k, v) => {
                if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                    let got = f.insert(k, v).unwrap();
                    assert_eq!(got, model.insert(k, v), "insert({k}) disagreed");
                } else {
                    assert!(matches!(
                        f.insert(k, v),
                        Err(DsfError::CapacityExceeded { .. })
                    ));
                }
            }
            MOp::Remove(k) => assert_eq!(f.remove(&k), model.remove(&k), "remove({k}) disagreed"),
            MOp::Get(k) => assert_eq!(f.get(&k), model.get(&k), "get({k}) disagreed"),
            MOp::Sync | MOp::Checkpoint | MOp::Reopen => {} // durability ops: no-ops in memory
        }
        if i % check_every == 0 {
            if let Err(v) = f.check_invariants() {
                panic!("invariants broken at op #{i} ({op:?}): {v:?}");
            }
        }
    }
    if let Err(v) = f.check_invariants() {
        panic!("invariants broken at end: {v:?}");
    }
    // Full-content equivalence via an ordered scan.
    let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    assert_eq!(got, want, "scan disagreed with the model");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 48, ..ProptestConfig::default() })]

    /// CONTROL 2, base regime.
    #[test]
    fn control2_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let cfg = DenseFileConfig::control2(32, 8, 48);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 7);
    }

    /// CONTROL 2 with a forced small J — still correct (contents-wise) even
    /// when the worst-case *bound* is configured tightly.
    #[test]
    fn control2_small_j_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = DenseFileConfig::control2(32, 8, 48).with_j(4);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 11);
    }

    /// CONTROL 2 in the macro-block regime (K > 1).
    #[test]
    fn control2_macroblock_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let cfg = DenseFileConfig::control2(64, 6, 8); // tiny gap → K > 1
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        prop_assert!(f.config().k > 1);
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 13);
    }

    /// CONTROL 1 (amortized).
    #[test]
    fn control1_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let cfg = DenseFileConfig::control1(32, 8, 48);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        check_against_model(&mut f, &mut model, &ops, 7);
    }

    /// CONTROL 1 without the density-gap assumption (out-of-contract
    /// parameters): contents must still match even if redistribution has to
    /// iterate.
    #[test]
    fn control1_tight_gap_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..250)) {
        let cfg = DenseFileConfig::control1(32, 7, 9)
            .with_macro_blocking(MacroBlocking::Disabled);
        let mut f: DenseFile<u16, u8> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => {
                    if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                        assert_eq!(f.insert(k, v).unwrap(), model.insert(k, v));
                    }
                }
                MOp::Remove(k) => assert_eq!(f.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(f.get(&k), model.get(&k)),
                MOp::Sync | MOp::Checkpoint | MOp::Reopen => {}
            }
        }
        let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The B+-tree comparator.
    #[test]
    fn btree_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..500)) {
        let mut t: BPlusTree<u16, u8> = BPlusTree::new(BTreeConfig::with_page_capacity(8)).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => assert_eq!(t.insert(k, v), model.insert(k, v)),
                MOp::Remove(k) => assert_eq!(t.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(t.get(&k), model.get(&k)),
                MOp::Sync | MOp::Checkpoint | MOp::Reopen => {}
            }
        }
        t.check_structure().map_err(TestCaseError::fail)?;
        let got = t.collect_all();
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The amortized PMA baseline.
    #[test]
    fn pma_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut p: AmortizedPma<u16, u8> =
            AmortizedPma::new(PmaConfig::for_pages(64, 16, 8)).unwrap();
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => {
                    if model.contains_key(&k) || (model.len() as u64) < p.capacity() {
                        assert_eq!(p.insert(k, v).unwrap(), model.insert(k, v));
                    }
                }
                MOp::Remove(k) => assert_eq!(p.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(p.get(&k), model.get(&k)),
                MOp::Sync | MOp::Checkpoint | MOp::Reopen => {}
            }
        }
        p.check_structure().map_err(TestCaseError::fail)?;
        let mut got = Vec::new();
        p.scan_from(&0, usize::MAX, |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// The naive sequential file.
    #[test]
    fn naive_matches_btreemap(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let mut n: NaiveSequentialFile<u16, u8> = NaiveSequentialFile::new(8);
        let mut model = BTreeMap::new();
        for op in &ops {
            match *op {
                MOp::Insert(k, v) => assert_eq!(n.insert(k, v), model.insert(k, v)),
                MOp::Remove(k) => assert_eq!(n.remove(&k), model.remove(&k)),
                MOp::Get(k) => assert_eq!(n.get(&k), model.get(&k)),
                MOp::Sync | MOp::Checkpoint | MOp::Reopen => {}
            }
        }
        let mut got = Vec::new();
        n.scan_from(&0, usize::MAX, |k, v| got.push((*k, *v)));
        let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(got, want);
    }

    /// Range scans agree with the model over arbitrary bounds.
    #[test]
    fn range_scans_match_model(
        keys in prop::collection::btree_set(any::<u16>(), 0..300),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let cfg = DenseFileConfig::control2(32, 16, 64);
        let mut f: DenseFile<u16, u16> = DenseFile::new(cfg).unwrap();
        let mut model = BTreeMap::new();
        for &k in &keys {
            f.insert(k, k).unwrap();
            model.insert(k, k);
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let got: Vec<u16> = f.range(lo..hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
        let got: Vec<u16> = f.range(lo..=hi).map(|(k, _)| *k).collect();
        let want: Vec<u16> = model.range(lo..=hi).map(|(k, _)| *k).collect();
        prop_assert_eq!(got, want);
    }
}

// ----------------------------------------------------------------------
// DurableFile round-trips: the same model discipline, against real disk.
// ----------------------------------------------------------------------

/// A unique scratch directory under the build tree (never outside it).
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static COUNTER: AtomicU64 = AtomicU64::new(0);
    let n = COUNTER.fetch_add(1, Ordering::Relaxed);
    let root = std::env::var_os("CARGO_TARGET_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("target"));
    root.join("model-scratch")
        .join(format!("{tag}-{}-{n}", std::process::id()))
}

/// Drives a [`DurableFile`] through `ops` against the `BTreeMap` model.
///
/// Without injected faults every durability boundary is clean, so a reopen —
/// whether mid-trace or final — must recover *exactly* the model: under
/// `EveryCommand` because every command was fsynced, and under `Manual`
/// because an un-crashed process leaves the whole log readable even when
/// fsyncs were deferred. (Lost-suffix semantics under real crashes are the
/// fault-injection suite's department: `crates/durable/tests/fault_injection.rs`.)
fn run_durable_model(policy: SyncPolicy, tag: &str, ops: &[MOp]) -> Result<(), TestCaseError> {
    let dir = scratch_dir(tag);
    let _ = std::fs::remove_dir_all(&dir);
    let cfg = DenseFileConfig::control2(32, 8, 48);
    let mut f: DurableFile<u16, u8> = DurableFile::create(&dir, cfg, policy).unwrap();
    let mut model = BTreeMap::new();
    for op in ops {
        match *op {
            MOp::Insert(k, v) => {
                if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                    let got = f.insert(k, v).unwrap();
                    prop_assert_eq!(got, model.insert(k, v));
                } else {
                    prop_assert!(f.insert(k, v).is_err(), "capacity breach accepted");
                }
            }
            MOp::Remove(k) => {
                prop_assert_eq!(f.remove(&k).unwrap(), model.remove(&k));
            }
            MOp::Get(k) => prop_assert_eq!(f.get(&k), model.get(&k)),
            MOp::Sync => f.sync().unwrap(),
            MOp::Checkpoint => f.checkpoint().unwrap(),
            MOp::Reopen => {
                drop(f);
                f = DurableFile::open(&dir, policy).unwrap();
                let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
                let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want, "reopen lost or invented commands");
                f.check_invariants().unwrap();
            }
        }
    }
    // Final process-restart round-trip.
    drop(f);
    let f: DurableFile<u16, u8> = DurableFile::open(&dir, policy).unwrap();
    let got: Vec<(u16, u8)> = f.iter().map(|(k, v)| (*k, *v)).collect();
    let want: Vec<(u16, u8)> = model.iter().map(|(k, v)| (*k, *v)).collect();
    prop_assert_eq!(got, want, "final reopen disagreed with the model");
    f.check_invariants().unwrap();
    drop(f);
    let _ = std::fs::remove_dir_all(&dir);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// `EveryCommand`: every mutation is on disk the moment it returns.
    #[test]
    fn durable_every_command_matches_btreemap_across_reopens(
        ops in prop::collection::vec(durable_op_strategy(), 1..120),
    ) {
        run_durable_model(SyncPolicy::EveryCommand, "every", &ops)?;
    }

    /// `Manual`: fsyncs happen only at `Sync`/`Checkpoint`, but clean
    /// shutdowns still lose nothing.
    #[test]
    fn durable_manual_matches_btreemap_across_reopens(
        ops in prop::collection::vec(durable_op_strategy(), 1..120),
    ) {
        run_durable_model(SyncPolicy::Manual, "manual", &ops)?;
    }
}
