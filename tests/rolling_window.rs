//! A rolling time-series window driven for many multiples of the file's
//! capacity: the contents slide right forever while the file keeps its
//! worst-case bound — the retention workload a metrics store runs for
//! months.

use willard_dsf::{DenseFile, DenseFileConfig};

#[test]
fn window_slides_many_file_lifetimes() {
    let cfg = DenseFileConfig::control2(64, 8, 40);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    // Start with a window filling 80% of capacity.
    let window = f.capacity() * 8 / 10;
    let step = 1u64 << 16;
    f.bulk_load((0..window).map(|i| (i * step, i))).unwrap();

    // Slide the window by 10× the file's capacity.
    let slides = (f.capacity() * 10) as usize;
    let ops = dsf_workloads::rolling_window(slides, 0, window * step, step);
    for (i, op) in ops.iter().enumerate() {
        match *op {
            dsf_workloads::Op::Insert(k) => {
                f.insert(k, k).unwrap();
            }
            dsf_workloads::Op::Remove(k) => {
                assert!(f.remove(&k).is_some(), "expired key {k} missing at op {i}");
            }
            _ => unreachable!(),
        }
        if i % 512 == 0 {
            f.check_invariants()
                .unwrap_or_else(|v| panic!("invariants broken at op {i}: {v:?}"));
        }
    }
    f.check_invariants().unwrap();
    assert_eq!(f.len(), window, "the window keeps constant size");

    // The whole key population has been replaced ten times over; the worst
    // command still respected the budget and the defensive path never fired.
    let bound = 3 * u64::from(f.config().j) * u64::from(f.config().k) + 16;
    assert!(
        f.op_stats().max_accesses <= bound,
        "worst {} exceeds {bound}",
        f.op_stats().max_accesses
    );
    assert_eq!(f.op_stats().no_source_shifts, 0);

    // And the survivors are exactly the last `window` appends.
    let first_key = *f.first().unwrap().0;
    assert_eq!(first_key, slides as u64 * step);
}
