//! Genericity and endurance: the dense file must work for any ordered
//! `Copy` key type, and must hold its invariants over long mixed lifetimes.

use willard_dsf::{DenseFile, DenseFileConfig};

#[test]
fn tuple_keys() {
    // Composite keys, e.g. (day, sequence) as used by the examples.
    let mut f: DenseFile<(u16, u32), String> =
        DenseFile::new(DenseFileConfig::control2(32, 4, 24)).unwrap();
    for day in 0..8u16 {
        for seq in 0..10u32 {
            f.insert((day, seq), format!("{day}/{seq}")).unwrap();
        }
    }
    assert_eq!(f.len(), 80);
    assert_eq!(f.get(&(3, 7)), Some(&"3/7".to_string()));
    let day3: Vec<(u16, u32)> = f.range((3, 0)..(4, 0)).map(|(k, _)| *k).collect();
    assert_eq!(day3.len(), 10);
    assert!(day3.iter().all(|&(d, _)| d == 3));
    f.check_invariants().unwrap();
}

#[test]
fn signed_keys() {
    let mut f: DenseFile<i64, i64> = DenseFile::new(DenseFileConfig::control2(32, 4, 24)).unwrap();
    for k in -50..50i64 {
        f.insert(k * 3, k).unwrap();
    }
    assert_eq!(f.rank(&0), 50);
    assert_eq!(*f.first().unwrap().0, -150);
    assert_eq!(*f.last().unwrap().0, 147);
    let negs: Vec<i64> = f.range(..0).map(|(k, _)| *k).collect();
    assert_eq!(negs.len(), 50);
    assert!(negs.windows(2).all(|w| w[0] < w[1]));
    f.check_invariants().unwrap();
}

#[test]
fn byte_array_keys() {
    let mut f: DenseFile<[u8; 8], u32> =
        DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
    for i in 0..60u32 {
        let mut k = [0u8; 8];
        k[..4].copy_from_slice(&i.to_be_bytes());
        f.insert(k, i).unwrap();
    }
    let mut probe = [0u8; 8];
    probe[..4].copy_from_slice(&30u32.to_be_bytes());
    assert_eq!(f.get(&probe), Some(&30));
    // Big-endian byte order must equal numeric order.
    let keys: Vec<[u8; 8]> = f.iter().map(|(k, _)| *k).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
    f.check_invariants().unwrap();
}

#[test]
fn zero_sized_values() {
    let mut f: DenseFile<u64, ()> = DenseFile::new(DenseFileConfig::control2(16, 4, 24)).unwrap();
    for k in 0..50u64 {
        f.insert(k, ()).unwrap();
    }
    assert_eq!(f.len(), 50);
    assert!(f.contains_key(&25));
    assert_eq!(f.remove(&25), Some(()));
    f.check_invariants().unwrap();
}

/// A long mixed lifetime: grow to near capacity, churn at steady state,
/// shrink to near empty, regrow — several times, with periodic vacuum and
/// snapshot round-trips, invariants checked at every phase boundary.
#[test]
fn soak_lifecycle() {
    let mut f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(128, 8, 40)).unwrap();
    let cap = f.capacity();
    let mut rng_state = 0x9E37_79B9_7F4A_7C15u64;
    let mut next = || {
        rng_state = rng_state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        rng_state
    };
    let mut resident: Vec<u64> = Vec::new();

    for cycle in 0..3 {
        // Grow to ~90%.
        while f.len() < cap * 9 / 10 {
            let k = next();
            if f.insert(k, k).unwrap().is_none() {
                resident.push(k);
            }
        }
        f.check_invariants()
            .unwrap_or_else(|v| panic!("cycle {cycle} grow: {v:?}"));

        // Churn: 2000 paired delete/insert at steady state.
        for i in 0..2000usize {
            let idx = (next() as usize) % resident.len();
            let dead = resident.swap_remove(idx);
            assert!(f.remove(&dead).is_some());
            let k = next();
            if f.insert(k, k).unwrap().is_none() {
                resident.push(k);
            }
            if i == 1000 {
                f.check_invariants()
                    .unwrap_or_else(|v| panic!("cycle {cycle} churn: {v:?}"));
            }
        }

        // Snapshot round-trip mid-life.
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        f = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(f.len() as usize, resident.len());

        // Shrink to ~10%.
        while f.len() > cap / 10 {
            let idx = (next() as usize) % resident.len();
            let dead = resident.swap_remove(idx);
            assert!(f.remove(&dead).is_some());
        }
        f.check_invariants()
            .unwrap_or_else(|v| panic!("cycle {cycle} shrink: {v:?}"));

        // Vacuum between cycles.
        f.vacuum();
        f.check_invariants()
            .unwrap_or_else(|v| panic!("cycle {cycle} vacuum: {v:?}"));
    }

    // Final consistency: scan matches the resident set.
    let mut want = resident.clone();
    want.sort_unstable();
    let got: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
    assert_eq!(got, want);
    assert_eq!(f.op_stats().no_source_shifts, 0);
}
