//! Flight-recorder round-trip and reconciliation properties.
//!
//! Two halves, one promise: nothing is lost or invented between the hot
//! path and `dsf flight explain`.
//!
//! * Property tests drive *arbitrary* event sequences through
//!   encode → `.flight` bytes → decode and through the byte-budget ring,
//!   and check that replay/attribution is a pure function of the events.
//!   These build private `FlightLog`/`FlightRing` values — no globals.
//! * One live end-to-end test enables the *global* recorder over a real
//!   `DenseFile` workload and reconciles the replayed attribution against
//!   the file's own `OpStats` and `IoStats` counters. It is the only test
//!   in this binary that touches the global ring (cargo gives each
//!   `tests/*.rs` file its own process, which is the isolation we need —
//!   same pattern as `tests/telemetry_reconcile.rs`).

use proptest::prelude::*;
use willard_dsf::flight::{
    self, AccessKind, Attribution, BoundBudget, CommandKind, FlightEvent, FlightLog, FlightRing,
    Phase,
};

fn arb_phase() -> impl Strategy<Value = Phase> {
    prop_oneof![
        Just(Phase::User),
        Just(Phase::Shift),
        Just(Phase::Activate),
        Just(Phase::Rollback),
        Just(Phase::Wal),
    ]
}

fn arb_event() -> impl Strategy<Value = FlightEvent> {
    let seq = 0u64..1000;
    prop_oneof![
        (seq.clone(), any::<bool>(), 0u64..256).prop_map(|(seq, ins, target)| {
            FlightEvent::CommandBegin {
                seq,
                kind: if ins {
                    CommandKind::Insert
                } else {
                    CommandKind::Delete
                },
                target,
            }
        }),
        (seq.clone(), 0u64..100, 0u64..10, any::<u64>()).prop_map(
            |(seq, accesses, shift_steps, micros)| FlightEvent::CommandEnd {
                seq,
                accesses,
                shift_steps,
                micros,
            }
        ),
        seq.clone()
            .prop_map(|seq| FlightEvent::CommandCancel { seq }),
        (seq.clone(), arb_phase(), any::<bool>(), 0u64..50).prop_map(
            |(seq, phase, read, pages)| FlightEvent::Access {
                seq,
                phase,
                kind: if read {
                    AccessKind::Read
                } else {
                    AccessKind::Write
                },
                pages,
            }
        ),
        (seq.clone(), 0u64..64, 0u64..256, 0u64..256, 0u64..100).prop_map(
            |(seq, node, source, dest, moved)| FlightEvent::Shift {
                seq,
                node,
                source,
                dest,
                moved,
            }
        ),
        (seq.clone(), 0u64..64, 0u64..256).prop_map(|(seq, node, dest)| FlightEvent::Activate {
            seq,
            node,
            dest
        }),
        (seq.clone(), 0u64..64, 0u64..256).prop_map(|(seq, node, new_dest)| {
            FlightEvent::Rollback {
                seq,
                node,
                new_dest,
            }
        }),
        (seq.clone(), 0u64..64).prop_map(|(seq, node)| FlightEvent::FlagLowered { seq, node }),
        (seq.clone(), any::<u64>()).prop_map(|(seq, bytes)| FlightEvent::WalFrame { seq, bytes }),
        (seq.clone(), any::<u64>()).prop_map(|(seq, micros)| FlightEvent::Fsync { seq, micros }),
        (seq.clone(), 0u64..32, any::<u64>())
            .prop_map(|(seq, shard, micros)| FlightEvent::LockWait { seq, shard, micros }),
        (seq, 0u8..2, prop::collection::vec(0u64..100, 0..16)).prop_map(|(seq, moment, counts)| {
            FlightEvent::Moment {
                seq,
                moment,
                counts,
            }
        }),
    ]
}

fn arb_budget() -> impl Strategy<Value = BoundBudget> {
    (1u64..16, 1u64..8, 1u64..20, 1u64..64).prop_map(|(j, k, log_slots, gap)| BoundBudget {
        j,
        k,
        log_slots,
        gap,
    })
}

/// Attribution totals that must be stable across any encode/decode cycle.
fn fingerprint(a: &Attribution) -> (u64, u64, u64, u64, u64, bool) {
    (
        a.command_count(),
        a.total_accesses(),
        a.max_accesses(),
        a.cancelled,
        a.incomplete,
        a.reconciles(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Arbitrary event sequences survive encode → `.flight` bytes →
    /// decode exactly, and the decoded log replays to identical
    /// attribution (including the audit verdicts).
    fn flight_log_round_trips(
        events in prop::collection::vec(arb_event(), 0..120),
        budget in arb_budget(),
        dropped in 0u64..50,
    ) {
        let log = FlightLog {
            budget,
            total: dropped + events.len() as u64,
            dropped,
            events,
        };
        let bytes = log.to_bytes();
        let back = FlightLog::from_reader(&mut bytes.as_slice()).expect("bytes parse back");

        prop_assert_eq!(&back.events, &log.events);
        prop_assert_eq!(back.total, log.total);
        prop_assert_eq!(back.dropped, log.dropped);
        prop_assert_eq!(back.budget.j, log.budget.j);
        prop_assert_eq!(back.budget.k, log.budget.k);
        prop_assert_eq!(back.budget.log_slots, log.budget.log_slots);
        prop_assert_eq!(back.budget.gap, log.budget.gap);
        prop_assert_eq!(back.budget.page_limit(), log.budget.page_limit());

        let a = log.replay();
        let b = back.replay();
        prop_assert_eq!(fingerprint(&a), fingerprint(&b));
        prop_assert_eq!(a.audit().violations, b.audit().violations);
        // Double round-trip is byte-identical (the format is canonical).
        prop_assert_eq!(back.to_bytes(), bytes);
    }

    /// The byte-budget ring never tears a frame: whatever capacity forces
    /// it to drop, the retained snapshot is exactly the newest suffix of
    /// what was pushed, and retained + dropped = total.
    fn flight_ring_drops_whole_frames_oldest_first(
        events in prop::collection::vec(arb_event(), 1..80),
        capacity in 32usize..512,
    ) {
        let ring = FlightRing::new(capacity);
        for ev in &events {
            ring.push(ev);
        }
        let (kept, dropped) = ring.snapshot();
        prop_assert_eq!(ring.total(), events.len() as u64);
        prop_assert_eq!(kept.len() as u64 + dropped, events.len() as u64);
        prop_assert_eq!(&kept[..], &events[dropped as usize..]);
        prop_assert!(ring.bytes() <= capacity.max(1));
    }

    /// For well-formed command traces (begin, per-phase accesses, end) the
    /// attribution recovers exactly the per-phase page sums this test
    /// computed on the way in — per command and in total.
    fn attribution_recovers_per_phase_sums(
        commands in prop::collection::vec(
            (any::<bool>(), 0u64..64, prop::collection::vec((arb_phase(), 1u64..10), 0..12)),
            1..24,
        ),
    ) {
        let mut events = Vec::new();
        let mut want = Vec::new(); // (seq, [user,shift,activate,rollback,wal], total)
        for (i, (ins, target, charges)) in commands.iter().enumerate() {
            let seq = i as u64 + 1;
            events.push(FlightEvent::CommandBegin {
                seq,
                kind: if *ins { CommandKind::Insert } else { CommandKind::Delete },
                target: *target,
            });
            let mut by_phase = [0u64; flight::PHASES];
            for (phase, pages) in charges {
                events.push(FlightEvent::Access {
                    seq,
                    phase: *phase,
                    kind: AccessKind::Write,
                    pages: *pages,
                });
                by_phase[phase.index()] += pages;
            }
            let total: u64 = by_phase.iter().sum();
            events.push(FlightEvent::CommandEnd { seq, accesses: total, shift_steps: 0, micros: 0 });
            want.push((seq, by_phase, total));
        }
        let log = FlightLog {
            budget: BoundBudget { j: 3, k: 1, log_slots: 3, gap: 9 },
            total: events.len() as u64,
            dropped: 0,
            events,
        };
        let attr = log.replay();
        prop_assert!(attr.reconciles());
        prop_assert_eq!(attr.command_count(), want.len() as u64);
        let mut grand = 0u64;
        for (seq, by_phase, total) in &want {
            let c = attr.find(*seq).expect("complete command present");
            prop_assert_eq!(c.accesses, *total);
            prop_assert_eq!(c.user_pages(), by_phase[Phase::User.index()]);
            prop_assert_eq!(c.shift_pages(), by_phase[Phase::Shift.index()]);
            prop_assert_eq!(c.activate_pages(), by_phase[Phase::Activate.index()]);
            prop_assert_eq!(c.rollback_pages(), by_phase[Phase::Rollback.index()]);
            prop_assert_eq!(c.wal_pages(), by_phase[Phase::Wal.index()]);
            prop_assert_eq!(c.attributed(), *total);
            grand += total;
        }
        prop_assert_eq!(attr.total_accesses(), grand);
        prop_assert_eq!(attr.max_accesses(), want.iter().map(|w| w.2).max().unwrap_or(0));
    }
}

/// The live acceptance criterion: record a real workload through the
/// *global* flight recorder and reconcile the replayed attribution with
/// the live counters — command count and access totals against `OpStats`,
/// the grand total against the `IoStats` delta over the recorded window.
#[test]
fn live_attribution_reconciles_with_op_stats_and_io_stats() {
    use willard_dsf::{DenseFile, DenseFileConfig};

    let mut f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(256, 6, 8)).unwrap();
    let capacity = f.capacity();
    let backbone = capacity * 3 / 5;
    let stride = u64::MAX / (backbone + 1);
    f.bulk_load((0..backbone).map(|i| (i * stride, i))).unwrap();

    flight::clear();
    flight::enable();
    let io_before = f.io_stats().snapshot();
    let ops_before = f.op_stats().clone();

    // Unique fresh keys (odd, backbone keys are even multiples of stride)
    // so every insert is structural; deletes of present keys likewise.
    let mut inserted = Vec::new();
    for i in 0..(capacity - backbone).saturating_sub(8) {
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1) | 1;
        if f.insert(k, i).is_ok() {
            inserted.push(k);
        }
    }
    for &k in inserted.iter().step_by(2) {
        f.remove(&k).unwrap();
    }

    let io_delta = f.io_stats().since(io_before);
    flight::disable();
    let log = flight::snapshot_log(BoundBudget {
        j: 3,
        k: 1,
        log_slots: 8,
        gap: 2,
    });
    flight::clear();
    assert_eq!(log.dropped, 0, "1 MiB default ring must hold this run");

    let stats = f.op_stats();
    let commands = stats.commands - ops_before.commands;
    assert!(commands > 100, "workload too small to be meaningful");

    let attr = log.replay();
    assert!(
        attr.reconciles(),
        "per-phase sums must equal CommandEnd totals"
    );
    assert_eq!(attr.command_count(), commands);
    assert_eq!(attr.cancelled, 0);
    assert_eq!(attr.incomplete, 0);
    assert_eq!(
        attr.total_accesses(),
        stats.total_accesses - ops_before.total_accesses
    );
    assert_eq!(attr.max_accesses(), stats.max_accesses);

    // Every page charged between enable and disable happened inside a
    // command, so the flight total is the IoStats window exactly.
    assert_eq!(attr.total_accesses(), io_delta.reads + io_delta.writes);

    // And the log survives persistence bit-for-bit.
    let bytes = log.to_bytes();
    let back = FlightLog::from_reader(&mut bytes.as_slice()).unwrap();
    assert_eq!(back.events, log.events);
    assert_eq!(fingerprint(&back.replay()), fingerprint(&attr));
}
