//! End-to-end telemetry reconciliation against the *global* spine.
//!
//! This file holds exactly one test on purpose: it enables the
//! process-wide registry and asserts exact global counter values, so it
//! must not share a process with other tests that might also record into
//! the spine (cargo gives each `tests/*.rs` its own binary, which is the
//! isolation we need).

use willard_dsf::pagestore::{AsyncBackend, BufferPool, MemBackend};
use willard_dsf::telemetry;
use willard_dsf::{Command, DenseFile, DenseFileConfig, Durability, DurableFile, SyncPolicy};

#[test]
fn global_spine_mirrors_op_stats_and_exports_valid_prometheus() {
    let reg = telemetry::global();
    reg.reset();
    telemetry::spans().clear();
    reg.enable();

    let mut f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(256, 6, 8)).unwrap();
    let capacity = f.capacity();
    let backbone = capacity * 3 / 5;
    let stride = u64::MAX / (backbone + 1);
    f.bulk_load((0..backbone).map(|i| (i * stride, i))).unwrap();

    let mut inserted = Vec::new();
    for i in 0..(capacity - backbone).saturating_sub(4) {
        let k = i.wrapping_mul(0x9E37_79B9_7F4A_7C15).wrapping_add(1) | 1;
        if f.insert(k, i).is_ok() {
            inserted.push(k);
        }
    }
    for &k in inserted.iter().step_by(3) {
        f.remove(&k).unwrap();
    }
    f.refresh_telemetry_gauges();
    reg.disable();

    let stats = f.op_stats();
    assert!(stats.commands > 100, "workload too small to be meaningful");

    // The ISSUE's acceptance criterion: the spine's per-command histogram
    // IS OpStats' histogram — count, sum, max, and every bucket.
    let hist = reg.histogram(
        "dsf_command_page_accesses",
        "page accesses per insert/delete command",
    );
    assert_eq!(hist.count(), stats.commands);
    assert_eq!(hist.sum(), stats.total_accesses);
    assert_eq!(hist.max(), stats.max_accesses);
    assert_eq!(hist.bucket_counts(), stats.histogram.bucket_counts());

    // Command-kind counters split the same total.
    let ins = reg.counter_with("dsf_commands_total", &[("kind", "insert")], "");
    let del = reg.counter_with("dsf_commands_total", &[("kind", "delete")], "");
    assert_eq!(ins.get() + del.get(), stats.commands);
    assert_eq!(del.get(), (inserted.len() as u64).div_ceil(3));

    // Gauges refreshed from live structure state.
    let records = reg.gauge("dsf_records", "");
    assert_eq!(records.get() as u64, f.len());
    let headroom = reg.gauge("dsf_balance_headroom_worst", "");
    assert!(
        headroom.get().is_finite(),
        "headroom gauge must be computed, got {}",
        headroom.get()
    );

    // Spans are sampled 1-in-SPAN_SAMPLE_EVERY (every command still lands
    // in the counters and histogram above); the sampled ones micro-time.
    // The clock ticks only on *completed structural* commands, so the
    // replaces this workload's `|1` key collisions produce consume no
    // sampled slots and the count below is exact, not workload-dependent.
    let expected_spans = stats
        .commands
        .div_ceil(willard_dsf::core_::SPAN_SAMPLE_EVERY);
    let (spans, dropped) = telemetry::spans().snapshot();
    assert_eq!(telemetry::spans().total(), expected_spans);
    assert_eq!(spans.len() as u64 + dropped, expected_spans);
    assert!(spans
        .iter()
        .all(|s| s.kind == "insert" || s.kind == "delete"));

    // The Prometheus rendering must parse as well-formed 0.0.4 exposition
    // with no duplicate samples and every family typed.
    let text = reg.render_prometheus();
    let summary = telemetry::parse_exposition(&text).expect("exposition must parse");
    assert!(summary.families >= 5, "families: {}", summary.families);
    assert!(summary.samples > summary.families);
    assert!(text.contains("dsf_command_page_accesses_count"));
    assert!(text.contains(&format!(
        "dsf_command_page_accesses_max {}",
        stats.max_accesses
    )));

    // ----- batch pipeline metrics reconcile exactly -----
    reg.enable();
    let mut bf: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
    let batches: Vec<Vec<Command<u64, u64>>> = (0..5u64)
        .map(|b| {
            (0..(8 + b * 4))
                .map(|i| {
                    if i % 7 == 6 {
                        Command::Remove(b * 1000 + i - 1)
                    } else {
                        Command::Insert(b * 1000 + i, i)
                    }
                })
                .collect()
        })
        .collect();
    let submitted: u64 = batches.iter().map(|b| b.len() as u64).sum();
    for b in &batches {
        bf.apply_batch(b);
    }

    // Group commit: a durable file fed the same batches must observe one
    // `dsf_wal_group_commit_frames` entry per batch, whose sum is exactly
    // the number of effective (frame-producing) commands.
    let dir = std::env::temp_dir().join(format!("dsf-tel-reconcile-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut df: DurableFile<u64, u64> = DurableFile::create(
        &dir,
        DenseFileConfig::control2(64, 6, 8),
        SyncPolicy::EveryCommand,
    )
    .unwrap();
    let mut effective = 0u64;
    for b in &batches {
        effective += df
            .apply_batch(b)
            .unwrap()
            .iter()
            .filter(|o| o.is_effective())
            .count() as u64;
    }
    reg.disable();
    std::fs::remove_dir_all(&dir).ok();

    let batch_cmds = reg.counter("dsf_batch_commands", "");
    assert_eq!(batch_cmds.get(), 2 * submitted, "dsf_batch_commands");
    let batch_size = reg.histogram("dsf_batch_size", "");
    assert_eq!(batch_size.count(), 2 * batches.len() as u64);
    assert_eq!(batch_size.sum(), 2 * submitted);
    let gc = reg.histogram("dsf_wal_group_commit_frames", "");
    assert_eq!(gc.count(), batches.len() as u64, "one entry per batch");
    assert_eq!(gc.sum(), effective, "frames == effective commands");
    // Every group commit paid exactly one fsync under EveryCommand.
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "");
    assert_eq!(fsyncs.get(), batches.len() as u64);

    // ----- async I/O engine metrics reconcile exactly -----
    // Every backend page write goes through the scheduler's workers, so
    // `dsf_writeback_pages` must equal the inner backend's page-write
    // count, and after a drain the queue-depth gauge must read zero.
    reg.enable();
    let mut pool = BufferPool::new(AsyncBackend::new(MemBackend::new(64), 2, 8), 4);
    for p in 0..12u64 {
        pool.get_mut(p).unwrap()[0] = p as u8; // cap 4: evictions write back
    }
    pool.flush_all().unwrap();
    pool.backend().drain().unwrap();
    let mem = pool
        .into_backend()
        .and_then(AsyncBackend::into_inner)
        .unwrap();
    reg.disable();
    let depth = reg.gauge("dsf_io_queue_depth", "");
    assert_eq!(depth.get(), 0.0, "queue depth after drain");
    let wb = reg.counter("dsf_writeback_pages", "");
    assert!(wb.get() > 0, "workload produced no background writeback");
    assert_eq!(wb.get(), mem.pages_written, "dsf_writeback_pages");

    // ----- commit-window metrics reconcile exactly -----
    // 10 Relaxed inserts under max_frames=4: size triggers close at 4 and
    // 8, the explicit sync closes the 2-frame remainder — three window
    // fsyncs covering every effective command exactly once.
    reg.enable();
    let wdir = std::env::temp_dir().join(format!("dsf-tel-window-{}", std::process::id()));
    std::fs::remove_dir_all(&wdir).ok();
    let mut wf: DurableFile<u64, u64> = DurableFile::create(
        &wdir,
        DenseFileConfig::control2(64, 6, 8),
        SyncPolicy::CommitWindow {
            max_frames: 4,
            max_micros: u64::MAX,
        },
    )
    .unwrap();
    for i in 0..10u64 {
        wf.insert_with(i * 31, i, Durability::Relaxed).unwrap();
    }
    wf.sync().unwrap();
    reg.disable();
    std::fs::remove_dir_all(&wdir).ok();
    let wfsyncs = reg.counter("dsf_commit_window_fsyncs", "");
    assert_eq!(wfsyncs.get(), 3, "dsf_commit_window_fsyncs");
    let wframes = reg.histogram("dsf_commit_window_frames", "");
    assert_eq!(wframes.count(), 3, "one observation per closed window");
    assert_eq!(
        wframes.sum(),
        10,
        "every frame durable in exactly one window"
    );
}
