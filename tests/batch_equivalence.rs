//! Property tests for the batched command pipeline: `apply_batch` must be
//! a pure amortization, never a semantic change.
//!
//! Random command sequences — duplicate keys, interleaved inserts and
//! removes, replaces, misses, capacity rejections — are split into random
//! batch sizes and applied to one file via `apply_batch` while a twin file
//! applies the same commands one at a time. After **every** batch the two
//! must agree on outcomes, records, physical slot layout, and the paper's
//! cost accounting, and the batched file must pass the full invariant
//! audit. The same property is checked for [`ShardedFile`] (parallel
//! shard ingest) and [`DurableFile`] (group commit + crash-free reopen).

use proptest::prelude::*;
use willard_dsf::{
    Command, CommandOutcome, DenseFile, DenseFileConfig, DurableFile, ShardedFile, SyncPolicy,
};

fn cfg() -> DenseFileConfig {
    DenseFileConfig::control2(32, 4, 8)
}

/// Narrow key domain so duplicate keys inside one batch are common.
fn command_strategy() -> impl Strategy<Value = Command<u16, u8>> {
    prop_oneof![
        3 => (0u16..64, any::<u8>()).prop_map(|(k, v)| Command::Insert(k, v)),
        2 => (0u16..64).prop_map(Command::Remove),
    ]
}

/// Applies `cmd` the one-at-a-time way, folded into the outcome shape.
fn apply_one(f: &mut DenseFile<u16, u8>, cmd: &Command<u16, u8>) -> CommandOutcome<u8> {
    match cmd {
        Command::Insert(k, v) => match f.insert(*k, *v) {
            Ok(None) => CommandOutcome::Inserted,
            Ok(Some(old)) => CommandOutcome::Replaced(old),
            Err(e) => CommandOutcome::Rejected(e),
        },
        Command::Remove(k) => match f.remove(k) {
            Some(old) => CommandOutcome::Removed(old),
            None => CommandOutcome::NotFound,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The core contract: after every batch, the batched file is in
    /// exactly the state one-at-a-time application produces — same
    /// records, same slot layout, same `OpStats`, same outcomes — and
    /// every paper invariant holds.
    #[test]
    fn apply_batch_equals_sequential_after_every_batch(
        cmds in proptest::collection::vec(command_strategy(), 0..200),
        splits in proptest::collection::vec(1usize..24, 0..40),
    ) {
        let mut seq: DenseFile<u16, u8> = DenseFile::new(cfg()).unwrap();
        let mut bat: DenseFile<u16, u8> = DenseFile::new(cfg()).unwrap();

        let mut rest = &cmds[..];
        let mut splits = splits.into_iter();
        while !rest.is_empty() {
            let take = splits.next().unwrap_or(7).min(rest.len());
            let (batch, tail) = rest.split_at(take);
            rest = tail;

            let got = bat.apply_batch(batch);
            let want: Vec<CommandOutcome<u8>> =
                batch.iter().map(|c| apply_one(&mut seq, c)).collect();
            prop_assert_eq!(&got, &want, "outcomes diverged");

            if let Err(v) = bat.check_invariants() {
                return Err(TestCaseError::fail(format!("batched invariants: {v:?}")));
            }
            prop_assert!(seq.iter().eq(bat.iter()), "records diverged");
            prop_assert_eq!(seq.slot_counts(), bat.slot_counts(), "layout diverged");
            prop_assert_eq!(seq.op_stats(), bat.op_stats(), "cost accounting diverged");
        }
    }

    /// The parallel shard pipeline: `ShardedFile::apply_batch` scatters
    /// the batch across shards but must return per-command outcomes (in
    /// submission order) and final contents identical to sequential
    /// application on the same sharded file.
    #[test]
    fn sharded_apply_batch_equals_sequential(
        cmds in proptest::collection::vec(
            prop_oneof![
                3 => (0u64..512, any::<u8>()).prop_map(|(k, v)| Command::Insert(k, v)),
                2 => (0u64..512).prop_map(Command::Remove),
            ],
            0..200,
        ),
    ) {
        let shard_cfg = DenseFileConfig::control2(32, 4, 8);
        let bat: ShardedFile<u8> = ShardedFile::new(4, shard_cfg).unwrap();
        let seq: ShardedFile<u8> = ShardedFile::new(4, shard_cfg).unwrap();

        for batch in cmds.chunks(64) {
            let got = bat.apply_batch(batch);
            let want: Vec<CommandOutcome<u8>> = batch
                .iter()
                .map(|c| match c {
                    Command::Insert(k, v) => match seq.insert(*k, *v) {
                        Ok(None) => CommandOutcome::Inserted,
                        Ok(Some(old)) => CommandOutcome::Replaced(old),
                        Err(e) => CommandOutcome::Rejected(e),
                    },
                    Command::Remove(k) => match seq.remove(k) {
                        Some(old) => CommandOutcome::Removed(old),
                        None => CommandOutcome::NotFound,
                    },
                })
                .collect();
            prop_assert_eq!(&got, &want, "sharded outcomes diverged");
        }
        prop_assert_eq!(
            bat.collect_range(0, u64::MAX, usize::MAX),
            seq.collect_range(0, u64::MAX, usize::MAX)
        );
    }
}

/// Group commit round-trip: a durable file fed through `apply_batch`
/// reopens (checkpoint + WAL replay) into exactly the state sequential
/// application produces.
#[test]
fn durable_apply_batch_survives_reopen() {
    let dir = std::env::temp_dir().join(format!(
        "dsf-batch-eq-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();

    let mut durable: DurableFile<u16, u8> =
        DurableFile::create(&dir, cfg(), SyncPolicy::EveryCommand).unwrap();
    let mut seq: DenseFile<u16, u8> = DenseFile::new(cfg()).unwrap();

    // Deterministic mixed stream: duplicates, removes, replaces.
    let cmds: Vec<Command<u16, u8>> = (0u16..96)
        .map(|i| {
            let k = (i * 31) % 64;
            if i % 5 == 4 {
                Command::Remove(k)
            } else {
                Command::Insert(k, i as u8)
            }
        })
        .collect();

    for batch in cmds.chunks(16) {
        let got = durable.apply_batch(batch).unwrap();
        let want: Vec<CommandOutcome<u8>> = batch.iter().map(|c| apply_one(&mut seq, c)).collect();
        assert_eq!(got, want, "durable outcomes diverged");
    }
    drop(durable);

    let reopened: DurableFile<u16, u8> = DurableFile::open(&dir, SyncPolicy::EveryCommand).unwrap();
    assert!(
        reopened.iter().eq(seq.iter()),
        "reopened state diverged from sequential application"
    );
    reopened.check_invariants().unwrap();
    std::fs::remove_dir_all(&dir).ok();
}
