//! Large-scale validation, ignored by default (minutes of work; run with
//! `cargo test --release --test large_scale -- --ignored`).

use willard_dsf::{DenseFile, DenseFileConfig};

/// A quarter-million-page file hammered to capacity: the worst command must
/// stay within the 3·J·K + O(1) model and BALANCE must hold at the end.
#[test]
#[ignore = "minutes-long; run explicitly with --release -- --ignored"]
fn quarter_million_pages_hammer() {
    let cfg = DenseFileConfig::control2(1 << 18, 8, 80);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 24, i))).unwrap();
    let room = (f.capacity() - f.len()) as usize;
    for k in dsf_workloads::hammer(room, 5 << 24, 1) {
        f.insert(k, 0).unwrap();
    }
    f.check_invariants().unwrap();
    let bound = 3 * u64::from(f.config().j) * u64::from(f.config().k) + 16;
    assert!(
        f.op_stats().max_accesses <= bound,
        "worst {} exceeds {bound}",
        f.op_stats().max_accesses
    );
    assert_eq!(f.op_stats().no_source_shifts, 0);
}

/// A smaller always-on cousin so CI still exercises a six-figure command
/// count (≈1s in release, a few seconds in debug).
#[test]
fn sixty_five_thousand_commands_bounded() {
    let cfg = DenseFileConfig::control2(1 << 13, 8, 48);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 24, i))).unwrap();
    let room = (f.capacity() - f.len()) as usize;
    for k in dsf_workloads::hammer(room, 5 << 24, 1) {
        f.insert(k, 0).unwrap();
    }
    f.check_invariants().unwrap();
    let bound = 3 * u64::from(f.config().j) * u64::from(f.config().k) + 16;
    assert!(f.op_stats().max_accesses <= bound);
    assert!(f.op_stats().commands >= 32_000);
}
