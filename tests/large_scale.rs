//! Large-scale validation, ignored by default (minutes of work; run with
//! `cargo test --release --test large_scale -- --ignored`).
//!
//! The flight-audited tests share the process-wide flight recorder, so
//! they must not run concurrently with other recording tests; CI runs
//! them by name filter (`--test large_scale million -- --ignored`).

use dsf_workloads::{scenario_plan, Geometry, Op, Scenario};
use willard_dsf::{DenseFile, DenseFileConfig};

/// A quarter-million-page file hammered to capacity: the worst command must
/// stay within the 3·J·K + O(1) model and BALANCE must hold at the end.
#[test]
#[ignore = "minutes-long; run explicitly with --release -- --ignored"]
fn quarter_million_pages_hammer() {
    let cfg = DenseFileConfig::control2(1 << 18, 8, 80);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 24, i))).unwrap();
    let room = (f.capacity() - f.len()) as usize;
    for k in dsf_workloads::hammer(room, 5 << 24, 1) {
        f.insert(k, 0).unwrap();
    }
    f.check_invariants().unwrap();
    let bound = 3 * u64::from(f.config().j) * u64::from(f.config().k) + 16;
    assert!(
        f.op_stats().max_accesses <= bound,
        "worst {} exceeds {bound}",
        f.op_stats().max_accesses
    );
    assert_eq!(f.op_stats().no_source_shifts, 0);
}

/// A million-page file under the adversarial scenario, with the flight
/// recorder certifying *every* structural command against the exact
/// `K·(3J+2)+2` page bound — not the looser `3JK + O(1)` envelope the
/// hammer tests use. The stream (see `dsf_workloads::scenario`) pins a
/// subtree inside the calibrator's warning band so commands run at the
/// full `J`-step SHIFT budget; if CONTROL 2 ever spent one page more
/// than the paper's worst case, this is the test that catches it.
#[test]
#[ignore = "minutes-long; run explicitly with --release -- --ignored"]
fn million_pages_adversarial_within_flight_bound() {
    const AUDIT_CHUNK: u64 = 128;
    let cfg = DenseFileConfig::control2(1 << 20, 8, 80);
    let rc = cfg.resolve().unwrap();
    let geom = Geometry {
        slots: u64::from(rc.slots),
        slot_min: rc.slot_min,
        slot_max: rc.slot_max,
        log_slots: rc.log_slots,
    };
    let plan = scenario_plan(Scenario::Adversarial, &geom, 0xADE5, 40_000);

    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    f.bulk_load(plan.backbone.iter().map(|&k| (k, k))).unwrap();

    let budget = dsf_flight::BoundBudget {
        j: u64::from(rc.j),
        k: u64::from(rc.k),
        log_slots: u64::from(rc.log_slots),
        gap: rc.slot_max - rc.slot_min,
    };
    dsf_flight::clear();
    dsf_flight::enable();
    let (mut audited, mut worst) = (0u64, 0u64);
    let audit_chunk = |audited: &mut u64, worst: &mut u64| {
        let att = dsf_flight::snapshot_log(budget).replay();
        assert_eq!(att.dropped, 0, "flight ring evicted frames mid-chunk");
        assert_eq!(att.incomplete, 0, "command left open at audit point");
        let report = att.audit();
        assert!(report.ok(), "bound audit failed: {:?}", report.violations);
        *audited += att.command_count();
        *worst = (*worst).max(att.max_accesses());
        dsf_flight::clear();
    };
    let mut in_chunk = 0u64;
    for op in &plan.ops {
        match *op {
            Op::Insert(k) => {
                f.insert(k, k).unwrap();
                in_chunk += 1;
            }
            Op::Remove(k) => {
                assert!(f.remove(&k).is_some());
                in_chunk += 1;
            }
            Op::Get(_) | Op::Scan { .. } => unreachable!("adversarial is structural-only"),
        }
        if in_chunk >= AUDIT_CHUNK {
            audit_chunk(&mut audited, &mut worst);
            in_chunk = 0;
        }
    }
    audit_chunk(&mut audited, &mut worst);
    dsf_flight::disable();
    dsf_flight::clear();

    assert_eq!(audited, plan.ops.len() as u64, "audit missed commands");
    assert_eq!(
        worst,
        f.op_stats().max_accesses,
        "flight vs OpStats disagree"
    );
    let limit = budget.page_limit();
    assert!(worst <= limit, "worst {worst} exceeds K(3J+2)+2 = {limit}");
    // The stream is doing its job: the observed worst case must actually
    // sit at the full J-budget plateau, not just under the ceiling.
    assert!(
        worst + 4 >= limit,
        "adversarial stream lost its sting: worst {worst} far below {limit}"
    );
    f.check_invariants().unwrap();
}

/// A smaller always-on cousin so CI still exercises a six-figure command
/// count (≈1s in release, a few seconds in debug).
#[test]
fn sixty_five_thousand_commands_bounded() {
    let cfg = DenseFileConfig::control2(1 << 13, 8, 48);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 24, i))).unwrap();
    let room = (f.capacity() - f.len()) as usize;
    for k in dsf_workloads::hammer(room, 5 << 24, 1) {
        f.insert(k, 0).unwrap();
    }
    f.check_invariants().unwrap();
    let bound = 3 * u64::from(f.config().j) * u64::from(f.config().k) + 16;
    assert!(f.op_stats().max_accesses <= bound);
    assert!(f.op_stats().commands >= 32_000);
}
