//! Adversarial stress tests for CONTROL 2 — the empirical verification of
//! Theorem 5.5: BALANCE(d,D) (hence (d,D)-density) holds at the end of
//! every command, and the per-command page-access cost is bounded.

use willard_dsf::{DenseFile, DenseFileConfig};

/// Hammer inserts at a single point until the file is completely full,
/// checking every invariant after every command.
#[test]
fn hammer_to_capacity_preserves_balance() {
    let cfg = DenseFileConfig::control2(128, 8, 40); // L=7, gap=32 > 21
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    // Half-full uniform start.
    f.bulk_load((0..512u64).map(|i| (i << 32, i))).unwrap();
    f.check_invariants().unwrap();

    let room = f.capacity() - f.len();
    let keys = dsf_workloads::hammer(room as usize, 5 << 32, 1);
    for (i, k) in keys.iter().enumerate() {
        f.insert(*k, 0).unwrap();
        if let Err(v) = f.check_invariants() {
            panic!("invariants broken after hammer insert #{i}: {v:?}");
        }
    }
    assert_eq!(f.len(), f.capacity());
    assert_eq!(
        f.op_stats().no_source_shifts,
        0,
        "the defensive no-source path must stay unused in contract"
    );
}

/// The worst command under the hammer must respect the paper's bound with a
/// small constant: c · log²M / (D−d) page accesses.
#[test]
fn worst_command_is_bounded_by_log_squared() {
    for (pages, d, big_d) in [(64u32, 8u32, 40u32), (256, 8, 40), (1024, 8, 40)] {
        let cfg = DenseFileConfig::control2(pages, d, big_d);
        let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
        let prefill = f.capacity() / 2;
        f.bulk_load((0..prefill).map(|i| (i << 32, i))).unwrap();
        let room = (f.capacity() - f.len()) as usize;
        for k in dsf_workloads::hammer(room, 5 << 32, 1) {
            f.insert(k, 0).unwrap();
        }
        f.check_invariants().unwrap();
        let l = f.config().log_slots as u64;
        let gap = f.config().slot_max - f.config().slot_min;
        let j = u64::from(f.config().j);
        // Each of the J shifts touches O(1) slots (a slot is K pages); add
        // the step-1 probe. The generous constant absorbs the macro factor.
        let bound = 8 * j * u64::from(f.config().k) + 16;
        let max = f.op_stats().max_accesses;
        assert!(
            max <= bound,
            "M={pages}: worst command {max} exceeds {bound} (J={j}, L={l}, gap={gap})"
        );
    }
}

/// Deleting everything after the hammer leaves a consistent empty file.
#[test]
fn full_drain_after_hammer() {
    let cfg = DenseFileConfig::control2(64, 8, 40);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    f.bulk_load((0..256u64).map(|i| (i << 32, i))).unwrap();
    let room = (f.capacity() - f.len()) as usize;
    let keys = dsf_workloads::hammer(room, 5 << 32, 1);
    for k in &keys {
        f.insert(*k, 0).unwrap();
    }
    // Drain in an order that mixes the hammered region and the backbone.
    let mut all: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
    let n = all.len();
    all = dsf_workloads::shuffled(99, all);
    for (i, k) in all.iter().enumerate() {
        assert!(f.remove(k).is_some(), "key {k} missing at drain step {i}");
        if i % 16 == 0 {
            f.check_invariants()
                .unwrap_or_else(|v| panic!("invariants broken at drain step {i}: {v:?}"));
        }
    }
    assert_eq!(n as u64, f.capacity());
    assert!(f.is_empty());
    f.check_invariants().unwrap();
}

/// CONTROL 2 in the macro-block regime (Theorem 5.7): a tiny density gap
/// forces K > 1; the same guarantees must hold, and no physical page may
/// exceed D records.
#[test]
fn macro_block_regime_preserves_density() {
    let cfg = DenseFileConfig::control2(256, 6, 8); // gap 2 ≤ 3·log → K > 1
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    assert!(f.config().k > 1, "expected macro-blocking, got K=1");
    assert!(f.config().meets_gap_assumption);

    f.bulk_load((0..600u64).map(|i| (i << 32, i))).unwrap();
    f.check_invariants().unwrap();
    let room = (f.capacity() - f.len()) as usize;
    for (i, k) in dsf_workloads::hammer(room, 5 << 32, 1)
        .into_iter()
        .enumerate()
    {
        f.insert(k, 0).unwrap();
        if i % 32 == 0 {
            f.check_invariants()
                .unwrap_or_else(|v| panic!("macro-block invariants broken at #{i}: {v:?}"));
        }
    }
    f.check_invariants().unwrap();
    // Physical page capacity: every slot holds ≤ K·D records packed at ≤ D
    // per page, so pages_used ≤ K.
    for s in 0..f.config().slots {
        assert!(f.store().pages_used(s) <= f.config().k);
        assert!(f.store().len(s) as u64 <= f.config().slot_max);
    }
    assert_eq!(f.op_stats().no_source_shifts, 0);
}

/// A uniform mixed insert/delete steady state holds invariants throughout.
#[test]
fn mixed_steady_state() {
    let cfg = DenseFileConfig::control2(64, 16, 64);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    let ops = dsf_workloads::mixed_ops(7, 6000, 0.55, 1 << 24);
    for (i, op) in ops.iter().enumerate() {
        match op {
            dsf_workloads::Op::Insert(k) if f.len() < f.capacity() => {
                f.insert(*k, *k).unwrap();
            }
            dsf_workloads::Op::Remove(k) => {
                f.remove(k);
            }
            _ => {}
        }
        if i % 100 == 0 {
            f.check_invariants()
                .unwrap_or_else(|v| panic!("invariants broken at op #{i}: {v:?}"));
        }
    }
    f.check_invariants().unwrap();
}
