//! The mirror of Example 5.2: reflect the initial distribution and the two
//! commands left-to-right. Because M = 8 is a power of two, the calibrator
//! is geometrically symmetric, so a faithful implementation must produce
//! the *exact mirror* of every Figure 4 row — this drives every DIR=0 code
//! path (left-son shifts, roll-back rule 0, take-from-back/put-at-front)
//! through the paper's own gauntlet.

use willard_dsf::core_::{Moment, StepEvent};
use willard_dsf::{DenseFile, DenseFileConfig, MacroBlocking};

const FIGURE_4: [[u64; 8]; 9] = [
    [16, 1, 0, 1, 9, 9, 9, 16],
    [16, 1, 0, 1, 9, 9, 9, 17],
    [16, 1, 0, 1, 9, 9, 15, 11],
    [16, 1, 0, 1, 9, 9, 15, 11],
    [16, 2, 0, 0, 9, 9, 15, 11],
    [17, 2, 0, 0, 9, 9, 15, 11],
    [4, 15, 0, 0, 9, 9, 15, 11],
    [15, 4, 0, 0, 9, 9, 15, 11],
    [15, 9, 0, 0, 4, 9, 15, 11],
];

fn mirrored(row: &[u64; 8]) -> Vec<u64> {
    row.iter().rev().copied().collect()
}

#[test]
fn mirrored_example_5_2_reproduces_mirrored_figure_4() {
    let cfg = DenseFileConfig::control2(8, 9, 18)
        .with_j(3)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();

    // Mirrored t₀: slot s holds what the paper's slot 7−s held; keys grow
    // with the mirrored slot index so order is preserved.
    let t0 = mirrored(&FIGURE_4[0]);
    let layout: Vec<Vec<(u64, ())>> = t0
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 1000 + i + 1, ())).collect())
        .collect();
    f.bulk_load_per_slot(layout).unwrap();
    f.enable_step_trace();

    // Z₁ mirrored: the paper inserts into page 8 (the dense right end);
    // here the dense end is page 1, so insert a key below page 1's keys.
    f.insert(0, ()).unwrap();
    // Z₂ mirrored: the paper inserts into page 1; here insert into page 8
    // (above its minimum so it lands inside the last slot).
    f.insert(7_500, ()).unwrap();

    let mut rows: Vec<Vec<u64>> = vec![t0];
    for ev in f.take_step_trace() {
        if let StepEvent::FlagStable { slot_counts, .. } = ev {
            rows.push(slot_counts);
        }
    }
    assert_eq!(rows.len(), 9, "t0 plus eight flag-stable moments");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row, &mirrored(&FIGURE_4[i]), "mirrored row t{i}");
    }
    assert_eq!(f.calibrator().warned_total(), 0);
    f.check_invariants().unwrap();
}

#[test]
fn mirrored_moments_follow_the_same_rhythm() {
    let cfg = DenseFileConfig::control2(8, 9, 18)
        .with_j(3)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();
    let t0 = mirrored(&FIGURE_4[0]);
    let layout: Vec<Vec<(u64, ())>> = t0
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 1000 + i + 1, ())).collect())
        .collect();
    f.bulk_load_per_slot(layout).unwrap();
    f.enable_step_trace();
    f.insert(0, ()).unwrap();
    f.insert(7_500, ()).unwrap();
    let evs = f.take_step_trace();

    // Exactly one roll-back fires (rule 0, the mirror of the paper's rule-1
    // event), and the per-command moment rhythm matches the original.
    let rollbacks = evs
        .iter()
        .filter(|e| matches!(e, StepEvent::RolledBack { .. }))
        .count();
    assert_eq!(rollbacks, 1);
    let moments: Vec<Moment> = evs
        .iter()
        .filter_map(|e| match e {
            StepEvent::FlagStable { moment, .. } => Some(*moment),
            _ => None,
        })
        .collect();
    use Moment::*;
    assert_eq!(
        moments,
        vec![
            AfterStep3,
            AfterStep4c,
            AfterStep4c,
            AfterStep4c,
            AfterStep3,
            AfterStep4c,
            AfterStep4c,
            AfterStep4c,
        ]
    );
    // The mirrored shift quantities are the paper's: 6, 0, 1, 13, 11, 5.
    let moved: Vec<u64> = evs
        .iter()
        .filter_map(|e| match e {
            StepEvent::Shifted { moved, .. } => Some(*moved),
            _ => None,
        })
        .collect();
    assert_eq!(moved, vec![6, 0, 1, 13, 11, 5]);
}
