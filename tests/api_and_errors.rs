//! Error paths, capacity handling, rebuilds, and API edge cases.

use willard_dsf::core_::BulkLoadError;
use willard_dsf::{Algorithm, DenseFile, DenseFileConfig, DsfError, MacroBlocking};

#[test]
fn capacity_gate_and_rebuild() {
    let cfg = DenseFileConfig::control2(8, 2, 16);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    assert_eq!(f.capacity(), 16);
    for k in 0..16u64 {
        f.insert(k, k).unwrap();
    }
    assert_eq!(
        f.insert(99, 0),
        Err(DsfError::CapacityExceeded { capacity: 16 })
    );
    // Value replacement is still allowed at capacity.
    assert_eq!(f.insert(5, 55).unwrap(), Some(5));

    // Rebuild into a bigger file and keep going.
    let mut f = f
        .rebuild_into(DenseFileConfig::control2(32, 4, 24))
        .unwrap();
    assert_eq!(f.len(), 16);
    assert_eq!(f.capacity(), 128);
    f.insert(99, 0).unwrap();
    assert_eq!(f.get(&5), Some(&55));
    f.check_invariants().unwrap();
    let keys: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
    assert!(keys.windows(2).all(|w| w[0] < w[1]));
}

#[test]
fn bulk_load_errors() {
    let cfg = DenseFileConfig::control2(8, 2, 16);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    assert_eq!(
        f.bulk_load([(3u64, 0u64), (3, 1)]),
        Err(DsfError::BulkLoad(BulkLoadError::NotSorted { index: 1 }))
    );
    assert_eq!(
        f.bulk_load((0..17u64).map(|k| (k, k))),
        Err(DsfError::BulkLoad(BulkLoadError::TooMany {
            records: 17,
            capacity: 16
        }))
    );
    f.bulk_load((0..10u64).map(|k| (k, k))).unwrap();
    assert_eq!(
        f.bulk_load([(100u64, 0u64)]),
        Err(DsfError::BulkLoad(BulkLoadError::NotEmpty))
    );
}

#[test]
fn per_slot_layout_validation() {
    let cfg = DenseFileConfig::control2(4, 2, 3).with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    // Wrong width.
    assert_eq!(
        f.bulk_load_per_slot(vec![vec![]; 3]),
        Err(DsfError::BulkLoad(BulkLoadError::LayoutWidth {
            got: 3,
            expected: 4
        }))
    );
    // Slot over density bound D.
    let overfull = vec![(0..4u64).map(|k| (k, k)).collect(), vec![], vec![], vec![]];
    assert_eq!(
        f.bulk_load_per_slot(overfull),
        Err(DsfError::BulkLoad(BulkLoadError::SlotOverflow {
            slot: 0,
            len: 4,
            max: 3
        }))
    );
    // Cross-slot disorder.
    let unsorted = vec![vec![(10u64, 0u64)], vec![(5, 0)], vec![], vec![]];
    assert!(matches!(
        f.bulk_load_per_slot(unsorted),
        Err(DsfError::BulkLoad(BulkLoadError::NotSorted { .. }))
    ));
    // A layout that breaks BALANCE: root density > d. 3 slots × 3 records
    // = 9 > 8 = capacity, caught as TooMany; instead overload one subtree:
    // slots 0,1 at 3 records each → node over g(v,1)? With d=2, D=3, L=2:
    // g(depth1,1) = 2 + (1/2)·1 = 2.5; p = 3 > 2.5 → Unbalanced.
    let lopsided = vec![
        (0..3u64).map(|k| (k, k)).collect(),
        (10..13u64).map(|k| (k, k)).collect(),
        vec![],
        vec![],
    ];
    assert!(matches!(
        f.bulk_load_per_slot(lopsided),
        Err(DsfError::BulkLoad(BulkLoadError::Unbalanced { .. }))
    ));
    // And a legal layout loads.
    let legal = vec![vec![(1u64, 1u64)], vec![(2, 2)], vec![(3, 3)], vec![(4, 4)]];
    f.bulk_load_per_slot(legal).unwrap();
    assert_eq!(f.len(), 4);
}

#[test]
fn degenerate_geometries() {
    // A single-page file.
    let cfg = DenseFileConfig::control2(1, 2, 16).with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    assert_eq!(f.capacity(), 2);
    f.insert(1, 1).unwrap();
    f.insert(2, 2).unwrap();
    assert!(f.insert(3, 3).is_err());
    f.check_invariants().unwrap();
    assert_eq!(f.remove(&1), Some(1));
    f.check_invariants().unwrap();

    // Two pages.
    let cfg = DenseFileConfig::control2(2, 4, 40).with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    for k in 0..8u64 {
        f.insert(k, k).unwrap();
        f.check_invariants().unwrap();
    }

    // A non-power-of-two page count.
    let cfg = DenseFileConfig::control2(13, 4, 40).with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    for k in 0..f.capacity() {
        f.insert(k * 7 % 1000, k).unwrap();
        f.check_invariants()
            .unwrap_or_else(|v| panic!("M=13 broke at {k}: {v:?}"));
    }
}

#[test]
fn empty_file_queries() {
    let cfg = DenseFileConfig::control2(8, 2, 16);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    assert_eq!(f.get(&1), None);
    assert_eq!(f.remove(&1), None);
    assert!(!f.contains_key(&1));
    assert_eq!(f.iter().count(), 0);
    assert_eq!(f.len(), 0);
    assert!(f.is_empty());
    // The first insert lands mid-file to leave room on both sides.
    f.insert(42, 0).unwrap();
    let occupied: Vec<u32> = (0..8).filter(|&s| !f.store().is_empty(s)).collect();
    assert_eq!(occupied, vec![4]);
}

#[test]
fn replacement_is_not_a_command() {
    let cfg = DenseFileConfig::control2(16, 4, 32);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    f.insert(1, 10).unwrap();
    let commands = f.op_stats().commands;
    assert_eq!(f.insert(1, 11).unwrap(), Some(10));
    assert_eq!(
        f.op_stats().commands,
        commands,
        "replacement must not count as a command"
    );
    assert_eq!(f.remove(&999), None);
    assert_eq!(
        f.op_stats().commands,
        commands,
        "a miss must not count as a command"
    );
}

#[test]
fn algorithms_agree_on_contents() {
    let keys = dsf_workloads::uniform_unique(3, 400, 0, 1 << 30);
    let mut c1: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control1(64, 8, 40)).unwrap();
    let mut c2: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
    assert_eq!(c1.config().algorithm, Algorithm::Control1);
    assert_eq!(c2.config().algorithm, Algorithm::Control2);
    for &k in &keys {
        c1.insert(k, k).unwrap();
        c2.insert(k, k).unwrap();
    }
    for &k in keys.iter().step_by(3) {
        assert_eq!(c1.remove(&k), Some(k));
        assert_eq!(c2.remove(&k), Some(k));
    }
    let a: Vec<u64> = c1.iter().map(|(k, _)| *k).collect();
    let b: Vec<u64> = c2.iter().map(|(k, _)| *k).collect();
    assert_eq!(a, b);
    c1.check_invariants().unwrap();
    c2.check_invariants().unwrap();
}

#[test]
fn io_stats_attribute_costs_to_commands() {
    let cfg = DenseFileConfig::control2(64, 8, 40);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg).unwrap();
    f.bulk_load((0..256u64).map(|k| (k << 20, k))).unwrap();
    let before = f.io_stats().accesses();
    f.insert(1, 1).unwrap();
    let after = f.io_stats().accesses();
    assert!(after > before);
    assert_eq!(f.op_stats().last_accesses, after - before);
    assert!(f.op_stats().max_accesses >= f.op_stats().last_accesses);
    assert_eq!(f.op_stats().commands, 1);
    assert_eq!(f.op_stats().histogram.total(), 1);
}
