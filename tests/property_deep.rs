//! Deeper property tests: the exact integer threshold arithmetic, the
//! search augmentation, order statistics, reverse scans, and snapshot
//! round-trips — each against an independent reference model.

use proptest::prelude::*;
use std::collections::BTreeMap;
use willard_dsf::core_::calibrator::Calibrator;
use willard_dsf::core_::{ceil_log2, NodeId};
use willard_dsf::{DenseFile, DenseFileConfig};

// ---------------------------------------------------------------------
// Calibrator arithmetic vs a rational reference.
// ---------------------------------------------------------------------

/// Reference comparison of p(v) against g(v, q/3) using exact rational
/// arithmetic built independently (i128 cross-multiplication done the
/// "obvious" way, without the calibrator's factored form).
fn reference_cmp(
    count: u64,
    width: u64,
    depth: u32,
    l: u32,
    dmin: u64,
    dmax: u64,
    q: u8,
) -> std::cmp::Ordering {
    // p = count/width;  g = dmin + (3·depth + q − 3)/(3L) · (dmax − dmin)
    // p ⋚ g  ⟺  3L·count ⋚ width·(3L·dmin + (3·depth+q−3)(dmax−dmin))
    let lhs = 3i128 * i128::from(l) * i128::from(count);
    let rhs = i128::from(width)
        * (3 * i128::from(l) * i128::from(dmin)
            + (3 * i128::from(depth) + i128::from(q) - 3) * i128::from(dmax - dmin));
    lhs.cmp(&rhs)
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// The calibrator's threshold comparisons agree with the reference and
    /// with a float evaluation (where the float is not borderline).
    #[test]
    fn threshold_arithmetic_is_exact(
        slots in 1u32..600,
        dmin in 1u64..200,
        gap in 1u64..300,
        fills in prop::collection::vec(0u64..400, 1..40),
    ) {
        let dmax = dmin + gap;
        let mut cal: Calibrator<u64> = Calibrator::new(slots, dmin, dmax);
        for (i, &n) in fills.iter().enumerate() {
            let s = (i as u32 * 7919) % slots;
            cal.set_leaf_raw(s, n, if n > 0 { Some(u64::from(s)) } else { None });
        }
        cal.recompute_subtree(NodeId::ROOT);
        let l = ceil_log2(slots).max(1);
        for n in cal.all_nodes() {
            for q in 0..=3u8 {
                let got = cal.density_cmp(n, q);
                let want = reference_cmp(cal.count(n), cal.width(n), n.depth(), l, dmin, dmax, q);
                prop_assert_eq!(got, want, "node {:?} q {}", n, q);

                // Float cross-check away from the boundary.
                let p = cal.count(n) as f64 / cal.width(n) as f64;
                let g = dmin as f64
                    + (n.depth() as f64 + q as f64 / 3.0 - 1.0) / l as f64 * gap as f64;
                if (p - g).abs() > 1e-6 * (1.0 + g.abs()) {
                    prop_assert_eq!(got == std::cmp::Ordering::Greater, p > g);
                }
            }
        }
    }

    /// `records_until_ge(n, q)` is the least t making `p ≥ g(·, q/3)`.
    #[test]
    fn records_until_ge_is_minimal(
        slots in 2u32..300,
        dmin in 1u64..100,
        gap in 1u64..200,
        count in 0u64..5000,
        q in 0u8..=3,
    ) {
        let dmax = dmin + gap;
        let mut cal: Calibrator<u64> = Calibrator::new(slots, dmin, dmax);
        cal.set_leaf_raw(0, count, Some(1));
        cal.recompute_subtree(NodeId::ROOT);
        for n in [cal.leaf_of(0), NodeId::ROOT] {
            let t = cal.records_until_ge(n, q);
            // Simulate adding t (and t−1) records.
            let l = ceil_log2(slots).max(1);
            let at_t = reference_cmp(cal.count(n) + t, cal.width(n), n.depth(), l, dmin, dmax, q);
            prop_assert_ne!(at_t, std::cmp::Ordering::Less, "t={} too small", t);
            if t > 0 {
                let at_tm1 = reference_cmp(
                    cal.count(n) + t - 1, cal.width(n), n.depth(), l, dmin, dmax, q);
                prop_assert_eq!(at_tm1, std::cmp::Ordering::Less, "t={} not minimal", t);
            }
        }
    }

    /// `find_slot` returns the slot of the greatest record ≤ key (reference:
    /// linear scan of a mirrored layout).
    #[test]
    fn find_slot_matches_linear_reference(
        slots in 1u32..64,
        keysets in prop::collection::btree_set(0u64..500, 0..60),
        probe in 0u64..600,
    ) {
        let mut cal: Calibrator<u64> = Calibrator::new(slots, 1, 1000);
        // Distribute the sorted keys over slots deterministically.
        let keys: Vec<u64> = keysets.into_iter().collect();
        let mut layout: Vec<Vec<u64>> = vec![Vec::new(); slots as usize];
        for (i, &k) in keys.iter().enumerate() {
            layout[(i * slots as usize) / keys.len().max(1)].push(k);
        }
        for (s, ks) in layout.iter().enumerate() {
            cal.set_leaf_raw(s as u32, ks.len() as u64, ks.first().copied());
        }
        cal.recompute_subtree(NodeId::ROOT);

        let got = cal.find_slot(&probe);
        // Reference: the slot holding the greatest key ≤ probe.
        let mut want: Option<u32> = None;
        for (s, ks) in layout.iter().enumerate() {
            if ks.iter().any(|&k| k <= probe) {
                want = Some(s as u32);
            }
        }
        if let Some(w) = want {
            prop_assert_eq!(got, w);
        } else {
            // No record ≤ probe: any slot before the first record is legal.
            let first_nonempty = layout.iter().position(|ks| !ks.is_empty());
            if let Some(fne) = first_nonempty {
                prop_assert!(got <= fne as u32, "got {} first_nonempty {}", got, fne);
            }
        }
    }

    /// rank/select/count_range agree with a BTreeMap model after arbitrary
    /// update histories.
    #[test]
    fn order_statistics_match_model(
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 1..250),
        probes in prop::collection::vec(any::<u16>(), 1..20),
    ) {
        let mut f: DenseFile<u16, u16> =
            DenseFile::new(DenseFileConfig::control2(32, 8, 48)).unwrap();
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        for &(k, ins) in &ops {
            if ins {
                if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                    f.insert(k, k).unwrap();
                    model.insert(k, k);
                }
            } else {
                assert_eq!(f.remove(&k).is_some(), model.remove(&k).is_some());
            }
        }
        for &p in &probes {
            let want_rank = model.range(..p).count() as u64;
            prop_assert_eq!(f.rank(&p), want_rank, "rank({})", p);
        }
        for r in 0..model.len() as u64 {
            let want = model.iter().nth(r as usize).map(|(k, _)| *k).unwrap();
            prop_assert_eq!(*f.select_nth(r).unwrap().0, want, "select({})", r);
        }
        prop_assert_eq!(f.select_nth(model.len() as u64), None);
        if probes.len() >= 2 {
            let (a, b) = (probes[0].min(probes[1]), probes[0].max(probes[1]));
            prop_assert_eq!(f.count_range(a..b), model.range(a..b).count() as u64);
        }
    }

    /// Reverse scans mirror forward scans over arbitrary bounds.
    #[test]
    fn reverse_scans_mirror_forward(
        keys in prop::collection::btree_set(any::<u16>(), 0..200),
        a in any::<u16>(),
        b in any::<u16>(),
    ) {
        let mut f: DenseFile<u16, u16> =
            DenseFile::new(DenseFileConfig::control2(32, 8, 48)).unwrap();
        for &k in &keys {
            f.insert(k, k).unwrap();
        }
        let (lo, hi) = (a.min(b), a.max(b));
        let fwd: Vec<u16> = f.range(lo..=hi).map(|(k, _)| *k).collect();
        let mut rev: Vec<u16> = f.range_rev(lo..=hi).map(|(k, _)| *k).collect();
        rev.reverse();
        prop_assert_eq!(fwd, rev);
        let fwd: Vec<u16> = f.iter().map(|(k, _)| *k).collect();
        let mut rev: Vec<u16> = f.iter_rev().map(|(k, _)| *k).collect();
        rev.reverse();
        prop_assert_eq!(fwd, rev);
    }

    /// The record SET is independent of J and of the algorithm: maintenance
    /// may move records between pages but never changes membership.
    #[test]
    fn contents_are_invariant_under_j_and_algorithm(
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 1..200),
    ) {
        let configs = [
            DenseFileConfig::control2(32, 8, 48).with_j(2),
            DenseFileConfig::control2(32, 8, 48).with_j(7),
            DenseFileConfig::control2(32, 8, 48).with_j(64),
            DenseFileConfig::control1(32, 8, 48),
        ];
        let mut results: Vec<Vec<(u16, u16)>> = Vec::new();
        for cfg in configs {
            let mut f: DenseFile<u16, u16> = DenseFile::new(cfg).unwrap();
            for &(k, ins) in &ops {
                if ins {
                    if f.contains_key(&k) || f.len() < f.capacity() {
                        f.insert(k, k).unwrap();
                    }
                } else {
                    f.remove(&k);
                }
            }
            results.push(f.iter().map(|(k, v)| (*k, *v)).collect());
        }
        for r in &results[1..] {
            prop_assert_eq!(r, &results[0]);
        }
    }

    /// Arbitrary bytes fed to the snapshot decoder must error, never panic
    /// or OOM (decode robustness).
    #[test]
    fn snapshot_decoder_never_panics_on_garbage(
        mut bytes in prop::collection::vec(any::<u8>(), 0..600),
        prefix_magic in any::<bool>(),
    ) {
        if prefix_magic && bytes.len() >= 4 {
            bytes[..4].copy_from_slice(b"DSF1");
        }
        let _ = DenseFile::<u64, u64>::read_snapshot(&mut bytes.as_slice());
        let _ = DenseFile::<u16, String>::read_snapshot(&mut bytes.as_slice());
    }

    /// Snapshots round-trip arbitrary contents and keep all invariants.
    #[test]
    fn snapshot_round_trips(
        ops in prop::collection::vec((any::<u16>(), any::<bool>()), 0..200),
    ) {
        let mut f: DenseFile<u16, u32> =
            DenseFile::new(DenseFileConfig::control2(16, 8, 48)).unwrap();
        for &(k, ins) in &ops {
            if ins {
                if f.contains_key(&k) || f.len() < f.capacity() {
                    f.insert(k, u32::from(k)).unwrap();
                }
            } else {
                f.remove(&k);
            }
        }
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let g: DenseFile<u16, u32> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        let a: Vec<(u16, u32)> = f.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u16, u32)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        prop_assert_eq!(a, b);
        g.check_invariants().map_err(|v| TestCaseError::fail(format!("{v:?}")))?;
    }
}
