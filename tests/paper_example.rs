//! Example 5.2 of the paper, reproduced end-to-end through the public API:
//! Figure 4's table of per-page record counts at the flag-stable moments
//! t₀…t₈, for the 8-page file with d=9, D=18, J=3 and the two insertion
//! commands Z₁ (into page 8) and Z₂ (into page 1).
//!
//! These same rows are printed by `cargo run -p dsf-bench --bin fig4_example`.

use willard_dsf::core_::{Moment, StepEvent};
use willard_dsf::{DenseFile, DenseFileConfig, MacroBlocking};

/// The paper's Figure 4, rows t₀…t₈ (1-based pages L₁…L₈, left to right).
pub const FIGURE_4: [[u64; 8]; 9] = [
    [16, 1, 0, 1, 9, 9, 9, 16],  // t0
    [16, 1, 0, 1, 9, 9, 9, 17],  // t1
    [16, 1, 0, 1, 9, 9, 15, 11], // t2
    [16, 1, 0, 1, 9, 9, 15, 11], // t3
    [16, 2, 0, 0, 9, 9, 15, 11], // t4
    [17, 2, 0, 0, 9, 9, 15, 11], // t5
    [4, 15, 0, 0, 9, 9, 15, 11], // t6
    [15, 4, 0, 0, 9, 9, 15, 11], // t7
    [15, 9, 0, 0, 4, 9, 15, 11], // t8
];

/// Builds the example file at its t₀ state. Keys are chosen so that page
/// `j` (1-based) holds keys in `(j−1)·1000 … j·1000`.
pub fn example_file() -> DenseFile<u64, ()> {
    let cfg = DenseFileConfig::control2(8, 9, 18)
        .with_j(3)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut f = DenseFile::new(cfg).unwrap();
    let layout: Vec<Vec<(u64, ())>> = FIGURE_4[0]
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 1000 + i + 1, ())).collect())
        .collect();
    f.bulk_load_per_slot(layout).unwrap();
    f
}

#[test]
fn figure_4_cell_for_cell() {
    let mut f = example_file();
    assert_eq!(f.slot_counts(), FIGURE_4[0], "t0");
    f.enable_step_trace();

    // Z₁: insert into page 8 — any key above page 8's current keys.
    f.insert(7_500, ()).unwrap();
    // Z₂: insert into page 1 — any key below page 1's keys... the paper
    // inserts *into page 1*; key 500 sits between page 1's existing keys
    // (1..=16) and page 2's (1001), hence lands on page 1.
    f.insert(500, ()).unwrap();

    let mut rows: Vec<Vec<u64>> = vec![FIGURE_4[0].to_vec()];
    for ev in f.take_step_trace() {
        if let StepEvent::FlagStable { slot_counts, .. } = ev {
            rows.push(slot_counts);
        }
    }
    assert_eq!(rows.len(), 9, "t0 plus eight flag-stable moments t1..t8");
    for (i, row) in rows.iter().enumerate() {
        assert_eq!(row.as_slice(), FIGURE_4[i].as_slice(), "row t{i}");
    }
}

#[test]
fn moments_alternate_step3_then_three_step4c_per_command() {
    let mut f = example_file();
    f.enable_step_trace();
    f.insert(7_500, ()).unwrap();
    f.insert(500, ()).unwrap();
    let moments: Vec<Moment> = f
        .take_step_trace()
        .into_iter()
        .filter_map(|e| match e {
            StepEvent::FlagStable { moment, .. } => Some(moment),
            _ => None,
        })
        .collect();
    use Moment::*;
    assert_eq!(
        moments,
        vec![
            AfterStep3,
            AfterStep4c,
            AfterStep4c,
            AfterStep4c, // Z₁ (J=3)
            AfterStep3,
            AfterStep4c,
            AfterStep4c,
            AfterStep4c, // Z₂ (J=3)
        ]
    );
}

#[test]
fn example_state_is_balanced_throughout() {
    let mut f = example_file();
    f.check_invariants().unwrap();
    f.insert(7_500, ()).unwrap();
    f.check_invariants().unwrap();
    f.insert(500, ()).unwrap();
    f.check_invariants().unwrap();
    assert_eq!(f.len(), 63);
    // Figure 1's calibrator displays densities; confirm the final root
    // density matches the row sum.
    let total: u64 = FIGURE_4[8].iter().sum();
    assert_eq!(f.len(), total);
}

/// Figure 1 of the paper: a 4-page file holding [3,2,1,2] records with
/// d=2, D=3 satisfies BALANCE(2,3); its calibrator densities are the node
/// averages shown in Figure 1b.
#[test]
fn figure_1_calibrator_densities() {
    let cfg = DenseFileConfig::control2(4, 2, 3)
        .with_j(1)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut f: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();
    let layout: Vec<Vec<(u64, ())>> = [3u64, 2, 1, 2]
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 100 + i, ())).collect())
        .collect();
    f.bulk_load_per_slot(layout).unwrap();
    f.check_invariants().unwrap();
    let cal = f.calibrator();
    use willard_dsf::core_::NodeId;
    // Figure 1b's node densities: root 2.0, left son 2.5, right son 1.5,
    // leaves 3, 2, 1, 2.
    assert_eq!(cal.p_display(NodeId(1)), 2.0);
    assert_eq!(cal.p_display(NodeId(2)), 2.5);
    assert_eq!(cal.p_display(NodeId(3)), 1.5);
    for (slot, want) in [3.0, 2.0, 1.0, 2.0].iter().enumerate() {
        assert_eq!(cal.p_display(cal.leaf_of(slot as u32)), *want);
    }
}
