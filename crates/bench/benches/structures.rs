//! Criterion micro-benchmarks: wall-clock throughput of every structure on
//! the canonical workloads. The paper's claims are about page accesses (see
//! the `exp_*` binaries); these benches confirm the in-memory CPU costs are
//! sane and let regressions in the hot paths show up in CI.
//!
//! Run: `cargo bench -p dsf-bench`

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use dsf_bench::{BTreeDriver, DenseDriver, Driver, NaiveDriver, PmaDriver};
use dsf_core::DenseFileConfig;

const PAGES: u32 = 1024;
const D_MIN: u32 = 8;
const D_MAX: u32 = 40;

fn make_drivers() -> Vec<(&'static str, Box<dyn Driver>)> {
    vec![
        (
            "control2",
            Box::new(DenseDriver::new(
                "control2",
                DenseFileConfig::control2(PAGES, D_MIN, D_MAX),
            )),
        ),
        (
            "control1",
            Box::new(DenseDriver::new(
                "control1",
                DenseFileConfig::control1(PAGES, D_MIN, D_MAX),
            )),
        ),
        ("pma", Box::new(PmaDriver::new(PAGES, D_MAX, D_MIN))),
        ("btree", Box::new(BTreeDriver::new(D_MAX as usize))),
        ("naive", Box::new(NaiveDriver::new(D_MAX as usize))),
    ]
}

fn backbone() -> Vec<u64> {
    (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
        .map(|i| i << 32)
        .collect()
}

fn bench_uniform_inserts(c: &mut Criterion) {
    let keys: Vec<u64> = dsf_workloads::uniform_unique(1, 2000, 1, (4096u64) << 32)
        .into_iter()
        .map(|k| k | 1)
        .collect();
    let mut group = c.benchmark_group("uniform_inserts_2k");
    let bb = backbone();
    for (name, _) in make_drivers() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut d = make_drivers()
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .expect("driver exists")
                        .1;
                    d.bulk_backbone(&bb);
                    d
                },
                |mut d| {
                    for &k in &keys {
                        d.insert(k);
                    }
                    d
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_hammer_inserts(c: &mut Criterion) {
    let keys = dsf_workloads::hammer(2000, 5 << 32, 1);
    let mut group = c.benchmark_group("hammer_inserts_2k");
    let bb = backbone();
    for (name, _) in make_drivers() {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter_batched(
                || {
                    let mut d = make_drivers()
                        .into_iter()
                        .find(|(n, _)| *n == name)
                        .expect("driver exists")
                        .1;
                    d.bulk_backbone(&bb);
                    d
                },
                |mut d| {
                    for &k in &keys {
                        d.insert(k);
                    }
                    d
                },
                BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_point_lookups(c: &mut Criterion) {
    let bb = backbone();
    let probes: Vec<u64> = dsf_workloads::uniform_unique(7, 1000, 0, bb.len() as u64)
        .into_iter()
        .map(|i| i << 32)
        .collect();
    let mut group = c.benchmark_group("point_lookups_1k");
    for (name, mut d) in make_drivers() {
        d.bulk_backbone(&bb);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for &k in &probes {
                    hits += usize::from(d.get(k));
                }
                hits
            });
        });
    }
    group.finish();
}

fn bench_stream_scans(c: &mut Criterion) {
    let bb = backbone();
    let mut group = c.benchmark_group("scan_1000_records");
    for (name, mut d) in make_drivers() {
        d.bulk_backbone(&bb);
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            b.iter(|| d.scan(1000 << 32, 1000));
        });
    }
    group.finish();
}

fn bench_order_statistics(c: &mut Criterion) {
    use dsf_core::DenseFile;
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(PAGES, D_MIN, D_MAX)).unwrap();
    let n = u64::from(PAGES) * u64::from(D_MIN) / 2;
    f.bulk_load((0..n).map(|i| (i << 16, i))).unwrap();
    let mut group = c.benchmark_group("order_statistics");
    group.bench_function("rank", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % n;
            f.rank(&((i << 16) + 1))
        });
    });
    group.bench_function("select_nth", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % n;
            f.select_nth(i)
        });
    });
    group.bench_function("count_range", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i = (i + 997) % (n / 2);
            f.count_range((i << 16)..((i + 1000) << 16))
        });
    });
    group.finish();
}

fn bench_snapshot_codec(c: &mut Criterion) {
    use dsf_core::DenseFile;
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(PAGES, D_MIN, D_MAX)).unwrap();
    let n = u64::from(PAGES) * u64::from(D_MIN) / 2;
    f.bulk_load((0..n).map(|i| (i << 16, i))).unwrap();
    let mut group = c.benchmark_group("snapshot");
    group.bench_function("encode_4k_records", |b| {
        b.iter(|| {
            let mut bytes = Vec::new();
            f.write_snapshot(&mut bytes).unwrap();
            bytes
        });
    });
    let mut bytes = Vec::new();
    f.write_snapshot(&mut bytes).unwrap();
    group.bench_function("decode_4k_records", |b| {
        b.iter(|| {
            let g: DenseFile<u64, u64> = DenseFile::read_snapshot(&mut bytes.as_slice()).unwrap();
            g.len()
        });
    });
    group.finish();
}

fn bench_maintenance_passes(c: &mut Criterion) {
    use dsf_core::DenseFile;
    let mut group = c.benchmark_group("offline_maintenance");
    group.bench_function("vacuum_4k", |b| {
        b.iter_batched(
            || {
                let mut f: DenseFile<u64, u64> =
                    DenseFile::new(DenseFileConfig::control2(PAGES, D_MIN, D_MAX)).unwrap();
                let n = u64::from(PAGES) * u64::from(D_MIN) / 2;
                f.bulk_load((0..n).map(|i| (i << 16, i))).unwrap();
                f
            },
            |mut f| {
                f.vacuum();
                f
            },
            BatchSize::LargeInput,
        );
    });
    group.bench_function("merge_bulk_1k_into_4k", |b| {
        b.iter_batched(
            || {
                let mut f: DenseFile<u64, u64> =
                    DenseFile::new(DenseFileConfig::control2(PAGES, D_MIN, D_MAX)).unwrap();
                let n = u64::from(PAGES) * u64::from(D_MIN) / 2;
                f.bulk_load((0..n).map(|i| (i << 16, i))).unwrap();
                f
            },
            |mut f| {
                f.merge_bulk((0..1000u64).map(|i| ((i << 16) | 1, i)))
                    .unwrap();
                f
            },
            BatchSize::LargeInput,
        );
    });
    group.finish();
}

fn bench_durable_wal(c: &mut Criterion) {
    use dsf_durable::{DurableFile, SyncPolicy};
    let mut group = c.benchmark_group("durable_wal_1k_inserts");
    for (name, policy) in [
        ("manual_sync", SyncPolicy::Manual),
        ("fsync_each", SyncPolicy::EveryCommand),
    ] {
        group.sample_size(10);
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let dir = std::env::temp_dir().join(format!(
                        "dsf-walbench-{}-{}-{}",
                        std::process::id(),
                        name,
                        rand::random::<u64>()
                    ));
                    let f: DurableFile<u64, u64> = DurableFile::create(
                        &dir,
                        DenseFileConfig::control2(PAGES, D_MIN, D_MAX),
                        policy,
                    )
                    .unwrap();
                    (f, dir)
                },
                |(mut f, dir)| {
                    for k in 0..1000u64 {
                        f.insert(k << 20, k).unwrap();
                    }
                    drop(f);
                    std::fs::remove_dir_all(&dir).ok();
                },
                BatchSize::PerIteration,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_uniform_inserts, bench_hammer_inserts, bench_point_lookups,
        bench_stream_scans, bench_order_statistics, bench_snapshot_codec,
        bench_maintenance_passes, bench_durable_wal
}
criterion_main!(benches);
