//! Differential oracle: every E17 scenario stream must produce *identical
//! observable behavior* on the dense file and on every baseline structure.
//!
//! The head-to-head phase of `exp_scenario_matrix` is only meaningful if
//! the structures agree on what the stream does — otherwise a "faster"
//! structure may simply be dropping work. Here each scenario replays
//! through all five drivers while recording the per-op outcome sequence
//! (insert accepted?, remove hit?, get hit?, scan count), and the traces
//! must match op-for-op, along with final record counts and point-lookup
//! agreement over every touched key.
//!
//! A second test pins the `Geometry::threshold_records` integer math of
//! `dsf-workloads` (which must stay dependency-free) against
//! `Calibrator::records_until_ge` in `dsf-core` — the adversarial
//! generator's density argument is only sound if the two agree exactly.

use dsf_bench::{
    scenario_geometry, BTreeDriver, DenseDriver, Driver, NaiveDriver, OverflowDriver, PmaDriver,
};
use dsf_core::{Calibrator, DenseFileConfig, NodeId};
use dsf_workloads::{scenario_plan, Op, Scenario};

const PAGES: u32 = 256;
const OPS: usize = 1024;

fn drivers(cfg: DenseFileConfig) -> Vec<Box<dyn Driver>> {
    vec![
        Box::new(DenseDriver::new("dense-c2", cfg)),
        Box::new(BTreeDriver::new(40)),
        Box::new(PmaDriver::new(PAGES, 40, 8)),
        Box::new(NaiveDriver::new(40)),
        Box::new(OverflowDriver::new(PAGES, 40)),
    ]
}

/// Replays `ops` and returns the outcome of every op as a number:
/// booleans as 0/1, scans as their record count.
fn outcome_trace<D: Driver + ?Sized>(d: &mut D, backbone: &[u64], ops: &[Op]) -> Vec<u64> {
    d.bulk_backbone(backbone);
    ops.iter()
        .map(|op| match *op {
            Op::Insert(k) => u64::from(d.insert(k)),
            Op::Remove(k) => u64::from(d.remove(k)),
            Op::Get(k) => u64::from(d.get(k)),
            Op::Scan { start, limit } => d.scan(start, limit) as u64,
        })
        .collect()
}

#[test]
fn every_scenario_is_behaviorally_identical_across_structures() {
    let cfg = DenseFileConfig::control2(PAGES, 8, 40);
    let rc = cfg.resolve().expect("valid differential config");
    let geom = scenario_geometry(&rc);
    for s in Scenario::ALL {
        let plan = scenario_plan(s, &geom, 0xD1FF, OPS);
        let mut touched: Vec<u64> = plan.backbone.clone();
        for op in &plan.ops {
            match *op {
                Op::Insert(k) | Op::Remove(k) | Op::Get(k) => touched.push(k),
                Op::Scan { start, .. } => touched.push(start),
            }
        }
        touched.sort_unstable();
        touched.dedup();

        let mut ds = drivers(cfg);
        let (reference, rest) = ds.split_first_mut().expect("driver list non-empty");
        let want = outcome_trace(reference.as_mut(), &plan.backbone, &plan.ops);
        // Scenario streams are in-plan by construction: no refused
        // inserts, no missed removes (the oracle would hide a generator
        // bug if the reference itself refused work).
        for (i, (&got, op)) in want.iter().zip(&plan.ops).enumerate() {
            if matches!(op, Op::Insert(_) | Op::Remove(_)) {
                assert_eq!(got, 1, "{}: op {i} {op:?} refused on reference", s.name());
            }
        }
        for d in rest {
            let got = outcome_trace(d.as_mut(), &plan.backbone, &plan.ops);
            if let Some(i) = (0..want.len()).find(|&i| want[i] != got[i]) {
                panic!(
                    "{} vs dense-c2 on `{}`: op {i} {:?} gave {} (dense gave {})",
                    d.name(),
                    s.name(),
                    plan.ops[i],
                    got[i],
                    want[i]
                );
            }
            assert_eq!(
                d.len(),
                reference.len(),
                "{} final record count diverges on `{}`",
                d.name(),
                s.name()
            );
            for &k in &touched {
                assert_eq!(
                    d.get(k),
                    reference.get(k),
                    "{} disagrees with dense-c2 on key {k} after `{}`",
                    d.name(),
                    s.name()
                );
            }
        }
    }
}

#[test]
fn workloads_thresholds_match_calibrator_exactly() {
    // Over an empty calibrator `records_until_ge(n, q)` is the raw
    // g(v, q/3) threshold for RANGE(n) — precisely what the adversarial
    // generator's `threshold_records` recomputes without the dsf-core
    // dependency. Sweep every depth and all four thresholds at several
    // geometries; the integer numerators must agree bit-for-bit.
    for (pages, dmin, dmax) in [
        (256u32, 8u32, 40u32),
        (1024, 8, 40),
        (64, 4, 20),
        (16, 2, 6),
    ] {
        let rc = DenseFileConfig::control2(pages, dmin, dmax)
            .resolve()
            .expect("valid sweep config");
        // The calibrator lives at the resolved slot level (K pages fold
        // into one slot of density K·d..K·D), same as scenario_geometry.
        let cal: Calibrator<u64> = Calibrator::new(rc.slots, rc.slot_min, rc.slot_max);
        let geom = scenario_geometry(&rc);
        assert_eq!(geom.slots, u64::from(rc.slots));
        for depth in 0..=geom.log_slots {
            let node = NodeId(1 << depth);
            let width = geom.slots >> depth;
            assert_eq!(width, cal.width(node), "width disagrees at depth {depth}");
            for q in 0..=3u8 {
                assert_eq!(
                    geom.threshold_records(depth, width, q),
                    cal.records_until_ge(node, q),
                    "threshold disagrees: pages={pages} depth={depth} q={q}"
                );
            }
        }
    }
}
