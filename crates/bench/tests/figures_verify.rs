//! CI guard: the figure-reproduction binaries must keep reproducing the
//! paper cell for cell. Runs the actual binaries and checks their verdict
//! lines (the binaries assert internally too; this catches bit-rot in the
//! harness itself).

use std::process::Command;

fn run(bin: &str) -> String {
    let out = Command::new(bin)
        .output()
        .unwrap_or_else(|e| panic!("launch {bin}: {e}"));
    assert!(out.status.success(), "{bin} failed: {out:?}");
    String::from_utf8_lossy(&out.stdout).into_owned()
}

#[test]
fn figure_1_reproduces() {
    let out = run(env!("CARGO_BIN_EXE_fig1_calibrator"));
    assert!(out.contains("Figure 1a"));
    assert!(out.contains("Figure 1b"));
    // Every node balanced.
    assert!(
        !out.contains("false"),
        "an unbalanced node appeared:\n{out}"
    );
    // The paper's densities.
    assert!(out.contains("2.50"));
    assert!(out.contains("1.50"));
}

#[test]
fn figure_4_reproduces() {
    let out = run(env!("CARGO_BIN_EXE_fig4_example"));
    assert!(out.contains("All 9 rows match the paper: YES"), "{out}");
    // Spot-check the narration: the six shift quantities of Example 5.2.
    for needle in [
        "SHIFT(L8): moved 6 record(s) page 8 → page 7",
        "SHIFT(L1): moved 13 record(s) page 1 → page 2",
        "SHIFT(v3): moved 11 record(s) page 2 → page 1",
        "SHIFT(v3): moved 5 record(s) page 5 → page 2",
        "roll-back: DEST(v3) = page 1",
    ] {
        assert!(out.contains(needle), "missing: {needle}\n{out}");
    }
}

#[test]
fn visualizer_renders_the_example() {
    let out = run(env!("CARGO_BIN_EXE_visualize"));
    assert!(out.contains("t0 — the Example 5.2 initial state"));
    assert!(out.contains("after Z2"));
    assert!(out.contains("all invariants hold"));
    // The t8 fill bars: page 5 ends at 4 records.
    assert!(out.contains("roll-backs"), "stats footer missing:\n{out}");
}
