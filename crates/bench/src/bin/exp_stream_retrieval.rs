//! E4 — the paper's headline systems claim (§4, §5 closing): "the retrieval
//! of a stream of records with consecutive key values will be faster in a
//! sequential file than in a B-tree (because the latter entails much disk
//! arm movement when consecutive records are not stored in adjacent
//! locations)".
//!
//! Both structures are built to the same logical content and then *aged*
//! with uniform random inserts (a fresh bulk-loaded B-tree is still mostly
//! sequential; update traffic is what scatters its leaves). Streams of `s`
//! consecutive records are then retrieved from random start keys, their
//! physical access traces replayed through the rotational-disk model, and
//! the per-stream time reported for a 1986-class disk and a modern HDD.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_stream_retrieval`

use dsf_bench::{f, BTreeDriver, DenseDriver, Driver, Table};
use dsf_core::DenseFileConfig;
use dsf_pagestore::disk::DiskModel;

const PAGES: u32 = 4096;
const D_MIN: u32 = 16;
const D_MAX: u32 = 64;

fn build_aged() -> (DenseDriver, BTreeDriver) {
    let backbone: Vec<(u64, u64)> = (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
        .map(|i| (i << 16, i))
        .collect();
    let mut dense = DenseDriver::new("dense-file", DenseFileConfig::control2(PAGES, D_MIN, D_MAX));
    dense.file.bulk_load(backbone.iter().copied()).unwrap();
    let mut btree = BTreeDriver::new(D_MAX as usize);
    btree.tree.bulk_load(backbone.iter().copied()).unwrap();

    // Age both with the same uniform random inserts (¼ of capacity).
    let age = dsf_workloads::uniform_unique(
        77,
        (u64::from(PAGES) * u64::from(D_MIN) / 4) as usize,
        1,
        (u64::from(PAGES) * u64::from(D_MIN) / 2) << 16,
    );
    for k in age {
        let k = k | 1; // dodge backbone keys
        dense.insert(k);
        btree.insert(k);
    }
    assert_eq!(dense.len(), btree.len());
    (dense, btree)
}

fn stream_cost(
    d: &(impl Driver + ?Sized),
    starts: &[u64],
    s: usize,
    model: &DiskModel,
) -> (f64, f64) {
    d.take_trace();
    d.set_trace(true);
    let mut pages = 0u64;
    let mut ms = 0.0;
    for &start in starts {
        let snap = d.snapshot();
        let got = d.scan(start, s);
        assert!(got > 0);
        pages += d.since(snap);
        ms += model.replay_ms(&d.take_trace());
    }
    d.set_trace(false);
    (pages as f64 / starts.len() as f64, ms / starts.len() as f64)
}

fn main() {
    let (dense, btree) = build_aged();
    println!(
        "Both structures hold {} records after aging; B-tree height {}, {} node pages;",
        dense.len(),
        btree.tree.height(),
        btree.tree.node_pages()
    );
    println!(
        "dense file: {} pages. Disk models: IBM-3380-class and modern HDD.",
        PAGES
    );

    let universe = (u64::from(PAGES) * u64::from(D_MIN) / 2) << 16;
    let starts: Vec<u64> = dsf_workloads::uniform_unique(123, 64, 0, universe);
    let old = DiskModel::ibm3380_class();
    let new = DiskModel::modern_hdd();

    let mut t = Table::new([
        "stream s",
        "dense pages",
        "btree pages",
        "dense ms(3380)",
        "btree ms(3380)",
        "speedup",
        "dense ms(hdd)",
        "btree ms(hdd)",
    ]);
    for &s in &[1usize, 10, 100, 1_000, 10_000] {
        let (dp, dms_old) = stream_cost(&dense, &starts, s, &old);
        let (bp, bms_old) = stream_cost(&btree, &starts, s, &old);
        let (_, dms_new) = stream_cost(&dense, &starts, s, &new);
        let (_, bms_new) = stream_cost(&btree, &starts, s, &new);
        t.row([
            s.to_string(),
            f(dp),
            f(bp),
            f(dms_old),
            f(bms_old),
            format!("{:.1}x", bms_old / dms_old),
            f(dms_new),
            f(bms_new),
        ]);
    }
    t.print("E4 — stream retrieval: per-stream disk time, dense file vs aged B+-tree");

    println!("\nReading: the B-tree actually reads *fewer* pages at large s (its");
    println!("leaves run ~90% full; an aged (d,D)-dense file sits between d/D and");
    println!("1 full) — but it pays a seek per scattered leaf, while the dense");
    println!("file pays one seek and then streams physically consecutive pages.");
    println!("Disk time therefore favours the dense file at every s, increasingly");
    println!("so as streams lengthen — the paper's central argument. At s=1 the");
    println!("dense file also wins here because its search structure (the");
    println!("calibrator) is memory-resident, as the paper's cost model assumes,");
    println!("while the B-tree descends height-many pages on disk.");
}
