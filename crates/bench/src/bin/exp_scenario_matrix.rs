//! # E17 — scenario matrix at scale
//!
//! Two claims, one binary:
//!
//! * **The worst-case bound survives production scale and an adversary.**
//!   Every scenario of the matrix (adversarial, zipfian, time-series,
//!   delete-churn, scan-while-write) replays against a CONTROL 2 dense
//!   file at up to millions of pages with the flight recorder capturing
//!   every page charge. The run audits itself in chunks small enough that
//!   the ring never evicts a frame: after every chunk the captured log is
//!   replayed and each command is checked against the `J`-SHIFT budget
//!   and the `K·(3J+2)+2` page bound — so *every single command* of the
//!   run is individually certified, not just the max. The adversarial
//!   stream (see `dsf_workloads::scenario` for the density argument) is
//!   built to pin a subtree inside the calibrator's warning band and
//!   collect the full `J`-step budget on every command; its delete-side
//!   twin aims the same pressure at CONTROL 2's lower thresholds. A
//!   second pass replays every scenario through [`ShardedFile`] — all
//!   stripes streaming at once, batches applied in parallel — proving the
//!   shard layer preserves the per-command audit.
//!
//! * **The update-cost vs stream-retrieval trade-off, head-to-head.** The
//!   same op streams replay through the B+-tree, amortized PMA, naive
//!   file, and overflow-chaining baselines at a moderate geometry, then
//!   each structure serves a fixed stream-retrieval pass — the paper's
//!   central trade-off measured per scenario.
//!
//! Writes `BENCH_scenarios.json` (flat, `dsf bench-gate`-compatible) into
//! the current directory; per-scenario `max_accesses_<name>` keys are
//! gated by `bench-gate` at **0% slack** since the streams and structures
//! are fully deterministic.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_scenario_matrix`
//! (add `--quick` for the CI profile).

use dsf_bench::{f, replay_ops, scenario_geometry, Driver, Table};
use dsf_bench::{BTreeDriver, DenseDriver, NaiveDriver, OverflowDriver, PmaDriver};
use dsf_concurrent::ShardedFile;
use dsf_core::{Command, CommandOutcome, DenseFile, DenseFileConfig};
use dsf_flight::BoundBudget;
use dsf_workloads::{scenario_plan, Op, Scenario, SCENARIO_STRIDE};
use std::time::Instant;

const SEED: u64 = 0xE17;
/// Commands per audit chunk — sized so even all-worst-case commands
/// (~2 KB of frames each) stay far under the 1 MB flight ring.
const AUDIT_CHUNK: u64 = 128;

struct ScaleRow {
    name: &'static str,
    pages: u32,
    commands: u64,
    worst: u64,
    limit: u64,
    mean: f64,
    wall_ms: f64,
}

/// Snapshot-audit-clear one chunk of the flight ring: every completed
/// command must reconcile and pass both bound checks, and nothing may
/// have been evicted or left open (that would mean unaudited commands).
fn audit_chunk(budget: BoundBudget, audited: &mut u64, total: &mut u64, worst: &mut u64) {
    let log = dsf_flight::snapshot_log(budget);
    let att = log.replay();
    assert_eq!(att.dropped, 0, "flight ring evicted frames mid-chunk");
    assert_eq!(att.incomplete, 0, "command left open at audit point");
    assert_eq!(att.cancelled, 0, "scenario streams never replace/refuse");
    let report = att.audit();
    assert!(
        report.ok(),
        "live bound audit failed: {:?}",
        report.violations
    );
    *audited += att.command_count();
    *total += att.total_accesses();
    *worst = (*worst).max(att.max_accesses());
    dsf_flight::clear();
}

/// Replays one scenario against a CONTROL 2 dense file of `pages` pages
/// with the live flight audit enabled throughout.
fn run_at_scale(s: Scenario, pages: u32, ops_len: usize) -> ScaleRow {
    let cfg = DenseFileConfig::control2(pages, 8, 80);
    let rc = cfg.resolve().expect("valid scale config");
    let geom = scenario_geometry(&rc);
    let plan = scenario_plan(s, &geom, SEED, ops_len);

    let mut file: DenseFile<u64, u64> = DenseFile::new(cfg).expect("valid scale config");
    file.bulk_load(plan.backbone.iter().map(|&k| (k, k)))
        .expect("backbone fits");

    let budget = BoundBudget {
        j: u64::from(rc.j),
        k: u64::from(rc.k),
        log_slots: u64::from(rc.log_slots),
        gap: rc.slot_max - rc.slot_min,
    };
    dsf_flight::clear();
    dsf_flight::enable();

    let started = Instant::now();
    let (mut audited, mut total, mut worst) = (0u64, 0u64, 0u64);
    let mut in_chunk = 0u64;
    for op in &plan.ops {
        match *op {
            Op::Insert(k) => {
                file.insert(k, k).expect("in-plan insert fits");
                in_chunk += 1;
            }
            Op::Remove(k) => {
                assert!(file.remove(&k).is_some(), "in-plan remove present");
                in_chunk += 1;
            }
            Op::Get(k) => {
                file.get(&k);
            }
            Op::Scan { start, limit } => {
                file.range(start..).take(limit).count();
            }
        }
        if in_chunk >= AUDIT_CHUNK {
            audit_chunk(budget, &mut audited, &mut total, &mut worst);
            in_chunk = 0;
        }
    }
    audit_chunk(budget, &mut audited, &mut total, &mut worst);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    dsf_flight::disable();
    dsf_flight::clear();

    // Completeness: the chunked audit saw every structural command, and
    // the recorder's view agrees exactly with the file's own accounting.
    let stats = file.op_stats();
    let structural = plan
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Insert(_) | Op::Remove(_)))
        .count() as u64;
    assert_eq!(audited, structural, "audit missed commands");
    assert_eq!(worst, stats.max_accesses, "flight vs OpStats disagree");
    assert!(
        worst <= budget.page_limit(),
        "worst command {worst} exceeds K(3J+2)+2 = {}",
        budget.page_limit()
    );
    file.check_invariants().expect("invariants after scenario");

    ScaleRow {
        name: s.name(),
        pages,
        commands: audited,
        worst,
        limit: budget.page_limit(),
        mean: total as f64 / audited.max(1) as f64,
        wall_ms,
    }
}

struct ShardRow {
    name: &'static str,
    commands: u64,
    worst: u64,
    limit: u64,
    mean: f64,
    wall_ms: f64,
}

/// Replays one scenario through [`ShardedFile`]: every stripe streams the
/// same plan, keys offset into its own key range, with commands from all
/// stripes interleaved into `apply_batch` groups that the shard layer
/// partitions and applies **in parallel** — and the live flight audit on
/// throughout. This is the audit claim one layer up: concurrent shard
/// threads record page charges into the one flight ring, and every
/// command of every stripe must still reconcile individually against the
/// per-shard `J` budget and `K·(3J+2)+2`.
fn run_sharded(s: Scenario, shards: u32, pages: u32, ops_len: usize) -> ShardRow {
    let cfg = DenseFileConfig::control2(pages, 8, 80);
    let rc = cfg.resolve().expect("valid shard config");
    let geom = scenario_geometry(&rc);
    let plan = scenario_plan(s, &geom, SEED, ops_len);
    // Mirrors the router's stripe math: stripe `sh` owns keys starting at
    // `sh · ceil(2^64 / shards)`, and scenario keys are far smaller than
    // one stripe's width — so `offset(sh, k)` lands exactly on shard `sh`.
    let stripe = (u64::MAX / u64::from(shards)).saturating_add(1);
    let offset = |sh: u64, k: u64| sh * stripe + k;

    let file: ShardedFile<u64> = ShardedFile::new(shards, cfg).expect("valid shard config");
    for sh in 0..u64::from(shards) {
        file.bulk_load(plan.backbone.iter().map(|&k| (offset(sh, k), k)))
            .expect("backbone fits per stripe");
        assert_eq!(file.shard_of(offset(sh, plan.backbone[0])), sh as usize);
    }

    let budget = BoundBudget {
        j: u64::from(rc.j),
        k: u64::from(rc.k),
        log_slots: u64::from(rc.log_slots),
        gap: rc.slot_max - rc.slot_min,
    };
    dsf_flight::clear();
    dsf_flight::enable();

    let started = Instant::now();
    let (mut audited, mut total, mut worst) = (0u64, 0u64, 0u64);
    let mut batch: Vec<Command<u64, u64>> = Vec::with_capacity(AUDIT_CHUNK as usize);
    let flush = |batch: &mut Vec<Command<u64, u64>>,
                 audited: &mut u64,
                 total: &mut u64,
                 worst: &mut u64| {
        if batch.is_empty() {
            return;
        }
        for (i, outcome) in file.apply_batch(batch).into_iter().enumerate() {
            assert!(
                matches!(
                    outcome,
                    CommandOutcome::Inserted | CommandOutcome::Removed(_)
                ),
                "sharded replay: command {i} did not apply structurally: {outcome:?}"
            );
        }
        audit_chunk(budget, audited, total, worst);
        batch.clear();
    };
    for op in &plan.ops {
        match *op {
            Op::Insert(k) => {
                for sh in 0..u64::from(shards) {
                    batch.push(Command::Insert(offset(sh, k), k));
                }
            }
            Op::Remove(k) => {
                for sh in 0..u64::from(shards) {
                    batch.push(Command::Remove(offset(sh, k)));
                }
            }
            Op::Get(k) => {
                for sh in 0..u64::from(shards) {
                    file.get(&offset(sh, k));
                }
            }
            Op::Scan { start, limit } => {
                // Stays inside stripe 0: `stripe - 1` is its last key.
                file.collect_range(start, stripe - 1, limit);
            }
        }
        if batch.len() as u64 >= AUDIT_CHUNK {
            flush(&mut batch, &mut audited, &mut total, &mut worst);
        }
    }
    flush(&mut batch, &mut audited, &mut total, &mut worst);
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    dsf_flight::disable();
    dsf_flight::clear();

    // Completeness: the chunked audit saw every stripe's copy of every
    // structural command, and the flight recorder's worst agrees with the
    // shards' own merged accounting.
    let stats = file.merged_op_stats();
    let structural = plan
        .ops
        .iter()
        .filter(|op| matches!(op, Op::Insert(_) | Op::Remove(_)))
        .count() as u64
        * u64::from(shards);
    assert_eq!(audited, structural, "sharded audit missed commands");
    assert_eq!(
        worst, stats.max_accesses,
        "flight vs merged OpStats disagree"
    );
    assert!(
        worst <= budget.page_limit(),
        "worst sharded command {worst} exceeds K(3J+2)+2 = {}",
        budget.page_limit()
    );
    assert!(
        file.check_invariants().is_ok(),
        "shard invariants after scenario"
    );

    ShardRow {
        name: s.name(),
        commands: audited,
        worst,
        limit: budget.page_limit(),
        mean: total as f64 / audited.max(1) as f64,
        wall_ms,
    }
}

struct HeadToHead {
    structure: &'static str,
    update_mean: f64,
    update_p99: u64,
    update_worst: u64,
    retrieval_mean: f64,
    final_len: u64,
}

/// Replays one scenario stream through a structure, then serves a fixed
/// stream-retrieval pass (100 scans of 256 records) against the result.
fn run_head_to_head<D: Driver + ?Sized>(d: &mut D, backbone: &[u64], ops: &[Op]) -> HeadToHead {
    d.bulk_backbone(backbone);
    let profile = replay_ops(d, ops);
    assert_eq!(profile.refused, 0, "{}: in-plan insert refused", d.name());
    let universe = backbone.len() as u64 * SCENARIO_STRIDE;
    let retrieval = replay_ops(
        d,
        &dsf_workloads::scan_points(SEED ^ 0x5ca, 100, universe, 256),
    );
    HeadToHead {
        structure: d.name(),
        update_mean: profile.updates.mean,
        update_p99: profile.updates.p99,
        update_worst: profile.updates.max,
        retrieval_mean: retrieval.scans.mean,
        final_len: d.len(),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("=== E17: scenario matrix at scale ===");
    println!("profile: {}", if quick { "quick (CI)" } else { "full" });

    // ---- Phase 1: dense file at scale, live-audited. ------------------
    // The adversarial scenario always runs at M ≥ 2^20 pages (the
    // headline claim); friendlier scenarios use a lighter quick geometry.
    let ops_scale = if quick { 40_000 } else { 120_000 };
    let other_pages: u32 = if quick { 1 << 18 } else { 1 << 20 };
    println!("\n-- worst-case bound at scale (CONTROL 2, d=8, D=80) --");
    println!("every command audited live against the J budget and K(3J+2)+2;");
    println!("chunked snapshots keep the flight ring from ever evicting.\n");

    let mut rows = Vec::new();
    for s in Scenario::ALL {
        let pages = if matches!(s, Scenario::Adversarial | Scenario::AdversarialDelete) {
            if quick {
                1 << 20
            } else {
                1 << 21
            }
        } else {
            other_pages
        };
        let row = run_at_scale(s, pages, ops_scale);
        println!(
            "  {:<16} M={:>8}  worst {:>4} / limit {:<4}  ok",
            row.name, row.pages, row.worst, row.limit
        );
        rows.push(row);
    }

    let mut t = Table::new([
        "scenario", "pages", "commands", "worst", "limit", "mean", "wall ms",
    ]);
    for r in &rows {
        t.row([
            r.name.to_string(),
            r.pages.to_string(),
            r.commands.to_string(),
            r.worst.to_string(),
            r.limit.to_string(),
            f(r.mean),
            f(r.wall_ms),
        ]);
    }
    println!();
    t.print("scenario matrix — worst-case audit at scale");

    // ---- Phase 1b: the same audit through the shard layer. ------------
    let shards: u32 = 4;
    let shard_pages: u32 = if quick { 1 << 12 } else { 1 << 14 };
    let ops_shard = if quick { 4_000 } else { 12_000 };
    println!(
        "-- per-command audit through ShardedFile ({shards} stripes, M={shard_pages} each) --"
    );
    println!("every stripe streams the scenario; batches apply in parallel;");
    println!("the one flight ring still certifies every command individually.\n");

    let mut shard_rows = Vec::new();
    for s in Scenario::ALL {
        let row = run_sharded(s, shards, shard_pages, ops_shard);
        println!(
            "  {:<18} worst {:>3} / limit {:<3}  {:>6} commands  ok",
            row.name, row.worst, row.limit, row.commands
        );
        shard_rows.push(row);
    }
    let mut t = Table::new(["scenario", "commands", "worst", "limit", "mean", "wall ms"]);
    for r in &shard_rows {
        t.row([
            r.name.to_string(),
            r.commands.to_string(),
            r.worst.to_string(),
            r.limit.to_string(),
            f(r.mean),
            f(r.wall_ms),
        ]);
    }
    println!();
    t.print("scenario matrix — audited through the shard layer");
    println!();

    // ---- Phase 2: head-to-head baselines. -----------------------------
    let hh_pages: u32 = 1 << 10;
    let hh_cfg = DenseFileConfig::control2(hh_pages, 8, 40);
    let hh_rc = hh_cfg.resolve().expect("valid head-to-head config");
    let hh_geom = scenario_geometry(&hh_rc);
    let headroom = (hh_geom.capacity() / 2) as usize;
    let ops_hh = if quick { 2_000 } else { 5_000 }.min(headroom);
    println!("-- head-to-head: update cost vs stream retrieval (M={hh_pages}, d=8, D=40) --");
    println!("same stream through every structure, then 100 scans x 256 records.\n");

    let mut hh_json = String::new();
    for s in Scenario::ALL {
        let plan = scenario_plan(s, &hh_geom, SEED, ops_hh);
        let mut drivers: Vec<Box<dyn Driver>> = vec![
            Box::new(DenseDriver::new("dense-c2", hh_cfg)),
            Box::new(BTreeDriver::new(40)),
            Box::new(PmaDriver::new(hh_pages, 40, 8)),
            Box::new(NaiveDriver::new(40)),
            Box::new(OverflowDriver::new(hh_pages, 40)),
        ];
        let mut t = Table::new([
            "structure",
            "upd mean",
            "upd p99",
            "upd worst",
            "retrieval mean",
            "records",
        ]);
        for d in &mut drivers {
            let h = run_head_to_head(d.as_mut(), &plan.backbone, &plan.ops);
            hh_json.push_str(&format!(
                "  \"hh_{}_{}_update_mean\": {:.3},\n  \"hh_{}_{}_retrieval_mean\": {:.3},\n",
                s.name(),
                h.structure,
                h.update_mean,
                s.name(),
                h.structure,
                h.retrieval_mean,
            ));
            t.row([
                h.structure.to_string(),
                f(h.update_mean),
                h.update_p99.to_string(),
                h.update_worst.to_string(),
                f(h.retrieval_mean),
                h.final_len.to_string(),
            ]);
        }
        t.print(&format!("head-to-head — {}", s.name()));
        println!();
    }

    // ---- JSON for bench-gate. -----------------------------------------
    let mut json = String::from("{\n  \"experiment\": \"scenario_matrix\",\n");
    json.push_str(&format!("  \"quick\": {},\n", u8::from(quick)));
    for r in &rows {
        json.push_str(&format!(
            "  \"max_accesses_{}\": {},\n  \"mean_accesses_{}\": {:.3},\n  \"commands_{}\": {},\n  \"page_limit_{}\": {},\n  \"wall_ms_{}\": {:.1},\n",
            r.name, r.worst, r.name, r.mean, r.name, r.commands, r.name, r.limit, r.name, r.wall_ms,
        ));
    }
    for r in &shard_rows {
        json.push_str(&format!(
            "  \"max_accesses_shard_{}\": {},\n  \"mean_accesses_shard_{}\": {:.3},\n  \"commands_shard_{}\": {},\n",
            r.name, r.worst, r.name, r.mean, r.name, r.commands,
        ));
    }
    json.push_str(&hh_json);
    json.push_str("  \"audit_ok\": 1\n}\n");
    std::fs::write("BENCH_scenarios.json", &json).expect("write BENCH_scenarios.json");
    println!("wrote BENCH_scenarios.json");
}
