//! E10 — the paper's final sentence: "Hofri-Konheim-Willard (HKW86) show
//! that an expected time O(1) is possible under similar procedures."
//!
//! Under a *stationary* workload — random inserts and deletes holding the
//! fill level constant, keys drawn uniformly over the resident range — the
//! expected per-command maintenance cost should be a constant independent
//! of `M`: almost every command touches a region far from any threshold, so
//! the J-loop finds nothing to shift. This experiment measures the mean
//! per-command page accesses across three decades of file size, at two fill
//! levels, and reports how many commands did any shifting at all.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_expected_cost`

use dsf_bench::{f, Table};
use dsf_core::{DenseFile, DenseFileConfig};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

fn run(pages: u32, d: u32, big_d: u32, fill_percent: u64, ops: usize) -> (f64, u64, f64) {
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, d, big_d)).unwrap();
    let n0 = file.capacity() * fill_percent / 100;
    file.bulk_load((0..n0).map(|i| (i << 20, i))).unwrap();

    let mut rng = SmallRng::seed_from_u64(2024);
    let mut resident: Vec<u64> = (0..n0).map(|i| i << 20).collect();
    let universe = n0 << 20;
    for _ in 0..ops {
        if rng.gen_bool(0.5) && !resident.is_empty() {
            let i = rng.gen_range(0..resident.len());
            let k = resident.swap_remove(i);
            file.remove(&k);
        } else {
            let k = rng.gen_range(0..universe) | 1; // odd: disjoint from backbone
            if file.insert(k, 0).is_ok() && !file.contains_key(&(k ^ 2)) {
                resident.push(k);
            }
        }
    }
    let s = file.op_stats();
    let shifts_per_cmd = if s.commands == 0 {
        0.0
    } else {
        s.shifts as f64 / s.commands as f64
    };
    (s.mean_accesses(), s.max_accesses, shifts_per_cmd)
}

fn main() {
    println!("Stationary mixed workload (50/50 insert/delete at constant fill),");
    println!("uniform keys; 20k commands per row.\n");
    let mut t = Table::new([
        "M",
        "d",
        "D",
        "fill",
        "mean accesses/cmd",
        "worst",
        "shifts/cmd",
    ]);
    // Roomy geometry: the common case — maintenance virtually never fires.
    for &pages in &[256u32, 1024, 4096, 16384] {
        let (mean, worst, frac) = run(pages, 8, 40, 90, 20_000);
        t.row([
            pages.to_string(),
            "8".into(),
            "40".into(),
            "90%".into(),
            f(mean),
            worst.to_string(),
            format!("{frac:.3}"),
        ]);
    }
    // Tight geometry at 95% fill: pages run close to D, so random
    // fluctuations do trigger shifts — the mean must still be flat in M.
    for &pages in &[256u32, 1024, 4096, 16384] {
        let (mean, worst, frac) = run(pages, 36, 40, 95, 20_000);
        t.row([
            pages.to_string(),
            "36".into(),
            "40".into(),
            "95%".into(),
            f(mean),
            worst.to_string(),
            format!("{frac:.3}"),
        ]);
    }
    t.print("E10 — expected per-command cost under a stationary workload");

    println!("\nReading: in the roomy geometry the mean is the bare probe-plus-write");
    println!("(≈2 accesses) with zero shifting, across three decades of M — the");
    println!("expected-O(1) behaviour (HKW86) formalizes. In the deliberately tight");
    println!("geometry (pages at 95% of D), shifting still never fires; the slightly");
    println!("larger, slowly-growing mean is purely the macro-block factor K (the");
    println!("step-1 write touches a K-page block, and K ∝ log M at gap 4 — the");
    println!("price of Theorem 5.7, not of rebalancing). Either way the worst");
    println!("command sits an order of magnitude below E1's adversarial numbers:");
    println!("stationary workloads simply never assemble an adversary.");
}
