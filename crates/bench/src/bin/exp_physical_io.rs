//! E13 (extension) — stream retrieval against the *real* filesystem.
//!
//! Every other experiment prices I/O through the simulator; this one writes
//! the dense file to disk in its physical page layout (records at their
//! page addresses, `dsf_durable::PhysicalImage`) and retrieves streams of
//! `s` consecutive records with actual `read()` calls: an O(log M)-seek
//! positioning phase, then strictly sequential page reads. The comparison
//! case retrieves the same records by independent point reads.
//!
//! On a machine with a page-cache-warm file the wall times mostly reflect
//! syscall and copy costs, so the headline columns are the *I/O pattern*
//! (seeks and pages); wall time is reported for completeness.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_physical_io`

use dsf_bench::{f, Table};
use dsf_core::{DenseFile, DenseFileConfig};
use dsf_durable::PhysicalImage;
use std::time::Instant;

const PAGES: u32 = 4096;
const D_MIN: u32 = 16;
const D_MAX: u32 = 64;
const PAGE_BYTES: u32 = 4096;

fn main() {
    // Build and image a file of ~49k records (aged with extra inserts).
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(PAGES, D_MIN, D_MAX)).unwrap();
    let n0 = u64::from(PAGES) * u64::from(D_MIN) / 2;
    file.bulk_load((0..n0).map(|i| (i << 16, i))).unwrap();
    for k in dsf_workloads::uniform_unique(9, (n0 / 4) as usize, 1, n0 << 16) {
        let _ = file.insert(k | 1, 0);
    }
    let path = std::env::temp_dir().join(format!("dsf-physio-{}.img", std::process::id()));
    let mut img = PhysicalImage::create(&file, &path, PAGE_BYTES).unwrap();
    let file_bytes = std::fs::metadata(&path).unwrap().len();
    println!(
        "image: {} records in {} pages of {} B ({:.1} MiB at {})",
        file.len(),
        img.pages(),
        PAGE_BYTES,
        file_bytes as f64 / (1024.0 * 1024.0),
        path.display()
    );

    let starts: Vec<u64> = dsf_workloads::uniform_unique(123, 32, 0, (n0 - 20_000) << 16);
    let mut t = Table::new([
        "stream s",
        "stream seeks",
        "stream pages",
        "stream ms",
        "point seeks",
        "point pages",
        "point ms",
    ]);
    for &s in &[10usize, 100, 1000, 10_000] {
        let (mut sseeks, mut spages, mut sms) = (0.0f64, 0.0f64, 0.0f64);
        let (mut pseeks, mut ppages, mut pms) = (0.0f64, 0.0f64, 0.0f64);
        for &start in &starts {
            // The stream's key bound, from the (still-resident) file.
            let hi = file
                .range(start..)
                .nth(s.saturating_sub(1))
                .map(|(k, _)| *k)
                .unwrap_or(u64::MAX >> 1);

            // Stream: one positioned sweep.
            let clock = Instant::now();
            let (recs, rep) = img.stream_range::<u64, u64>(start, hi).unwrap();
            sms += clock.elapsed().as_secs_f64() * 1e3;
            sseeks += rep.seeks as f64;
            spages += rep.pages_read as f64;

            // Points: the same records fetched independently (a 32-key
            // sample, scaled up, so the 10k row finishes).
            let sample: Vec<u64> = recs
                .iter()
                .step_by((recs.len() / 32).max(1))
                .map(|(k, _)| *k)
                .collect();
            let clock = Instant::now();
            let (mut seeks_1, mut pages_1) = (0u64, 0u64);
            for &k in &sample {
                let (v, rep) = img.point_read::<u64, u64>(k).unwrap();
                assert!(v.is_some());
                seeks_1 += rep.seeks;
                pages_1 += rep.pages_read;
            }
            let scale = recs.len() as f64 / sample.len().max(1) as f64;
            pms += clock.elapsed().as_secs_f64() * 1e3 * scale;
            pseeks += seeks_1 as f64 * scale;
            ppages += pages_1 as f64 * scale;
        }
        let n = starts.len() as f64;
        t.row([
            s.to_string(),
            f(sseeks / n),
            f(spages / n),
            f(sms / n),
            f(pseeks / n),
            f(ppages / n),
            f(pms / n),
        ]);
    }
    t.print("E13 — real-file stream vs point retrieval (per request, averaged)");

    println!("\nReading: a stream of any length costs one O(log M) positioning");
    println!("phase (~a dozen seeks) plus sequential reads; fetching the same");
    println!("records as point reads repeats that positioning per record — the");
    println!("seek and page columns diverge by orders of magnitude exactly as the");
    println!("paper's argument predicts, now against the real filesystem. (Wall");
    println!("times on a warm page cache mainly show syscall counts.)");
    std::fs::remove_file(&path).ok();
}
