//! # E18 — serve: concurrent clients become group commits
//!
//! The server's claim is economic: the per-shard accumulator turns
//! *concurrency into batch size*. While a shard worker is inside one
//! group commit (apply + WAL append + one fsync), every request that
//! arrives queues behind it and is drained into the *next* batch — so
//! the more clients are talking, the more commands each fsync pays for.
//!
//! This experiment measures exactly that. A real [`Server`] listens on a
//! loopback socket over a [`DurableKv`] (one WAL + commit window per
//! shard); `N` client threads each pipeline `Strict` inserts at depth 4
//! and record client-perceived latency per ack. Sweeping `N` yields:
//!
//! * **commands per group commit** (`dsf_server_batch_commands`) — must
//!   rise above 1 as clients are added, and
//! * **fsyncs per command** (`dsf_wal_fsyncs_total` / commands) — must
//!   *fall* as clients are added: the group-commit amortization, on the
//!   wire, at `Strict` durability-on-ack for every single request.
//!
//! Both claims are asserted in-binary at `N = 8` vs `N = 1`, and the two
//! headline ratios are gated by `dsf bench-gate` (`serve_group_commit`,
//! `serve_fsync_amortization`). p50/p99 ack latency is recorded per `N`
//! so the cost of queueing behind a batch is visible, not hidden.
//!
//! Writes `BENCH_serve.json` into the current directory.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_serve`
//! (add `--quick` for the CI profile).

use dsf_bench::{f, Table};
use dsf_core::DenseFileConfig;
use dsf_durable::{Durability, SyncPolicy};
use dsf_server::{protocol::Outcome, Client, DurableKv, Request, Response, Server, ServerConfig};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Instant;

/// Requests each client keeps in flight — the `dsf client` default
/// posture: enough to keep the pipe busy, small enough that latency
/// numbers mean "one queued batch", not "a deep local buffer".
const PIPELINE: usize = 4;
/// Accumulator shards (and WALs) the store is split into; clients are
/// assigned round-robin, so every shard worker sees traffic once N ≥ 2.
const SHARDS: u32 = 2;

struct Row {
    clients: usize,
    commands: u64,
    group_commits: u64,
    cmds_per_commit: f64,
    fsyncs: u64,
    fsyncs_per_cmd: f64,
    throughput: f64,
    p50_us: u64,
    p99_us: u64,
}

fn tempdir(tag: usize) -> PathBuf {
    std::env::temp_dir().join(format!("dsf-exp-serve-{}-{tag}", std::process::id()))
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let idx = ((sorted.len() as f64 - 1.0) * p).round() as usize;
    sorted[idx]
}

/// One sweep point: a fresh store and server, `clients` pipelining
/// threads, every insert `Strict` (the ack waits for its fsync).
fn run(clients: usize, keys_per_client: u64) -> Row {
    let root = tempdir(clients);
    let _ = std::fs::remove_dir_all(&root);
    let cfg = DenseFileConfig::control2(1 << 14, 8, 48);
    let policy = SyncPolicy::CommitWindow {
        max_frames: 64,
        max_micros: 2_000,
    };
    let kv = DurableKv::create(&root, SHARDS, cfg, policy).expect("create store");
    let stripe = (u64::MAX / u64::from(SHARDS)).saturating_add(1);
    let server = Server::bind(Arc::new(kv), ServerConfig::default(), "127.0.0.1:0").expect("bind");
    let addr = server.local_addr();

    // Deltas, not totals: the registry is process-global and this sweep
    // reuses it across runs.
    let reg = dsf_telemetry::global();
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "");
    let commits = reg.counter("dsf_server_group_commits_total", "");
    let batch = reg.histogram("dsf_server_batch_commands", "");
    let (fsyncs0, commits0) = (fsyncs.get(), commits.get());
    let (batch_n0, batch_sum0) = (batch.count(), batch.sum());

    let started = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            std::thread::spawn(move || {
                let mut cl = Client::connect(addr).expect("connect");
                // Round-robin clients over stripes so every shard worker
                // (and WAL) carries traffic; key ranges stay disjoint.
                let base = (c as u64 % u64::from(SHARDS)) * stripe + (c as u64) * 1_000_000;
                let mut sent: std::collections::VecDeque<Instant> =
                    std::collections::VecDeque::with_capacity(PIPELINE);
                let mut lat_us: Vec<u64> = Vec::with_capacity(keys_per_client as usize);
                let recv_one = |cl: &mut Client,
                                sent: &mut std::collections::VecDeque<Instant>,
                                lat_us: &mut Vec<u64>| {
                    match cl.recv().expect("recv") {
                        Response::Applied {
                            outcome: Outcome::Inserted,
                            ..
                        } => {}
                        other => panic!("unexpected response: {other:?}"),
                    }
                    let t0 = sent.pop_front().expect("ack without send");
                    lat_us.push(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                };
                for j in 0..keys_per_client {
                    cl.send(&Request::Insert {
                        key: base + j,
                        value: format!("v{j}"),
                        durability: Durability::Strict,
                    })
                    .expect("send");
                    sent.push_back(Instant::now());
                    if cl.in_flight() >= PIPELINE {
                        recv_one(&mut cl, &mut sent, &mut lat_us);
                    }
                }
                while cl.in_flight() > 0 {
                    recv_one(&mut cl, &mut sent, &mut lat_us);
                }
                lat_us
            })
        })
        .collect();
    let mut lat: Vec<u64> = handles
        .into_iter()
        .flat_map(|h| h.join().expect("client thread"))
        .collect();
    let wall = started.elapsed().as_secs_f64();
    lat.sort_unstable();

    let commands = clients as u64 * keys_per_client;
    assert_eq!(
        lat.len() as u64,
        commands,
        "every insert acked exactly once"
    );
    let group_commits = commits.get() - commits0;
    let batched = batch.sum() - batch_sum0;
    let batches = batch.count() - batch_n0;
    assert_eq!(batched, commands, "batch histogram saw every command");
    assert_eq!(batches, group_commits, "one histogram entry per commit");
    let fsync_delta = fsyncs.get() - fsyncs0;

    server.shutdown().expect("graceful shutdown");
    let _ = std::fs::remove_dir_all(&root);

    Row {
        clients,
        commands,
        group_commits,
        cmds_per_commit: commands as f64 / group_commits.max(1) as f64,
        fsyncs: fsync_delta,
        fsyncs_per_cmd: fsync_delta as f64 / commands.max(1) as f64,
        throughput: commands as f64 / wall,
        p50_us: percentile(&lat, 0.50),
        p99_us: percentile(&lat, 0.99),
    }
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    println!("=== E18: dsf serve — concurrent clients become group commits ===");
    println!("profile: {}", if quick { "quick (CI)" } else { "full" });
    println!();
    println!("real loopback sockets, Strict durability-on-ack for every insert,");
    println!("{PIPELINE}-deep pipelining per client, {SHARDS} shards (one WAL each).\n");

    // The WAL fsync counter only ticks while telemetry is on.
    dsf_telemetry::global().enable();

    let keys = if quick { 1_500 } else { 3_000 };
    let sweep: &[usize] = if quick { &[1, 8] } else { &[1, 2, 4, 8, 16] };
    let rows: Vec<Row> = sweep
        .iter()
        .map(|&n| {
            let r = run(n, keys);
            println!(
                "  N={:<2} {:>6} cmds  {:>5} commits  {:>5.2} cmds/commit  {:>6.4} fsyncs/cmd  p99 {:>6} us",
                r.clients, r.commands, r.group_commits, r.cmds_per_commit, r.fsyncs_per_cmd, r.p99_us
            );
            r
        })
        .collect();

    let mut t = Table::new([
        "clients",
        "commands",
        "commits",
        "cmds/commit",
        "fsyncs",
        "fsyncs/cmd",
        "cmds/s",
        "p50 us",
        "p99 us",
    ]);
    for r in &rows {
        t.row([
            r.clients.to_string(),
            r.commands.to_string(),
            r.group_commits.to_string(),
            f(r.cmds_per_commit),
            r.fsyncs.to_string(),
            format!("{:.4}", r.fsyncs_per_cmd),
            f(r.throughput),
            r.p50_us.to_string(),
            r.p99_us.to_string(),
        ]);
    }
    println!();
    t.print("serve sweep — group-commit fan-in vs client count");

    let one = rows.iter().find(|r| r.clients == 1).expect("N=1 ran");
    let eight = rows.iter().find(|r| r.clients == 8).expect("N=8 ran");
    // The two headline claims, asserted where the numbers are made.
    assert!(
        eight.cmds_per_commit > 1.0,
        "8 clients must coalesce: {:.2} cmds/commit",
        eight.cmds_per_commit
    );
    assert!(
        eight.fsyncs_per_cmd < one.fsyncs_per_cmd,
        "concurrency must amortize fsyncs: N=8 {:.4}/cmd vs N=1 {:.4}/cmd",
        eight.fsyncs_per_cmd,
        one.fsyncs_per_cmd
    );
    let amortization = one.fsyncs_per_cmd / eight.fsyncs_per_cmd.max(f64::EPSILON);
    println!();
    println!(
        "group commit at N=8: {:.2} cmds/commit; fsync amortization N=1/N=8: {:.2}x",
        eight.cmds_per_commit, amortization
    );

    let mut json = String::from("{\n  \"experiment\": \"serve\",\n");
    json.push_str(&format!("  \"quick\": {},\n", u8::from(quick)));
    for r in &rows {
        json.push_str(&format!(
            "  \"serve_throughput_n{}\": {:.1},\n  \"serve_cmds_per_commit_n{}\": {:.3},\n  \"serve_fsyncs_per_cmd_n{}\": {:.4},\n  \"serve_p50_micros_n{}\": {},\n  \"serve_p99_micros_n{}\": {},\n",
            r.clients, r.throughput, r.clients, r.cmds_per_commit, r.clients, r.fsyncs_per_cmd,
            r.clients, r.p50_us, r.clients, r.p99_us,
        ));
    }
    json.push_str(&format!(
        "  \"serve_group_commit\": {:.3},\n  \"serve_fsync_amortization\": {:.3},\n",
        eight.cmds_per_commit, amortization
    ));
    json.push_str("  \"claims_ok\": 1\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!("wrote BENCH_serve.json");
}
