//! E1 — Theorem 5.5 / Corollary 5.6: CONTROL 2's worst-case cost is
//! `O(log²M/(D−d))` page accesses per command.
//!
//! Two sweeps under the adversarial hammer (every insertion aimed at one
//! point of a half-full file, run until the file is completely full):
//!
//! * `M` grows with the density gap fixed — the worst command should grow
//!   like `log²M` (through `J ∝ L²`), **not** like `M`;
//! * the gap `D−d` grows with `M` fixed — the worst command should fall
//!   roughly like `1/(D−d)`.
//!
//! The reference column `J+c` shows the model cost `2J + O(1)`: each of the
//! `J` SHIFTs touches at most one source and one destination page.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_worstcase_sweep`

use dsf_bench::{balance_violations, f, hammer_setup, Table};
use dsf_core::{DenseFile, DenseFileConfig};

fn run(pages: u32, d: u32, big_d: u32) -> (DenseFile<u64, u64>, u64) {
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, d, big_d)).unwrap();
    let keys = hammer_setup(&mut file);
    let mut violations = 0u64;
    for k in keys {
        file.insert(k, 0).unwrap();
        violations += balance_violations(&file) as u64;
    }
    (file, violations)
}

fn main() {
    let mut t = Table::new([
        "M",
        "d",
        "D",
        "K",
        "L",
        "J",
        "cmds",
        "mean",
        "worst",
        "3JK+16",
        "balance-violations",
    ]);
    println!("Adversarial hammer to capacity; CONTROL 2 per-command page accesses.");

    for &pages in &[64u32, 256, 1024, 4096, 16384] {
        let (file, viol) = run(pages, 8, 40);
        let s = file.op_stats();
        let cfg = file.config();
        t.row([
            pages.to_string(),
            "8".into(),
            "40".into(),
            cfg.k.to_string(),
            cfg.log_slots.to_string(),
            cfg.j.to_string(),
            s.commands.to_string(),
            f(s.mean_accesses()),
            s.max_accesses.to_string(),
            (3 * u64::from(cfg.j) * u64::from(cfg.k) + 16).to_string(),
            viol.to_string(),
        ]);
    }
    t.print("E1a — worst-case cost vs file size M (d=8, D=40)");

    let mut t = Table::new([
        "M",
        "d",
        "D",
        "gap",
        "J",
        "mean",
        "worst",
        "balance-violations",
    ]);
    for &(d, big_d) in &[(8u32, 24u32), (8, 40), (8, 72), (8, 136), (8, 264)] {
        let (file, viol) = run(1024, d, big_d);
        let s = file.op_stats();
        let cfg = file.config();
        t.row([
            "1024".to_string(),
            d.to_string(),
            big_d.to_string(),
            (big_d - d).to_string(),
            cfg.j.to_string(),
            f(s.mean_accesses()),
            s.max_accesses.to_string(),
            viol.to_string(),
        ]);
    }
    t.print("E1b — worst-case cost vs density gap D−d (M=1024)");

    println!("\nReading: `worst` stays under the 3·J·K+O(1) model — each of the J");
    println!("SHIFTs touches one source and one destination slot of K pages — so the");
    println!("per-command worst case is O(log²M/(D−d)), not O(M); the K=2 rows are");
    println!("the macro-block regime of Theorem 5.7 kicking in automatically once");
    println!("D−d ≤ 3⌈log M⌉. Violations stay 0: Theorem 5.5 empirically confirmed.");
}
