//! E3 — the `J` parameter (§5): the paper proves `J ≅ 90⌈log²M⌉/(D−d)`
//! sufficient, says a sharper proof gains "at least one order of magnitude",
//! and remarks "typically J should ≈ 18".
//!
//! For each geometry this experiment finds the *empirical minimum* `J` for
//! which the adversarial hammer (run from half-full to completely full)
//! never leaves a command with a BALANCE(d,D) violation, and compares it
//! with the paper's proven value, the one-order-of-magnitude remark, and
//! this crate's default.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_j_sweep`

use dsf_bench::{balance_violations, AdaptiveAdversary, Table};
use dsf_core::{DenseFile, DenseFileConfig};

/// Replays an insert stream with a fixed `J`; returns `true` when BALANCE
/// held at the end of every command.
fn survives_stream(pages: u32, d: u32, big_d: u32, j: u32, keys: &[u64]) -> bool {
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, d, big_d).with_j(j)).unwrap();
    let prefill = file.capacity() / 2;
    file.bulk_load((0..prefill).map(|i| (i << 32, i)))
        .expect("prefill fits");
    for &k in keys {
        if file.insert(k, 0).is_err() {
            return false;
        }
        if balance_violations(&file) > 0 {
            return false;
        }
    }
    true
}

/// The adaptive adversary (it inspects the calibrator and aims at the
/// deepest warned node's DEST region each step) must also fail to break
/// BALANCE.
fn survives_adaptive(pages: u32, d: u32, big_d: u32, j: u32) -> bool {
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, d, big_d).with_j(j)).unwrap();
    let prefill = f.capacity() / 2;
    f.bulk_load((0..prefill).map(|i| (i << 32, i))).unwrap();
    let mut adv = AdaptiveAdversary::new();
    let budget = f.capacity() - f.len();
    let mut commands = 0;
    while commands < budget {
        let Some(k) = adv.next_key(&f) else { break };
        match f.insert(k, 0) {
            Ok(None) => commands += 1,
            Ok(Some(_)) => {} // replacement, not a command
            Err(_) => break,
        }
        if balance_violations(&f) > 0 {
            return false;
        }
    }
    true
}

/// All three adversaries must survive: the single-point hammer, a
/// two-front stream whose fronts press towards each other from adjacent
/// regions (exercising opposing DEST traversals), and the adaptive
/// DEST-chaser.
fn survives(pages: u32, d: u32, big_d: u32, j: u32) -> bool {
    let cfg = DenseFileConfig::control2(pages, d, big_d)
        .resolve()
        .unwrap();
    let room = (cfg.capacity() / 2) as usize;
    let hammer = dsf_workloads::hammer(room, 5 << 32, 1);
    let left: Vec<u64> = dsf_workloads::hammer(room / 2, 5 << 32, 1);
    let right: Vec<u64> = dsf_workloads::ascending(room - room / 2, (6 << 32) + 1, 1);
    let two_front: Vec<u64> = left
        .iter()
        .zip(right.iter())
        .flat_map(|(&a, &b)| [a, b])
        .chain(left.iter().skip(right.len()).copied())
        .chain(right.iter().skip(left.len()).copied())
        .collect();
    survives_stream(pages, d, big_d, j, &hammer)
        && survives_stream(pages, d, big_d, j, &two_front)
        && survives_adaptive(pages, d, big_d, j)
}

/// Smallest `J` that survives, by scanning upward (the property is
/// effectively monotone; the scan also verifies the next two values).
fn minimal_j(pages: u32, d: u32, big_d: u32) -> u32 {
    let mut j = 1;
    loop {
        if survives(pages, d, big_d, j) && survives(pages, d, big_d, j + 1) {
            return j;
        }
        j += 1;
        assert!(j < 10_000, "no J survives?!");
    }
}

fn main() {
    let mut t = Table::new([
        "M",
        "d",
        "D",
        "L",
        "min J (measured)",
        "default J",
        "paper ~18",
        "proven 90L²/gap",
    ]);
    for &(pages, d, big_d) in &[
        (64u32, 8u32, 40u32),
        (256, 8, 40),
        (1024, 8, 40),
        (4096, 8, 40),
        (1024, 8, 24),
        (1024, 8, 72),
        (1024, 16, 144),
    ] {
        let cfg = DenseFileConfig::control2(pages, d, big_d)
            .resolve()
            .unwrap();
        let l = cfg.log_slots;
        let gap = cfg.slot_max - cfg.slot_min;
        let min_j = minimal_j(pages, d, big_d);
        t.row([
            pages.to_string(),
            d.to_string(),
            big_d.to_string(),
            l.to_string(),
            min_j.to_string(),
            cfg.j.to_string(),
            "18".into(),
            (90 * u64::from(l) * u64::from(l)).div_ceil(gap).to_string(),
        ]);
    }
    t.print("E3 — minimal J preserving BALANCE under three adversaries");

    println!("\nReading: the measured minimum sits one to two orders of magnitude");
    println!("below the proven 90·L²/(D−d) — the paper itself predicts that proof");
    println!("constant is loose by \"at least one order of magnitude (and probably");
    println!("by 1½ magnitudes)\" — and comfortably below its rule-of-thumb J ≈ 18.");
    println!("The library default keeps a safety factor above every measured");
    println!("minimum, since these two adversaries need not be the true worst case.");
}
