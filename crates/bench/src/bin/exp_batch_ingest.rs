//! E15 — batched command pipeline: `apply_batch` vs one-at-a-time.
//!
//! Batching cannot improve the paper's *per-command* worst case — every
//! command inside a batch still pays at most the CONTROL 2
//! `O(log²M/(D−d))` page bound — but it amortizes everything *around* that
//! bound. This experiment measures the three amortizations the batch
//! pipeline ships, each in its own phase, on the same command stream:
//!
//! * **State equivalence (phase A).** The whole design rests on batching
//!   being a pure reordering of *work*, never of *effects*: applying the
//!   stream in batches of 64 must leave a [`DenseFile`] bit-identical to
//!   one-at-a-time application — same records, same slot layout, same
//!   `OpStats` down to the worst command — with every outcome equal to
//!   its sequential counterpart. Checked with hard asserts, and
//!   `batched_state_equals_sequential` lands in the JSON. A flight-recorder
//!   segment re-checks causal attribution: per-command costs recorded
//!   *inside* `apply_batch` still reconcile exactly and pass the live
//!   worst-case bound audit.
//!
//! * **Buffer-pool syscalls (phase B).** The same per-command page trace is
//!   replayed through a write-back [`BufferPool`] under two disciplines:
//!   flush-per-command (the unbatched service loop) vs
//!   [`BufferPool::pin_run`] over each batch's touched span + one flush per
//!   batch. Same logical accesses; the batched discipline turns page-in
//!   stretches into single `read_run` calls and writebacks into maximal
//!   dirty runs. Reported as `io_call_ratio` (target ≥ 1.5×).
//!
//! * **WAL fsyncs (phase C).** Two [`DurableFile`]s under
//!   `SyncPolicy::EveryCommand` ingest the same commands, one-at-a-time vs
//!   `apply_batch(64)` group commit (all frames appended, one
//!   `sync_data`). Counted from the live `dsf_wal_fsyncs_total` telemetry
//!   counter. Reported as `fsync_ratio` (target ≥ 3×; in practice ≈ batch
//!   size).
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_batch_ingest`
//! (pass `--quick` for the CI-sized variant). Writes `BENCH_batch.json`
//! into the current directory.

use std::time::Instant;

use dsf_core::{Command, CommandOutcome, DenseFile, DenseFileConfig, DsfError};
use dsf_durable::{DurableFile, SyncPolicy};
use dsf_flight::BoundBudget;
use dsf_pagestore::{AccessEvent, BufferPool, MemBackend};

/// Commands per batch — the pipeline's unit of amortization.
const BATCH: usize = 64;
/// Pool frames for the phase-B replay; big enough for one batch's span,
/// far too small for the whole file.
const POOL_CAPACITY: usize = 128;

fn cfg(pages: u32) -> DenseFileConfig {
    DenseFileConfig::control2(pages, 6, 8)
}

/// The shared command stream: batches of `BATCH` commands, each batch
/// clustered in its own key region (the realistic ingest shape batching
/// targets, and what keeps a batch's page span pinnable), with duplicate
/// keys, replaces, hitting and missing removes mixed in.
#[allow(clippy::type_complexity)]
fn command_stream(pages: u32) -> (Vec<(u64, u64)>, Vec<Command<u64, u64>>) {
    let capacity = cfg(pages).resolve().unwrap().capacity();
    let backbone_len = capacity * 3 / 5;
    let stride = u64::MAX / (backbone_len + 1);
    let backbone: Vec<(u64, u64)> = (0..backbone_len).map(|i| (i * stride, i)).collect();

    let budget = (capacity - backbone_len) * 7 / 10;
    let batches = (budget as usize) / BATCH;
    let mut cmds = Vec::with_capacity(batches * BATCH);
    let mut rng: u64 = 0x5eed_cafe;
    let mut next = move || {
        // xorshift64* — deterministic, no external entropy.
        rng ^= rng << 13;
        rng ^= rng >> 7;
        rng ^= rng << 17;
        rng
    };
    for b in 0..batches as u64 {
        // Each batch works a narrow region of the backbone.
        let region = (next() % backbone_len) * stride;
        for i in 0..BATCH as u64 {
            let roll = next() % 100;
            let key = region + 1 + (next() % 4096);
            cmds.push(if roll < 70 {
                Command::Insert(key, b * 1000 + i)
            } else if roll < 85 {
                // Re-insert a backbone key: a replace, no structural work.
                Command::Insert((next() % backbone_len) * stride, i)
            } else if roll < 93 {
                // Remove a key this region may or may not have gained.
                Command::Remove(region + 1 + (next() % 4096))
            } else {
                // Remove a key that was never inserted.
                Command::Remove(region + 4097 + (next() % 4096))
            });
        }
    }
    (backbone, cmds)
}

/// Applies one command the pre-batch way and folds the result into the
/// outcome shape, so sequential and batched runs compare exactly.
fn apply_one(
    f: &mut DenseFile<u64, u64>,
    cmd: &Command<u64, u64>,
) -> Result<CommandOutcome<u64>, DsfError> {
    Ok(match cmd {
        Command::Insert(k, v) => match f.insert(*k, *v) {
            Ok(None) => CommandOutcome::Inserted,
            Ok(Some(old)) => CommandOutcome::Replaced(old),
            Err(e) => return Err(e),
        },
        Command::Remove(k) => match f.remove(k) {
            Some(old) => CommandOutcome::Removed(old),
            None => CommandOutcome::NotFound,
        },
    })
}

/// Phase A: batched application must be observationally identical to
/// sequential application. Returns (commands, max per-command accesses,
/// batched wall ms, sequential wall ms). The wall times are best-of-N over
/// fresh files (the apply loops run in well under a millisecond, so a
/// single sample is mostly scheduler noise; the minimum is the standard
/// noise-robust estimator for a deterministic workload).
fn phase_state_equivalence(pages: u32, reps: usize) -> (usize, u64, f64, f64) {
    let (backbone, cmds) = command_stream(pages);

    let build = |pages: u32| {
        let mut f: DenseFile<u64, u64> = DenseFile::new(cfg(pages)).unwrap();
        f.bulk_load(backbone.iter().copied()).unwrap();
        f
    };

    let mut seq = build(pages);
    let mut seq_ms = f64::INFINITY;
    let mut seq_outcomes = Vec::new();
    for _ in 0..reps {
        seq = build(pages);
        let start = Instant::now();
        seq_outcomes = cmds
            .iter()
            .map(|c| apply_one(&mut seq, c).unwrap_or_else(CommandOutcome::Rejected))
            .collect();
        seq_ms = seq_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    let mut bat = build(pages);
    let mut bat_ms = f64::INFINITY;
    let mut bat_outcomes = Vec::new();
    for _ in 0..reps {
        bat = build(pages);
        let start = Instant::now();
        bat_outcomes = cmds
            .chunks(BATCH)
            .flat_map(|chunk| bat.apply_batch(chunk))
            .collect();
        bat_ms = bat_ms.min(start.elapsed().as_secs_f64() * 1e3);
    }

    assert_eq!(seq_outcomes, bat_outcomes, "per-command outcomes diverged");
    assert!(
        seq.iter().eq(bat.iter()),
        "record contents diverged between sequential and batched application"
    );
    assert_eq!(
        seq.slot_counts(),
        bat.slot_counts(),
        "physical slot layout diverged"
    );
    assert_eq!(
        seq.op_stats(),
        bat.op_stats(),
        "cost accounting diverged (batching must not change per-command work)"
    );
    seq.check_invariants().expect("sequential invariants");
    bat.check_invariants().expect("batched invariants");

    (cmds.len(), bat.op_stats().max_accesses, bat_ms, seq_ms)
}

/// Phase A': the flight recorder still attributes per-command costs
/// exactly when commands arrive through `apply_batch`, and every batched
/// command stays inside the live worst-case page bound.
fn phase_flight_attribution() {
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg(128)).unwrap();
    let capacity = f.capacity();
    let stride = u64::MAX / capacity;
    f.bulk_load((0..capacity / 2).map(|i| (i * stride, i)))
        .unwrap();

    let before = f.op_stats().clone();
    dsf_flight::enable();
    dsf_flight::clear();
    let mut applied = 0u64;
    for b in 0..4u64 {
        let batch: Vec<Command<u64, u64>> = (0..BATCH as u64)
            .map(|i| Command::Insert(b * stride * 7 + i * 31 + 1, i))
            .collect();
        for out in f.apply_batch(&batch) {
            assert!(out.is_effective(), "fresh-key insert must be effective");
            applied += 1;
        }
    }
    let rc = f.config();
    let budget = BoundBudget {
        j: u64::from(rc.j),
        k: u64::from(rc.k),
        log_slots: u64::from(rc.log_slots),
        gap: rc.slot_max - rc.slot_min,
    };
    let log = dsf_flight::snapshot_log(budget);
    dsf_flight::disable();

    let attr = log.replay();
    assert_eq!(attr.dropped, 0, "ring evicted events; segment must fit");
    assert_eq!(attr.command_count(), applied);
    assert!(
        attr.reconciles(),
        "flight frames must reconcile per command"
    );
    let delta = f.op_stats().total_accesses - before.total_accesses;
    assert_eq!(
        attr.total_accesses(),
        delta,
        "flight attribution must equal OpStats access accounting"
    );
    let audit = attr.audit();
    assert!(
        audit.ok(),
        "batched commands broke the live bound audit: {:?}",
        audit.violations
    );
    println!(
        "  flight: {} batched commands attributed, {} accesses reconciled, bound audit clean",
        applied, delta
    );
}

/// Captures the per-command page traces of the stream (shared by both
/// phase-B disciplines).
fn per_command_traces(pages: u32) -> Vec<Vec<AccessEvent>> {
    let (backbone, cmds) = command_stream(pages);
    let mut f: DenseFile<u64, u64> = DenseFile::new(cfg(pages)).unwrap();
    f.bulk_load(backbone.iter().copied()).unwrap();
    f.io_trace().set_enabled(true);
    let mut traces = Vec::with_capacity(cmds.len());
    for cmd in &cmds {
        let _ = apply_one(&mut f, cmd);
        traces.push(f.io_trace().take());
        f.io_trace().take_runs();
    }
    f.io_trace().set_enabled(false);
    traces
}

/// Phase B, discipline 1: the unbatched service loop — replay each
/// command's trace, then flush its dirty pages before acknowledging.
fn replay_per_command(traces: &[Vec<AccessEvent>], reps: usize) -> (u64, f64) {
    let mut calls = 0;
    let mut wall_ms = f64::INFINITY;
    for _ in 0..reps {
        let mut pool = BufferPool::new(MemBackend::new(64), POOL_CAPACITY);
        pool.set_coalescing(false);
        let start = Instant::now();
        for t in traces {
            pool.replay(t).unwrap();
            pool.flush_all().unwrap();
        }
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        calls = pool.into_backend_lossy().io_calls();
    }
    (calls, wall_ms)
}

/// Phase B, discipline 2: the batch pipeline — pin the batch's touched
/// page span up front (coalesced page-in, no mid-batch eviction), replay
/// the batch, unpin, flush once per batch.
fn replay_batched(traces: &[Vec<AccessEvent>], reps: usize) -> (u64, f64) {
    let mut calls = 0;
    let mut wall_ms = f64::INFINITY;
    // One page buffer for the whole run: the per-batch sort is on the
    // timed path, so reallocating it per batch would bill the allocator,
    // not the pipeline.
    let mut pages: Vec<u64> = Vec::new();
    for _ in 0..reps {
        let mut pool = BufferPool::new(MemBackend::new(64), POOL_CAPACITY);
        let start = Instant::now();
        for group in traces.chunks(BATCH) {
            // Pin the densest page window of the batch's trace (its
            // clustered key region); scattered outliers stay unpinned so
            // the remaining frames can absorb them.
            pages.clear();
            pages.extend(group.iter().flatten().map(|e| e.page));
            pages.sort_unstable();
            let window = (POOL_CAPACITY as u64) * 3 / 4;
            let mut best: Option<(usize, u64, u64)> = None; // (hits, lo, len)
            let mut j = 0;
            for i in 0..pages.len() {
                while pages[i] - pages[j] + 1 > window {
                    j += 1;
                }
                let cand = (i - j + 1, pages[j], pages[i] - pages[j] + 1);
                if best.is_none_or(|b| cand.0 > b.0) {
                    best = Some(cand);
                }
            }
            let pinned = best.filter(|&(_, lo, len)| pool.pin_run(lo, len).is_ok());
            for t in group {
                pool.replay(t).unwrap();
            }
            if let Some((_, lo, len)) = pinned {
                pool.unpin_run(lo, len);
            }
            pool.flush_all().unwrap();
        }
        wall_ms = wall_ms.min(start.elapsed().as_secs_f64() * 1e3);
        calls = pool.into_backend_lossy().io_calls();
    }
    (calls, wall_ms)
}

/// Phase C: fsyncs per command under `EveryCommand`, one-at-a-time vs
/// group commit. Returns (seq_fsyncs, batch_fsyncs, seq_ms, batch_ms).
fn phase_fsync(pages: u32) -> (u64, u64, f64, f64) {
    let (backbone, cmds) = command_stream(pages);
    let reg = dsf_telemetry::global();
    reg.enable();
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "WAL sync_data calls");

    let scratch = std::env::temp_dir().join(format!("dsf-batch-ingest-{}", std::process::id()));
    let mut result = (0u64, 0u64, 0f64, 0f64);
    for batched in [false, true] {
        let dir = scratch.join(if batched { "batched" } else { "seq" });
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(pages), SyncPolicy::Manual).unwrap();
        for (k, v) in &backbone {
            f.insert(*k, *v).unwrap();
        }
        f.checkpoint().unwrap();
        drop(f);
        let mut f: DurableFile<u64, u64> =
            DurableFile::open(&dir, SyncPolicy::EveryCommand).unwrap();

        let base = fsyncs.get();
        let start = Instant::now();
        if batched {
            for chunk in cmds.chunks(BATCH) {
                f.apply_batch(chunk).unwrap();
            }
        } else {
            for cmd in &cmds {
                match cmd {
                    Command::Insert(k, v) => {
                        f.insert(*k, *v).unwrap();
                    }
                    Command::Remove(k) => {
                        f.remove(k).unwrap();
                    }
                }
            }
        }
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let count = fsyncs.get() - base;
        if batched {
            result.1 = count;
            result.3 = wall_ms;
        } else {
            result.0 = count;
            result.2 = wall_ms;
        }
    }
    reg.disable();
    std::fs::remove_dir_all(&scratch).ok();
    result
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pages: u32 = if quick { 256 } else { 1024 };
    let reps: usize = if quick { 3 } else { 7 };

    println!("E15 — batched command pipeline (M={pages}, d=6, D=8, batch={BATCH})");

    let (commands, max_accesses, bat_core_ms, seq_core_ms) = phase_state_equivalence(pages, reps);
    let core_wall_ratio = seq_core_ms / bat_core_ms;
    println!(
        "  state: {commands} commands, batched ≡ sequential (records, layout, OpStats); \
         worst command {max_accesses} accesses; core {seq_core_ms:.2} ms → {bat_core_ms:.2} ms"
    );
    phase_flight_attribution();

    let traces = per_command_traces(pages);
    let (seq_io, seq_pool_ms) = replay_per_command(&traces, reps);
    let (bat_io, bat_pool_ms) = replay_batched(&traces, reps);
    let io_ratio = seq_io as f64 / bat_io as f64;
    let pool_wall_ratio = seq_pool_ms / bat_pool_ms;
    println!(
        "  pool:  {seq_io} syscalls flush-per-command vs {bat_io} pinned+flush-per-batch \
         ({io_ratio:.1}× fewer), {seq_pool_ms:.2} ms → {bat_pool_ms:.2} ms"
    );

    let (seq_fsync, bat_fsync, seq_wal_ms, bat_wal_ms) = phase_fsync(pages);
    let fsync_ratio = seq_fsync as f64 / bat_fsync as f64;
    let wal_wall_ratio = seq_wal_ms / bat_wal_ms;
    println!(
        "  wal:   {seq_fsync} fsyncs one-at-a-time vs {bat_fsync} group commit \
         ({fsync_ratio:.1}× fewer), {seq_wal_ms:.0} ms → {bat_wal_ms:.0} ms"
    );

    assert!(
        io_ratio >= 1.5,
        "expected ≥1.5× fewer pool syscalls, got {io_ratio:.2}×"
    );
    assert!(
        fsync_ratio >= 3.0,
        "expected ≥3× fewer fsyncs, got {fsync_ratio:.2}×"
    );
    // Batching must not cost wall time either: the pool replay has to be
    // outright faster than flush-per-command, and the core apply loop may
    // pay at most 10% for its hint bookkeeping. (Full size only — the
    // quick variant's loops are too short to bound tightly.)
    if !quick {
        assert!(
            bat_pool_ms <= seq_pool_ms,
            "batched pool replay slower than per-command: {bat_pool_ms:.2} ms vs {seq_pool_ms:.2} ms"
        );
        assert!(
            bat_core_ms <= 1.1 * seq_core_ms,
            "batched core apply regressed: {bat_core_ms:.2} ms vs {seq_core_ms:.2} ms sequential"
        );
    }

    let json = format!(
        "{{\n  \"experiment\": \"batch_ingest\",\n  \"quick\": {quick},\n  \"m_pages\": {pages},\n  \"batch_size\": {BATCH},\n  \"commands\": {commands},\n  \"max_accesses\": {max_accesses},\n  \"seq_core_wall_ms\": {seq_core_ms:.2},\n  \"batch_core_wall_ms\": {bat_core_ms:.2},\n  \"core_wall_ratio\": {core_wall_ratio:.2},\n  \"seq_io_calls\": {seq_io},\n  \"batch_io_calls\": {bat_io},\n  \"seq_pool_wall_ms\": {seq_pool_ms:.2},\n  \"batch_pool_wall_ms\": {bat_pool_ms:.2},\n  \"pool_wall_ratio\": {pool_wall_ratio:.2},\n  \"io_call_ratio\": {io_ratio:.2},\n  \"seq_fsyncs\": {seq_fsync},\n  \"batch_fsyncs\": {bat_fsync},\n  \"seq_wal_wall_ms\": {seq_wal_ms:.2},\n  \"batch_wal_wall_ms\": {bat_wal_ms:.2},\n  \"wal_wall_ratio\": {wal_wall_ratio:.2},\n  \"fsync_ratio\": {fsync_ratio:.2},\n  \"batched_state_equals_sequential\": true,\n  \"flight_attribution_reconciles\": true\n}}\n",
    );
    std::fs::write("BENCH_batch.json", json).unwrap();
    println!("wrote BENCH_batch.json");
}
