//! Figure 1 of the paper: a 4-page (d=2, D=3)-dense file holding
//! [3, 2, 1, 2] records (Figure 1a) and its calibrator with per-node
//! densities p(v) (Figure 1b), printed alongside the g(v,·) thresholds.
//!
//! Run: `cargo run -p dsf-bench --bin fig1_calibrator`

use dsf_bench::Table;
use dsf_core::{DenseFile, DenseFileConfig, MacroBlocking, NodeId};

fn main() {
    let cfg = DenseFileConfig::control2(4, 2, 3)
        .with_j(1)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut file: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();
    let layout: Vec<Vec<(u64, ())>> = [3u64, 2, 1, 2]
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 100 + i, ())).collect())
        .collect();
    file.bulk_load_per_slot(layout).unwrap();
    file.check_invariants().unwrap();

    let mut fig1a = Table::new(["page 1", "page 2", "page 3", "page 4"]);
    let counts = file.slot_counts();
    fig1a.row(counts.iter().map(|c| c.to_string()));
    fig1a.print("Figure 1a — records per page (d=2, D=3)");

    let cal = file.calibrator();
    let mut fig1b = Table::new([
        "node",
        "range (pages)",
        "N_v",
        "M_v",
        "p(v)",
        "g(v,1)",
        "balanced",
    ]);
    // Print the calibrator in the paper's reading order: root, internal
    // level, leaves.
    let mut nodes = cal.all_nodes();
    nodes.sort_by_key(|n| (n.depth(), n.0));
    for n in nodes {
        let (lo, hi) = cal.range(n);
        let label = if n == NodeId::ROOT {
            "root".to_string()
        } else if cal.is_leaf(n) {
            format!("leaf {}", lo + 1)
        } else {
            format!("node {}", n.0)
        };
        fig1b.row([
            label,
            format!("{}-{}", lo + 1, hi + 1),
            cal.count(n).to_string(),
            cal.width(n).to_string(),
            format!("{:.2}", cal.p_display(n)),
            format!("{:.2}", cal.g_display(n, 3)),
            (!cal.p_gt(n, 3)).to_string(),
        ]);
    }
    fig1b.print("Figure 1b — the calibrator: densities p(v) vs BALANCE bounds g(v,1)");

    println!("\nPaper's Figure 1b node densities: root 2, sons 2.5 / 1.5, leaves 3 2 1 2.");
}
