//! E11 (extension) — throughput scaling of the range-sharded wrapper.
//!
//! The paper's algorithms are sequential; `dsf-concurrent` shards the key
//! space so stripes proceed in parallel, each keeping the per-command
//! worst-case bound. This experiment measures wall-clock insert throughput
//! as threads grow, for shard counts 1..16, with every thread writing its
//! own uniformly-spread key slice (the friendly case) and with all threads
//! hammering one stripe (the skewed case where sharding cannot help).
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_shard_scaling`

use dsf_bench::Table;
use dsf_concurrent::ShardedFile;
use dsf_core::DenseFileConfig;
use std::sync::Arc;
use std::time::Instant;

const OPS_PER_THREAD: usize = 3_000;

fn throughput(shards: u32, threads: u64, skewed: bool) -> f64 {
    let per_shard = DenseFileConfig::control2(1024, 32, 96);
    let file: Arc<ShardedFile<u64>> = Arc::new(ShardedFile::new(shards, per_shard).unwrap());
    let start = Instant::now();
    let mut handles = Vec::new();
    for t in 0..threads {
        let file = Arc::clone(&file);
        handles.push(std::thread::spawn(move || {
            // Each thread owns a disjoint congruence class of keys; skewed
            // mode squeezes all keys into the first stripe.
            let space = if skewed {
                u64::MAX / u64::from(file.shard_count())
            } else {
                u64::MAX
            };
            let stride = space / (OPS_PER_THREAD as u64 * threads + 1);
            for i in 0..OPS_PER_THREAD as u64 {
                let k = (i * threads + t) * stride;
                file.insert(k, t).unwrap();
            }
        }));
    }
    for h in handles {
        h.join().unwrap();
    }
    let secs = start.elapsed().as_secs_f64();
    (OPS_PER_THREAD as f64 * threads as f64) / secs / 1e6
}

fn main() {
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    println!("Insert throughput (million ops/s), {OPS_PER_THREAD} inserts per thread, per-shard");
    println!("geometry M=1024, d=32, D=96. Wall-clock, so numbers vary run to run;");
    println!("the *scaling shape* is the result. Detected {cores} hardware thread(s) —");
    println!("scaling beyond that count reflects lock overhead only.\n");

    let mut t = Table::new(["shards", "1 thread", "2 threads", "4 threads", "8 threads"]);
    for &shards in &[1u32, 4, 16] {
        let mut row = vec![shards.to_string()];
        for &threads in &[1u64, 2, 4, 8] {
            row.push(format!("{:.2}", throughput(shards, threads, false)));
        }
        t.row(row);
    }
    t.print("E11a — uniform writers (each thread spread over the whole space)");

    let mut t = Table::new(["shards", "1 thread", "2 threads", "4 threads", "8 threads"]);
    for &shards in &[4u32, 16] {
        let mut row = vec![shards.to_string()];
        for &threads in &[1u64, 2, 4, 8] {
            row.push(format!("{:.2}", throughput(shards, threads, true)));
        }
        t.row(row);
    }
    t.print("E11b — skewed writers (everyone hammers stripe 0)");

    println!("\nReading: on a multi-core host, uniform writers scale with threads");
    println!("once shards outnumber them, while skewed writers serialize on one");
    println!("stripe's write lock regardless of shard count — range partitioning");
    println!("helps exactly as much as the key distribution lets it. (On a");
    println!("single-core host both tables only show the locking overhead of");
    println!("extra threads.)");
}
