//! Figures 3 & 4 of the paper — Example 5.2 reproduced exactly.
//!
//! The 8-page file with d=9, D=18, J=3 starts in Figure 4's t₀ state;
//! command Z₁ inserts a record into page 8 and Z₂ into page 1. The program
//! prints the calibration tree (Figure 3), the step-by-step narration of
//! both commands, and the 9-row table of per-page record counts at the
//! flag-stable moments t₀…t₈ (Figure 4), checking every row against the
//! paper's published values.
//!
//! Run: `cargo run -p dsf-bench --bin fig4_example`

use dsf_bench::Table;
use dsf_core::trace::StepEvent;
use dsf_core::{DenseFile, DenseFileConfig, MacroBlocking};

/// Figure 4 as published.
const FIGURE_4: [[u64; 8]; 9] = [
    [16, 1, 0, 1, 9, 9, 9, 16],
    [16, 1, 0, 1, 9, 9, 9, 17],
    [16, 1, 0, 1, 9, 9, 15, 11],
    [16, 1, 0, 1, 9, 9, 15, 11],
    [16, 2, 0, 0, 9, 9, 15, 11],
    [17, 2, 0, 0, 9, 9, 15, 11],
    [4, 15, 0, 0, 9, 9, 15, 11],
    [15, 4, 0, 0, 9, 9, 15, 11],
    [15, 9, 0, 0, 4, 9, 15, 11],
];

/// Paper node names for the 8-page calibrator, by heap index.
fn node_name(heap: u32) -> String {
    match heap {
        1..=7 => format!("v{heap}"),
        8..=15 => format!("L{}", heap - 7),
        _ => format!("#{heap}"),
    }
}

fn main() {
    let cfg = DenseFileConfig::control2(8, 9, 18)
        .with_j(3)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut file: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();
    let layout: Vec<Vec<(u64, ())>> = FIGURE_4[0]
        .iter()
        .enumerate()
        .map(|(s, &n)| (0..n).map(|i| (s as u64 * 1000 + i + 1, ())).collect())
        .collect();
    file.bulk_load_per_slot(layout).unwrap();

    // Figure 3: the calibration tree.
    let cal = file.calibrator();
    let mut fig3 = Table::new(["node", "depth", "range (pages)", "N_v", "p(v)"]);
    let mut nodes = cal.all_nodes();
    nodes.sort_by_key(|n| (n.depth(), n.0));
    for n in nodes {
        let (lo, hi) = cal.range(n);
        fig3.row([
            node_name(n.0),
            n.depth().to_string(),
            format!("{}-{}", lo + 1, hi + 1),
            cal.count(n).to_string(),
            format!("{:.2}", cal.p_display(n)),
        ]);
    }
    fig3.print("Figure 3 — the calibration tree for the 8-page file (at t0)");

    // Run Z1 and Z2 with the step trace on, narrating events.
    file.enable_step_trace();
    println!("\nZ1: insert a record into page 8");
    file.insert(7_500, ()).unwrap();
    println!("Z2: insert a record into page 1");
    file.insert(500, ()).unwrap();

    let mut rows: Vec<Vec<u64>> = vec![FIGURE_4[0].to_vec()];
    for ev in file.take_step_trace() {
        match ev {
            StepEvent::Activated { node, dest } => {
                println!(
                    "  ACTIVATE({}) → warning raised, DEST = page {}",
                    node_name(node.0),
                    dest + 1
                );
            }
            StepEvent::RolledBack { node, new_dest } => {
                println!(
                    "  roll-back: DEST({}) = page {}",
                    node_name(node.0),
                    new_dest + 1
                );
            }
            StepEvent::Shifted {
                node,
                source,
                dest,
                moved,
                new_dest,
            } => {
                print!(
                    "  SHIFT({}): moved {moved} record(s) page {} → page {}",
                    node_name(node.0),
                    source + 1,
                    dest + 1
                );
                match new_dest {
                    Some(nd) => println!(", DEST advances to page {}", nd + 1),
                    None => println!(),
                }
            }
            StepEvent::WarningLowered { node } => {
                println!("  warning lowered on {}", node_name(node.0));
            }
            StepEvent::FlagStable { slot_counts, .. } => rows.push(slot_counts),
            _ => {}
        }
    }

    let mut fig4 = Table::new([
        "t",
        "L1",
        "L2",
        "L3",
        "L4",
        "L5",
        "L6",
        "L7",
        "L8",
        "matches paper",
    ]);
    let mut all_match = true;
    for (i, row) in rows.iter().enumerate() {
        let ok = row.as_slice() == FIGURE_4[i].as_slice();
        all_match &= ok;
        let mut cells = vec![format!("t{i}")];
        cells.extend(row.iter().map(|c| c.to_string()));
        cells.push(ok.to_string());
        fig4.row(cells);
    }
    fig4.print("Figure 4 — record distribution at the flag-stable moments t0..t8");

    file.check_invariants().unwrap();
    println!(
        "\nAll {} rows match the paper: {}",
        rows.len(),
        if all_match {
            "YES"
        } else {
            "NO — mismatch above!"
        }
    );
    assert!(all_match, "Figure 4 reproduction failed");
}
