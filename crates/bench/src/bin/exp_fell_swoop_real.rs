//! E9b — fell swoop, for real: physical run-coalesced I/O vs per-page I/O.
//!
//! `exp_fell_swoop` quantifies the paper's §4 remark ("CONTROL 2 … can be
//! programmed to access adjacent pages in one fell swoop during its update
//! task") with an LRU *simulation*. This experiment does it against a real
//! on-disk [`PhysicalImage`]: it records the page trace of a J-shift-heavy
//! insert workload, then replays that trace through a write-back
//! [`BufferPool`] twice —
//!
//! * **per-page** (coalescing off): every pool miss issues a single-page
//!   read syscall and every writeback/flush a single-page write syscall —
//!   the historical one-page-at-a-time discipline;
//! * **coalesced** (coalescing on): the trace's run log drives
//!   [`BufferPool::fetch_run`], so each maximal stretch of missing pages
//!   becomes one seek + one read syscall; eviction writebacks absorb the
//!   adjacent dirty frames into the same write call, and the final flush
//!   writes dirty pages in maximal contiguous runs.
//!
//! Both replays do the same logical work against the same image; the
//! difference is purely how page transfers are batched. Reported per path:
//! real syscalls (from [`IoReport`]), modelled milliseconds (the
//! [`DiskModel`]'s seek/rotate/transfer parameters priced per physical
//! call), and wall-clock. The run also cross-checks that the pool's
//! hit/miss counters reconcile exactly with an [`LruCacheSim`] replay of
//! the same trace at the same capacity.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_fell_swoop_real`
//! (pass `--quick` for the CI-sized variant). Writes
//! `BENCH_fell_swoop.json` into the current directory.

use std::time::Instant;

use dsf_core::{DenseFile, DenseFileConfig};
use dsf_durable::{IoReport, PhysicalImage};
use dsf_pagestore::disk::DiskModel;
use dsf_pagestore::{AccessEvent, AccessKind, BufferPool, CacheStats, LruCacheSim, PageRun};

/// Pool frames for both replay paths.
const POOL_CAPACITY: usize = 32;
/// Insert hot points; spread so the pool cannot hold every region at once.
const HOT_POINTS: u64 = 8;

struct PathResult {
    label: &'static str,
    io: IoReport,
    stats: CacheStats,
    modelled_ms: f64,
    wall_ms: f64,
}

/// Prices an [`IoReport`] with the disk model's parameters: every syscall
/// pays one seek + rotational latency, every page its transfer time.
fn modelled_ms(m: &DiskModel, io: &IoReport) -> f64 {
    io.seeks as f64 * (m.avg_seek_ms + m.rotational_latency_ms)
        + (io.pages_read + io.pages_written) as f64 * m.transfer_ms_per_page
}

/// Builds the workload file and returns its recorded trace (events + runs).
fn build_workload(pages: u32) -> (DenseFile<u64, u64>, Vec<AccessEvent>, Vec<PageRun>) {
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, 6, 8)).unwrap();
    assert!(f.config().k > 1, "macro-block regime expected");
    let capacity = f.capacity();
    let backbone = capacity * 3 / 5;
    let stride = u64::MAX / (backbone + 1);
    f.bulk_load((0..backbone).map(|i| (i * stride, i))).unwrap();

    // J-shift-heavy inserts: cycle over HOT_POINTS far-apart regions, each
    // insert landing in an already-dense neighbourhood so CONTROL 2 runs
    // its multi-page SHIFT sweeps; cycling defeats the pool's recency so
    // revisits refault whole spans.
    f.io_trace().set_enabled(true);
    let budget = capacity - backbone - HOT_POINTS;
    let mut inserted = 0u64;
    'outer: for round in 0..budget {
        for h in 0..HOT_POINTS {
            let region = (h + 1) * (backbone / (HOT_POINTS + 1)) * stride;
            let key = region + round * 37 + h + 1;
            match f.insert(key, round) {
                Ok(_) => inserted += 1,
                Err(_) => break 'outer,
            }
            if inserted >= budget {
                break 'outer;
            }
        }
    }
    let events = f.io_trace().take();
    let runs = f.io_trace().take_runs();
    f.io_trace().set_enabled(false);
    assert!(!events.is_empty());
    (f, events, runs)
}

fn replay_per_page(img: PhysicalImage, events: &[AccessEvent]) -> PathResult {
    let mut pool = BufferPool::new(img, POOL_CAPACITY);
    pool.set_coalescing(false);
    let start = Instant::now();
    let stats = pool.replay(events).unwrap();
    pool.flush_all().unwrap();
    let mut img = pool.into_backend().unwrap();
    img.sync().unwrap();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let io = img.io_totals();
    PathResult {
        label: "per-page",
        io,
        stats,
        modelled_ms: modelled_ms(&DiskModel::modern_hdd(), &io),
        wall_ms,
    }
}

fn replay_coalesced(img: PhysicalImage, runs: &[PageRun]) -> PathResult {
    let mut pool = BufferPool::new(img, POOL_CAPACITY);
    let start = Instant::now();
    for run in runs {
        pool.fetch_run(run.start, run.len).unwrap();
        if run.kind == AccessKind::Write {
            for page in run.start..run.end() {
                pool.get_mut(page).unwrap();
            }
        }
    }
    pool.flush_all().unwrap();
    let stats = pool.stats().as_cache_stats();
    let mut img = pool.into_backend().unwrap();
    img.sync().unwrap();
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;
    let io = img.io_totals();
    PathResult {
        label: "coalesced",
        io,
        stats,
        modelled_ms: modelled_ms(&DiskModel::modern_hdd(), &io),
        wall_ms,
    }
}

fn report_line(r: &PathResult) {
    println!(
        "  {:<9}  {:>8} syscalls ({:>7} rd, {:>6} wr)  {:>9} pages  {:>10.1} modelled ms  {:>8.1} wall ms",
        r.label,
        r.io.io_calls(),
        r.io.read_calls,
        r.io.write_calls,
        r.io.pages_read + r.io.pages_written,
        r.modelled_ms,
        r.wall_ms,
    );
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pages: u32 = if quick { 256 } else { 1024 };

    println!("E9b — fell-swoop physical I/O (M={pages}, d=6, D=8, pool={POOL_CAPACITY} frames)");
    let (dense, events, runs) = build_workload(pages);
    println!(
        "workload: {} logical page accesses, coalesced into {} runs ({:.1}× fold)",
        events.len(),
        runs.len(),
        events.len() as f64 / runs.len() as f64
    );

    // The on-disk image both replay paths run against.
    let path = std::env::temp_dir().join(format!("dsf-fell-swoop-{}.img", std::process::id()));
    PhysicalImage::create(&dense, &path, 4096).unwrap();

    let per_page = replay_per_page(PhysicalImage::open_rw(&path).unwrap(), &events);
    let coalesced = replay_coalesced(PhysicalImage::open_rw(&path).unwrap(), &runs);
    std::fs::remove_file(&path).ok();
    report_line(&per_page);
    report_line(&coalesced);

    let call_ratio = per_page.io.io_calls() as f64 / coalesced.io.io_calls() as f64;
    let ms_ratio = per_page.modelled_ms / coalesced.modelled_ms;
    println!(
        "\nfell swoop: {call_ratio:.1}× fewer physical I/O syscalls, {ms_ratio:.1}× lower modelled time"
    );
    assert!(
        call_ratio >= 2.0,
        "expected ≥2× syscall reduction, got {call_ratio:.2}×"
    );
    assert!(
        ms_ratio > 1.0,
        "expected lower modelled ms, got {ms_ratio:.2}×"
    );

    // Counter reconciliation: the pool's policy is the simulator's policy.
    let sim = LruCacheSim::new(POOL_CAPACITY).replay(&events);
    assert_eq!(
        per_page.stats, sim,
        "BufferPool counters must reconcile with LruCacheSim replay"
    );
    assert_eq!(sim.hits + sim.misses, sim.accesses);
    println!(
        "reconciled: pool {{hits {}, misses {}}} == LruCacheSim at capacity {POOL_CAPACITY}",
        sim.hits, sim.misses
    );

    let json = format!(
        "{{\n  \"experiment\": \"fell_swoop_real\",\n  \"quick\": {quick},\n  \"m_pages\": {pages},\n  \"pool_frames\": {POOL_CAPACITY},\n  \"logical_accesses\": {},\n  \"logical_runs\": {},\n  \"per_page\": {{ \"io_calls\": {}, \"read_calls\": {}, \"write_calls\": {}, \"pages_moved\": {}, \"modelled_ms\": {:.2}, \"wall_ms\": {:.2} }},\n  \"coalesced\": {{ \"io_calls\": {}, \"read_calls\": {}, \"write_calls\": {}, \"pages_moved\": {}, \"modelled_ms\": {:.2}, \"wall_ms\": {:.2} }},\n  \"io_call_ratio\": {:.2},\n  \"modelled_ms_ratio\": {:.2},\n  \"pool_reconciles_with_sim\": true\n}}\n",
        events.len(),
        runs.len(),
        per_page.io.io_calls(),
        per_page.io.read_calls,
        per_page.io.write_calls,
        per_page.io.pages_read + per_page.io.pages_written,
        per_page.modelled_ms,
        per_page.wall_ms,
        coalesced.io.io_calls(),
        coalesced.io.read_calls,
        coalesced.io.write_calls,
        coalesced.io.pages_read + coalesced.io.pages_written,
        coalesced.modelled_ms,
        coalesced.wall_ms,
        call_ratio,
        ms_ratio,
    );
    std::fs::write("BENCH_fell_swoop.json", json).unwrap();
    println!("wrote BENCH_fell_swoop.json");
}
