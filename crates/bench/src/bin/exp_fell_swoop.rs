//! E9 — the paper's coefficient remark (§5 close): "the asymptote
//! O(log²M/(D−d)) definitely over-estimates CONTROL 2's real cost because
//! CONTROL 2, unlike a B-tree procedure, can be programmed to access
//! adjacent pages in one fell swoop during its update task."
//!
//! The J SHIFTs of one command revisit a handful of adjacent pages, so even
//! a tiny buffer pool absorbs most of them; a B-tree's updates scatter over
//! its nodes. This experiment replays each structure's update trace through
//! LRU pools of increasing size and reports the *effective* (miss) cost per
//! command.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_fell_swoop`

use dsf_bench::{f, BTreeDriver, DenseDriver, Driver, Table};
use dsf_core::DenseFileConfig;
use dsf_pagestore::LruCacheSim;

const PAGES: u32 = 1024;
const D_MIN: u32 = 8;
const D_MAX: u32 = 40;

fn update_trace(d: &mut (impl Driver + ?Sized)) -> (u64, Vec<dsf_pagestore::AccessEvent>) {
    let backbone: Vec<u64> = (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
        .map(|i| i << 32)
        .collect();
    d.bulk_backbone(&backbone);
    let keys = dsf_workloads::hammer(backbone.len(), 5 << 32, 1);
    d.take_trace();
    d.set_trace(true);
    let before = d.accesses();
    for &k in &keys {
        if !d.insert(k) {
            break;
        }
    }
    let raw = d.accesses() - before;
    let trace = d.take_trace();
    d.set_trace(false);
    (raw / keys.len() as u64, trace)
}

fn main() {
    let mut c2 = DenseDriver::new("control2", DenseFileConfig::control2(PAGES, D_MIN, D_MAX));
    let mut bt = BTreeDriver::new(D_MAX as usize);
    let (c2_raw, c2_trace) = update_trace(&mut c2);
    let (bt_raw, bt_trace) = update_trace(&mut bt);
    let commands = (u64::from(PAGES) * u64::from(D_MIN) / 2) as f64;

    println!("Hammer to capacity (M={PAGES}, d={D_MIN}, D={D_MAX}); raw page accesses per");
    println!("command: control2 ≈ {c2_raw}, b+tree ≈ {bt_raw}. Replaying both update");
    println!("traces through an LRU buffer pool:");

    let mut t = Table::new([
        "pool (pages)",
        "c2 misses/cmd",
        "c2 hit rate",
        "btree misses/cmd",
        "btree hit rate",
    ]);
    for &cap in &[1usize, 2, 4, 8, 16, 32, 64, 128] {
        let c2s = LruCacheSim::new(cap).replay(&c2_trace);
        let bts = LruCacheSim::new(cap).replay(&bt_trace);
        t.row([
            cap.to_string(),
            f(c2s.misses as f64 / commands),
            format!("{:.0}%", c2s.hit_rate() * 100.0),
            f(bts.misses as f64 / commands),
            format!("{:.0}%", bts.hit_rate() * 100.0),
        ]);
    }
    t.print("E9 — effective update cost under a buffer pool (misses per command)");

    println!("\nReading: CONTROL 2's shift traffic is so local that a pool of a few");
    println!("pages absorbs most of it — the effective per-command I/O drops far");
    println!("below the raw J-shift count, confirming the paper's remark that the");
    println!("asymptote over-estimates the real constant. The B-tree profits too");
    println!("(its root and the hammered leaf stay hot) but from a lower raw cost;");
    println!("the gap between the structures narrows sharply once any realistic");
    println!("buffer pool is present.");
}
