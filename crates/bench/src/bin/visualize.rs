//! An ASCII visualizer for the calibrator — watch CONTROL 2 think.
//!
//! Renders the calibrator tree (densities `p(v)` against the four `g(v,·)`
//! thresholds, warning flags, DEST pointers) and the per-page fill bars
//! after every command of a small scripted session, so the evolutionary
//! shifting is visible frame by frame. Defaults to the paper's Example 5.2
//! file; pass `--pages N --min-density d --max-density D --j J` for other
//! small geometries and `--commands N` for a longer hammer session.
//!
//! Run: `cargo run --release -p dsf-bench --bin visualize`

use dsf_core::{DenseFile, DenseFileConfig, MacroBlocking, NodeId};

fn flag(args: &[String], name: &str) -> Option<u32> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}

fn bar(count: u64, max: u64, width: usize) -> String {
    let filled = ((count as f64 / max as f64) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled.min(width) { '#' } else { '.' });
    }
    s
}

fn render(file: &DenseFile<u64, ()>, title: &str) {
    let cal = file.calibrator();
    println!("\n=== {title} ===");
    // Per-page fill bars.
    let (_, dmax) = cal.densities();
    for (s, &n) in file.slot_counts().iter().enumerate() {
        println!("  page {:>2} |{}| {:>3}", s + 1, bar(n, dmax, 24), n);
    }
    // The tree, depth by depth.
    let mut nodes = cal.all_nodes();
    nodes.sort_by_key(|n| (n.depth(), n.0));
    let mut depth = u32::MAX;
    for n in nodes {
        if n.depth() != depth {
            depth = n.depth();
            println!("  -- depth {depth} --");
        }
        let (lo, hi) = cal.range(n);
        let warn = if cal.is_warned(n) {
            format!(" WARN dest=page {}", cal.dest(n) + 1)
        } else {
            String::new()
        };
        println!(
            "  node {:>3} pages {:>2}-{:<2}  p={:>6.2}  g0={:>6.2} g1/3={:>6.2} g2/3={:>6.2} g1={:>6.2}{}",
            if n == NodeId::ROOT { "root".into() } else { n.0.to_string() },
            lo + 1,
            hi + 1,
            cal.p_display(n),
            cal.g_display(n, 0),
            cal.g_display(n, 1),
            cal.g_display(n, 2),
            cal.g_display(n, 3),
            warn,
        );
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let pages = flag(&args, "--pages").unwrap_or(8);
    let d = flag(&args, "--min-density").unwrap_or(9);
    let big_d = flag(&args, "--max-density").unwrap_or(18);
    let j = flag(&args, "--j").unwrap_or(3);
    let commands = flag(&args, "--commands").unwrap_or(0) as u64;

    let cfg = DenseFileConfig::control2(pages, d, big_d)
        .with_j(j)
        .with_macro_blocking(MacroBlocking::Disabled);
    let mut file: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();

    if commands == 0 && pages == 8 && d == 9 && big_d == 18 {
        // The paper's Example 5.2 session.
        let counts = [16u64, 1, 0, 1, 9, 9, 9, 16];
        let layout: Vec<Vec<(u64, ())>> = counts
            .iter()
            .enumerate()
            .map(|(s, &n)| (0..n).map(|i| (s as u64 * 1000 + i + 1, ())).collect())
            .collect();
        file.bulk_load_per_slot(layout).unwrap();
        render(&file, "t0 — the Example 5.2 initial state");
        file.insert(7_500, ()).unwrap();
        render(&file, "after Z1 — insert into page 8 (t4)");
        file.insert(500, ()).unwrap();
        render(&file, "after Z2 — insert into page 1 (t8)");
    } else {
        // A hammer session on the requested geometry.
        let n0 = file.capacity() / 2;
        file.bulk_load((0..n0).map(|i| (i << 20, ()))).unwrap();
        render(&file, "bulk-loaded to half capacity");
        let room = (file.capacity() - file.len()).min(commands.max(8)) as usize;
        let keys = dsf_workloads::hammer(room, 5 << 20, 1);
        let step = (keys.len() / 4).max(1);
        for (i, k) in keys.iter().enumerate() {
            file.insert(*k, ()).unwrap();
            if (i + 1) % step == 0 || i + 1 == keys.len() {
                render(&file, &format!("after {} hammer inserts", i + 1));
            }
        }
    }
    file.check_invariants().expect("invariants hold");
    println!("\nall invariants hold; stats:\n{}", file.op_stats());
}
