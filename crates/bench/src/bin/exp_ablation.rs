//! E8 — ablations of CONTROL 2's design devices.
//!
//! The paper motivates three devices: the ACTIVATE *roll-back rules*
//! ("preventing fatal thrashes between two warning state nodes whose
//! destination pointers are traversing overlapping ranges"), the ⅓/⅔
//! warning *hysteresis*, and SELECT's *deepest-first* prioritization.
//! Three measurements:
//!
//! 1. the paper's own Example 5.2 replayed with roll-back disabled — the
//!    repair pass after Z₂ then aims at a stale pointer and the hammered
//!    page pair is left unbalanced;
//! 2. the minimal `J` preserving BALANCE under two adversaries, per ablated
//!    variant — collapsing the hysteresis roughly doubles the shift budget
//!    the file needs;
//! 3. shift-traffic statistics per variant at the default `J`.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_ablation`

use dsf_bench::{balance_violations, f, Table};
use dsf_core::{AblationTweaks, DenseFile, DenseFileConfig, MacroBlocking};

const NO_ROLLBACK: AblationTweaks = AblationTweaks {
    disable_rollback: true,
    narrow_hysteresis: false,
    select_shallowest: false,
};
const NARROW_HYST: AblationTweaks = AblationTweaks {
    disable_rollback: false,
    narrow_hysteresis: true,
    select_shallowest: false,
};
const SHALLOW_SEL: AblationTweaks = AblationTweaks {
    disable_rollback: false,
    narrow_hysteresis: false,
    select_shallowest: true,
};

fn variants() -> [(&'static str, AblationTweaks); 4] {
    [
        ("paper (all devices)", AblationTweaks::default()),
        ("no roll-back", NO_ROLLBACK),
        ("narrow hysteresis", NARROW_HYST),
        ("shallowest SELECT", SHALLOW_SEL),
    ]
}

// ---------------------------------------------------------------------
// Part 1: Example 5.2 with and without the roll-back rules.
// ---------------------------------------------------------------------

fn example_5_2(tw: AblationTweaks) -> DenseFile<u64, ()> {
    let cfg = DenseFileConfig::control2(8, 9, 18)
        .with_j(3)
        .with_macro_blocking(MacroBlocking::Disabled)
        .with_tweaks(tw);
    let mut f = DenseFile::new(cfg).unwrap();
    let counts = [16usize, 1, 0, 1, 9, 9, 9, 16];
    let layout: Vec<Vec<(u64, ())>> = counts
        .iter()
        .enumerate()
        .map(|(s, &n)| {
            (0..n)
                .map(|i| (s as u64 * 1000 + i as u64 + 1, ()))
                .collect()
        })
        .collect();
    f.bulk_load_per_slot(layout).unwrap();
    f.insert(7_500, ()).unwrap(); // Z₁ — into page 8
    f.insert(500, ()).unwrap(); // Z₂ — into page 1
    f
}

fn part1() {
    let mut t = Table::new([
        "variant",
        "final distribution (pages 1..8)",
        "roll-backs",
        "pages 1-2 imbalance",
    ]);
    for (name, tw) in [
        ("paper", AblationTweaks::default()),
        ("no roll-back", NO_ROLLBACK),
    ] {
        let file = example_5_2(tw);
        let counts = file.slot_counts();
        let imbalance = counts[0].abs_diff(counts[1]);
        t.row([
            name.to_string(),
            format!("{counts:?}"),
            file.op_stats().rollbacks.to_string(),
            imbalance.to_string(),
        ]);
    }
    t.print("E8.1 — Example 5.2 (M=8, d=9, D=18, J=3) with roll-back ablated");
    println!("The paper's run repairs the hammered pages 1-2 to (15, 9); without the");
    println!("roll-back, SHIFT(v3) resumes at its stale pointer, drains page 5 into");
    println!("page 3 and leaves pages 1-2 at (4, 15) — exactly the un-repaired damage");
    println!("the roll-back rules exist to chase.");
}

// ---------------------------------------------------------------------
// Part 2: minimal J per variant.
// ---------------------------------------------------------------------

fn survives(pages: u32, d: u32, dd: u32, j: u32, tw: AblationTweaks, keys: &[u64]) -> bool {
    let mut f: DenseFile<u64, u64> = DenseFile::new(
        DenseFileConfig::control2(pages, d, dd)
            .with_j(j)
            .with_tweaks(tw),
    )
    .unwrap();
    let pre = f.capacity() / 2;
    f.bulk_load((0..pre).map(|i| (i << 32, i))).unwrap();
    for &k in keys {
        if f.insert(k, 0).is_err() {
            return false;
        }
        if balance_violations(&f) > 0 {
            return false;
        }
    }
    true
}

fn minimal_j(pages: u32, d: u32, dd: u32, tw: AblationTweaks) -> u32 {
    let cfg = DenseFileConfig::control2(pages, d, dd).resolve().unwrap();
    let room = (cfg.capacity() / 2) as usize;
    let hammer = dsf_workloads::hammer(room, 5 << 32, 1);
    let l = dsf_workloads::hammer(room / 2, 5 << 32, 1);
    let r = dsf_workloads::ascending(room - room / 2, (6 << 32) + 1, 1);
    let two: Vec<u64> = l.iter().zip(r.iter()).flat_map(|(&a, &b)| [a, b]).collect();
    let mut j = 1;
    loop {
        if survives(pages, d, dd, j, tw, &hammer)
            && survives(pages, d, dd, j, tw, &two)
            && survives(pages, d, dd, j + 1, tw, &hammer)
            && survives(pages, d, dd, j + 1, tw, &two)
        {
            return j;
        }
        j += 1;
        assert!(j < 2_000, "no J survives for this variant");
    }
}

fn part2() {
    let mut t = Table::new(["variant", "M=256 gap=25", "M=512 gap=28", "M=1024 gap=32"]);
    for (name, tw) in variants() {
        t.row([
            name.to_string(),
            minimal_j(256, 8, 33, tw).to_string(),
            minimal_j(512, 8, 36, tw).to_string(),
            minimal_j(1024, 8, 40, tw).to_string(),
        ]);
    }
    t.print("E8.2 — minimal J preserving BALANCE, per ablated variant");
    println!("Collapsing the hysteresis band makes flags flap — a node is lowered the");
    println!("moment it dips under g(·,2/3) and must be re-activated (resetting its");
    println!("DEST to the far end) on the next insertion — so roughly twice the");
    println!("shift budget is needed for the same guarantee.");
}

// ---------------------------------------------------------------------
// Part 3: shift traffic at the default J.
// ---------------------------------------------------------------------

fn part3() {
    let mut t = Table::new([
        "variant",
        "mean",
        "worst",
        "shifts",
        "records shifted",
        "activations",
        "flags lowered",
        "no-source",
        "violations",
    ]);
    for (name, tw) in variants() {
        let mut file: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(512, 8, 36).with_tweaks(tw)).unwrap();
        let pre = file.capacity() / 2;
        file.bulk_load((0..pre).map(|i| (i << 32, i))).unwrap();
        let room = (file.capacity() - file.len()) as usize;
        let mut viol = 0u64;
        for k in dsf_workloads::hammer(room, 5 << 32, 1) {
            file.insert(k, 0).unwrap();
            viol += balance_violations(&file) as u64;
        }
        let s = file.op_stats();
        t.row([
            name.to_string(),
            f(s.mean_accesses()),
            s.max_accesses.to_string(),
            s.shifts.to_string(),
            s.records_shifted.to_string(),
            s.activations.to_string(),
            s.flags_lowered.to_string(),
            s.no_source_shifts.to_string(),
            viol.to_string(),
        ]);
    }
    t.print("E8.3 — shift traffic under the hammer at the default J (M=512, gap=28)");
    println!("At the (safe) default J every variant keeps BALANCE, but narrow");
    println!("hysteresis visibly churns: more activations, more flag transitions,");
    println!("more records moved for the same net work. The roll-back and SELECT");
    println!("devices are worst-case insurance — these oblivious adversaries do not");
    println!("excite them (E8.1 shows the state damage they exist to repair).");
}

fn main() {
    part1();
    part2();
    part3();
}
