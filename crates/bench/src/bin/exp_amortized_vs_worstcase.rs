//! E2 — the paper's motivation for CONTROL 2: CONTROL 1 (and its modern
//! descendant, the amortized PMA) achieve the same *amortized* cost but
//! suffer `O(M)`-page spikes on individual commands; CONTROL 2 trades a
//! slightly higher mean for a bounded worst case.
//!
//! Both a uniform insert stream and the adversarial hammer are replayed
//! against CONTROL 1, CONTROL 2 and the PMA at identical geometry; the
//! table reports mean / p99 / worst page accesses per command.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_amortized_vs_worstcase`

use dsf_bench::{f, profile_inserts, DenseDriver, Driver, PmaDriver, Table};
use dsf_core::DenseFileConfig;

const PAGES: u32 = 1024;
const D_MIN: u32 = 8;
const D_MAX: u32 = 40;

fn drivers() -> Vec<Box<dyn Driver>> {
    vec![
        Box::new(DenseDriver::new(
            "control2",
            DenseFileConfig::control2(PAGES, D_MIN, D_MAX),
        )),
        Box::new(DenseDriver::new(
            "control1",
            DenseFileConfig::control1(PAGES, D_MIN, D_MAX),
        )),
        Box::new(PmaDriver::new(PAGES, D_MAX, D_MIN)),
    ]
}

fn replay(title: &str, keys_for: impl Fn(u64) -> Vec<u64>) {
    let mut t = Table::new([
        "structure",
        "commands",
        "mean",
        "p99",
        "worst",
        "worst/mean",
    ]);
    for mut d in drivers() {
        // Half-full uniform backbone, bulk-loaded so every structure starts
        // from its natural freshly-organized state.
        let backbone: Vec<u64> = (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
            .map(|i| i << 32)
            .collect();
        d.bulk_backbone(&backbone);
        let keys = keys_for(backbone.len() as u64);
        let p = profile_inserts(d.as_mut(), &keys);
        t.row([
            d.name().to_string(),
            p.ops.to_string(),
            f(p.mean),
            p.p99.to_string(),
            p.max.to_string(),
            f(p.max as f64 / p.mean.max(1e-9)),
        ]);
    }
    t.print(title);
}

fn main() {
    let room = (u64::from(PAGES) * u64::from(D_MIN) / 2) as usize;

    // Uniform keys are drawn inside the backbone's key range (odd values,
    // so they never collide with the even backbone keys).
    let universe = (u64::from(PAGES) * u64::from(D_MIN) / 2) << 32;
    replay(
        "E2a — uniform inserts to capacity (M=1024, d=8, D=40)",
        |_n| {
            dsf_workloads::uniform_unique(42, room, 1, universe)
                .into_iter()
                .map(|k| k | 1)
                .collect()
        },
    );

    replay(
        "E2b — adversarial hammer to capacity (same geometry)",
        |_n| dsf_workloads::hammer(room, 5 << 32, 1),
    );

    println!("\nReading: uniform inserts never stress any of the three — every");
    println!("command costs the bare probe-plus-write. Under the hammer all three");
    println!("keep comparable means (the shared amortized O(log²M/(D−d)) bound),");
    println!("but CONTROL 1 and the PMA pay occasional commands hundreds of times");
    println!("the mean — a full-subtree redistribution — while CONTROL 2's worst");
    println!("command stays within its fixed J-shift budget. This de-amortization");
    println!("is the paper's contribution.");
}
