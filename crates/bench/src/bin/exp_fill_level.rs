//! E12 (extension) — update cost as the file fills.
//!
//! The PMA literature that grew out of this paper plots a characteristic
//! curve: maintenance cost is negligible at low occupancy and climbs as
//! the structure approaches its capacity, because every insertion lands
//! closer to a density threshold. This experiment measures CONTROL 2's
//! per-command cost (mean and worst) in occupancy bands from 10% to 100%,
//! under both uniform and hammer insertion, and reports where the climb
//! happens relative to the `d/D` slack.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_fill_level`

use dsf_bench::{f, Table};
use dsf_core::{DenseFile, DenseFileConfig};

const PAGES: u32 = 1024;

fn run(d: u32, big_d: u32, hammer: bool) -> Vec<(u64, f64, u64)> {
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(PAGES, d, big_d)).unwrap();
    let cap = file.capacity();
    let keys: Vec<u64> = if hammer {
        dsf_workloads::hammer(cap as usize, 1 << 40, 1)
    } else {
        dsf_workloads::uniform_unique(3, cap as usize, 0, u64::MAX >> 1)
    };
    let mut out = Vec::new();
    let band = cap / 10;
    let mut band_total = 0u64;
    let mut band_max = 0u64;
    let mut band_ops = 0u64;
    for (i, &k) in keys.iter().enumerate() {
        let snap = file.io_stats().snapshot();
        if file.insert(k, 0).is_err() {
            break; // duplicates in uniform mode can under-fill; fine
        }
        let c = file.io_stats().since(snap).accesses();
        band_total += c;
        band_max = band_max.max(c);
        band_ops += 1;
        if (i as u64 + 1).is_multiple_of(band) {
            let pct = (i as u64 + 1) * 100 / cap;
            out.push((pct, band_total as f64 / band_ops as f64, band_max));
            band_total = 0;
            band_max = 0;
            band_ops = 0;
        }
    }
    out
}

fn main() {
    println!("Per-command page accesses in 10%-occupancy bands (M={PAGES}).\n");
    let mut t = Table::new([
        "fill band",
        "uniform mean (d=8,D=40)",
        "uniform worst",
        "hammer mean (d=8,D=40)",
        "hammer worst",
        "hammer mean (d=32,D=40)",
        "hammer worst ",
    ]);
    let u = run(8, 40, false);
    let h = run(8, 40, true);
    let ht = run(32, 40, true);
    for i in 0..u.len().min(h.len()).min(ht.len()) {
        t.row([
            format!("{:>3}%", u[i].0),
            f(u[i].1),
            u[i].2.to_string(),
            f(h[i].1),
            h[i].2.to_string(),
            f(ht[i].1),
            ht[i].2.to_string(),
        ]);
    }
    t.print("E12 — update cost vs occupancy");

    println!("\nReading: growing a file from empty is itself mild density pressure —");
    println!("every new key lands in its predecessor's slot, so records clump and");
    println!("shifts keep clearing room even under uniform keys (contrast E10,");
    println!("where a bulk-loaded file at steady state pays the bare 2.0). The");
    println!("important shape: the mean is remarkably *flat* across occupancy bands");
    println!("and every band's worst command respects the same J budget — there is");
    println!("no near-full blow-up, because CONTROL 2's per-command spend is capped");
    println!("by construction. (The blow-up the PMA literature warns about is the");
    println!("amortized structures' spike column in E2.) Thin slack (d=32/D=40)");
    println!("raises the whole curve by the macro-block factor, as Theorem 5.7");
    println!("prices in.");
}
