//! E14 — telemetry overhead and reconciliation.
//!
//! The observability spine (`dsf-telemetry`) promises two things: when
//! disabled its hot-path cost is a single relaxed-load branch per
//! instrumentation site, and when enabled its `dsf_command_page_accesses`
//! histogram is *exactly* the per-command access histogram `OpStats`
//! already keeps — same count, same max, same 33 power-of-two buckets.
//!
//! This experiment measures the first claim and proves the second. It runs
//! one deterministic insert/delete workload twice over fresh files —
//! spine disabled, then spine enabled — takes the best-of-R wall time for
//! each, and then reconciles the enabled run's global histogram against
//! the file's own `OpStats` bucket for bucket. The reconciliation is a
//! hard assertion (it is the ISSUE's acceptance criterion); the overhead
//! ratio is reported, not asserted, because wall-clock noise on shared CI
//! machines dwarfs a branch.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_telemetry`
//! (pass `--quick` for the CI-sized variant). Writes
//! `BENCH_telemetry.json` into the current directory.

use std::time::Instant;

use dsf_core::{DenseFile, DenseFileConfig, OpStats};

/// One full workload pass over a fresh file: bulk-load a backbone, insert
/// a deterministic uniform key stream, then delete every other inserted
/// key. Returns the wall seconds and the file's own command statistics.
fn run_workload(pages: u32) -> (f64, OpStats) {
    let start = Instant::now();
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, 6, 8)).unwrap();
    let capacity = f.capacity();
    let backbone = capacity * 3 / 5;
    let stride = u64::MAX / (backbone + 1);
    f.bulk_load((0..backbone).map(|i| (i * stride, i))).unwrap();

    let budget = (capacity - backbone).saturating_sub(8) as usize;
    let keys = dsf_workloads::uniform_unique(0xD5F7E1, budget, 1, u64::MAX - 1);
    let mut inserted = Vec::with_capacity(keys.len());
    for (i, &k) in keys.iter().enumerate() {
        if f.insert(k, i as u64).is_ok() {
            inserted.push(k);
        }
    }
    for &k in inserted.iter().step_by(2) {
        f.remove(&k).unwrap();
    }
    (start.elapsed().as_secs_f64(), f.op_stats().clone())
}

fn best_of(reps: usize, pages: u32, before_each: impl Fn()) -> (f64, OpStats) {
    let mut best = f64::INFINITY;
    let mut last_stats = None;
    for _ in 0..reps {
        before_each();
        let (secs, stats) = run_workload(pages);
        best = best.min(secs);
        last_stats = Some(stats);
    }
    (best, last_stats.expect("reps >= 1"))
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let pages: u32 = if quick { 256 } else { 1024 };
    let reps: usize = if quick { 3 } else { 5 };

    println!("E14 — telemetry overhead & reconciliation (M={pages}, d=6, D=8, best of {reps})");

    let reg = dsf_telemetry::global();

    // Path 1: spine disabled (the default) — every instrumentation site
    // must reduce to one relaxed load and a not-taken branch.
    reg.disable();
    let (off_secs, off_stats) = best_of(reps, pages, || {});

    // Path 2: spine enabled, registry wiped before each rep so the last
    // rep's global counters describe exactly one workload pass.
    let (on_secs, on_stats) = best_of(reps, pages, || {
        reg.reset();
        dsf_telemetry::spans().clear();
        reg.enable();
    });
    reg.disable();

    // Identical logical work on both paths.
    assert_eq!(off_stats.commands, on_stats.commands, "paths diverged");
    assert_eq!(off_stats.total_accesses, on_stats.total_accesses);

    // Reconciliation (the acceptance criterion): the global histogram is
    // OpStats' histogram, sample for sample.
    let hist = reg.histogram(
        "dsf_command_page_accesses",
        "page accesses per insert/delete command",
    );
    assert_eq!(hist.count(), on_stats.commands, "histogram count");
    assert_eq!(hist.sum(), on_stats.total_accesses, "histogram sum");
    assert_eq!(hist.max(), on_stats.max_accesses, "histogram max");
    assert_eq!(
        hist.bucket_counts(),
        on_stats.histogram.bucket_counts(),
        "per-bucket counts"
    );
    println!(
        "reconciled: {} commands, {} total accesses, worst {} — global histogram == OpStats",
        on_stats.commands, on_stats.total_accesses, on_stats.max_accesses
    );

    let ratio = on_secs / off_secs;
    println!(
        "  disabled  {:>8.1} ms  (spine off: one branch per site)",
        off_secs * 1e3
    );
    println!(
        "  enabled   {:>8.1} ms  (counters + histograms + spans)",
        on_secs * 1e3
    );
    println!("  overhead  {ratio:>8.3}×");

    let json = format!(
        "{{\n  \"experiment\": \"telemetry\",\n  \"quick\": {quick},\n  \"m_pages\": {pages},\n  \"reps\": {reps},\n  \"commands\": {},\n  \"total_accesses\": {},\n  \"max_accesses\": {},\n  \"disabled_ms\": {:.3},\n  \"enabled_ms\": {:.3},\n  \"overhead_ratio\": {:.4},\n  \"histogram_reconciles_with_op_stats\": true\n}}\n",
        on_stats.commands,
        on_stats.total_accesses,
        on_stats.max_accesses,
        off_secs * 1e3,
        on_secs * 1e3,
        ratio,
    );
    std::fs::write("BENCH_telemetry.json", json).unwrap();
    println!("wrote BENCH_telemetry.json");
}
