//! E6 — the paper's §1 motivation: "overflow mechanisms become especially
//! unmanageable when a large surge of insertions is attempted in a
//! relatively small portion of the sequential file".
//!
//! An ISAM-style overflow file and a CONTROL 2 dense file are organized
//! over the same backbone; a surge of increasing size is then aimed at a
//! narrow stripe of the key space. After each surge stage the table reports
//! the overflow file's chain statistics and the disk time of a 1000-record
//! stream through the surged region, side by side with the dense file's.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_overflow_burst`

use dsf_bench::{f, DenseDriver, Driver, OverflowDriver, Table};
use dsf_core::DenseFileConfig;
use dsf_pagestore::disk::DiskModel;

const PAGES: u32 = 1024;
const D_MIN: u32 = 8;
const D_MAX: u32 = 40;

fn scan_ms(d: &(impl Driver + ?Sized), start: u64, s: usize, model: &DiskModel) -> (u64, f64) {
    d.take_trace();
    d.set_trace(true);
    let snap = d.snapshot();
    d.scan(start, s);
    let pages = d.since(snap);
    let ms = model.replay_ms(&d.take_trace());
    d.set_trace(false);
    (pages, ms)
}

fn main() {
    let model = DiskModel::ibm3380_class();
    let backbone: Vec<u64> = (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
        .map(|i| i << 32)
        .collect();

    // The overflow file is provisioned the classical way: just enough
    // primary pages to hold the backbone at ~65% fill (an ISAM install
    // sized for its data), leaving the usual slack for growth.
    let ovfl_pages = (backbone.len() as u32).div_ceil(D_MAX * 65 / 100);
    let fill = backbone.len().div_ceil(ovfl_pages as usize);
    let mut overflow = OverflowDriver::new(ovfl_pages, D_MAX as usize);
    overflow
        .file
        .organize(backbone.iter().map(|&k| (k, k)), fill);
    let mut dense = DenseDriver::new("control2", DenseFileConfig::control2(PAGES, D_MIN, D_MAX));
    dense.bulk_backbone(&backbone);

    // The surge lands in a stripe around 5<<32, interleaved over 8
    // sub-points spaced a primary page apart, so the growing chains of
    // neighbouring pages interleave in allocation order — the worst
    // realistic pattern.
    let stripe_lo = 5u64 << 32;
    let stride = (fill as u64) << 32;
    let mut t = Table::new([
        "surge size",
        "chains (pages)",
        "longest chain",
        "ovfl scan pages",
        "ovfl scan ms",
        "dense scan pages",
        "dense scan ms",
        "dense worst cmd",
    ]);

    let mut total_surged = 0usize;
    for &stage in &[0usize, 128, 256, 512, 1024, 2048] {
        let add = stage - total_surged;
        let keys: Vec<u64> = (0..add as u64)
            .map(|i| stripe_lo + 1 + (i % 8) * stride + i / 8)
            .collect();
        for &k in &keys {
            overflow.insert(k);
            dense.insert(k);
        }
        total_surged = stage;

        let (op, oms) = scan_ms(&overflow, stripe_lo, 1000, &model);
        let (dp, dms) = scan_ms(&dense, stripe_lo, 1000, &model);
        let os = overflow.file.overflow_stats();
        t.row([
            stage.to_string(),
            os.overflow_pages.to_string(),
            os.longest_chain.to_string(),
            op.to_string(),
            f(oms),
            dp.to_string(),
            f(dms),
            dense.file.op_stats().max_accesses.to_string(),
        ]);
    }
    t.print("E6 — a localized surge vs overflow chaining (M=1024, d=8, D=40)");

    println!("\nReading: chains grow linearly with the surge and the overflow file's");
    println!("stream time grows with them (every chain page is a seek), while the");
    println!("dense file's scan stays a single sequential sweep and its worst");
    println!("command stays bounded. This is precisely why the paper abandons");
    println!("overflow heuristics for record shifting.");
    println!(
        "\n(Overflow file now holds {} records, {} in chains.)",
        overflow.len(),
        overflow.file.overflow_stats().overflow_records
    );
}
