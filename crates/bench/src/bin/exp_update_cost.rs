//! E5 — update cost across every structure (§4: "update costs are probably
//! somewhat higher under CONTROL 2 than under B-tree algorithms").
//!
//! Replays three insert streams — uniform, a localized burst, and the
//! adversarial hammer — against all six structures at identical geometry,
//! then a delete pass, reporting mean / p99 / worst page accesses per
//! command.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_update_cost`

use dsf_bench::{
    f, profile_inserts, profile_removes, BTreeDriver, DenseDriver, Driver, NaiveDriver,
    OverflowDriver, PmaDriver, Table,
};
use dsf_core::DenseFileConfig;

const PAGES: u32 = 1024;
const D_MIN: u32 = 8;
const D_MAX: u32 = 40;

fn drivers() -> Vec<Box<dyn Driver>> {
    vec![
        Box::new(DenseDriver::new(
            "control2",
            DenseFileConfig::control2(PAGES, D_MIN, D_MAX),
        )),
        Box::new(DenseDriver::new(
            "control1",
            DenseFileConfig::control1(PAGES, D_MIN, D_MAX),
        )),
        Box::new(PmaDriver::new(PAGES, D_MAX, D_MIN)),
        Box::new(BTreeDriver::new(D_MAX as usize)),
        Box::new(NaiveDriver::new(D_MAX as usize)),
        Box::new(OverflowDriver::new(PAGES, D_MAX as usize)),
    ]
}

fn replay(title: &str, keys: &[u64], deletes: bool) {
    let backbone: Vec<u64> = (0..u64::from(PAGES) * u64::from(D_MIN) / 2)
        .map(|i| i << 32)
        .collect();
    let mut t = Table::new(["structure", "mean", "p99", "worst", "del mean", "del worst"]);
    for mut d in drivers() {
        d.bulk_backbone(&backbone);
        let p = profile_inserts(d.as_mut(), keys);
        let (dm, dw) = if deletes {
            let mut victims: Vec<u64> = keys.iter().copied().take(p.ops as usize).collect();
            victims = dsf_workloads::shuffled(5, victims);
            let dp = profile_removes(d.as_mut(), &victims);
            (f(dp.mean), dp.max.to_string())
        } else {
            ("-".into(), "-".into())
        };
        t.row([
            d.name().to_string(),
            f(p.mean),
            p.p99.to_string(),
            p.max.to_string(),
            dm,
            dw,
        ]);
    }
    t.print(title);
}

fn main() {
    let room = (u64::from(PAGES) * u64::from(D_MIN) / 2) as usize;
    println!(
        "Geometry: M={PAGES} pages, d={D_MIN}, D={D_MAX}; every structure pre-loaded with the"
    );
    println!("same half-capacity backbone, then measured on the stream below.");

    // Drawn inside the backbone's key range (odd, so collision-free).
    let universe = (u64::from(PAGES) * u64::from(D_MIN) / 2) << 32;
    let uniform: Vec<u64> = dsf_workloads::uniform_unique(21, room, 1, universe)
        .into_iter()
        .map(|k| k | 1)
        .collect();
    replay(
        "E5a — uniform inserts (plus shuffled deletes of the same keys)",
        &uniform,
        true,
    );

    let burst = dsf_workloads::burst(22, room, (5 << 32) + 1, (5 << 32) + 1 + (room as u64 * 4));
    replay("E5b — localized burst (the §1 surge)", &burst, false);

    let hammer = dsf_workloads::hammer(room, 5 << 32, 1);
    replay("E5c — adversarial hammer", &hammer, false);

    println!("\nReading: the B-tree's mean update is the cheapest (height probes");
    println!("plus a leaf write) — the paper concedes exactly this. CONTROL 2 pays");
    println!("a constant factor more on the mean (its J shifts), yet its *worst*");
    println!("command is the only bounded one among the sequential organisations:");
    println!("naive shifts O(M) pages, CONTROL 1/PMA redistribute O(M) on bad");
    println!("commands, and overflow chaining degrades scans instead (see E6).");
}
