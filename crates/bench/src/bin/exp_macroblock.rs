//! E7 — Theorem 5.7: when the density gap is small (`D−d ≤ 3⌈log₂M⌉`) the
//! plain algorithm's guarantee is void; grouping `K` pages into macro-blocks
//! with `K(D−d) > 3⌈log₂M⌉` restores the `O(log²M/(D−d))` bound at a
//! constant-factor cost.
//!
//! For a sweep of gaps the table compares `MacroBlocking::Auto` (the paper's
//! rule) with `MacroBlocking::Disabled` (K forced to 1) under the
//! adversarial hammer, reporting the chosen `K`, the worst command, and how
//! many commands ended with a BALANCE(d,D) violation.
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_macroblock`

use dsf_bench::{balance_violations, f, hammer_setup, Table};
use dsf_core::{DenseFile, DenseFileConfig, MacroBlocking};

fn run(pages: u32, d: u32, big_d: u32, mb: MacroBlocking) -> (u32, u32, f64, u64, u64) {
    let mut file: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(pages, d, big_d).with_macro_blocking(mb)).unwrap();
    let keys = hammer_setup(&mut file);
    let mut violating_cmds = 0u64;
    for k in keys {
        if file.insert(k, 0).is_err() {
            break;
        }
        if balance_violations(&file) > 0 {
            violating_cmds += 1;
        }
    }
    let s = file.op_stats();
    (
        file.config().k,
        file.config().j,
        s.mean_accesses(),
        s.max_accesses,
        violating_cmds,
    )
}

fn main() {
    let mut t = Table::new([
        "M",
        "d",
        "D",
        "gap",
        "mode",
        "K",
        "J",
        "mean",
        "worst",
        "violating cmds",
    ]);
    for &(pages, d, big_d) in &[
        (1024u32, 30u32, 32u32), // gap 2 ≪ 3L = 30
        (1024, 28, 32),          // gap 4
        (1024, 24, 32),          // gap 8
        (1024, 16, 32),          // gap 16
        (1024, 8, 40),           // gap 32 > 3L — no blocking needed
    ] {
        for (label, mb) in [
            ("auto", MacroBlocking::Auto),
            ("K=1", MacroBlocking::Disabled),
        ] {
            let (k, j, mean, worst, viol) = run(pages, d, big_d, mb);
            t.row([
                pages.to_string(),
                d.to_string(),
                big_d.to_string(),
                (big_d - d).to_string(),
                label.to_string(),
                k.to_string(),
                j.to_string(),
                f(mean),
                worst.to_string(),
                viol.to_string(),
            ]);
        }
    }
    t.print("E7 — macro-blocking (Theorem 5.7) under the adversarial hammer");

    println!("\nReading: with the gap below 3⌈log M⌉ and K forced to 1, the");
    println!("thresholds g(v,0) … g(v,1) collapse to within a record or two of");
    println!("each other and commands start ending in BALANCE violations (the");
    println!("guarantee is genuinely void, not merely unproven). The paper's K");
    println!("restores zero violations; its price is the K-fold cost of moving");
    println!("macro-blocks, visible in the mean/worst columns.");
}
