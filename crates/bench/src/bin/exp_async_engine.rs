//! E16 — async disk engine: group-commit latency under durable ingest,
//! background-writeback attribution, and shard ingest feeding the
//! I/O scheduler.
//!
//! The paper de-amortizes the *structural* cost per command; this
//! experiment measures de-amortizing the *disk* cost around it. Three
//! phases:
//!
//! * **Latency (phase L).** An open-loop arrival process (one command every
//!   `fsync/4` microseconds — deliberately oversubscribing a synchronous
//!   engine by 4×) ingests the same key stream into two [`DurableFile`]s:
//!   `SyncPolicy::EveryCommand` (fsync per command, durable on ack) vs
//!   `SyncPolicy::CommitWindow` with `Durability::Relaxed` commands (ack at
//!   buffer, durable at the window's fsync). Latency is measured to the
//!   point the *same contract* is met — command durable — so the comparison
//!   is apples-to-apples with the synchronous engine's durability-on-ack:
//!   for the window engine a command completes when `durable_lsn` passes
//!   its LSN, never earlier (hard-asserted while the window is open). The
//!   oversubscribed synchronous engine queues; the window engine amortizes
//!   the fsync over `WINDOW_FRAMES` commands and keeps up. Headline:
//!   `p99_speedup` = sync p99 / window p99-to-durable, asserted ≥ 5×.
//!   Both files must finish bit-identical (hard assert) and the window
//!   file must survive a reopen with nothing lost.
//!
//! * **Writeback attribution (phase W).** With the flight recorder on, a
//!   command stream dirties pages in a [`BufferPool`] over an
//!   [`AsyncBackend`]; writeback happens on scheduler workers. Flight
//!   replay must attribute every written-back page to the command seq that
//!   dirtied it — `total_writeback_pages()` equals the inner backend's
//!   page-write count exactly (no unattributed charges), and per-command
//!   frames still reconcile. The raw log is saved as `BENCH_async.flight`
//!   for the CI artifact.
//!
//! * **Shard spill overlap (phase S).** Parallel shard ingest
//!   ([`ShardedFile::apply_batch`]) alternates with spilling shard pages to
//!   a slow (busy-wait) backend: synchronously the spill serializes with
//!   the next chunk's CPU work; through the [`AsyncBackend`] the enqueue
//!   returns immediately and workers absorb the device latency while the
//!   next chunk ingests. Reported as `shard_overlap_ratio` (sync wall /
//!   async wall).
//!
//! Run: `cargo run --release -p dsf-bench --bin exp_async_engine`
//! (`--quick` for the CI-sized variant). Writes `BENCH_async.json` and
//! `BENCH_async.flight` into the current directory.

use std::time::{Duration, Instant};

use dsf_concurrent::ShardedFile;
use dsf_core::{Command, DenseFileConfig};
use dsf_durable::{Durability, DurableFile, SyncPolicy};
use dsf_flight::{BoundBudget, CommandKind};
use dsf_pagestore::{AsyncBackend, BufferPool, MemBackend, PageBackend};

/// Frames per commit window — the fsync amortization factor.
const WINDOW_FRAMES: u32 = 64;

fn cfg(pages: u32) -> DenseFileConfig {
    DenseFileConfig::control2(pages, 6, 8)
}

/// Unique, well-spread keys (odd multiplier ⇒ bijection on `u64`).
fn key(i: u64) -> u64 {
    i.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1
}

fn percentile(sorted: &[f64], p: f64) -> f64 {
    let idx = ((p / 100.0) * (sorted.len() - 1) as f64).round() as usize;
    sorted[idx]
}

/// Median per-command cost of append+fsync on this machine, measured on a
/// throwaway file. Everything in phase L is scaled off this number so the
/// experiment expresses *oversubscription*, not an absolute device speed.
fn measure_fsync_micros(scratch: &std::path::Path) -> f64 {
    let dir = scratch.join("probe");
    let mut f: DurableFile<u64, u64> =
        DurableFile::create(&dir, cfg(256), SyncPolicy::EveryCommand).unwrap();
    let mut samples: Vec<f64> = (0..50u64)
        .map(|i| {
            let t = Instant::now();
            f.insert(key(i), i).unwrap();
            t.elapsed().as_secs_f64() * 1e6
        })
        .collect();
    samples.sort_by(f64::total_cmp);
    samples[samples.len() / 2]
}

fn spin_until(start: Instant, deadline: Duration) -> Duration {
    loop {
        let now = start.elapsed();
        if now >= deadline {
            return now;
        }
        std::hint::spin_loop();
    }
}

struct LatencyOutcome {
    p99_micros: f64,
    p50_micros: f64,
    fsyncs: u64,
    records: Vec<(u64, u64)>,
}

/// Open-loop ingest of `n` commands, one arriving every `arrival_micros`.
/// Per-command latency runs from scheduled arrival to the moment the
/// command's durability contract is met.
fn run_sync_engine(dir: &std::path::Path, n: usize, arrival_micros: f64) -> LatencyOutcome {
    let reg = dsf_telemetry::global();
    let fsyncs = reg.counter("dsf_wal_fsyncs_total", "");
    let base = fsyncs.get();
    let mut f: DurableFile<u64, u64> =
        DurableFile::create(dir, cfg(1024), SyncPolicy::EveryCommand).unwrap();
    let mut lat = Vec::with_capacity(n);
    let start = Instant::now();
    for i in 0..n as u64 {
        let arrival = Duration::from_secs_f64(i as f64 * arrival_micros * 1e-6);
        spin_until(start, arrival);
        f.insert(key(i), i).unwrap();
        // EveryCommand: the ack IS the durability point.
        lat.push((start.elapsed() - arrival).as_secs_f64() * 1e6);
    }
    lat.sort_by(f64::total_cmp);
    LatencyOutcome {
        p99_micros: percentile(&lat, 99.0),
        p50_micros: percentile(&lat, 50.0),
        fsyncs: fsyncs.get() - base,
        records: f.iter().map(|(k, v)| (*k, *v)).collect(),
    }
}

fn run_window_engine(dir: &std::path::Path, n: usize, arrival_micros: f64) -> LatencyOutcome {
    let reg = dsf_telemetry::global();
    let window_fsyncs = reg.counter("dsf_commit_window_fsyncs", "");
    let base = window_fsyncs.get();
    let policy = SyncPolicy::CommitWindow {
        max_frames: WINDOW_FRAMES,
        // Age trigger at 4 windows' worth of arrivals: a stalled stream
        // still drains, a saturated one closes on the size trigger.
        max_micros: (4.0 * f64::from(WINDOW_FRAMES) * arrival_micros) as u64,
    };
    let mut f: DurableFile<u64, u64> = DurableFile::create(dir, cfg(1024), policy).unwrap();
    let mut arrivals = Vec::with_capacity(n);
    let mut durable_at = vec![f64::NAN; n];
    let mut completed = 0usize;
    let start = Instant::now();
    for i in 0..n as u64 {
        let arrival = Duration::from_secs_f64(i as f64 * arrival_micros * 1e-6);
        arrivals.push(arrival.as_secs_f64() * 1e6);
        spin_until(start, arrival);
        f.insert_with(key(i), i, Durability::Relaxed).unwrap();
        // The durability contract: a Relaxed ack means *buffered*, never
        // durable — while its window is open, the command's LSN must sit
        // strictly above the durable watermark.
        if f.window_frames() > 0 {
            assert!(
                f.durable_lsn() < f.appended_lsn(),
                "Relaxed command reported durable before its window's fsync"
            );
        }
        // A close (size or age trigger) advances the watermark; commands
        // at or below it became durable *now*.
        let now = start.elapsed().as_secs_f64() * 1e6;
        while completed < f.durable_lsn() as usize {
            durable_at[completed] = now - arrivals[completed];
            completed += 1;
        }
    }
    f.sync().unwrap();
    let now = start.elapsed().as_secs_f64() * 1e6;
    assert_eq!(
        f.durable_lsn(),
        n as u64,
        "final sync must drain the window"
    );
    while completed < n {
        durable_at[completed] = now - arrivals[completed];
        completed += 1;
    }
    let mut lat = durable_at;
    lat.sort_by(f64::total_cmp);
    LatencyOutcome {
        p99_micros: percentile(&lat, 99.0),
        p50_micros: percentile(&lat, 50.0),
        fsyncs: window_fsyncs.get() - base,
        records: f.iter().map(|(k, v)| (*k, *v)).collect(),
    }
}

/// Phase W: every page written back by the scheduler must be attributed to
/// the flight seq of the command that dirtied it. Returns the page count.
fn phase_writeback_attribution() -> u64 {
    const COMMANDS: u64 = 48;
    const PAGES_PER_CMD: u64 = 3;
    dsf_flight::enable();
    dsf_flight::clear();
    let mut pool = BufferPool::new(AsyncBackend::new(MemBackend::new(256), 2, 16), 64);
    for c in 0..COMMANDS {
        dsf_flight::begin_command(CommandKind::Insert, c);
        for j in 0..PAGES_PER_CMD {
            let p = c * PAGES_PER_CMD + j;
            pool.get_mut(p).unwrap()[0] = c as u8;
        }
        dsf_flight::end_command(0, 0, 0);
    }
    pool.flush_all().unwrap();
    pool.backend().drain().unwrap();
    let mem = pool
        .into_backend()
        .and_then(AsyncBackend::into_inner)
        .unwrap();
    let budget = BoundBudget {
        j: 1,
        k: 1,
        log_slots: 8,
        gap: 1,
    };
    dsf_flight::save("BENCH_async.flight", budget).unwrap();
    let log = dsf_flight::snapshot_log(budget);
    dsf_flight::disable();

    let attr = log.replay();
    assert_eq!(attr.dropped, 0, "ring evicted events; segment must fit");
    assert_eq!(attr.command_count(), COMMANDS);
    assert!(attr.reconciles(), "per-command frames must reconcile");
    assert_eq!(
        attr.total_writeback_pages(),
        mem.pages_written,
        "background writeback has unattributed page charges"
    );
    mem.pages_written
}

/// A backend whose writes block like a device (sleeping, not spinning, so
/// the caller's CPU is free to overlap — the point of the scheduler).
/// Reads stay free so the phase isolates write-path overlap.
struct SlowBackend {
    inner: MemBackend,
    write_micros: u64,
}

impl PageBackend for SlowBackend {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }
    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.inner.read_run(first_page, buf)
    }
    fn write_run(&mut self, first_page: u64, data: &[u8]) -> std::io::Result<()> {
        std::thread::sleep(Duration::from_micros(self.write_micros));
        self.inner.write_run(first_page, data)
    }
}

/// Phase S: sharded ingest alternating with page spills. Returns
/// (sync wall ms, async wall ms).
fn phase_shard_ingest(quick: bool) -> (f64, f64) {
    const SHARDS: u32 = 4;
    const SPILL_MICROS: u64 = 200;
    let chunks = if quick { 8 } else { 24 };
    let per_chunk = 256usize;

    let stream: Vec<Vec<Command<u64, u64>>> = (0..chunks as u64)
        .map(|c| {
            (0..per_chunk as u64)
                .map(|i| Command::Insert(key(c * per_chunk as u64 + i), i))
                .collect()
        })
        .collect();

    let slow = || SlowBackend {
        inner: MemBackend::new(256),
        write_micros: SPILL_MICROS,
    };
    // Writes go straight to the backend: the spill path is append-shaped
    // (never re-reads what it wrote), and a read through the scheduler is
    // a drain barrier that would serialize exactly the overlap under test.
    type SpillWriter<'a> = Box<dyn FnMut(u64, &[u8]) + 'a>;
    let run = |mut backend: SpillWriter<'_>, finish: Box<dyn FnOnce()>| -> f64 {
        let sf: ShardedFile<u64> = ShardedFile::new(SHARDS, cfg(1024)).unwrap();
        let page = vec![0u8; 256];
        let start = Instant::now();
        for (c, chunk) in stream.iter().enumerate() {
            // Parallel-sharded CPU ingest...
            for out in sf.apply_batch(chunk) {
                assert!(out.is_effective());
            }
            // ...then spill one page per shard for this chunk. The sync
            // backend pays the device inline; the scheduler enqueues and
            // its workers absorb it under the next chunk's ingest.
            for s in 0..SHARDS as usize {
                backend((c * SHARDS as usize + s) as u64, &page);
            }
        }
        finish();
        start.elapsed().as_secs_f64() * 1e3
    };

    let mut direct = slow();
    let sync_ms = run(
        Box::new(move |p, data| direct.write_run(p, data).unwrap()),
        Box::new(|| {}),
    );
    let sched = std::rc::Rc::new(std::cell::RefCell::new(AsyncBackend::new(slow(), 2, 32)));
    let writer = std::rc::Rc::clone(&sched);
    let async_ms = run(
        Box::new(move |p, data| writer.borrow_mut().write_run(p, data).unwrap()),
        Box::new(move || sched.borrow().drain().unwrap()),
    );
    (sync_ms, async_ms)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");

    let scratch = std::env::temp_dir().join(format!("dsf-async-engine-{}", std::process::id()));
    std::fs::remove_dir_all(&scratch).ok();

    let reg = dsf_telemetry::global();
    reg.enable();

    let fsync_micros = measure_fsync_micros(&scratch);
    // 4× oversubscribed arrivals, and a command count that keeps the
    // synchronous run's wall time bounded on slow devices while leaving
    // percentiles meaningful.
    let arrival_micros = (fsync_micros / 4.0).max(1.0);
    let budget_micros = if quick { 1.5e6 } else { 4.0e6 };
    let cap = if quick { 1000 } else { 4000 };
    let n = ((budget_micros / fsync_micros) as usize).clamp(300, cap);

    println!(
        "E16 — async disk engine (fsync ≈ {fsync_micros:.0} µs, arrival {arrival_micros:.1} µs, \
         {n} commands, window {WINDOW_FRAMES})"
    );

    let sync = run_sync_engine(&scratch.join("sync"), n, arrival_micros);
    let window = run_window_engine(&scratch.join("window"), n, arrival_micros);
    let p99_speedup = sync.p99_micros / window.p99_micros;
    println!(
        "  latency: sync p50/p99 {:.0}/{:.0} µs vs window-to-durable p50/p99 {:.0}/{:.0} µs \
         ({p99_speedup:.1}× at p99); {} fsyncs vs {} window closes",
        sync.p50_micros,
        sync.p99_micros,
        window.p50_micros,
        window.p99_micros,
        sync.fsyncs,
        window.fsyncs
    );

    // Hard asserts: same records either way, and the window file's
    // durability survives a real reopen.
    assert_eq!(
        sync.records, window.records,
        "async engine end state diverged from synchronous engine"
    );
    let reopened: DurableFile<u64, u64> =
        DurableFile::open(scratch.join("window"), SyncPolicy::EveryCommand).unwrap();
    assert!(
        reopened
            .iter()
            .map(|(k, v)| (*k, *v))
            .eq(sync.records.iter().copied()),
        "window engine lost records across reopen"
    );
    reopened.check_invariants().expect("reopened invariants");
    drop(reopened);
    assert!(
        p99_speedup >= 5.0,
        "commit window must improve durable-ingest p99 ≥5×, got {p99_speedup:.2}×"
    );
    assert!(
        window.fsyncs <= sync.fsyncs / 4,
        "window engine barely amortized fsyncs: {} vs {}",
        window.fsyncs,
        sync.fsyncs
    );

    let writeback_pages = phase_writeback_attribution();
    println!("  flight: {writeback_pages} background writeback pages, all attributed, reconciled");

    let (shard_sync_ms, shard_async_ms) = phase_shard_ingest(quick);
    let shard_overlap_ratio = shard_sync_ms / shard_async_ms;
    println!(
        "  shards: spill inline {shard_sync_ms:.1} ms vs through scheduler {shard_async_ms:.1} ms \
         ({shard_overlap_ratio:.2}× overlap win)"
    );

    reg.disable();
    std::fs::remove_dir_all(&scratch).ok();

    let json = format!(
        "{{\n  \"experiment\": \"async_engine\",\n  \"quick\": {quick},\n  \"commands\": {n},\n  \"fsync_micros\": {fsync_micros:.1},\n  \"arrival_micros\": {arrival_micros:.1},\n  \"window_frames\": {WINDOW_FRAMES},\n  \"sync_p50_micros\": {:.1},\n  \"sync_p99_micros\": {:.1},\n  \"window_p50_micros\": {:.1},\n  \"window_p99_micros\": {:.1},\n  \"p99_speedup\": {p99_speedup:.2},\n  \"sync_fsyncs\": {},\n  \"window_fsyncs\": {},\n  \"writeback_pages_attributed\": {writeback_pages},\n  \"shard_sync_ms\": {shard_sync_ms:.2},\n  \"shard_async_ms\": {shard_async_ms:.2},\n  \"shard_overlap_ratio\": {shard_overlap_ratio:.2},\n  \"async_state_equals_sync\": true,\n  \"flight_attribution_reconciles\": true\n}}\n",
        sync.p50_micros,
        sync.p99_micros,
        window.p50_micros,
        window.p99_micros,
        sync.fsyncs,
        window.fsyncs,
    );
    std::fs::write("BENCH_async.json", json).unwrap();
    println!("wrote BENCH_async.json, BENCH_async.flight");
}
