//! # dsf-bench — the experiment harness
//!
//! Shared plumbing for the figure/experiment binaries in `src/bin/`:
//! a text [`Table`] renderer, a uniform [`Driver`] adapter over every
//! structure in the workspace, and small statistics helpers. Each binary in
//! `src/bin/` regenerates one artifact or claim of the paper; see
//! `EXPERIMENTS.md` at the repository root for the index and recorded
//! results.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use dsf_baselines::{AmortizedPma, NaiveSequentialFile, OverflowFile, PmaConfig};
use dsf_btree::{BPlusTree, BTreeConfig};
use dsf_core::{DenseFile, DenseFileConfig};
use dsf_pagestore::{AccessEvent, IoSnapshot};

// ---------------------------------------------------------------------
// Table rendering.
// ---------------------------------------------------------------------

/// A fixed-width text table, printed the way the paper's tables read.
#[derive(Debug, Default)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new<S: Into<String>, I: IntoIterator<Item = S>>(headers: I) -> Self {
        Table {
            headers: headers.into_iter().map(Into::into).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends one row (stringified cells).
    pub fn row<S: Into<String>, I: IntoIterator<Item = S>>(&mut self, cells: I) {
        let row: Vec<String> = cells.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width mismatch");
        self.rows.push(row);
    }

    /// Renders with a title banner.
    pub fn render(&self, title: &str) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {title} ==\n"));
        let hdr: Vec<String> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| format!("{h:>w$}", w = widths[i]))
            .collect();
        out.push_str(&hdr.join("  "));
        out.push('\n');
        out.push_str(&"-".repeat(hdr.join("  ").len()));
        out.push('\n');
        for row in &self.rows {
            let line: Vec<String> = row
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{c:>w$}", w = widths[i]))
                .collect();
            out.push_str(&line.join("  "));
            out.push('\n');
        }
        out
    }

    /// Renders and prints.
    pub fn print(&self, title: &str) {
        print!("{}", self.render(title));
    }
}

// ---------------------------------------------------------------------
// The uniform driver.
// ---------------------------------------------------------------------

/// A uniform interface over every ordered-file structure in the workspace,
/// so experiments can replay one operation stream against all of them.
pub trait Driver {
    /// Short display name.
    fn name(&self) -> &'static str;
    /// Loads a strictly-ascending backbone into the empty structure the way
    /// a deployment would (bulk load / offline organization), so that every
    /// structure starts an experiment from its natural initial state.
    fn bulk_backbone(&mut self, keys: &[u64]);
    /// Inserts a key (value = key). Returns `false` when the structure is
    /// at capacity and refused.
    fn insert(&mut self, k: u64) -> bool;
    /// Removes a key; `true` if it was present.
    fn remove(&mut self, k: u64) -> bool;
    /// Looks a key up.
    fn get(&self, k: u64) -> bool;
    /// Streams up to `limit` records starting at `start`; returns how many
    /// were produced.
    fn scan(&self, start: u64, limit: usize) -> usize;
    /// Records held.
    fn len(&self) -> u64;
    /// Whether empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Cumulative page accesses.
    fn accesses(&self) -> u64;
    /// Snapshot for per-op attribution.
    fn snapshot(&self) -> IoSnapshot;
    /// Accesses since a snapshot.
    fn since(&self, snap: IoSnapshot) -> u64;
    /// Enables/disables physical tracing.
    fn set_trace(&self, on: bool);
    /// Drains the physical trace.
    fn take_trace(&self) -> Vec<AccessEvent>;
}

/// A [`DenseFile`] driver (CONTROL 1 or CONTROL 2, per the config).
pub struct DenseDriver {
    /// The wrapped file.
    pub file: DenseFile<u64, u64>,
    name: &'static str,
}

impl DenseDriver {
    /// Wraps a dense file built from `cfg` under a display name.
    pub fn new(name: &'static str, cfg: DenseFileConfig) -> Self {
        DenseDriver {
            file: DenseFile::new(cfg).expect("valid experiment config"),
            name,
        }
    }
}

impl Driver for DenseDriver {
    fn name(&self) -> &'static str {
        self.name
    }
    fn bulk_backbone(&mut self, keys: &[u64]) {
        self.file
            .bulk_load(keys.iter().map(|&k| (k, k)))
            .expect("backbone fits");
    }
    fn insert(&mut self, k: u64) -> bool {
        self.file.insert(k, k).is_ok()
    }
    fn remove(&mut self, k: u64) -> bool {
        self.file.remove(&k).is_some()
    }
    fn get(&self, k: u64) -> bool {
        self.file.get(&k).is_some()
    }
    fn scan(&self, start: u64, limit: usize) -> usize {
        self.file.range(start..).take(limit).count()
    }
    fn len(&self) -> u64 {
        self.file.len()
    }
    fn accesses(&self) -> u64 {
        self.file.io_stats().accesses()
    }
    fn snapshot(&self) -> IoSnapshot {
        self.file.io_stats().snapshot()
    }
    fn since(&self, snap: IoSnapshot) -> u64 {
        self.file.io_stats().since(snap).accesses()
    }
    fn set_trace(&self, on: bool) {
        self.file.io_trace().set_enabled(on);
    }
    fn take_trace(&self) -> Vec<AccessEvent> {
        self.file.io_trace().take()
    }
}

/// A [`BPlusTree`] driver.
pub struct BTreeDriver {
    /// The wrapped tree.
    pub tree: BPlusTree<u64, u64>,
}

impl BTreeDriver {
    /// A tree whose leaves hold `page_capacity` records.
    pub fn new(page_capacity: usize) -> Self {
        BTreeDriver {
            tree: BPlusTree::new(BTreeConfig::with_page_capacity(page_capacity))
                .expect("valid experiment config"),
        }
    }
}

impl Driver for BTreeDriver {
    fn name(&self) -> &'static str {
        "b+tree"
    }
    fn bulk_backbone(&mut self, keys: &[u64]) {
        self.tree
            .bulk_load(keys.iter().map(|&k| (k, k)))
            .expect("backbone sorted");
    }
    fn insert(&mut self, k: u64) -> bool {
        self.tree.insert(k, k);
        true
    }
    fn remove(&mut self, k: u64) -> bool {
        self.tree.remove(&k).is_some()
    }
    fn get(&self, k: u64) -> bool {
        self.tree.get(&k).is_some()
    }
    fn scan(&self, start: u64, limit: usize) -> usize {
        self.tree.scan_limited(&start, limit, |_, _| {})
    }
    fn len(&self) -> u64 {
        self.tree.len()
    }
    fn accesses(&self) -> u64 {
        self.tree.stats().accesses()
    }
    fn snapshot(&self) -> IoSnapshot {
        self.tree.stats().snapshot()
    }
    fn since(&self, snap: IoSnapshot) -> u64 {
        self.tree.stats().since(snap).accesses()
    }
    fn set_trace(&self, on: bool) {
        self.tree.trace().set_enabled(on);
    }
    fn take_trace(&self) -> Vec<AccessEvent> {
        self.tree.trace().take()
    }
}

/// A [`NaiveSequentialFile`] driver.
pub struct NaiveDriver {
    /// The wrapped file.
    pub file: NaiveSequentialFile<u64, u64>,
}

impl NaiveDriver {
    /// A packed file with the given page capacity.
    pub fn new(page_capacity: usize) -> Self {
        NaiveDriver {
            file: NaiveSequentialFile::new(page_capacity),
        }
    }
}

impl Driver for NaiveDriver {
    fn name(&self) -> &'static str {
        "naive-seq"
    }
    fn bulk_backbone(&mut self, keys: &[u64]) {
        self.file.bulk_load(keys.iter().map(|&k| (k, k)));
    }
    fn insert(&mut self, k: u64) -> bool {
        self.file.insert(k, k);
        true
    }
    fn remove(&mut self, k: u64) -> bool {
        self.file.remove(&k).is_some()
    }
    fn get(&self, k: u64) -> bool {
        self.file.get(&k).is_some()
    }
    fn scan(&self, start: u64, limit: usize) -> usize {
        let mut n = 0;
        self.file.scan_from(&start, limit, |_, _| n += 1);
        n
    }
    fn len(&self) -> u64 {
        self.file.len()
    }
    fn accesses(&self) -> u64 {
        self.file.stats().accesses()
    }
    fn snapshot(&self) -> IoSnapshot {
        self.file.stats().snapshot()
    }
    fn since(&self, snap: IoSnapshot) -> u64 {
        self.file.stats().since(snap).accesses()
    }
    fn set_trace(&self, on: bool) {
        self.file.trace().set_enabled(on);
    }
    fn take_trace(&self) -> Vec<AccessEvent> {
        self.file.trace().take()
    }
}

/// An [`OverflowFile`] driver.
pub struct OverflowDriver {
    /// The wrapped file.
    pub file: OverflowFile<u64, u64>,
    fill: usize,
}

impl OverflowDriver {
    /// An ISAM-style file with the given geometry; offline organization
    /// fills primary pages to half capacity.
    pub fn new(primary_pages: u32, page_capacity: usize) -> Self {
        OverflowDriver {
            file: OverflowFile::new(primary_pages, page_capacity),
            fill: (page_capacity / 2).max(1),
        }
    }
}

impl Driver for OverflowDriver {
    fn name(&self) -> &'static str {
        "overflow"
    }
    fn bulk_backbone(&mut self, keys: &[u64]) {
        self.file.organize(keys.iter().map(|&k| (k, k)), self.fill);
    }
    fn insert(&mut self, k: u64) -> bool {
        self.file.insert(k, k);
        true
    }
    fn remove(&mut self, k: u64) -> bool {
        self.file.remove(&k).is_some()
    }
    fn get(&self, k: u64) -> bool {
        self.file.get(&k).is_some()
    }
    fn scan(&self, start: u64, limit: usize) -> usize {
        let mut n = 0;
        self.file.scan_from(&start, limit, |_, _| n += 1);
        n
    }
    fn len(&self) -> u64 {
        self.file.len()
    }
    fn accesses(&self) -> u64 {
        self.file.stats().accesses()
    }
    fn snapshot(&self) -> IoSnapshot {
        self.file.stats().snapshot()
    }
    fn since(&self, snap: IoSnapshot) -> u64 {
        self.file.stats().since(snap).accesses()
    }
    fn set_trace(&self, on: bool) {
        self.file.trace().set_enabled(on);
    }
    fn take_trace(&self) -> Vec<AccessEvent> {
        self.file.trace().take()
    }
}

/// An [`AmortizedPma`] driver.
pub struct PmaDriver {
    /// The wrapped array.
    pub pma: AmortizedPma<u64, u64>,
}

impl PmaDriver {
    /// A PMA matching a `(d,D)`-dense file's footprint.
    pub fn new(segments: u32, page_capacity: u32, min_density: u32) -> Self {
        PmaDriver {
            pma: AmortizedPma::new(PmaConfig::for_pages(segments, page_capacity, min_density))
                .expect("valid experiment config"),
        }
    }
}

impl Driver for PmaDriver {
    fn name(&self) -> &'static str {
        "pma"
    }
    fn bulk_backbone(&mut self, keys: &[u64]) {
        self.pma.bulk_load(keys.iter().map(|&k| (k, k)));
    }
    fn insert(&mut self, k: u64) -> bool {
        self.pma.insert(k, k).is_ok()
    }
    fn remove(&mut self, k: u64) -> bool {
        self.pma.remove(&k).is_some()
    }
    fn get(&self, k: u64) -> bool {
        self.pma.get(&k).is_some()
    }
    fn scan(&self, start: u64, limit: usize) -> usize {
        let mut n = 0;
        self.pma.scan_from(&start, limit, |_, _| n += 1);
        n
    }
    fn len(&self) -> u64 {
        self.pma.len()
    }
    fn accesses(&self) -> u64 {
        self.pma.stats().accesses()
    }
    fn snapshot(&self) -> IoSnapshot {
        self.pma.stats().snapshot()
    }
    fn since(&self, snap: IoSnapshot) -> u64 {
        self.pma.stats().since(snap).accesses()
    }
    fn set_trace(&self, on: bool) {
        self.pma.trace().set_enabled(on);
    }
    fn take_trace(&self) -> Vec<AccessEvent> {
        self.pma.trace().take()
    }
}

// ---------------------------------------------------------------------
// Measurement helpers.
// ---------------------------------------------------------------------

/// Per-operation cost profile of a replayed stream.
#[derive(Debug, Clone, Copy, Default)]
pub struct CostProfile {
    /// Operations replayed.
    pub ops: u64,
    /// Total page accesses.
    pub total: u64,
    /// Worst single operation.
    pub max: u64,
    /// Mean accesses per operation.
    pub mean: f64,
    /// 99th-percentile accesses per operation.
    pub p99: u64,
}

/// Replays `keys` as inserts against `d`, measuring per-op page accesses.
pub fn profile_inserts<D: Driver + ?Sized>(d: &mut D, keys: &[u64]) -> CostProfile {
    let mut costs: Vec<u64> = Vec::with_capacity(keys.len());
    for &k in keys {
        let snap = d.snapshot();
        if !d.insert(k) {
            break;
        }
        costs.push(d.since(snap));
    }
    summarize(&mut costs)
}

/// Replays `keys` as removals against `d`, measuring per-op page accesses.
pub fn profile_removes<D: Driver + ?Sized>(d: &mut D, keys: &[u64]) -> CostProfile {
    let mut costs: Vec<u64> = Vec::with_capacity(keys.len());
    for &k in keys {
        let snap = d.snapshot();
        d.remove(k);
        costs.push(d.since(snap));
    }
    summarize(&mut costs)
}

fn summarize(costs: &mut [u64]) -> CostProfile {
    if costs.is_empty() {
        return CostProfile::default();
    }
    let total: u64 = costs.iter().sum();
    let max = *costs.iter().max().expect("non-empty");
    costs.sort_unstable();
    let p99 = costs[(costs.len() * 99 / 100).min(costs.len() - 1)];
    CostProfile {
        ops: costs.len() as u64,
        total,
        max,
        mean: total as f64 / costs.len() as f64,
        p99,
    }
}

/// An *adaptive* adversary: each step it inspects the calibrator and aims
/// the next insertion at the most loaded region — the slot of the deepest
/// warned node's `DEST` pointer when one exists (stressing the pointer
/// machinery), otherwise the currently densest leaf. This is the strongest
/// oblivious-to-none workload the experiments use; `exp_j_sweep`'s static
/// adversaries bound J from below, this one probes the same bound
/// adaptively.
pub struct AdaptiveAdversary {
    counter: u64,
}

impl AdaptiveAdversary {
    /// A fresh adversary.
    pub fn new() -> Self {
        AdaptiveAdversary { counter: 0 }
    }

    /// Chooses the next key to insert against `file`, or `None` at
    /// capacity. The key lands just above the minimum key of the targeted
    /// slot (distinct keys guaranteed by an internal counter).
    pub fn next_key(&mut self, file: &DenseFile<u64, u64>) -> Option<u64> {
        if file.len() >= file.capacity() {
            return None;
        }
        self.counter += 1;
        let cal = file.calibrator();
        // A deepest warned node's DEST slot (via the SELECT discipline), or
        // a densest-ish leaf found by greedy max-count descent — both
        // O(log M) so the adversary can drive long runs.
        let target_slot = cal.select(0).map(|n| cal.dest(n)).or_else(|| {
            let mut n = dsf_core::NodeId::ROOT;
            while let Some((l, r)) = cal.children(n) {
                n = if cal.count(r) > cal.count(l) { r } else { l };
            }
            Some(cal.range(n).0)
        })?;
        match file.store().min_key(target_slot) {
            Some(mk) => Some(mk | (self.counter << 8) | 1),
            None => Some((u64::from(target_slot) << 40) | self.counter),
        }
    }
}

impl Default for AdaptiveAdversary {
    fn default() -> Self {
        Self::new()
    }
}

/// Counts calibrator nodes currently violating BALANCE(d,D) — a cheap
/// (counter-only) probe the sweep experiments run after every command.
pub fn balance_violations(file: &DenseFile<u64, u64>) -> usize {
    let cal = file.calibrator();
    cal.all_nodes()
        .into_iter()
        .filter(|&n| cal.p_gt(n, 3))
        .count()
}

/// Fills a dense file to half capacity with a uniform backbone whose keys
/// are multiples of `1 << 32` (leaving the gap the hammer aims at), then
/// returns the keys of an adversarial hammer stream that fills the rest.
pub fn hammer_setup(file: &mut DenseFile<u64, u64>) -> Vec<u64> {
    let prefill = file.capacity() / 2;
    file.bulk_load((0..prefill).map(|i| (i << 32, i)))
        .expect("prefill fits");
    let room = (file.capacity() - file.len()) as usize;
    dsf_workloads::hammer(room, 5 << 32, 1)
}

// ---------------------------------------------------------------------
// Scenario replay (E17).
// ---------------------------------------------------------------------

/// The [`dsf_workloads::Geometry`] a scenario generator needs, extracted
/// from a resolved dense-file configuration so the pure generators agree
/// exactly with the calibrator the file will run.
pub fn scenario_geometry(rc: &dsf_core::ResolvedConfig) -> dsf_workloads::Geometry {
    dsf_workloads::Geometry {
        slots: u64::from(rc.slots),
        slot_min: rc.slot_min,
        slot_max: rc.slot_max,
        log_slots: rc.log_slots,
    }
}

/// Per-op-kind cost profiles of a replayed scenario stream.
#[derive(Debug, Clone, Default)]
pub struct OpsProfile {
    /// Structural commands (inserts + removes).
    pub updates: CostProfile,
    /// Stream-retrieval requests.
    pub scans: CostProfile,
    /// Point lookups replayed.
    pub gets: u64,
    /// Inserts the structure refused (capacity); always 0 for in-plan
    /// scenario streams.
    pub refused: u64,
}

/// Replays a full [`dsf_workloads::Op`] stream against a driver, measuring
/// page accesses per operation, split by kind.
pub fn replay_ops<D: Driver + ?Sized>(d: &mut D, ops: &[dsf_workloads::Op]) -> OpsProfile {
    use dsf_workloads::Op;
    let mut updates: Vec<u64> = Vec::new();
    let mut scans: Vec<u64> = Vec::new();
    let mut gets = 0u64;
    let mut refused = 0u64;
    for op in ops {
        let snap = d.snapshot();
        match *op {
            Op::Insert(k) => {
                if !d.insert(k) {
                    refused += 1;
                }
                updates.push(d.since(snap));
            }
            Op::Remove(k) => {
                d.remove(k);
                updates.push(d.since(snap));
            }
            Op::Get(k) => {
                d.get(k);
                gets += 1;
            }
            Op::Scan { start, limit } => {
                d.scan(start, limit);
                scans.push(d.since(snap));
            }
        }
    }
    OpsProfile {
        updates: summarize(&mut updates),
        scans: summarize(&mut scans),
        gets,
        refused,
    }
}

/// Formats a float with a sensible width for tables.
pub fn f(x: f64) -> String {
    if x >= 100.0 {
        format!("{x:.0}")
    } else if x >= 10.0 {
        format!("{x:.1}")
    } else {
        format!("{x:.2}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsf_core::DenseFileConfig;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new(["col", "value"]);
        t.row(["a", "1"]);
        t.row(["longer", "22"]);
        let s = t.render("demo");
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        let lines: Vec<&str> = s.lines().filter(|l| !l.is_empty()).collect();
        assert_eq!(lines.len(), 5); // title, header, rule, two rows
    }

    #[test]
    fn table_handles_empty_and_wide_cells() {
        let t = Table::new(["only-header"]);
        let s = t.render("empty");
        assert!(s.contains("only-header"));
        assert_eq!(s.lines().filter(|l| !l.is_empty()).count(), 3);

        let mut t = Table::new(["a"]);
        t.row(["a-very-wide-cell-value"]);
        let s = t.render("wide");
        assert!(s.contains("a-very-wide-cell-value"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn table_rejects_ragged_rows() {
        let mut t = Table::new(["a", "b"]);
        t.row(["only-one"]);
    }

    #[test]
    fn float_formatting_scales_precision() {
        assert_eq!(f(0.1234), "0.12");
        assert_eq!(f(12.34), "12.3");
        assert_eq!(f(1234.5), "1234"); // {:.0} uses round-half-to-even
    }

    #[test]
    fn drivers_agree_on_a_small_workload() {
        let keys = dsf_workloads::uniform_unique(5, 200, 0, 1 << 30);
        let mut drivers: Vec<Box<dyn Driver>> = vec![
            Box::new(DenseDriver::new(
                "control2",
                DenseFileConfig::control2(64, 8, 40),
            )),
            Box::new(DenseDriver::new(
                "control1",
                DenseFileConfig::control1(64, 8, 40),
            )),
            Box::new(BTreeDriver::new(40)),
            Box::new(NaiveDriver::new(40)),
            Box::new(OverflowDriver::new(64, 40)),
            Box::new(PmaDriver::new(64, 40, 8)),
        ];
        for d in drivers.iter_mut() {
            for &k in &keys {
                assert!(d.insert(k), "{} refused insert", d.name());
            }
            assert_eq!(d.len(), 200, "{}", d.name());
            assert!(d.get(keys[7]), "{}", d.name());
            assert!(!d.get(keys[7] ^ 1), "{}", d.name());
            assert_eq!(d.scan(0, 50), 50, "{}", d.name());
            assert!(d.remove(keys[3]), "{}", d.name());
            assert_eq!(d.len(), 199, "{}", d.name());
            assert!(d.accesses() > 0, "{}", d.name());
        }
    }

    #[test]
    fn adaptive_adversary_fills_without_breaking_balance() {
        let mut file: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
        file.bulk_load((0..256u64).map(|i| (i << 32, i))).unwrap();
        let mut adv = AdaptiveAdversary::new();
        let mut inserted = 0;
        while let Some(k) = adv.next_key(&file) {
            if file.insert(k, 0).is_ok() {
                inserted += 1;
            }
            assert_eq!(
                balance_violations(&file),
                0,
                "after {inserted} adaptive inserts"
            );
            if inserted > 300 {
                break;
            }
        }
        assert!(inserted >= 200, "adversary stalled at {inserted}");
        file.check_invariants().unwrap();
    }

    #[test]
    fn profile_reports_extremes() {
        let mut d = DenseDriver::new("control2", DenseFileConfig::control2(32, 8, 40));
        let keys = dsf_workloads::ascending(100, 0, 10);
        let p = profile_inserts(&mut d, &keys);
        assert_eq!(p.ops, 100);
        assert!(p.max >= p.p99);
        assert!(p.mean > 0.0);
        assert!(p.total >= p.max);
    }
}
