//! A disk-oriented B+-tree over a page arena with access accounting.

use dsf_pagestore::{AccessKind, IoStats, Key, Record, TraceBuffer};
use std::ops::Bound;

/// Sizing of a [`BPlusTree`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BTreeConfig {
    /// Maximum records per leaf node (a leaf is one page; choose the same
    /// value as the dense file's `D` for a fair comparison).
    pub leaf_capacity: usize,
    /// Maximum children per internal node.
    pub fanout: usize,
}

impl BTreeConfig {
    /// A configuration whose leaves hold at most `page_capacity` records,
    /// with a fanout that assumes separators cost about the same as records.
    pub fn with_page_capacity(page_capacity: usize) -> Self {
        BTreeConfig {
            leaf_capacity: page_capacity,
            fanout: page_capacity.max(4),
        }
    }

    fn min_leaf(&self) -> usize {
        self.leaf_capacity.div_ceil(2)
    }

    fn min_fanout(&self) -> usize {
        self.fanout.div_ceil(2)
    }
}

/// Errors raised by [`BPlusTree`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BTreeError {
    /// `leaf_capacity` or `fanout` below the supported minimum.
    InvalidConfig,
    /// Bulk load on a non-empty tree.
    NotEmpty,
    /// Bulk-load input keys not strictly ascending.
    NotSorted {
        /// Index of the offending input record.
        index: usize,
    },
}

impl std::fmt::Display for BTreeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BTreeError::InvalidConfig => write!(f, "leaf_capacity and fanout must be ≥ 4"),
            BTreeError::NotEmpty => write!(f, "tree already contains records"),
            BTreeError::NotSorted { index } => {
                write!(
                    f,
                    "keys must be strictly ascending (violated at input index {index})"
                )
            }
        }
    }
}

impl std::error::Error for BTreeError {}

#[derive(Debug)]
enum Node<K, V> {
    Internal {
        keys: Vec<K>,
        children: Vec<u32>,
    },
    Leaf {
        recs: Vec<Record<K, V>>,
        next: Option<u32>,
    },
    Free,
}

enum Ins<K, V> {
    Done,
    Replaced(V),
    Split { sep: K, right: u32 },
}

/// A B+-tree whose every node occupies one accounted page.
#[derive(Debug)]
pub struct BPlusTree<K, V> {
    cfg: BTreeConfig,
    nodes: Vec<Node<K, V>>,
    free: Vec<u32>,
    root: u32,
    len: u64,
    stats: IoStats,
    trace: TraceBuffer,
}

impl<K: Key, V> BPlusTree<K, V> {
    /// Creates an empty tree.
    pub fn new(cfg: BTreeConfig) -> Result<Self, BTreeError> {
        if cfg.leaf_capacity < 4 || cfg.fanout < 4 {
            return Err(BTreeError::InvalidConfig);
        }
        Ok(BPlusTree {
            cfg,
            nodes: vec![Node::Leaf {
                recs: Vec::new(),
                next: None,
            }],
            free: Vec::new(),
            root: 0,
            len: 0,
            stats: IoStats::new(),
            trace: TraceBuffer::new(),
        })
    }

    /// The configuration.
    pub fn config(&self) -> BTreeConfig {
        self.cfg
    }

    /// Number of records stored.
    pub fn len(&self) -> u64 {
        self.len
    }

    /// Whether the tree is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Page-access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// Optional physical access trace (for the disk model).
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Pages currently allocated (nodes, including the root).
    pub fn node_pages(&self) -> u64 {
        (self.nodes.len() - self.free.len()) as u64
    }

    /// Height of the tree (a root-only tree has height 1).
    pub fn height(&self) -> u32 {
        let mut h = 1;
        let mut n = self.root;
        while let Node::Internal { children, .. } = &self.nodes[n as usize] {
            n = children[0];
            h += 1;
        }
        h
    }

    #[inline]
    fn read(&self, id: u32) {
        self.stats.charge_reads(1);
        self.trace.record(u64::from(id), AccessKind::Read);
    }

    #[inline]
    fn write(&self, id: u32) {
        self.stats.charge_writes(1);
        self.trace.record(u64::from(id), AccessKind::Write);
    }

    fn alloc(&mut self, node: Node<K, V>) -> u32 {
        if let Some(id) = self.free.pop() {
            self.nodes[id as usize] = node;
            id
        } else {
            self.nodes.push(node);
            (self.nodes.len() - 1) as u32
        }
    }

    fn dealloc(&mut self, id: u32) {
        self.nodes[id as usize] = Node::Free;
        self.free.push(id);
    }

    /// Index of the child an internal node routes `key` to.
    fn route(keys: &[K], key: &K) -> usize {
        keys.partition_point(|s| s <= key)
    }

    // ------------------------------------------------------------------
    // Lookup.
    // ------------------------------------------------------------------

    /// Looks up a key, charging one read per level.
    pub fn get(&self, key: &K) -> Option<&V> {
        let mut n = self.root;
        loop {
            self.read(n);
            match &self.nodes[n as usize] {
                Node::Internal { keys, children } => n = children[Self::route(keys, key)],
                Node::Leaf { recs, .. } => {
                    return recs
                        .binary_search_by(|r| r.key.cmp(key))
                        .ok()
                        .map(|i| &recs[i].value);
                }
                Node::Free => unreachable!("routing reached a free page"),
            }
        }
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    // ------------------------------------------------------------------
    // Insert.
    // ------------------------------------------------------------------

    /// Inserts a record, returning the previous value if the key existed.
    pub fn insert(&mut self, key: K, value: V) -> Option<V> {
        match self.insert_rec(self.root, key, value) {
            Ins::Done => {
                self.len += 1;
                None
            }
            Ins::Replaced(v) => Some(v),
            Ins::Split { sep, right } => {
                let old_root = self.root;
                let new_root = self.alloc(Node::Internal {
                    keys: vec![sep],
                    children: vec![old_root, right],
                });
                self.root = new_root;
                self.write(new_root);
                self.len += 1;
                None
            }
        }
    }

    fn insert_rec(&mut self, n: u32, key: K, value: V) -> Ins<K, V> {
        self.read(n);
        let descend = match &self.nodes[n as usize] {
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, &key);
                Some((children[idx], idx))
            }
            Node::Leaf { .. } => None,
            Node::Free => unreachable!("routing reached a free page"),
        };
        match descend {
            Some((child, idx)) => match self.insert_rec(child, key, value) {
                Ins::Split { sep, right } => {
                    let overflow = {
                        let Node::Internal { keys, children } = &mut self.nodes[n as usize] else {
                            unreachable!()
                        };
                        keys.insert(idx, sep);
                        children.insert(idx + 1, right);
                        children.len() > self.cfg.fanout
                    };
                    self.write(n);
                    if overflow {
                        self.split_internal(n)
                    } else {
                        Ins::Done
                    }
                }
                other => other,
            },
            None => {
                let (replaced, overflow) = {
                    let Node::Leaf { recs, .. } = &mut self.nodes[n as usize] else {
                        unreachable!()
                    };
                    match recs.binary_search_by(|r| r.key.cmp(&key)) {
                        Ok(i) => (Some(std::mem::replace(&mut recs[i].value, value)), false),
                        Err(i) => {
                            recs.insert(i, Record::new(key, value));
                            (None, recs.len() > self.cfg.leaf_capacity)
                        }
                    }
                };
                self.write(n);
                match (replaced, overflow) {
                    (Some(old), _) => Ins::Replaced(old),
                    (None, true) => self.split_leaf(n),
                    (None, false) => Ins::Done,
                }
            }
        }
    }

    fn split_leaf(&mut self, n: u32) -> Ins<K, V> {
        let Node::Leaf { recs, next } = &mut self.nodes[n as usize] else {
            unreachable!()
        };
        let mid = recs.len() / 2;
        let right_recs = recs.split_off(mid);
        let old_next = *next;
        let sep = right_recs[0].key;
        let right = self.alloc(Node::Leaf {
            recs: right_recs,
            next: old_next,
        });
        let Node::Leaf { next, .. } = &mut self.nodes[n as usize] else {
            unreachable!()
        };
        *next = Some(right);
        self.write(n);
        self.write(right);
        Ins::Split { sep, right }
    }

    fn split_internal(&mut self, n: u32) -> Ins<K, V> {
        let Node::Internal { keys, children } = &mut self.nodes[n as usize] else {
            unreachable!()
        };
        let mid = keys.len() / 2;
        let sep = keys[mid];
        let right_keys = keys.split_off(mid + 1);
        keys.pop(); // the promoted separator
        let right_children = children.split_off(mid + 1);
        let right = self.alloc(Node::Internal {
            keys: right_keys,
            children: right_children,
        });
        self.write(n);
        self.write(right);
        Ins::Split { sep, right }
    }

    // ------------------------------------------------------------------
    // Remove.
    // ------------------------------------------------------------------

    /// Deletes a key, returning its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let out = self.remove_rec(self.root, key)?;
        self.len -= 1;
        // Collapse a root with a single child.
        if let Node::Internal { children, .. } = &self.nodes[self.root as usize] {
            if children.len() == 1 {
                let only = children[0];
                let old = self.root;
                self.root = only;
                self.dealloc(old);
            }
        }
        Some(out)
    }

    fn remove_rec(&mut self, n: u32, key: &K) -> Option<V> {
        self.read(n);
        match &mut self.nodes[n as usize] {
            Node::Leaf { recs, .. } => match recs.binary_search_by(|r| r.key.cmp(key)) {
                Ok(i) => {
                    let rec = recs.remove(i);
                    self.write(n);
                    Some(rec.value)
                }
                Err(_) => None,
            },
            Node::Internal { keys, children } => {
                let idx = Self::route(keys, key);
                let child = children[idx];
                let out = self.remove_rec(child, key)?;
                if self.is_deficient(child) {
                    self.rebalance_child(n, idx);
                }
                Some(out)
            }
            Node::Free => unreachable!("routing reached a free page"),
        }
    }

    fn is_deficient(&self, n: u32) -> bool {
        match &self.nodes[n as usize] {
            Node::Leaf { recs, .. } => recs.len() < self.cfg.min_leaf(),
            Node::Internal { children, .. } => children.len() < self.cfg.min_fanout(),
            Node::Free => unreachable!(),
        }
    }

    fn child_size(&self, n: u32) -> usize {
        match &self.nodes[n as usize] {
            Node::Leaf { recs, .. } => recs.len(),
            Node::Internal { children, .. } => children.len(),
            Node::Free => unreachable!(),
        }
    }

    fn child_min(&self, n: u32) -> usize {
        match &self.nodes[n as usize] {
            Node::Leaf { .. } => self.cfg.min_leaf(),
            Node::Internal { .. } => self.cfg.min_fanout(),
            Node::Free => unreachable!(),
        }
    }

    /// Restores the size invariant of `parent`'s `idx`-th child by borrowing
    /// from a sibling when possible, merging otherwise.
    fn rebalance_child(&mut self, parent: u32, idx: usize) {
        let (left_sib, right_sib, child) = {
            let Node::Internal { children, .. } = &self.nodes[parent as usize] else {
                unreachable!()
            };
            (
                if idx > 0 {
                    Some(children[idx - 1])
                } else {
                    None
                },
                children.get(idx + 1).copied(),
                children[idx],
            )
        };
        if let Some(l) = left_sib {
            if self.child_size(l) > self.child_min(l) {
                self.read(l);
                self.borrow_from_left(parent, idx, l, child);
                return;
            }
        }
        if let Some(r) = right_sib {
            if self.child_size(r) > self.child_min(r) {
                self.read(r);
                self.borrow_from_right(parent, idx, child, r);
                return;
            }
        }
        // Merge with a sibling (prefer left).
        if let Some(l) = left_sib {
            self.read(l);
            self.merge_children(parent, idx - 1, l, child);
        } else if let Some(r) = right_sib {
            self.read(r);
            self.merge_children(parent, idx, child, r);
        }
        // A root child with no siblings is legal at any size.
    }

    fn borrow_from_left(&mut self, parent: u32, idx: usize, left: u32, child: u32) {
        // Move the left sibling's last entry into the child's front.
        if matches!(self.nodes[child as usize], Node::Leaf { .. }) {
            let Node::Leaf { recs: lrecs, .. } = &mut self.nodes[left as usize] else {
                unreachable!()
            };
            let moved = lrecs.pop().expect("left sibling above minimum");
            let new_sep = moved.key;
            let Node::Leaf { recs, .. } = &mut self.nodes[child as usize] else {
                unreachable!()
            };
            recs.insert(0, moved);
            let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[idx - 1] = new_sep;
        } else {
            let Node::Internal {
                keys: lkeys,
                children: lchildren,
            } = &mut self.nodes[left as usize]
            else {
                unreachable!()
            };
            let moved_child = lchildren.pop().expect("left sibling above minimum");
            let moved_key = lkeys.pop().expect("internal node has keys");
            let Node::Internal { keys: pkeys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            let sep = std::mem::replace(&mut pkeys[idx - 1], moved_key);
            let Node::Internal { keys, children } = &mut self.nodes[child as usize] else {
                unreachable!()
            };
            keys.insert(0, sep);
            children.insert(0, moved_child);
        }
        self.write(left);
        self.write(child);
        self.write(parent);
    }

    fn borrow_from_right(&mut self, parent: u32, idx: usize, child: u32, right: u32) {
        if matches!(self.nodes[child as usize], Node::Leaf { .. }) {
            let Node::Leaf { recs: rrecs, .. } = &mut self.nodes[right as usize] else {
                unreachable!()
            };
            let moved = rrecs.remove(0);
            let new_sep = rrecs[0].key;
            let Node::Leaf { recs, .. } = &mut self.nodes[child as usize] else {
                unreachable!()
            };
            recs.push(moved);
            let Node::Internal { keys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            keys[idx] = new_sep;
        } else {
            let Node::Internal {
                keys: rkeys,
                children: rchildren,
            } = &mut self.nodes[right as usize]
            else {
                unreachable!()
            };
            let moved_child = rchildren.remove(0);
            let moved_key = rkeys.remove(0);
            let Node::Internal { keys: pkeys, .. } = &mut self.nodes[parent as usize] else {
                unreachable!()
            };
            let sep = std::mem::replace(&mut pkeys[idx], moved_key);
            let Node::Internal { keys, children } = &mut self.nodes[child as usize] else {
                unreachable!()
            };
            keys.push(sep);
            children.push(moved_child);
        }
        self.write(right);
        self.write(child);
        self.write(parent);
    }

    /// Merges `children[i+1]` into `children[i]` of `parent`.
    fn merge_children(&mut self, parent: u32, i: usize, left: u32, right: u32) {
        let Node::Internal { keys, children } = &mut self.nodes[parent as usize] else {
            unreachable!()
        };
        let sep = keys.remove(i);
        children.remove(i + 1);
        match std::mem::replace(&mut self.nodes[right as usize], Node::Free) {
            Node::Leaf {
                recs: rrecs,
                next: rnext,
            } => {
                let Node::Leaf { recs, next } = &mut self.nodes[left as usize] else {
                    unreachable!()
                };
                recs.extend(rrecs);
                *next = rnext;
            }
            Node::Internal {
                keys: rkeys,
                children: rchildren,
            } => {
                let Node::Internal { keys, children } = &mut self.nodes[left as usize] else {
                    unreachable!()
                };
                keys.push(sep);
                keys.extend(rkeys);
                children.extend(rchildren);
            }
            Node::Free => unreachable!(),
        }
        self.free.push(right);
        self.write(left);
        self.write(parent);
    }

    // ------------------------------------------------------------------
    // Bulk load.
    // ------------------------------------------------------------------

    /// Builds the tree from strictly-ascending records, filling leaves to
    /// ~90% — the layout a fresh offline build produces. Leaves come out
    /// physically adjacent; the `exp_stream_retrieval` experiment shows how
    /// update traffic destroys that adjacency over time.
    pub fn bulk_load<I>(&mut self, items: I) -> Result<(), BTreeError>
    where
        I: IntoIterator<Item = (K, V)>,
    {
        if self.len > 0 {
            return Err(BTreeError::NotEmpty);
        }
        let mut recs: Vec<Record<K, V>> = Vec::new();
        for (index, (k, v)) in items.into_iter().enumerate() {
            if let Some(prev) = recs.last() {
                if prev.key >= k {
                    return Err(BTreeError::NotSorted { index });
                }
            }
            recs.push(Record::new(k, v));
        }
        self.nodes.clear();
        self.free.clear();
        self.len = recs.len() as u64;
        if recs.is_empty() {
            self.nodes.push(Node::Leaf {
                recs: Vec::new(),
                next: None,
            });
            self.root = 0;
            return Ok(());
        }

        // Leaves: evenly-sized groups targeting ~90% fill, clamped so every
        // leaf respects [min_leaf, leaf_capacity].
        let n = recs.len();
        let target = (self.cfg.leaf_capacity * 9 / 10).max(1);
        let groups = Self::group_count(n, self.cfg.min_leaf(), self.cfg.leaf_capacity, target);
        let mut chunks: Vec<Vec<Record<K, V>>> = Vec::with_capacity(groups);
        for i in (0..groups).rev() {
            chunks.push(recs.split_off(n * i / groups));
        }
        chunks.reverse();
        let mut leaves: Vec<u32> = Vec::with_capacity(groups);
        let mut seps: Vec<K> = Vec::with_capacity(groups.saturating_sub(1));
        for chunk in chunks {
            if !leaves.is_empty() {
                seps.push(chunk[0].key);
            }
            let id = self.alloc(Node::Leaf {
                recs: chunk,
                next: None,
            });
            if let Some(&prev) = leaves.last() {
                let Node::Leaf { next, .. } = &mut self.nodes[prev as usize] else {
                    unreachable!()
                };
                *next = Some(id);
            }
            self.write(id);
            leaves.push(id);
        }
        self.root = self.build_internal_levels(leaves, seps);
        Ok(())
    }

    /// Number of evenly-sized groups for `n` items such that every group
    /// lands in `[min, max]`, preferring sizes near `target`. Requires the
    /// classic B-tree feasibility `min = ⌈max/2⌉`; a single group is always
    /// legal at the root.
    fn group_count(n: usize, min: usize, max: usize, target: usize) -> usize {
        if n <= max {
            return 1;
        }
        let lo = n.div_ceil(max);
        let hi = n / min;
        debug_assert!(
            lo <= hi,
            "B-tree grouping infeasible: n={n} min={min} max={max}"
        );
        n.div_ceil(target).clamp(lo, hi)
    }

    fn build_internal_levels(&mut self, mut level: Vec<u32>, mut seps: Vec<K>) -> u32 {
        let target = (self.cfg.fanout * 9 / 10).max(2);
        while level.len() > 1 {
            debug_assert_eq!(seps.len() + 1, level.len());
            let n = level.len();
            let groups = Self::group_count(n, self.cfg.min_fanout(), self.cfg.fanout, target);
            let mut next_level = Vec::with_capacity(groups);
            let mut next_seps = Vec::with_capacity(groups.saturating_sub(1));
            for g in 0..groups {
                let start = n * g / groups;
                let end = n * (g + 1) / groups;
                let children: Vec<u32> = level[start..end].to_vec();
                let keys: Vec<K> = seps[start..end - 1].to_vec();
                if end < n {
                    next_seps.push(seps[end - 1]);
                }
                let id = self.alloc(Node::Internal { keys, children });
                self.write(id);
                next_level.push(id);
            }
            level = next_level;
            seps = next_seps;
        }
        level[0]
    }

    // ------------------------------------------------------------------
    // Scans.
    // ------------------------------------------------------------------

    /// Streams records with keys in `[start, end)` bounds in key order,
    /// charging one read per node on the initial descent and one per leaf
    /// visited along the chain.
    pub fn scan<F: FnMut(&K, &V)>(&self, start: Bound<K>, end: Bound<K>, mut f: F) {
        if self.len == 0 {
            return;
        }
        // Descend to the first candidate leaf.
        let mut n = self.root;
        loop {
            self.read(n);
            match &self.nodes[n as usize] {
                Node::Internal { keys, children } => {
                    let idx = match &start {
                        Bound::Unbounded => 0,
                        Bound::Included(k) | Bound::Excluded(k) => Self::route(keys, k),
                    };
                    n = children[idx];
                }
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        let mut leaf = Some(n);
        let mut first = true;
        while let Some(id) = leaf {
            if !first {
                self.read(id);
            }
            first = false;
            let Node::Leaf { recs, next } = &self.nodes[id as usize] else {
                unreachable!()
            };
            for rec in recs {
                let after_start = match &start {
                    Bound::Unbounded => true,
                    Bound::Included(s) => rec.key >= *s,
                    Bound::Excluded(s) => rec.key > *s,
                };
                if !after_start {
                    continue;
                }
                let before_end = match &end {
                    Bound::Unbounded => true,
                    Bound::Included(e) => rec.key <= *e,
                    Bound::Excluded(e) => rec.key < *e,
                };
                if !before_end {
                    return;
                }
                f(&rec.key, &rec.value);
            }
            leaf = *next;
        }
    }

    /// Streams at most `limit` records with keys ≥ `start`, stopping early —
    /// the cost-faithful form of stream retrieval (reads only the leaves it
    /// must). Returns how many records were produced.
    pub fn scan_limited<F: FnMut(&K, &V)>(&self, start: &K, limit: usize, mut f: F) -> usize {
        if self.len == 0 || limit == 0 {
            return 0;
        }
        let mut n = self.root;
        loop {
            self.read(n);
            match &self.nodes[n as usize] {
                Node::Internal { keys, children } => n = children[Self::route(keys, start)],
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        let mut produced = 0usize;
        let mut leaf = Some(n);
        let mut first = true;
        while let Some(id) = leaf {
            if !first {
                self.read(id);
            }
            first = false;
            let Node::Leaf { recs, next } = &self.nodes[id as usize] else {
                unreachable!()
            };
            for rec in recs {
                if rec.key < *start {
                    continue;
                }
                f(&rec.key, &rec.value);
                produced += 1;
                if produced >= limit {
                    return produced;
                }
            }
            leaf = *next;
        }
        produced
    }

    /// Streams records with keys in `range` as an iterator (charging one
    /// read per node on the initial descent and one per leaf crossed).
    pub fn iter_range<R: std::ops::RangeBounds<K>>(&self, range: R) -> BTreeIter<'_, K, V> {
        BTreeIter::new(
            self,
            range.start_bound().cloned(),
            range.end_bound().cloned(),
        )
    }

    /// Streams every record in key order.
    pub fn iter(&self) -> BTreeIter<'_, K, V> {
        self.iter_range(..)
    }

    /// Collects every `(key, value)` pair in order (tests/diagnostics).
    pub fn collect_all(&self) -> Vec<(K, V)>
    where
        V: Clone,
    {
        let mut out = Vec::with_capacity(self.len as usize);
        self.scan(Bound::Unbounded, Bound::Unbounded, |k, v| {
            out.push((*k, v.clone()))
        });
        out
    }

    /// The page numbers of the leaf chain in key order — the physical
    /// scatter a stream retrieval must traverse.
    pub fn leaf_page_ids(&self) -> Vec<u32> {
        let mut n = self.root;
        loop {
            match &self.nodes[n as usize] {
                Node::Internal { children, .. } => n = children[0],
                Node::Leaf { .. } => break,
                Node::Free => unreachable!(),
            }
        }
        let mut out = Vec::new();
        let mut leaf = Some(n);
        while let Some(id) = leaf {
            out.push(id);
            let Node::Leaf { next, .. } = &self.nodes[id as usize] else {
                unreachable!()
            };
            leaf = *next;
        }
        out
    }

    // ------------------------------------------------------------------
    // Structural checking (tests).
    // ------------------------------------------------------------------

    /// Verifies the structural invariants; returns a description of the
    /// first problem found.
    pub fn check_structure(&self) -> Result<(), String> {
        let mut leaf_depths = Vec::new();
        self.check_node(self.root, None, None, 0, true, &mut leaf_depths)?;
        if leaf_depths.windows(2).any(|w| w[0] != w[1]) {
            return Err("leaves at differing depths".into());
        }
        // Leaf chain must be globally sorted and cover `len` records.
        let mut total = 0u64;
        let mut prev: Option<K> = None;
        for id in self.leaf_page_ids() {
            let Node::Leaf { recs, .. } = &self.nodes[id as usize] else {
                return Err(format!("leaf chain reached non-leaf page {id}"));
            };
            for r in recs {
                if let Some(p) = prev {
                    if p >= r.key {
                        return Err(format!("leaf chain out of order at page {id}"));
                    }
                }
                prev = Some(r.key);
                total += 1;
            }
        }
        if total != self.len {
            return Err(format!("len {} but leaf chain holds {total}", self.len));
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn check_node(
        &self,
        n: u32,
        lower: Option<K>,
        upper: Option<K>,
        depth: u32,
        is_root: bool,
        leaf_depths: &mut Vec<u32>,
    ) -> Result<(), String> {
        match &self.nodes[n as usize] {
            Node::Free => Err(format!("reachable free page {n}")),
            Node::Leaf { recs, .. } => {
                if !is_root && recs.len() < self.cfg.min_leaf() {
                    return Err(format!("leaf {n} under-full ({})", recs.len()));
                }
                if recs.len() > self.cfg.leaf_capacity {
                    return Err(format!("leaf {n} over-full ({})", recs.len()));
                }
                for r in recs {
                    if lower.is_some_and(|b| r.key < b) || upper.is_some_and(|b| r.key >= b) {
                        return Err(format!("leaf {n} key out of separator bounds"));
                    }
                }
                leaf_depths.push(depth);
                Ok(())
            }
            Node::Internal { keys, children } => {
                if children.len() != keys.len() + 1 {
                    return Err(format!("internal {n} arity mismatch"));
                }
                if !is_root && children.len() < self.cfg.min_fanout() {
                    return Err(format!("internal {n} under-full"));
                }
                if children.len() > self.cfg.fanout {
                    return Err(format!("internal {n} over-full"));
                }
                if !keys.windows(2).all(|w| w[0] < w[1]) {
                    return Err(format!("internal {n} separators unsorted"));
                }
                for (i, &c) in children.iter().enumerate() {
                    let lo = if i == 0 { lower } else { Some(keys[i - 1]) };
                    let hi = if i == keys.len() {
                        upper
                    } else {
                        Some(keys[i])
                    };
                    self.check_node(c, lo, hi, depth + 1, false, leaf_depths)?;
                }
                Ok(())
            }
        }
    }
}

/// An ordered iterator over a [`BPlusTree`], yielding `(&K, &V)`.
pub struct BTreeIter<'a, K, V> {
    tree: &'a BPlusTree<K, V>,
    /// Current leaf page, or `None` when exhausted.
    leaf: Option<u32>,
    /// Next record index within the current leaf.
    idx: usize,
    /// Whether the current leaf's read has been charged.
    charged: bool,
    start: Bound<K>,
    end: Bound<K>,
    started: bool,
}

impl<'a, K: Key, V> BTreeIter<'a, K, V> {
    fn new(tree: &'a BPlusTree<K, V>, start: Bound<K>, end: Bound<K>) -> Self {
        let leaf = if tree.len == 0 {
            None
        } else {
            let mut n = tree.root;
            loop {
                tree.read(n);
                match &tree.nodes[n as usize] {
                    Node::Internal { keys, children } => {
                        let idx = match &start {
                            Bound::Unbounded => 0,
                            Bound::Included(k) | Bound::Excluded(k) => {
                                BPlusTree::<K, V>::route(keys, k)
                            }
                        };
                        n = children[idx];
                    }
                    Node::Leaf { .. } => break,
                    Node::Free => unreachable!(),
                }
            }
            Some(n)
        };
        BTreeIter {
            tree,
            leaf,
            idx: 0,
            charged: true, // the descent already read the first leaf
            start,
            end,
            started: false,
        }
    }
}

impl<'a, K: Key, V> Iterator for BTreeIter<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            let id = self.leaf?;
            if !self.charged {
                self.tree.read(id);
                self.charged = true;
            }
            let Node::Leaf { recs, next } = &self.tree.nodes[id as usize] else {
                unreachable!()
            };
            if self.idx >= recs.len() {
                self.leaf = *next;
                self.idx = 0;
                self.charged = false;
                continue;
            }
            let rec = &recs[self.idx];
            self.idx += 1;
            if !self.started {
                let before = match &self.start {
                    Bound::Unbounded => false,
                    Bound::Included(s) => rec.key < *s,
                    Bound::Excluded(s) => rec.key <= *s,
                };
                if before {
                    continue;
                }
                self.started = true;
            }
            let past = match &self.end {
                Bound::Unbounded => false,
                Bound::Included(e) => rec.key > *e,
                Bound::Excluded(e) => rec.key >= *e,
            };
            if past {
                self.leaf = None;
                return None;
            }
            return Some((&rec.key, &rec.value));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tree(cap: usize) -> BPlusTree<u64, u64> {
        BPlusTree::new(BTreeConfig::with_page_capacity(cap)).unwrap()
    }

    #[test]
    fn rejects_tiny_configs() {
        assert_eq!(
            BPlusTree::<u64, u64>::new(BTreeConfig {
                leaf_capacity: 2,
                fanout: 8
            })
            .unwrap_err(),
            BTreeError::InvalidConfig
        );
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut t = tree(8);
        for k in 0..100u64 {
            assert_eq!(t.insert(k * 3, k), None);
        }
        assert_eq!(t.len(), 100);
        t.check_structure().unwrap();
        for k in 0..100u64 {
            assert_eq!(t.get(&(k * 3)), Some(&k));
        }
        assert_eq!(t.get(&1), None);
        assert_eq!(t.insert(30, 999), Some(10));
        for k in 0..100u64 {
            assert!(t.remove(&(k * 3)).is_some(), "key {k}");
            t.check_structure().unwrap();
        }
        assert!(t.is_empty());
    }

    #[test]
    fn random_workload_matches_btreemap() {
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(42);
        let mut t = tree(12);
        let mut model = std::collections::BTreeMap::new();
        for _ in 0..5000 {
            let k = rng.gen_range(0..800u64);
            if rng.gen_bool(0.6) {
                assert_eq!(t.insert(k, k * 2), model.insert(k, k * 2));
            } else {
                assert_eq!(t.remove(&k), model.remove(&k));
            }
        }
        t.check_structure().unwrap();
        let got = t.collect_all();
        let want: Vec<(u64, u64)> = model.into_iter().collect();
        assert_eq!(got, want);
    }

    #[test]
    fn bulk_load_builds_a_valid_tree() {
        let mut t = tree(16);
        t.bulk_load((0..1000u64).map(|k| (k * 2, k))).unwrap();
        assert_eq!(t.len(), 1000);
        t.check_structure().unwrap();
        assert_eq!(t.get(&500), Some(&250));
        assert_eq!(t.get(&501), None);
        let all = t.collect_all();
        assert_eq!(all.len(), 1000);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn bulk_load_rejects_unsorted_and_non_empty() {
        let mut t = tree(8);
        assert_eq!(
            t.bulk_load([(5u64, 0u64), (3, 0)]).unwrap_err(),
            BTreeError::NotSorted { index: 1 }
        );
        let mut t = tree(8);
        t.insert(1, 1);
        assert_eq!(
            t.bulk_load([(5u64, 0u64)]).unwrap_err(),
            BTreeError::NotEmpty
        );
    }

    #[test]
    fn bulk_load_of_tiny_inputs() {
        for n in 0..20u64 {
            let mut t = tree(8);
            t.bulk_load((0..n).map(|k| (k, k))).unwrap();
            assert_eq!(t.len(), n);
            t.check_structure().unwrap();
            assert_eq!(t.collect_all().len() as u64, n);
        }
    }

    #[test]
    fn scans_respect_bounds() {
        let mut t = tree(8);
        t.bulk_load((0..100u64).map(|k| (k * 10, k))).unwrap();
        let mut got = Vec::new();
        t.scan(Bound::Included(250), Bound::Included(500), |k, _| {
            got.push(*k)
        });
        assert_eq!(got.first(), Some(&250));
        assert_eq!(got.last(), Some(&500));
        assert_eq!(got.len(), 26);
        let mut got = Vec::new();
        t.scan(Bound::Excluded(250), Bound::Excluded(500), |k, _| {
            got.push(*k)
        });
        assert_eq!(got.first(), Some(&260));
        assert_eq!(got.last(), Some(&490));
    }

    #[test]
    fn update_traffic_scatters_the_leaf_chain() {
        // Bulk-loaded leaves are physically consecutive; random inserts
        // break the adjacency — the effect the disk-model experiment
        // quantifies.
        let mut t = tree(16);
        t.bulk_load((0..2000u64).map(|k| (k * 4, k))).unwrap();
        let fresh = t.leaf_page_ids();
        let fresh_adjacent =
            fresh.windows(2).filter(|w| w[1] == w[0] + 1).count() as f64 / fresh.len() as f64;
        use rand::{rngs::SmallRng, Rng, SeedableRng};
        let mut rng = SmallRng::seed_from_u64(7);
        for _ in 0..4000 {
            let k = rng.gen_range(0..8000u64);
            t.insert(k, 0);
        }
        t.check_structure().unwrap();
        let aged = t.leaf_page_ids();
        let aged_adjacent =
            aged.windows(2).filter(|w| w[1] == w[0] + 1).count() as f64 / aged.len() as f64;
        assert!(
            aged_adjacent < fresh_adjacent,
            "adjacency should decay: fresh {fresh_adjacent:.2} aged {aged_adjacent:.2}"
        );
    }

    #[test]
    fn io_costs_scale_with_height() {
        let mut t = tree(8);
        t.bulk_load((0..5000u64).map(|k| (k, k))).unwrap();
        let h = t.height() as u64;
        assert!(h >= 3);
        let snap = t.stats().snapshot();
        t.get(&2500);
        let d = t.stats().since(snap);
        assert_eq!(d.reads, h);
        assert_eq!(d.writes, 0);
    }

    #[test]
    fn height_and_pages_reported() {
        let mut t = tree(8);
        assert_eq!(t.height(), 1);
        assert_eq!(t.node_pages(), 1);
        for k in 0..200u64 {
            t.insert(k, k);
        }
        assert!(t.height() >= 2);
        assert!(t.node_pages() > 20);
    }

    #[test]
    fn iterator_matches_callback_scan() {
        let mut t = tree(8);
        t.bulk_load((0..500u64).map(|k| (k * 3, k))).unwrap();
        let via_iter: Vec<u64> = t.iter().map(|(k, _)| *k).collect();
        let mut via_scan = Vec::new();
        t.scan(Bound::Unbounded, Bound::Unbounded, |k, _| via_scan.push(*k));
        assert_eq!(via_iter, via_scan);
        let bounded: Vec<u64> = t.iter_range(30..=60).map(|(k, _)| *k).collect();
        assert_eq!(bounded, vec![30, 33, 36, 39, 42, 45, 48, 51, 54, 57, 60]);
        assert_eq!(t.iter_range(1..3).count(), 0);
        let empty = tree(8);
        assert_eq!(empty.iter().count(), 0);
    }

    #[test]
    fn empty_scan_is_free_of_panics() {
        let t = tree(8);
        let mut count = 0;
        t.scan(Bound::Unbounded, Bound::Unbounded, |_, _| count += 1);
        assert_eq!(count, 0);
    }

    /// Builds a small two-level tree (leaf capacity 4, so minimum fill 2),
    /// the geometry where individual rebalancing paths are easy to drive.
    fn two_level(records: u64) -> BPlusTree<u64, u64> {
        let mut t = BPlusTree::new(BTreeConfig {
            leaf_capacity: 4,
            fanout: 4,
        })
        .unwrap();
        t.bulk_load((0..records).map(|k| (k * 10, k))).unwrap();
        assert!(t.height() >= 2, "need an internal level");
        t.check_structure().unwrap();
        t
    }

    #[test]
    fn delete_exercises_borrow_from_left_sibling() {
        let mut t = two_level(9);
        // Drain the rightmost leaf until it underflows; with fuller left
        // siblings the fix must be a borrow (structure check would catch a
        // bad separator).
        let keys: Vec<u64> = t.collect_all().iter().map(|(k, _)| *k).collect();
        for k in keys.iter().rev().take(4) {
            t.remove(k).unwrap();
            t.check_structure().unwrap();
        }
        assert_eq!(t.len(), keys.len() as u64 - 4);
    }

    #[test]
    fn delete_exercises_borrow_from_right_sibling() {
        let mut t = two_level(9);
        let keys: Vec<u64> = t.collect_all().iter().map(|(k, _)| *k).collect();
        // Drain from the front: the leftmost leaf underflows and must borrow
        // from (or merge with) its right sibling.
        for k in keys.iter().take(4) {
            t.remove(k).unwrap();
            t.check_structure().unwrap();
        }
        assert_eq!(t.len(), keys.len() as u64 - 4);
    }

    #[test]
    fn deletes_shrink_height_via_root_collapse() {
        let mut t = tree(4);
        for k in 0..64u64 {
            t.insert(k, k);
        }
        let tall = t.height();
        assert!(tall >= 3);
        for k in 0..60u64 {
            t.remove(&k);
            t.check_structure().unwrap();
        }
        assert!(t.height() < tall, "root collapse must shrink the tree");
        assert_eq!(t.len(), 4);
        for k in 60..64u64 {
            assert_eq!(t.get(&k), Some(&k));
        }
    }

    #[test]
    fn interleaved_insert_delete_churn_at_min_occupancy() {
        // Hold the tree near minimum fill while churning, so borrows and
        // merges fire constantly in both directions.
        let mut t = tree(4);
        for k in 0..40u64 {
            t.insert(k, k);
        }
        for round in 0..200u64 {
            let del = (round * 7) % 40;
            let ins = 1000 + round;
            t.remove(&del);
            t.insert(ins, ins);
            t.insert(del, del); // put it back
            t.remove(&ins);
            if round % 10 == 0 {
                t.check_structure().unwrap();
            }
        }
        t.check_structure().unwrap();
        assert_eq!(t.len(), 40);
    }

    #[test]
    fn scan_limited_charges_less_than_full_scan() {
        let mut t = tree(8);
        t.bulk_load((0..2000u64).map(|k| (k, k))).unwrap();
        let snap = t.stats().snapshot();
        let got = t.scan_limited(&500, 10, |_, _| {});
        assert_eq!(got, 10);
        let short = t.stats().since(snap).reads;
        let snap = t.stats().snapshot();
        let got = t.scan_limited(&0, usize::MAX, |_, _| {});
        assert_eq!(got, 2000);
        let full = t.stats().since(snap).reads;
        assert!(
            short * 4 < full,
            "early termination must save reads: {short} vs {full}"
        );
    }

    #[test]
    fn descending_inserts_then_full_drain() {
        let mut t = tree(8);
        for k in (0..500u64).rev() {
            t.insert(k, k);
        }
        t.check_structure().unwrap();
        assert_eq!(t.len(), 500);
        for k in 0..500u64 {
            assert_eq!(t.remove(&k), Some(k));
        }
        t.check_structure().unwrap();
        assert!(t.is_empty());
        // And the tree is reusable afterwards.
        t.insert(7, 7);
        assert_eq!(t.get(&7), Some(&7));
    }
}
