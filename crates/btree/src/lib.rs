//! # dsf-btree — the B+-tree comparator
//!
//! The paper positions CONTROL 2 against B-trees throughout: "update costs
//! are probably somewhat higher under CONTROL 2 than under B-tree
//! algorithms, but the advantage of storing records in sequential order will
//! make CONTROL 2 desirable in those applications where frequent stream
//! retrieval requests make the reduced disk-arm movement a significant
//! savings" (§4). This crate provides the B+-tree side of that comparison,
//! measured in the *same* cost model as the dense file:
//!
//! * every node occupies one physical page (its arena index is its page
//!   number);
//! * every node visit charges one page read, every node modification one
//!   page write, through the shared [`dsf_pagestore::IoStats`];
//! * an optional [`dsf_pagestore::TraceBuffer`] records the page sequence
//!   for the rotational-disk model, which is where the B-tree loses on
//!   streams: after a history of splits, logically adjacent leaves live at
//!   scattered page numbers, so a range scan pays a seek per leaf, whereas
//!   the dense file pays one seek total.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tree;

pub use tree::{BPlusTree, BTreeConfig, BTreeError, BTreeIter};
