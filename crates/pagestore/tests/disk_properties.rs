//! Property tests for the rotational-disk model: the qualitative facts the
//! experiments rely on must hold for arbitrary traces and parameters.

use dsf_pagestore::disk::DiskModel;
use dsf_pagestore::{AccessEvent, AccessKind};
use proptest::prelude::*;

fn ev(page: u64) -> AccessEvent {
    AccessEvent {
        page,
        kind: AccessKind::Read,
    }
}

fn arb_model() -> impl Strategy<Value = DiskModel> {
    (0.1f64..50.0, 0.1f64..20.0, 0.001f64..2.0, 0u64..64).prop_map(|(seek, rot, xfer, rt)| {
        DiskModel {
            avg_seek_ms: seek,
            rotational_latency_ms: rot,
            transfer_ms_per_page: xfer,
            read_through_pages: rt,
        }
    })
}

proptest! {
    /// Appending events never reduces the estimated time.
    #[test]
    fn replay_is_monotone_in_the_trace(
        model in arb_model(),
        pages in prop::collection::vec(any::<u32>(), 1..100),
    ) {
        let trace: Vec<AccessEvent> = pages.iter().map(|&p| ev(u64::from(p))).collect();
        let mut prev = 0.0;
        for i in 0..=trace.len() {
            let cost = model.replay_ms(&trace[..i]);
            prop_assert!(cost >= prev - 1e-9, "prefix {} got cheaper", i);
            prev = cost;
        }
    }

    /// A sorted (ascending) visit order never costs more than the same
    /// multiset of pages in arbitrary order.
    #[test]
    fn sorted_order_is_never_worse(
        model in arb_model(),
        pages in prop::collection::vec(any::<u16>(), 1..100),
    ) {
        let trace: Vec<AccessEvent> = pages.iter().map(|&p| ev(u64::from(p))).collect();
        let mut sorted = pages.clone();
        sorted.sort_unstable();
        let sorted_trace: Vec<AccessEvent> = sorted.iter().map(|&p| ev(u64::from(p))).collect();
        prop_assert!(
            model.replay_ms(&sorted_trace) <= model.replay_ms(&trace) + 1e-9
        );
    }

    /// Every access costs at least one transfer... except same-page
    /// re-touches, which are free; and the analysis decomposition is exact.
    #[test]
    fn analysis_decomposition_is_consistent(
        model in arb_model(),
        pages in prop::collection::vec(any::<u16>(), 0..100),
    ) {
        let trace: Vec<AccessEvent> = pages.iter().map(|&p| ev(u64::from(p))).collect();
        let a = model.analyze(&trace);
        prop_assert_eq!(a.accesses, trace.len() as u64);
        prop_assert_eq!(a.seeks + a.sequential + a.same_page, a.accesses);
        // Lower bound: every seek costs a random access.
        let floor = a.seeks as f64 * model.random_access_ms();
        prop_assert!(a.estimated_ms >= floor - 1e-6);
        // Upper bound: no access costs more than a random access.
        let ceil = (a.seeks + a.sequential) as f64 * model.random_access_ms();
        prop_assert!(a.estimated_ms <= ceil + 1e-6);
    }
}
