//! Crash-point sweep over the `BufferPool` writeback path.
//!
//! A versioned workload runs against a [`BufferPool`] over a
//! [`FaultBackend`]; the crash point sweeps across **every** backend call
//! the workload makes. After each crash the power cycle adversarially
//! persists/drops/tears the unsynced overlay, and the durable image must
//! still be explainable: every page is a stack of version fragments, newer
//! bytes strictly above older ones, and never older than the last
//! acknowledged sync — i.e. fsynced data survives, unfsynced data may be
//! lost or torn but never resurrects the past or interleaves.

use dsf_pagestore::{BufferPool, FaultBackend, MemBackend, PageBackend};

const PAGE_SIZE: usize = 32;
const PAGES: u64 = 16;
const POOL_CAP: usize = 6;
const ROUNDS: u8 = 3;

/// The bytes of `page` at `version`. Any two versions differ at **every**
/// byte index (61·v is distinct mod 256 for v ≤ 3), so a durable page can
/// be decoded byte-by-byte into the version each byte came from.
fn pattern(page: u64, version: u8) -> Vec<u8> {
    (0..PAGE_SIZE)
        .map(|i| {
            (version.wrapping_mul(61))
                .wrapping_add((page as u8).wrapping_mul(31))
                .wrapping_add((i as u8).wrapping_mul(13))
                .wrapping_add(7)
        })
        .collect()
}

/// Decodes a durable page into the version of each byte; panics if any byte
/// belongs to no version ≤ `ROUNDS`.
fn decode_versions(page: u64, bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (0..=ROUNDS)
                .find(|&v| pattern(page, v)[i] == b)
                .unwrap_or_else(|| panic!("page {page} byte {i} = {b:#x} matches no version"))
        })
        .collect()
}

fn seeded_backend(seed: u64) -> FaultBackend<MemBackend> {
    // Initialize the durable layer at version 0 *before* wrapping, so setup
    // I/O is neither counted nor faulted.
    let mut mem = MemBackend::new(PAGE_SIZE);
    for p in 0..PAGES {
        mem.write_run(p, &pattern(p, 0)).unwrap();
    }
    FaultBackend::new(mem, seed)
}

/// Runs the versioned workload until completion or the first injected
/// error. Returns the last round whose sync was acknowledged.
fn run_workload(pool: &mut BufferPool<FaultBackend<MemBackend>>) -> u8 {
    let mut synced_round = 0u8;
    'rounds: for round in 1..=ROUNDS {
        for p in 0..PAGES {
            let Ok(frame) = pool.get_mut(p) else {
                break 'rounds;
            };
            frame.copy_from_slice(&pattern(p, round));
        }
        if pool.flush_all().is_err() {
            break;
        }
        if pool.backend_mut().sync().is_err() {
            break;
        }
        synced_round = round;
    }
    synced_round
}

fn fresh_pool(seed: u64, crash_at: Option<u64>) -> BufferPool<FaultBackend<MemBackend>> {
    let mut fb = seeded_backend(seed);
    fb.set_crash_at(crash_at);
    let mut pool = BufferPool::new(fb, POOL_CAP);
    // One write_run per page: many distinct crash points on the writeback
    // path (the coalesced discipline is covered by run_io_properties).
    pool.set_coalescing(false);
    pool
}

/// Checks one durable page image against the crash contract.
fn check_page(page: u64, bytes: &[u8], synced_round: u8, crash_at: u64) {
    let versions = decode_versions(page, bytes);
    for w in versions.windows(2) {
        assert!(
            w[0] >= w[1],
            "crash@{crash_at} page {page}: version went up left-to-right ({versions:?}) — \
             interleaved old-over-new write"
        );
    }
    let min = *versions.iter().min().unwrap();
    assert!(
        min >= synced_round,
        "crash@{crash_at} page {page}: byte older than the last acknowledged sync \
         (round {synced_round}, saw version {min}) — durability violated"
    );
}

#[test]
fn crash_sweep_over_every_writeback_call_never_loses_synced_data() {
    let seed: u64 = std::env::var("DSF_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xfe11_5afe);

    // Dry run: count the backend calls the workload makes.
    let mut dry = fresh_pool(seed, None);
    let synced = run_workload(&mut dry);
    assert_eq!(synced, ROUNDS, "dry run must complete");
    let total_calls = dry.backend().calls();
    assert!(
        total_calls >= 60,
        "workload too small to be a meaningful sweep: {total_calls} backend calls"
    );

    let mut crash_points = 0u64;
    for n in 1..=total_calls {
        let mut pool = fresh_pool(seed ^ n, Some(n));
        let synced_round = run_workload(&mut pool);
        let mut fb = pool.into_backend_lossy();
        assert!(fb.crashed(), "crash point {n} never fired");
        fb.power_cycle().unwrap();
        crash_points += 1;

        // The process is gone; recovery sees only the durable layer.
        let mut recovered = BufferPool::new(fb, POOL_CAP);
        for p in 0..PAGES {
            let bytes = recovered.get(p).unwrap().to_vec();
            check_page(p, &bytes, synced_round, n);
        }
        // Counter reconciliation: the fresh pool faulted every page in.
        let stats = recovered.stats();
        assert_eq!(stats.accesses, PAGES);
        assert_eq!(stats.misses, PAGES);
        assert_eq!(stats.hits, 0);
    }
    assert!(
        crash_points >= 60,
        "swept only {crash_points} crash points on the writeback path"
    );
}

#[test]
fn transient_eio_on_writeback_is_retryable_and_lossless() {
    let seed = 0x0e10_0e10u64;
    let mut pool = fresh_pool(seed, None);
    // Fault the 3rd backend call from now — a flush_all writeback.
    for p in 0..PAGES {
        pool.get_mut(p).unwrap().copy_from_slice(&pattern(p, 1));
    }
    let next = pool.backend().calls() + 3;
    pool.backend_mut().set_eio_at(vec![next]);
    let err = pool.flush_all();
    assert!(err.is_err(), "injected EIO must surface");
    assert_eq!(pool.backend().injected_eio(), 1);
    // The failed page is still dirty; a plain retry completes the flush.
    pool.flush_all().unwrap();
    pool.backend_mut().sync().unwrap();
    let mut fb = pool.into_backend_lossy();
    for p in 0..PAGES {
        let mut buf = vec![0u8; PAGE_SIZE];
        fb.read_durable(p, &mut buf).unwrap();
        assert_eq!(buf, pattern(p, 1), "page {p} lost by a retried EIO");
    }
}

#[test]
fn crash_during_sync_keeps_durable_layer_at_previous_round() {
    let seed = 0x5111_c001u64;
    let mut pool = fresh_pool(seed, None);
    for p in 0..PAGES {
        pool.get_mut(p).unwrap().copy_from_slice(&pattern(p, 1));
    }
    pool.flush_all().unwrap();
    pool.backend_mut().sync().unwrap();
    for p in 0..PAGES {
        pool.get_mut(p).unwrap().copy_from_slice(&pattern(p, 2));
    }
    pool.flush_all().unwrap();
    let next = pool.backend().calls() + 1;
    pool.backend_mut().set_crash_at(Some(next));
    assert!(pool.backend_mut().sync().is_err(), "sync must crash");
    let mut fb = pool.into_backend_lossy();
    fb.power_cycle().unwrap();
    for p in 0..PAGES {
        let mut buf = vec![0u8; PAGE_SIZE];
        fb.read_durable(p, &mut buf).unwrap();
        check_page(p, &buf, 1, next);
    }
}
