//! Property tests for the paged store: every slot operation must agree
//! with a plain sorted-`Vec` model, and the page-access accounting must
//! obey its documented bounds.

use dsf_pagestore::{End, PagedStore, Record, StoreConfig};
use proptest::prelude::*;

#[derive(Debug, Clone)]
enum SlotOp {
    Insert(u16, u8),
    Remove(u16),
    Get(u16),
    TakeFront(u8),
    TakeBack(u8),
    TakeAll,
}

fn op_strategy() -> impl Strategy<Value = SlotOp> {
    prop_oneof![
        4 => (any::<u16>(), any::<u8>()).prop_map(|(k, v)| SlotOp::Insert(k, v)),
        2 => any::<u16>().prop_map(SlotOp::Remove),
        2 => any::<u16>().prop_map(SlotOp::Get),
        1 => any::<u8>().prop_map(SlotOp::TakeFront),
        1 => any::<u8>().prop_map(SlotOp::TakeBack),
        1 => Just(SlotOp::TakeAll),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// One slot, arbitrary op sequences, checked against a Vec model.
    #[test]
    fn slot_ops_match_model(
        k in 1u32..5,
        cap in 1u32..20,
        ops in prop::collection::vec(op_strategy(), 1..120),
    ) {
        let mut st: PagedStore<u16, u8> = PagedStore::new(StoreConfig {
            slots: 1,
            pages_per_slot: k,
            page_capacity: cap,
        }).unwrap();
        let mut model: Vec<Record<u16, u8>> = Vec::new();
        for op in &ops {
            match *op {
                SlotOp::Insert(key, v) => {
                    let got = st.insert(0, key, v);
                    let want = match model.binary_search_by(|r| r.key.cmp(&key)) {
                        Ok(i) => Some(std::mem::replace(&mut model[i].value, v)),
                        Err(i) => {
                            model.insert(i, Record::new(key, v));
                            None
                        }
                    };
                    prop_assert_eq!(got, want);
                }
                SlotOp::Remove(key) => {
                    let got = st.remove(0, &key);
                    let want = match model.binary_search_by(|r| r.key.cmp(&key)) {
                        Ok(i) => Some(model.remove(i).value),
                        Err(_) => None,
                    };
                    prop_assert_eq!(got, want);
                }
                SlotOp::Get(key) => {
                    let want = model
                        .binary_search_by(|r| r.key.cmp(&key))
                        .ok()
                        .map(|i| model[i].value);
                    prop_assert_eq!(st.get(0, &key).copied(), want);
                }
                SlotOp::TakeFront(n) => {
                    let n = n as usize;
                    let got = st.take(0, n, End::Front);
                    let take = n.min(model.len());
                    let want: Vec<Record<u16, u8>> = model.drain(..take).collect();
                    prop_assert_eq!(got, want);
                }
                SlotOp::TakeBack(n) => {
                    let n = n as usize;
                    let got = st.take(0, n, End::Back);
                    let split = model.len() - n.min(model.len());
                    let want: Vec<Record<u16, u8>> = model.split_off(split);
                    prop_assert_eq!(got, want);
                }
                SlotOp::TakeAll => {
                    let got = st.take_all(0);
                    let want: Vec<Record<u16, u8>> = std::mem::take(&mut model);
                    prop_assert_eq!(got, want);
                }
            }
            // Metadata always agrees with the model.
            prop_assert_eq!(st.len(0), model.len());
            prop_assert_eq!(st.min_key(0), model.first().map(|r| r.key));
            prop_assert_eq!(st.max_key(0), model.last().map(|r| r.key));
            prop_assert_eq!(st.total_records(), model.len());
        }
        // read_page partitions the slot exactly.
        let mut reassembled: Vec<Record<u16, u8>> = Vec::new();
        for p in 0..k {
            reassembled.extend(st.read_page(0, p).iter().cloned());
        }
        prop_assert_eq!(reassembled, model);
    }

    /// Charging bounds: every op touches at least one page when it moves
    /// data, and never more than the slot's page count per direction.
    #[test]
    fn charges_are_bounded(
        k in 1u32..5,
        cap in 1u32..16,
        keys in prop::collection::btree_set(any::<u16>(), 1..60),
    ) {
        let mut st: PagedStore<u16, u8> = PagedStore::new(StoreConfig {
            slots: 2,
            pages_per_slot: k,
            page_capacity: cap,
        }).unwrap();
        for &key in &keys {
            let snap = st.stats().snapshot();
            st.insert(0, key, 0);
            let d = st.stats().since(snap);
            prop_assert!(d.writes >= 1, "an insert writes at least one page");
            prop_assert!(
                d.writes <= u64::from(k) && d.reads <= u64::from(k),
                "an insert touches at most the slot: {:?}", d
            );
        }
        // A full take(front) reads ≤ k pages and writes ≤ k pages.
        let snap = st.stats().snapshot();
        let n = st.len(0);
        let all = st.take(0, n, End::Front);
        prop_assert_eq!(all.len(), n);
        let d = st.stats().since(snap);
        prop_assert!(d.reads <= u64::from(k));
        prop_assert!(d.writes <= u64::from(k));
        // Putting them into the other slot writes ≤ k pages.
        let snap = st.stats().snapshot();
        st.put(1, all, End::Back);
        let d = st.stats().since(snap);
        prop_assert!(d.writes >= u64::from(n > 0));
        prop_assert!(d.writes <= u64::from(k));
        prop_assert_eq!(d.reads, 0);
    }

    /// Transient overflow: the last page absorbs records beyond k·cap and
    /// geometry stays coherent.
    #[test]
    fn soft_overflow_is_coherent(
        k in 1u32..4,
        cap in 1u32..8,
        extra in 0u32..10,
    ) {
        let mut st: PagedStore<u32, ()> = PagedStore::new(StoreConfig {
            slots: 1,
            pages_per_slot: k,
            page_capacity: cap,
        }).unwrap();
        let n = k * cap + extra;
        let recs: Vec<Record<u32, ()>> = (0..n).map(|i| Record::new(i, ())).collect();
        st.replace(0, recs);
        prop_assert_eq!(st.len(0), n as usize);
        prop_assert!(st.pages_used(0) <= k);
        let mut total = 0;
        for p in 0..k {
            total += st.read_page(0, p).len();
        }
        prop_assert_eq!(total, n as usize);
        // The overflow sits on the last page.
        if extra > 0 && k > 0 {
            prop_assert_eq!(st.read_page(0, k - 1).len() as u32, cap + extra);
        }
    }
}
