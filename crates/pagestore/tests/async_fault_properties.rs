//! Crash-point sweep over the **asynchronous** writeback path.
//!
//! The same versioned workload and durable-image oracle as
//! `fault_properties.rs`, but the pool now writes through an
//! [`AsyncBackend`] — dirty-page writeback happens on a scheduler worker
//! thread, and injected faults fire *inside* background writeback instead
//! of on the command path. One worker keeps the backend-call order
//! deterministic (writes execute in submission order; reads and syncs are
//! drain barriers), so the crash point sweeps the identical call schedule
//! the synchronous sweep covers.
//!
//! The contract under test: moving writeback off the command path changes
//! *when* errors surface (at the next barrier, not at the dirtying access)
//! but not *what* survives a crash — fsynced rounds persist, unsynced
//! pages may drop or tear, and nothing interleaves or resurrects.

use dsf_pagestore::{AsyncBackend, BufferPool, FaultBackend, MemBackend, PageBackend};

const PAGE_SIZE: usize = 32;
const PAGES: u64 = 16;
const POOL_CAP: usize = 6;
const ROUNDS: u8 = 3;
const QUEUE_CAP: usize = 8;

/// The bytes of `page` at `version` — every byte index differs between any
/// two versions, so durable pages decode byte-by-byte. (Same pattern as the
/// synchronous sweep; the oracle must not change when the engine does.)
fn pattern(page: u64, version: u8) -> Vec<u8> {
    (0..PAGE_SIZE)
        .map(|i| {
            (version.wrapping_mul(61))
                .wrapping_add((page as u8).wrapping_mul(31))
                .wrapping_add((i as u8).wrapping_mul(13))
                .wrapping_add(7)
        })
        .collect()
}

fn decode_versions(page: u64, bytes: &[u8]) -> Vec<u8> {
    bytes
        .iter()
        .enumerate()
        .map(|(i, &b)| {
            (0..=ROUNDS)
                .find(|&v| pattern(page, v)[i] == b)
                .unwrap_or_else(|| panic!("page {page} byte {i} = {b:#x} matches no version"))
        })
        .collect()
}

type AsyncPool = BufferPool<AsyncBackend<FaultBackend<MemBackend>>>;

fn fresh_pool(seed: u64, crash_at: Option<u64>) -> AsyncPool {
    let mut mem = MemBackend::new(PAGE_SIZE);
    for p in 0..PAGES {
        mem.write_run(p, &pattern(p, 0)).unwrap();
    }
    let mut fb = FaultBackend::new(mem, seed);
    fb.set_crash_at(crash_at);
    // ONE worker: background writes execute strictly in submission order,
    // so the FaultBackend call counter indexes the same schedule on every
    // run and the sweep is deterministic.
    let backend = AsyncBackend::new(fb, 1, QUEUE_CAP);
    let mut pool = BufferPool::new(backend, POOL_CAP);
    pool.set_coalescing(false);
    pool
}

/// Runs the versioned workload until completion or the first surfaced
/// error. With the async engine, enqueueing a writeback always succeeds;
/// failures surface at the next barrier — the explicit post-flush `drain`
/// or the fsync — which is exactly where the durability accounting reads
/// them. Returns the last round whose fsync was acknowledged.
fn run_workload(pool: &mut AsyncPool) -> u8 {
    let mut synced_round = 0u8;
    'rounds: for round in 1..=ROUNDS {
        for p in 0..PAGES {
            let Ok(frame) = pool.get_mut(p) else {
                break 'rounds;
            };
            frame.copy_from_slice(&pattern(p, round));
        }
        if pool.flush_all().is_err() || pool.backend().drain().is_err() {
            break;
        }
        match pool.backend().with_inner(|fb| fb.sync()) {
            Ok(Ok(())) => synced_round = round,
            _ => break,
        }
    }
    synced_round
}

fn check_page(page: u64, bytes: &[u8], synced_round: u8, crash_at: u64) {
    let versions = decode_versions(page, bytes);
    for w in versions.windows(2) {
        assert!(
            w[0] >= w[1],
            "crash@{crash_at} page {page}: version went up left-to-right ({versions:?}) — \
             interleaved old-over-new write"
        );
    }
    let min = *versions.iter().min().unwrap();
    assert!(
        min >= synced_round,
        "crash@{crash_at} page {page}: byte older than the last acknowledged fsync \
         (round {synced_round}, saw version {min}) — durability violated"
    );
}

#[test]
fn crash_sweep_inside_background_writeback_never_loses_synced_data() {
    let seed: u64 = std::env::var("DSF_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0xa5c1_5afe);

    // Dry run: count the backend calls the workload makes through the
    // scheduler (the barriers make this deterministic with one worker).
    let mut dry = fresh_pool(seed, None);
    let synced = run_workload(&mut dry);
    assert_eq!(synced, ROUNDS, "dry run must complete");
    let total_calls = dry
        .into_backend_lossy()
        .with_inner(|fb| fb.calls())
        .expect("dry run drains clean");
    assert!(
        total_calls >= 60,
        "workload too small to be a meaningful sweep: {total_calls} backend calls"
    );

    let mut crash_points = 0u64;
    for n in 1..=total_calls {
        let mut pool = fresh_pool(seed ^ n, Some(n));
        let synced_round = run_workload(&mut pool);
        // The process dies: queued-but-unwritten requests vanish with the
        // dirty frames, exactly like the synchronous pool's lossy teardown.
        let mut fb = pool.into_backend_lossy().into_inner_lossy();
        assert!(fb.crashed(), "crash point {n} never fired");
        fb.power_cycle().unwrap();
        crash_points += 1;

        // Recovery sees only the durable layer, through a synchronous pool.
        let mut recovered = BufferPool::new(fb, POOL_CAP);
        for p in 0..PAGES {
            let bytes = recovered.get(p).unwrap().to_vec();
            check_page(p, &bytes, synced_round, n);
        }
    }
    assert!(
        crash_points >= 60,
        "swept only {crash_points} crash points on the background writeback path"
    );
}

#[test]
fn transient_eio_inside_background_writeback_is_retryable_and_lossless() {
    let mut pool = fresh_pool(0x0e10_a51c, None);
    for p in 0..PAGES {
        pool.get_mut(p).unwrap().copy_from_slice(&pattern(p, 1));
    }
    // Fault the 3rd backend call from now — a background flush writeback.
    let at = pool.backend().with_inner(|fb| fb.calls()).unwrap() + 3;
    pool.backend()
        .with_inner(|fb| fb.set_eio_at(vec![at]))
        .unwrap();
    // Enqueueing never fails; the EIO surfaces at the drain barrier...
    pool.flush_all().unwrap();
    let err = pool.backend().drain();
    assert!(err.is_err(), "injected EIO must surface at the barrier");
    // ...which re-queued the failed request: the next barrier retries it.
    pool.backend().drain().expect("retry must succeed");
    pool.backend()
        .with_inner(|fb| fb.sync())
        .unwrap()
        .expect("sync after retried EIO");
    let mut fb = pool.into_backend_lossy().into_inner_lossy();
    for p in 0..PAGES {
        let mut buf = vec![0u8; PAGE_SIZE];
        fb.read_durable(p, &mut buf).unwrap();
        assert_eq!(buf, pattern(p, 1), "page {p} lost by a retried EIO");
    }
}
