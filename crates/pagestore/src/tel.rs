//! This crate's handles into the global telemetry spine.
//!
//! [`IoStats`](crate::IoStats) and [`PoolStats`](crate::PoolStats) stay the
//! *per-instance* views (snapshot/delta attribution needs an instance to
//! diff against); the handles here are the *process-wide* view of the same
//! events, aggregated across every store and pool in the process. While the
//! global registry is disabled — the default — each mirror call is a
//! single-branch no-op.

use std::sync::{Arc, OnceLock};

use dsf_telemetry::{Counter, Gauge, Histogram};

pub(crate) struct PagestoreTel {
    /// `dsf_page_reads_total` — physical page reads charged anywhere.
    pub reads: Arc<Counter>,
    /// `dsf_page_writes_total` — the write-amplification half, first-class
    /// and separate from reads (cf. Seybold's near-logarithmic-writes line
    /// of work).
    pub writes: Arc<Counter>,
    /// `dsf_pool_hits_total` — pool requests served from a resident frame.
    pub pool_hits: Arc<Counter>,
    /// `dsf_pool_misses_total` — pool requests that read the backend.
    pub pool_misses: Arc<Counter>,
    /// `dsf_pool_evictions_total`.
    pub pool_evictions: Arc<Counter>,
    /// `dsf_pool_writebacks_total` — dirty pages written back on eviction.
    pub pool_writebacks: Arc<Counter>,
    /// `dsf_pool_run_pages` — pages per coalesced `write_run` call
    /// (eviction clusters and flush runs alike).
    pub run_len: Arc<Histogram>,
    /// `dsf_pool_hit_ratio` — hits/accesses, refreshed on the miss path.
    pub hit_ratio: Arc<Gauge>,
    /// `dsf_io_queue_depth` — write requests accepted by the I/O scheduler
    /// and not yet completed (queued + executing), refreshed on every
    /// submit/complete transition.
    pub io_queue_depth: Arc<Gauge>,
    /// `dsf_writeback_pages` — pages written back to the inner backend by
    /// scheduler workers (completed background write requests).
    pub writeback_pages: Arc<Counter>,
}

pub(crate) fn tel() -> &'static PagestoreTel {
    static TEL: OnceLock<PagestoreTel> = OnceLock::new();
    TEL.get_or_init(|| {
        let r = dsf_telemetry::global();
        PagestoreTel {
            reads: r.counter("dsf_page_reads_total", "physical page reads charged"),
            writes: r.counter("dsf_page_writes_total", "physical page writes charged"),
            pool_hits: r.counter(
                "dsf_pool_hits_total",
                "buffer pool requests served from resident frames",
            ),
            pool_misses: r.counter(
                "dsf_pool_misses_total",
                "buffer pool requests that faulted to the backend",
            ),
            pool_evictions: r.counter("dsf_pool_evictions_total", "buffer pool frames evicted"),
            pool_writebacks: r.counter(
                "dsf_pool_writebacks_total",
                "dirty pages written back during eviction",
            ),
            run_len: r.histogram(
                "dsf_pool_run_pages",
                "pages moved per coalesced write_run call",
            ),
            hit_ratio: r.gauge(
                "dsf_pool_hit_ratio",
                "buffer pool hit ratio (hits / accesses), refreshed on misses",
            ),
            io_queue_depth: r.gauge(
                "dsf_io_queue_depth",
                "I/O scheduler write requests accepted and not yet completed",
            ),
            writeback_pages: r.counter(
                "dsf_writeback_pages",
                "pages written back by I/O scheduler workers",
            ),
        }
    })
}
