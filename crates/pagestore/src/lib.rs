//! # dsf-pagestore — the paged storage substrate
//!
//! Every data structure in this repository (the dense sequential file, the
//! B+-tree comparator, and the classical baselines) is measured in the cost
//! model of Willard's SIGMOD 1986 paper: **auxiliary page accesses**. This
//! crate provides the shared substrate that makes those measurements
//! comparable:
//!
//! * [`PagedStore`] — an in-memory array of *slots*, each slot holding a
//!   sorted run of records packed into one or more fixed-capacity physical
//!   pages. With `pages_per_slot == 1` a slot *is* a page (the common case);
//!   with `pages_per_slot == K > 1` a slot is one of the paper's
//!   **macro-blocks** (Theorem 5.7) and every slot operation is charged the
//!   physical pages it actually touches — the paper's "K times as costly"
//!   macro-block accounting.
//! * [`IoStats`] — interior-mutable read/write counters with cheap
//!   snapshot/delta support, so callers can attribute page accesses to
//!   individual insert/delete commands.
//! * [`TraceBuffer`] — an optional ordered log of physical page accesses,
//!   consumed by the [`disk`] cost model to estimate wall-clock time on a
//!   rotational disk (seek + rotational latency + transfer, with an
//!   adjacency discount for sequential access). This quantifies the paper's
//!   central systems argument: *stream retrieval* of records with
//!   consecutive keys is far cheaper in a dense sequential file than in a
//!   B-tree because the file stores them in physically adjacent pages.
//!
//! ## Charging discipline
//!
//! Methods on [`PagedStore`] are split into **counted** operations (they
//! touch data pages and charge [`IoStats`]) and **uncounted** `peek_*` /
//! metadata operations. Metadata such as per-slot record counts and minimum
//! keys is free because the dense-file algorithms mirror it in the in-memory
//! *calibrator* tree — exactly the accounting used by the paper, which
//! charges only auxiliary-memory page accesses and keeps the calibrator
//! resident. `peek_*` accessors exist for invariant checkers and tests and
//! must never be used on an algorithm's hot path.
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cache;
pub mod coalesce;
pub mod disk;
pub mod fault;
mod lru;
pub mod pool;
mod record;
pub mod sched;
mod stats;
mod store;
mod tel;
mod trace;

pub use cache::{CacheStats, LruCacheSim};
pub use coalesce::{coalesce, PageRun, RunCoalescer};
pub use fault::{CrashSummary, FaultBackend};
pub use pool::{BufferPool, MemBackend, PageBackend, PoolStats};
pub use record::{Key, Record};
pub use sched::AsyncBackend;
pub use stats::{IoDelta, IoSnapshot, IoStats};
pub use store::{End, PagedStore, SlotId, StoreConfig, StoreError};
pub use trace::{AccessEvent, AccessKind, TraceBuffer};
