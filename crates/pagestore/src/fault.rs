//! Deterministic fault injection for [`PageBackend`]s.
//!
//! [`FaultBackend`] wraps any inner backend and models the split every
//! storage stack lives with: a **volatile** layer (what a reader sees — the
//! OS page cache) and a **durable** layer (what survives a power cut — the
//! inner backend). `write_run` lands pages in a volatile overlay;
//! [`FaultBackend::sync`] flushes the overlay to the inner backend; a
//! [`power_cycle`](FaultBackend::power_cycle) adversarially decides, per
//! unsynced page, whether it persisted fully, was lost, or was **torn** at a
//! seeded byte boundary.
//!
//! A seeded schedule in the style of `dsf_durable::FaultPlan` (crash at the
//! Nth backend call, transient `EIO` at chosen calls) makes every failure
//! reproducible from a single `u64` seed — the crash-consistency harness
//! sweeps the crash point across an entire workload and checks recovery
//! after each.

use std::collections::BTreeMap;
use std::io;

use crate::pool::PageBackend;

/// What a [`FaultBackend::power_cycle`] decided about each unsynced page.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CrashSummary {
    /// Unsynced pages that made it to the durable layer intact.
    pub persisted: Vec<u64>,
    /// Unsynced pages that were lost entirely (durable layer keeps its old
    /// contents).
    pub dropped: Vec<u64>,
    /// Unsynced pages torn at a seeded byte boundary: a prefix of the new
    /// bytes over a suffix of the old.
    pub torn: Vec<u64>,
}

/// A [`PageBackend`] wrapper injecting deterministic, seeded faults.
///
/// Faults are counted in *backend calls*: every `read_run`, `write_run` and
/// [`sync`](Self::sync) increments a 1-based call counter checked against
/// the armed schedule. A **transient `EIO`** fails the call with no effect;
/// a **crash** applies a seeded partial effect (for `write_run`: some whole
/// pages plus at most one torn page reach the volatile overlay) and then
/// kills the backend — every further call errors until
/// [`power_cycle`](Self::power_cycle) simulates the reboot.
#[derive(Debug)]
pub struct FaultBackend<B: PageBackend> {
    inner: B,
    /// Volatile layer: pages written but not yet synced to `inner`.
    overlay: BTreeMap<u64, Vec<u8>>,
    crash_at: Option<u64>,
    eio_at: Vec<u64>,
    rng: u64,
    calls: u64,
    injected_eio: u64,
    crashed: bool,
    /// Pages accepted by `write_run` (including the partial pages of a
    /// crashed call).
    pages_written: u64,
    /// Pages flushed to the durable layer by successful `sync` calls.
    pages_synced: u64,
}

enum Gate {
    Proceed,
    Eio,
    Crash,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn dead() -> io::Error {
    io::Error::other("fault backend: crashed (call power_cycle to reboot)")
}

impl<B: PageBackend> FaultBackend<B> {
    /// Wraps `inner` with no faults armed; `seed` drives every later
    /// seeded decision (torn-write cuts, power-cycle outcomes).
    pub fn new(inner: B, seed: u64) -> Self {
        FaultBackend {
            inner,
            overlay: BTreeMap::new(),
            crash_at: None,
            eio_at: Vec::new(),
            rng: seed ^ 0xdead_beef_cafe_f00d,
            calls: 0,
            injected_eio: 0,
            crashed: false,
            pages_written: 0,
            pages_synced: 0,
        }
    }

    /// Arms a crash at the `n`th backend call from now (1-based over the
    /// lifetime counter; pass the absolute call number).
    pub fn set_crash_at(&mut self, n: Option<u64>) {
        self.crash_at = n;
    }

    /// Arms transient `EIO`s at the given absolute call numbers.
    pub fn set_eio_at(&mut self, ns: Vec<u64>) {
        self.eio_at = ns;
    }

    /// Backend calls made so far (the unit the fault schedule counts in).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Transient `EIO`s injected so far.
    pub fn injected_eio(&self) -> u64 {
        self.injected_eio
    }

    /// Whether an armed crash point has fired (and no reboot happened yet).
    pub fn crashed(&self) -> bool {
        self.crashed
    }

    /// Pages accepted by `write_run` so far.
    pub fn pages_written(&self) -> u64 {
        self.pages_written
    }

    /// Pages flushed to the durable layer by `sync` so far.
    pub fn pages_synced(&self) -> u64 {
        self.pages_synced
    }

    /// Pages currently dirty in the volatile overlay (would be lost or torn
    /// by a power cycle).
    pub fn unsynced_pages(&self) -> usize {
        self.overlay.len()
    }

    /// The inner (durable-layer) backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Reads a page's *durable* bytes, bypassing the volatile overlay —
    /// what a post-crash reader would see. Not counted as a backend call.
    pub fn read_durable(&mut self, page: u64, buf: &mut [u8]) -> io::Result<()> {
        self.inner.read_run(page, buf)
    }

    /// Flushes the volatile overlay to the durable layer. Counted as one
    /// backend call; a crash here persists nothing, a transient `EIO`
    /// leaves the overlay intact for a retry.
    pub fn sync(&mut self) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => {}
            Gate::Eio => return Err(io::Error::other("fault backend: injected EIO on sync")),
            Gate::Crash => return Err(dead()),
        }
        let pages: Vec<u64> = self.overlay.keys().copied().collect();
        for page in pages {
            let data = self.overlay.remove(&page).expect("listed key");
            self.inner.write_run(page, &data)?;
            self.pages_synced += 1;
        }
        Ok(())
    }

    /// Simulates the power cut and reboot: every unsynced overlay page gets
    /// a seeded outcome — persisted intact, dropped, or torn at a seeded
    /// byte boundary (new prefix over old suffix). Clears the overlay,
    /// disarms the fault schedule, and revives the backend. Deterministic
    /// in the construction seed.
    pub fn power_cycle(&mut self) -> io::Result<CrashSummary> {
        let page_size = self.inner.page_size();
        let mut summary = CrashSummary::default();
        let overlay = std::mem::take(&mut self.overlay);
        for (page, new) in overlay {
            match splitmix(&mut self.rng) % 4 {
                0 => {
                    self.inner.write_run(page, &new)?;
                    summary.persisted.push(page);
                }
                1 => summary.dropped.push(page),
                _ => {
                    let cut = (splitmix(&mut self.rng) % (page_size as u64 + 1)) as usize;
                    let mut old = vec![0u8; page_size];
                    self.inner.read_run(page, &mut old)?;
                    old[..cut].copy_from_slice(&new[..cut]);
                    self.inner.write_run(page, &old)?;
                    summary.torn.push(page);
                }
            }
        }
        self.crashed = false;
        self.crash_at = None;
        self.eio_at.clear();
        Ok(summary)
    }

    fn gate(&mut self) -> io::Result<Gate> {
        if self.crashed {
            return Err(dead());
        }
        self.calls += 1;
        let n = self.calls;
        if self.eio_at.contains(&n) {
            self.injected_eio += 1;
            return Ok(Gate::Eio);
        }
        if self.crash_at == Some(n) {
            self.crashed = true;
            return Ok(Gate::Crash);
        }
        Ok(Gate::Proceed)
    }

    /// The visible bytes of `page`: overlay if dirty, else durable.
    fn visible_page(&mut self, page: u64, buf: &mut [u8]) -> io::Result<()> {
        if let Some(data) = self.overlay.get(&page) {
            buf.copy_from_slice(data);
            Ok(())
        } else {
            self.inner.read_run(page, buf)
        }
    }
}

impl<B: PageBackend> PageBackend for FaultBackend<B> {
    fn page_size(&self) -> usize {
        self.inner.page_size()
    }

    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> io::Result<()> {
        match self.gate()? {
            Gate::Proceed => {}
            Gate::Eio => return Err(io::Error::other("fault backend: injected EIO on read")),
            // A crash on a read has no partial effect to apply.
            Gate::Crash => return Err(dead()),
        }
        let page_size = self.inner.page_size();
        for (i, chunk) in buf.chunks_exact_mut(page_size).enumerate() {
            let page = first_page + i as u64;
            if let Some(data) = self.overlay.get(&page) {
                chunk.copy_from_slice(data);
            } else {
                self.inner.read_run(page, chunk)?;
            }
        }
        Ok(())
    }

    fn write_run(&mut self, first_page: u64, data: &[u8]) -> io::Result<()> {
        let gate = self.gate()?;
        let page_size = self.inner.page_size();
        let n_pages = data.len() / page_size;
        match gate {
            Gate::Proceed => {
                for (i, chunk) in data.chunks_exact(page_size).enumerate() {
                    self.overlay.insert(first_page + i as u64, chunk.to_vec());
                    self.pages_written += 1;
                }
                Ok(())
            }
            Gate::Eio => Err(io::Error::other("fault backend: injected EIO on write")),
            Gate::Crash => {
                // Partial effect: the first k whole pages land, and the
                // next page may land torn at a seeded byte cut.
                let k = (splitmix(&mut self.rng) % (n_pages as u64 + 1)) as usize;
                for (i, chunk) in data.chunks_exact(page_size).enumerate().take(k) {
                    self.overlay.insert(first_page + i as u64, chunk.to_vec());
                    self.pages_written += 1;
                }
                if k < n_pages {
                    let page = first_page + k as u64;
                    let cut = (splitmix(&mut self.rng) % (page_size as u64 + 1)) as usize;
                    if cut > 0 {
                        let mut torn = vec![0u8; page_size];
                        // Caution: visible_page re-borrows self; build the
                        // torn page from the pre-write visible bytes.
                        self.visible_page(page, &mut torn)?;
                        torn[..cut].copy_from_slice(&data[k * page_size..k * page_size + cut]);
                        self.overlay.insert(page, torn);
                        self.pages_written += 1;
                    }
                }
                Err(dead())
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::MemBackend;

    const PS: usize = 32;

    fn filled(byte: u8) -> Vec<u8> {
        vec![byte; PS]
    }

    fn backend() -> FaultBackend<MemBackend> {
        let mut fb = FaultBackend::new(MemBackend::new(PS), 42);
        for p in 0..8u64 {
            fb.write_run(p, &filled(p as u8)).unwrap();
        }
        fb.sync().unwrap();
        fb
    }

    #[test]
    fn reads_see_unsynced_writes_but_durable_layer_does_not() {
        let mut fb = backend();
        fb.write_run(3, &filled(0xaa)).unwrap();
        let mut buf = filled(0);
        fb.read_run(3, &mut buf).unwrap();
        assert_eq!(buf, filled(0xaa), "visible read must include the overlay");
        fb.read_durable(3, &mut buf).unwrap();
        assert_eq!(buf, filled(3), "durable layer unchanged before sync");
        fb.sync().unwrap();
        fb.read_durable(3, &mut buf).unwrap();
        assert_eq!(buf, filled(0xaa), "sync promotes the overlay");
    }

    #[test]
    fn transient_eio_has_no_effect_and_retry_succeeds() {
        let mut fb = backend();
        let next = fb.calls() + 1;
        fb.set_eio_at(vec![next]);
        assert!(fb.write_run(0, &filled(9)).is_err());
        let mut buf = filled(0);
        fb.read_run(0, &mut buf).unwrap();
        assert_eq!(buf, filled(0), "EIO write must not land");
        fb.write_run(0, &filled(9)).unwrap();
        fb.read_run(0, &mut buf).unwrap();
        assert_eq!(buf, filled(9));
        assert_eq!(fb.injected_eio(), 1);
    }

    #[test]
    fn crash_tears_a_multi_page_run_at_a_page_and_byte_boundary() {
        let mut fb = backend();
        let next = fb.calls() + 1;
        fb.set_crash_at(Some(next));
        let mut run = Vec::new();
        for _ in 0..4 {
            run.extend_from_slice(&filled(0xbb));
        }
        assert!(fb.write_run(2, &run).is_err());
        assert!(fb.crashed());
        assert!(fb.read_run(2, &mut filled(0)).is_err(), "dead until reboot");
        fb.power_cycle().unwrap();
        // Every page is now old, new, or a torn new-prefix/old-suffix mix.
        for p in 2..6u64 {
            let mut buf = filled(0);
            fb.read_run(p, &mut buf).unwrap();
            let cut = buf.iter().take_while(|&&b| b == 0xbb).count();
            assert!(
                buf[cut..].iter().all(|&b| b == p as u8),
                "page {p} must be a clean tear, got {buf:?}"
            );
        }
    }

    #[test]
    fn crash_on_sync_persists_nothing_from_that_call() {
        let mut fb = backend();
        fb.write_run(1, &filled(0x11)).unwrap();
        let next = fb.calls() + 1;
        fb.set_crash_at(Some(next));
        assert!(fb.sync().is_err());
        assert_eq!(fb.unsynced_pages(), 1, "overlay intact after crashed sync");
        let mut buf = filled(0);
        fb.read_durable(1, &mut buf).unwrap();
        assert_eq!(buf, filled(1));
    }

    #[test]
    fn power_cycle_is_deterministic_in_the_seed() {
        let outcome = |seed: u64| {
            let mut fb = FaultBackend::new(MemBackend::new(PS), seed);
            for p in 0..8u64 {
                fb.write_run(p, &filled(p as u8)).unwrap();
            }
            fb.sync().unwrap();
            for p in 0..8u64 {
                fb.write_run(p, &filled(0xcc)).unwrap();
            }
            let summary = fb.power_cycle().unwrap();
            let mut bytes = Vec::new();
            for p in 0..8u64 {
                let mut buf = filled(0);
                fb.read_run(p, &mut buf).unwrap();
                bytes.extend_from_slice(&buf);
            }
            (summary, bytes)
        };
        assert_eq!(outcome(7), outcome(7));
        assert_ne!(
            outcome(7).1,
            outcome(8).1,
            "different seeds should tear differently"
        );
    }

    #[test]
    fn counters_reconcile_on_a_clean_run() {
        let mut fb = backend();
        assert_eq!(fb.pages_written(), 8);
        assert_eq!(fb.pages_synced(), 8);
        assert_eq!(fb.unsynced_pages(), 0);
        fb.write_run(0, &filled(1)).unwrap();
        fb.write_run(1, &filled(2)).unwrap();
        assert_eq!(fb.pages_written(), 10);
        fb.sync().unwrap();
        assert_eq!(fb.pages_synced(), 10);
        assert_eq!(
            fb.inner().pages_written,
            10,
            "durable layer saw exactly the synced pages"
        );
    }
}
