//! LRU buffer-pool simulation.
//!
//! The paper remarks that its asymptote "definitely over-estimates
//! CONTROL 2's real cost because CONTROL 2, unlike a B-tree procedure, can
//! be programmed to access consecutive pages in one fell swoop during its
//! update task" — i.e. the J SHIFTs of one command touch a handful of
//! nearby pages over and over, so a tiny buffer pool absorbs most of them.
//! This module replays an [`AccessEvent`] trace through an LRU cache of a
//! given page capacity and reports hits/misses; the `exp_fell_swoop`
//! experiment uses it to quantify the remark, and [`crate::BufferPool`]
//! reuses the identical recency/eviction policy for real page frames so the
//! two report the same miss counts on the same trace.

use std::collections::HashMap;

use crate::lru::LruList;
use crate::trace::AccessEvent;

/// Result of replaying a trace through [`LruCacheSim`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CacheStats {
    /// Page accesses replayed.
    pub accesses: u64,
    /// Accesses served from the pool.
    pub hits: u64,
    /// Accesses that had to touch the disk.
    pub misses: u64,
    /// Pages evicted to make room.
    pub evictions: u64,
}

impl CacheStats {
    /// Fraction of accesses served from the pool.
    pub fn hit_rate(&self) -> f64 {
        if self.accesses == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses as f64
        }
    }
}

/// A least-recently-used buffer pool of fixed page capacity.
///
/// Internally a hash map plus an O(1) intrusive linked list
/// (`crate::lru::LruList`); every `touch` is constant time, where the old
/// implementation paid an extra `BTreeMap` rebalance per access.
///
/// ```
/// use dsf_pagestore::{AccessEvent, AccessKind, LruCacheSim};
/// let trace: Vec<AccessEvent> = [1u64, 2, 1, 2, 3, 1]
///     .iter()
///     .map(|&page| AccessEvent { page, kind: AccessKind::Read })
///     .collect();
/// let stats = LruCacheSim::new(2).replay(&trace);
/// assert_eq!(stats.misses, 4); // 1, 2 cold; 3 evicts 1; 1 again misses
/// assert_eq!(stats.hits, 2);
/// ```
#[derive(Debug)]
pub struct LruCacheSim {
    capacity: usize,
    /// page → node id in the recency list.
    resident: HashMap<u64, usize>,
    /// node id → page (inverse of `resident`).
    pages: Vec<u64>,
    lru: LruList,
}

impl LruCacheSim {
    /// A pool holding up to `capacity` pages.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "cache capacity must be non-zero");
        LruCacheSim {
            capacity,
            resident: HashMap::with_capacity(capacity + 1),
            pages: Vec::with_capacity(capacity + 1),
            lru: LruList::with_capacity(capacity + 1),
        }
    }

    /// Touches one page; returns `true` on a hit.
    pub fn touch(&mut self, page: u64) -> bool {
        if let Some(&id) = self.resident.get(&page) {
            self.lru.touch(id);
            return true;
        }
        let id = self.lru.alloc();
        if id == self.pages.len() {
            self.pages.push(page);
        } else {
            self.pages[id] = page;
        }
        self.resident.insert(page, id);
        self.lru.push_front(id);
        if self.resident.len() > self.capacity {
            let victim = self.lru.pop_back().expect("pool is over capacity");
            self.resident.remove(&self.pages[victim]);
            self.lru.release(victim);
        }
        false
    }

    /// Number of pages currently resident.
    pub fn resident_pages(&self) -> usize {
        self.resident.len()
    }

    /// Replays a whole trace, accumulating statistics.
    pub fn replay(&mut self, trace: &[AccessEvent]) -> CacheStats {
        let mut stats = CacheStats::default();
        for ev in trace {
            stats.accesses += 1;
            let before = self.resident.len();
            if self.touch(ev.page) {
                stats.hits += 1;
            } else {
                stats.misses += 1;
                if self.resident.len() == before {
                    stats.evictions += 1;
                }
            }
        }
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AccessKind;

    fn ev(page: u64) -> AccessEvent {
        AccessEvent {
            page,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn repeated_touches_hit() {
        let mut c = LruCacheSim::new(4);
        let trace = vec![ev(1), ev(1), ev(2), ev(1), ev(2)];
        let s = c.replay(&trace);
        assert_eq!(s.accesses, 5);
        assert_eq!(s.misses, 2);
        assert_eq!(s.hits, 3);
        assert_eq!(s.evictions, 0);
        assert!((s.hit_rate() - 0.6).abs() < 1e-12);
    }

    #[test]
    fn lru_evicts_the_coldest_page() {
        let mut c = LruCacheSim::new(2);
        assert!(!c.touch(1));
        assert!(!c.touch(2));
        assert!(c.touch(1)); // 1 is now warmer than 2
        assert!(!c.touch(3)); // evicts 2
        assert!(c.touch(1));
        assert!(c.touch(3));
        assert!(!c.touch(2)); // 2 was evicted
        assert_eq!(c.resident_pages(), 2);
    }

    #[test]
    fn working_set_within_capacity_only_misses_cold() {
        let mut c = LruCacheSim::new(8);
        let trace: Vec<_> = (0..1000).map(|i| ev(i % 8)).collect();
        let s = c.replay(&trace);
        assert_eq!(s.misses, 8);
        assert_eq!(s.hits, 992);
        assert_eq!(s.evictions, 0);
    }

    #[test]
    fn scan_through_cache_never_hits() {
        let mut c = LruCacheSim::new(8);
        let trace: Vec<_> = (0..100).map(ev).collect();
        let s = c.replay(&trace);
        assert_eq!(s.hits, 0);
        assert_eq!(s.misses, 100);
        assert_eq!(s.evictions, 92);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_rejected() {
        LruCacheSim::new(0);
    }

    #[test]
    fn slab_ids_recycle_across_many_evictions() {
        // A long scan through a tiny cache must not grow the slab beyond
        // capacity + 1 ids (each miss allocates, each eviction releases).
        let mut c = LruCacheSim::new(3);
        for page in 0..10_000u64 {
            c.touch(page);
        }
        assert_eq!(c.resident_pages(), 3);
        assert!(c.pages.len() <= 4, "slab grew to {}", c.pages.len());
    }
}
