//! Background I/O scheduler: a bounded write queue serviced by worker
//! threads, wrapped as a [`PageBackend`] so a [`BufferPool`](crate::pool::BufferPool) (or a
//! `PhysicalImage` in `dsf-durable`) gains asynchronous writeback without
//! changing a line of caller code.
//!
//! The paper de-amortizes the *algorithmic* cost of a command; this module
//! de-amortizes the *I/O* cost around it. A synchronous pool pays every
//! dirty-page writeback on the command path — eviction and flush stall the
//! caller for the full device write. [`AsyncBackend::write_run`] instead
//! enqueues the run (one bounded copy) and returns; a small pool of worker
//! threads drains the queue in the background and the caller only ever
//! waits when it *must*: on a read of a page with writes still in flight
//! (reads drain first — they are pool misses, the rare case), on
//! backpressure when the queue is full, or on an explicit [`drain`] barrier
//! (the checkpoint/shutdown path).
//!
//! ## Ordering and durability contract
//!
//! * **Per-page write order is program order.** Requests complete out of
//!   order only when their page ranges are disjoint. Workers take requests
//!   strictly FIFO and a request whose range overlaps one still executing
//!   waits — combined with FIFO dispatch this means two overlapping writes
//!   can never swap, so the backend always converges to the bytes a
//!   synchronous pool would have written. (The equivalence proptest in
//!   this module checks exactly that.)
//! * **Completion is tracked per request epoch.** `drain` returns only
//!   after every previously accepted request has left the queue and the
//!   executing set; recovery invariants that held for the synchronous pool
//!   (e.g. "after `flush_all` + `drain` + backend `sync`, the image is on
//!   stable storage") keep holding with the barrier in place.
//! * **Errors are parked, not lost.** A failed write keeps its data and is
//!   re-queued by the next [`drain`] (or read barrier), which reports the
//!   first failure — transient-`EIO` callers retry the barrier exactly as
//!   they would retry a synchronous `flush_all`. A worker panic is sticky
//!   and surfaces as an error from the next barrier, never a hang.
//! * **Crash semantics are the synchronous ones.** [`into_inner_lossy`]
//!   discards queued-but-unwritten requests the way a crash discards dirty
//!   frames; the fault sweeps run the whole harness over
//!   `AsyncBackend<FaultBackend<_>>` with one worker so backend call order
//!   stays deterministic.
//!
//! [`drain`]: AsyncBackend::drain
//! [`into_inner_lossy`]: AsyncBackend::into_inner_lossy

use std::collections::VecDeque;
use std::io;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::thread::JoinHandle;

use crate::pool::PageBackend;
use crate::tel::tel;

/// One queued write: `data` is a whole number of pages starting at
/// `first_page` (the same contract as [`PageBackend::write_run`]).
struct WriteReq {
    first_page: u64,
    pages: u64,
    data: Vec<u8>,
}

impl WriteReq {
    fn overlaps(&self, first: u64, pages: u64) -> bool {
        self.first_page < first + pages && first < self.first_page + self.pages
    }
}

struct State {
    queue: VecDeque<WriteReq>,
    /// Page ranges being written right now: `(first_page, pages)`.
    executing: Vec<(u64, u64)>,
    /// Failed requests parked with their error until a barrier re-queues
    /// them (transient-error retry) or `into_inner_lossy` discards them.
    failed: Vec<(WriteReq, io::Error)>,
    /// Sticky first-worker-panic message; reported by the next barrier.
    panicked: Option<String>,
    shutdown: bool,
}

impl State {
    /// Requests accepted and not yet completed (the queue-depth gauge).
    fn depth(&self) -> usize {
        self.queue.len() + self.executing.len()
    }

    fn refresh_gauge(&self) {
        tel().io_queue_depth.set(self.depth() as f64);
    }
}

struct Shared<B> {
    /// The inner backend. Workers hold this only for the duration of one
    /// `write_run`; read barriers take it directly after draining.
    backend: Mutex<B>,
    state: Mutex<State>,
    /// Workers wait here for work (or for an overlapping write to finish).
    work: Condvar,
    /// Submitters (backpressure) and barriers wait here for completions.
    done: Condvar,
}

impl<B> Shared<B> {
    fn state(&self) -> MutexGuard<'_, State> {
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    fn backend(&self) -> MutexGuard<'_, B> {
        self.backend.lock().unwrap_or_else(|e| e.into_inner())
    }
}

fn worker_loop<B: PageBackend>(shared: &Shared<B>) {
    loop {
        let req = {
            let mut st = shared.state();
            loop {
                // Strict FIFO: only the front of the queue is eligible, and
                // only once no executing write overlaps its range. A later
                // request never leapfrogs an earlier overlapping one, so
                // per-page write order is program order.
                let front_clear = st
                    .queue
                    .front()
                    .map(|r| !st.executing.iter().any(|&(f, n)| r.overlaps(f, n)));
                match front_clear {
                    Some(true) => {
                        let req = st.queue.pop_front().expect("front checked");
                        st.executing.push((req.first_page, req.pages));
                        break req;
                    }
                    Some(false) => st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner()),
                    None if st.shutdown => return,
                    None => st = shared.work.wait(st).unwrap_or_else(|e| e.into_inner()),
                }
            }
        };
        // Execute outside the state lock so disjoint writes overlap with
        // submissions; the unwind guard turns a backend panic into a sticky
        // error instead of a wedged queue.
        let result = catch_unwind(AssertUnwindSafe(|| {
            shared.backend().write_run(req.first_page, &req.data)
        }));
        let mut st = shared.state();
        if let Some(i) = st
            .executing
            .iter()
            .position(|&r| r == (req.first_page, req.pages))
        {
            st.executing.swap_remove(i);
        }
        match result {
            Ok(Ok(())) => tel().writeback_pages.add(req.pages),
            Ok(Err(e)) => st.failed.push((req, e)),
            Err(panic) => {
                let msg = panic
                    .downcast_ref::<&str>()
                    .map(|s| (*s).to_string())
                    .or_else(|| panic.downcast_ref::<String>().cloned())
                    .unwrap_or_else(|| "opaque panic payload".to_string());
                st.panicked.get_or_insert(msg);
            }
        }
        st.refresh_gauge();
        // Completion can unblock an overlapping pop (work) as well as a
        // backpressured submitter or a barrier (done).
        shared.work.notify_all();
        shared.done.notify_all();
    }
}

/// A [`PageBackend`] decorator that makes `write_run` asynchronous: writes
/// enqueue to a bounded queue drained by background worker threads, reads
/// act as barriers. See the module docs for the full contract.
pub struct AsyncBackend<B: PageBackend + Send + 'static> {
    shared: Arc<Shared<B>>,
    workers: Vec<JoinHandle<()>>,
    queue_cap: usize,
    page_size: usize,
}

impl<B: PageBackend + Send + 'static> AsyncBackend<B> {
    /// Wraps `inner`, spawning `workers` threads behind a queue of at most
    /// `queue_cap` pending requests (submission blocks beyond that —
    /// backpressure, not unbounded memory).
    ///
    /// Use `workers = 1` when the order of *backend calls* must be
    /// deterministic (the fault sweeps); more workers only ever reorder
    /// disjoint-range writes.
    ///
    /// # Panics
    ///
    /// Panics if `workers` or `queue_cap` is zero.
    pub fn new(inner: B, workers: usize, queue_cap: usize) -> Self {
        assert!(workers > 0, "at least one I/O worker required");
        assert!(queue_cap > 0, "queue capacity must be non-zero");
        let page_size = inner.page_size();
        let shared = Arc::new(Shared {
            backend: Mutex::new(inner),
            state: Mutex::new(State {
                queue: VecDeque::new(),
                executing: Vec::new(),
                failed: Vec::new(),
                panicked: None,
                shutdown: false,
            }),
            work: Condvar::new(),
            done: Condvar::new(),
        });
        let workers = (0..workers)
            .map(|i| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("dsf-io-{i}"))
                    .spawn(move || worker_loop(&*shared))
                    .expect("spawn I/O worker")
            })
            .collect();
        AsyncBackend {
            shared,
            workers,
            queue_cap,
            page_size,
        }
    }

    /// Requests accepted and not yet completed (queued + executing).
    pub fn queue_depth(&self) -> usize {
        self.shared.state().depth()
    }

    /// Drains, then runs `f` with exclusive access to the inner backend —
    /// for backend-level operations that are not page I/O (an fsync, a
    /// fault plan, counter reads). The barrier guarantees `f` observes
    /// every write accepted before the call.
    pub fn with_inner<T>(&self, f: impl FnOnce(&mut B) -> T) -> io::Result<T> {
        self.drain()?;
        Ok(f(&mut *self.shared.backend()))
    }

    /// Barrier: blocks until every accepted write request has completed.
    ///
    /// Returns the first parked failure, re-queueing every failed request
    /// first so a subsequent `drain` retries them (transient-`EIO`
    /// semantics); a sticky worker panic is reported the same way but is
    /// not retried. `Ok(())` means everything accepted so far reached the
    /// inner backend.
    pub fn drain(&self) -> io::Result<()> {
        let mut st = self.shared.state();
        loop {
            if st.queue.is_empty() && st.executing.is_empty() {
                if let Some(msg) = st.panicked.take() {
                    return Err(io::Error::other(format!("I/O worker panicked: {msg}")));
                }
                if st.failed.is_empty() {
                    return Ok(());
                }
                let mut failed = std::mem::take(&mut st.failed);
                let (req, err) = failed.remove(0);
                st.queue.push_back(req);
                for (req, _) in failed {
                    st.queue.push_back(req);
                }
                st.refresh_gauge();
                drop(st);
                self.shared.work.notify_all();
                return Err(err);
            }
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
    }

    fn stop_workers(&mut self) {
        {
            let mut st = self.shared.state();
            st.shutdown = true;
        }
        self.shared.work.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }

    fn unwrap_backend(mut self) -> B {
        self.stop_workers();
        let shared = Arc::clone(&self.shared);
        drop(self); // releases the struct's own Arc (Drop's stop is a no-op)
        match Arc::try_unwrap(shared) {
            Ok(sh) => sh.backend.into_inner().unwrap_or_else(|e| e.into_inner()),
            Err(_) => panic!("I/O workers joined but a shared handle survived"),
        }
    }

    /// Drains, shuts the workers down, and hands the inner backend back.
    /// Fails (leaving the scheduler shut down via drop) if the drain does.
    pub fn into_inner(self) -> io::Result<B> {
        self.drain()?;
        Ok(self.unwrap_backend())
    }

    /// Hands the inner backend back **without** writing queued requests —
    /// the "process died" teardown: accepted-but-unwritten data is
    /// discarded exactly like the dirty frames `into_backend_lossy`
    /// drops, so the crash sweeps compose.
    pub fn into_inner_lossy(self) -> B {
        {
            let mut st = self.shared.state();
            st.queue.clear();
            st.failed.clear();
            st.refresh_gauge();
        }
        self.unwrap_backend()
    }
}

impl<B: PageBackend + Send + 'static> Drop for AsyncBackend<B> {
    fn drop(&mut self) {
        // Queued requests are still written: shutdown lets workers drain
        // the queue before exiting (drop is the graceful path; use
        // into_inner_lossy to model a crash).
        self.stop_workers();
    }
}

impl<B: PageBackend + Send + 'static> PageBackend for AsyncBackend<B> {
    fn page_size(&self) -> usize {
        self.page_size
    }

    /// A read barrier: drains all pending writes (so the read can never
    /// see stale bytes), then reads straight through. Reads are pool
    /// misses — rare by design — so the barrier costs little in practice.
    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> io::Result<()> {
        self.drain()?;
        self.shared.backend().read_run(first_page, buf)
    }

    /// Enqueues the write (one copy of `data`) and returns. Blocks only
    /// for backpressure: at most `queue_cap` requests may be pending.
    fn write_run(&mut self, first_page: u64, data: &[u8]) -> io::Result<()> {
        let pages = (data.len() / self.page_size) as u64;
        let mut st = self.shared.state();
        while st.queue.len() >= self.queue_cap {
            st = self.shared.done.wait(st).unwrap_or_else(|e| e.into_inner());
        }
        st.queue.push_back(WriteReq {
            first_page,
            pages,
            data: data.to_vec(),
        });
        st.refresh_gauge();
        drop(st);
        self.shared.work.notify_all();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pool::{BufferPool, MemBackend};
    use std::time::Duration;

    const PS: usize = 64;

    fn page(fill: u8) -> Vec<u8> {
        vec![fill; PS]
    }

    #[test]
    fn writes_complete_in_background_and_drain_barriers() {
        let mut b = AsyncBackend::new(MemBackend::new(PS), 2, 16);
        for p in 0..8u64 {
            b.write_run(p, &page(p as u8)).unwrap();
        }
        b.drain().unwrap();
        assert_eq!(b.queue_depth(), 0);
        let inner = b.into_inner().unwrap();
        assert_eq!(inner.write_calls, 8);
        for p in 0..8u64 {
            assert_eq!(inner.page(p)[0], p as u8);
        }
    }

    #[test]
    fn overlapping_writes_apply_in_program_order() {
        // Hammer the same page with ascending values from the caller while
        // two workers race; the last submitted value must win.
        let mut b = AsyncBackend::new(MemBackend::new(PS), 2, 4);
        for round in 0..200u64 {
            b.write_run(3, &page((round % 251) as u8)).unwrap();
            b.write_run(4, &page((round % 13) as u8)).unwrap();
        }
        let inner = b.into_inner().unwrap();
        assert_eq!(inner.page(3)[0], 199);
        assert_eq!(inner.page(4)[0], (199 % 13) as u8);
    }

    #[test]
    fn reads_see_all_prior_writes() {
        let mut b = AsyncBackend::new(MemBackend::new(PS), 4, 32);
        for p in 0..16u64 {
            b.write_run(p, &page(0xA0 | (p as u8 & 0x0F))).unwrap();
        }
        let mut buf = vec![0u8; 16 * PS];
        b.read_run(0, &mut buf).unwrap();
        for p in 0..16usize {
            assert_eq!(buf[p * PS], 0xA0 | (p as u8 & 0x0F));
        }
    }

    #[test]
    fn shutdown_drains_the_queue() {
        // Dropping (or into_inner-ing) with a full queue must still write
        // everything: shutdown lets workers finish the backlog.
        let mut b = AsyncBackend::new(MemBackend::new(PS), 1, 64);
        for p in 0..64u64 {
            b.write_run(p, &page(7)).unwrap();
        }
        let inner = b.into_inner().unwrap();
        assert_eq!(inner.pages_written, 64);
    }

    /// A backend whose writes block until released — for backpressure and
    /// panic tests.
    struct GatedBackend {
        inner: MemBackend,
        gate: Arc<(Mutex<bool>, Condvar)>,
        panic_on: Option<u64>,
    }

    impl PageBackend for GatedBackend {
        fn page_size(&self) -> usize {
            self.inner.page_size()
        }
        fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> io::Result<()> {
            self.inner.read_run(first_page, buf)
        }
        fn write_run(&mut self, first_page: u64, data: &[u8]) -> io::Result<()> {
            if self.panic_on == Some(first_page) {
                panic!("injected backend panic at page {first_page}");
            }
            let (lock, cv) = &*self.gate;
            let mut open = lock.lock().unwrap();
            while !*open {
                open = cv.wait(open).unwrap();
            }
            drop(open);
            self.inner.write_run(first_page, data)
        }
    }

    fn gated() -> (GatedBackend, Arc<(Mutex<bool>, Condvar)>) {
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        (
            GatedBackend {
                inner: MemBackend::new(PS),
                gate: Arc::clone(&gate),
                panic_on: None,
            },
            gate,
        )
    }

    fn open_gate(gate: &Arc<(Mutex<bool>, Condvar)>) {
        *gate.0.lock().unwrap() = true;
        gate.1.notify_all();
    }

    #[test]
    fn backpressure_bounds_the_queue() {
        let (backend, gate) = gated();
        let cap = 4usize;
        let mut b = AsyncBackend::new(backend, 1, cap);
        // Observe depth through the shared state so the submitter can own
        // the backend while blocked.
        let shared = Arc::clone(&b.shared);
        // Fill the queue past capacity from a helper thread; it must block
        // rather than buffer without bound.
        let submitter = std::thread::spawn(move || {
            for p in 0..cap as u64 + 3 {
                b.write_run(p, &page(1)).unwrap();
            }
            b
        });
        std::thread::sleep(Duration::from_millis(50));
        {
            // cap queued + at most 1 executing; the rest are blocked in the
            // submitter.
            let depth = shared.state().depth();
            assert!(depth <= cap + 1, "queue grew past capacity: {depth}");
            assert!(!submitter.is_finished(), "submitter should be blocked");
        }
        open_gate(&gate);
        let b = submitter.join().unwrap();
        drop(shared); // release the observer handle so into_inner can unwrap
        let inner = b.into_inner().unwrap();
        assert_eq!(inner.inner.pages_written, cap as u64 + 3);
    }

    #[test]
    fn worker_panic_surfaces_as_error_not_hang() {
        let (mut backend, gate) = gated();
        backend.panic_on = Some(5);
        open_gate(&gate);
        let mut b = AsyncBackend::new(backend, 1, 16);
        b.write_run(1, &page(1)).unwrap();
        b.write_run(5, &page(5)).unwrap(); // worker panics on this one
        b.write_run(2, &page(2)).unwrap(); // queued behind the panic
        let err = b.drain().expect_err("panic must surface");
        assert!(
            err.to_string().contains("injected backend panic"),
            "unexpected error: {err}"
        );
        // The panicked worker is gone, but teardown must not hang and the
        // backend comes back (page 5 lost, like any crashed write).
        let inner = b.into_inner_lossy();
        assert_eq!(inner.inner.page(1)[0], 1);
        assert_eq!(inner.inner.page(5)[0], 0);
    }

    #[test]
    fn failed_writes_are_retried_by_the_next_drain() {
        use crate::fault::FaultBackend;
        // EIO exactly once at the 1st backend call; the drain that observes
        // it re-queues, and the next drain succeeds.
        let mut faulty = FaultBackend::new(MemBackend::new(PS), 1);
        faulty.set_eio_at(vec![1]);
        let mut b = AsyncBackend::new(faulty, 1, 16);
        b.write_run(0, &page(9)).unwrap();
        b.write_run(1, &page(8)).unwrap();
        let err = b.drain().expect_err("EIO must surface from a drain");
        assert!(err.to_string().contains("EIO"), "unexpected error: {err}");
        b.drain().expect("retry after transient EIO must succeed");
        let mut fb = b.into_inner().unwrap();
        let mut buf = page(0);
        fb.read_run(0, &mut buf).unwrap();
        assert_eq!(buf[0], 9);
        fb.read_run(1, &mut buf).unwrap();
        assert_eq!(buf[0], 8);
    }

    #[test]
    fn pool_over_async_backend_equals_pool_over_sync_backend() {
        // Deterministic pseudo-random command stream through two pools —
        // one synchronous, one async — must leave identical backend bytes.
        let mut sync_pool = BufferPool::new(MemBackend::new(PS), 8);
        let mut async_pool = BufferPool::new(AsyncBackend::new(MemBackend::new(PS), 3, 8), 8);
        let mut x = 0x1234_5678_9abc_def0u64;
        for i in 0..3000u64 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let p = x % 64;
            match x % 5 {
                0 => {
                    let a = sync_pool.get(p).unwrap().to_vec();
                    let b = async_pool.get(p).unwrap().to_vec();
                    assert_eq!(a, b, "read divergence at page {p} (step {i})");
                }
                4 if i % 97 == 0 => {
                    sync_pool.flush_all().unwrap();
                    async_pool.flush_all().unwrap();
                }
                _ => {
                    sync_pool.get_mut(p).unwrap()[(x % PS as u64) as usize] = (x % 251) as u8;
                    async_pool.get_mut(p).unwrap()[(x % PS as u64) as usize] = (x % 251) as u8;
                }
            }
        }
        let a = sync_pool.into_backend().unwrap();
        let b = async_pool.into_backend().unwrap().into_inner().unwrap();
        for p in 0..64u64 {
            assert_eq!(a.page(p), b.page(p), "final bytes diverged at page {p}");
        }
    }
}
