//! Run coalescing: folding page-access streams into maximal contiguous runs.
//!
//! Willard's §4 remark is that CONTROL 2 "can be programmed to access
//! consecutive pages in one fell swoop during its update task". The page
//! traces this workspace records (via [`crate::TraceBuffer`]) make that
//! concrete: a J SHIFT touches pages `p, p+1, …, p+j` in order, and a range
//! scan touches every page of the answer interval in order. A
//! [`RunCoalescer`] folds such a stream into maximal runs of consecutive
//! pages with the same access kind, so physical layers (the durable image,
//! the [`crate::BufferPool`]) can issue **one seek + one syscall per run**
//! instead of one per page.

use crate::trace::{AccessEvent, AccessKind};

/// A maximal run of consecutive same-kind page accesses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PageRun {
    /// First physical page of the run.
    pub start: u64,
    /// Number of consecutive pages (always ≥ 1 for emitted runs).
    pub len: u64,
    /// Whether the run reads or writes its pages.
    pub kind: AccessKind,
}

impl PageRun {
    /// One past the last page of the run.
    pub fn end(&self) -> u64 {
        self.start + self.len
    }

    /// Whether `page` falls inside the run.
    pub fn contains(&self, page: u64) -> bool {
        page >= self.start && page < self.end()
    }
}

/// Streaming coalescer: push page accesses, collect maximal runs.
///
/// A pushed access extends the open run when it is the page immediately
/// after the run's last page *and* has the same [`AccessKind`]; otherwise
/// the open run is emitted and a new one starts. Re-touching the run's
/// current last page is also absorbed (a shift reads then writes near the
/// same frontier page; physically that is still one sweep).
///
/// ```
/// use dsf_pagestore::{AccessKind, PageRun, RunCoalescer};
/// let mut c = RunCoalescer::new();
/// let mut runs = Vec::new();
/// for page in [3u64, 4, 5, 9, 10, 2] {
///     if let Some(run) = c.push(page, AccessKind::Read) {
///         runs.push(run);
///     }
/// }
/// runs.extend(c.finish());
/// assert_eq!(
///     runs,
///     vec![
///         PageRun { start: 3, len: 3, kind: AccessKind::Read },
///         PageRun { start: 9, len: 2, kind: AccessKind::Read },
///         PageRun { start: 2, len: 1, kind: AccessKind::Read },
///     ]
/// );
/// ```
#[derive(Debug, Default)]
pub struct RunCoalescer {
    open: Option<PageRun>,
}

impl RunCoalescer {
    /// A coalescer with no open run.
    pub fn new() -> Self {
        RunCoalescer { open: None }
    }

    /// Pushes one access; returns the run it closed, if any.
    pub fn push(&mut self, page: u64, kind: AccessKind) -> Option<PageRun> {
        match &mut self.open {
            Some(run) if run.kind == kind && page == run.end() => {
                run.len += 1;
                None
            }
            Some(run) if run.kind == kind && run.len > 0 && page == run.end() - 1 => {
                // Re-touch of the frontier page: already covered.
                None
            }
            _ => {
                let closed = self.open.take();
                self.open = Some(PageRun {
                    start: page,
                    len: 1,
                    kind,
                });
                closed
            }
        }
    }

    /// Pushes a whole pre-formed run; returns the run it closed, if any.
    pub fn push_run(&mut self, start: u64, len: u64, kind: AccessKind) -> Option<PageRun> {
        if len == 0 {
            return None;
        }
        match &mut self.open {
            Some(run) if run.kind == kind && start == run.end() => {
                run.len += len;
                None
            }
            _ => {
                let closed = self.open.take();
                self.open = Some(PageRun { start, len, kind });
                closed
            }
        }
    }

    /// Closes and returns the open run, leaving the coalescer empty.
    pub fn finish(&mut self) -> Option<PageRun> {
        self.open.take()
    }
}

/// Coalesces a recorded trace into maximal contiguous runs.
///
/// This is the offline counterpart of [`RunCoalescer`]: replaying the
/// trace's events in order and collecting every emitted run.
pub fn coalesce(trace: &[AccessEvent]) -> Vec<PageRun> {
    let mut c = RunCoalescer::new();
    let mut runs = Vec::new();
    for ev in trace {
        if let Some(run) = c.push(ev.page, ev.kind) {
            runs.push(run);
        }
    }
    runs.extend(c.finish());
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(page: u64, kind: AccessKind) -> AccessEvent {
        AccessEvent { page, kind }
    }

    #[test]
    fn empty_trace_has_no_runs() {
        assert!(coalesce(&[]).is_empty());
        assert_eq!(RunCoalescer::new().finish(), None);
    }

    #[test]
    fn single_access_is_a_unit_run() {
        let runs = coalesce(&[ev(7, AccessKind::Write)]);
        assert_eq!(
            runs,
            vec![PageRun {
                start: 7,
                len: 1,
                kind: AccessKind::Write
            }]
        );
    }

    #[test]
    fn kind_change_breaks_a_run() {
        let runs = coalesce(&[
            ev(1, AccessKind::Read),
            ev(2, AccessKind::Read),
            ev(3, AccessKind::Write),
            ev(4, AccessKind::Write),
        ]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[0].kind, AccessKind::Read);
        assert_eq!(runs[0].len, 2);
        assert_eq!(runs[1].kind, AccessKind::Write);
        assert_eq!(runs[1].start, 3);
    }

    #[test]
    fn backwards_jump_breaks_a_run() {
        let runs = coalesce(&[
            ev(5, AccessKind::Read),
            ev(6, AccessKind::Read),
            ev(4, AccessKind::Read),
        ]);
        assert_eq!(runs.len(), 2);
        assert_eq!(runs[1].start, 4);
        assert_eq!(runs[1].len, 1);
    }

    #[test]
    fn frontier_retouch_is_absorbed() {
        // read p, read p again, read p+1: one run of 2 pages.
        let runs = coalesce(&[
            ev(5, AccessKind::Read),
            ev(5, AccessKind::Read),
            ev(6, AccessKind::Read),
        ]);
        assert_eq!(
            runs,
            vec![PageRun {
                start: 5,
                len: 2,
                kind: AccessKind::Read
            }]
        );
    }

    #[test]
    fn push_run_merges_adjacent_runs() {
        let mut c = RunCoalescer::new();
        assert_eq!(c.push_run(10, 4, AccessKind::Write), None);
        assert_eq!(c.push_run(14, 2, AccessKind::Write), None);
        assert_eq!(c.push_run(0, 0, AccessKind::Write), None); // empty: ignored
        let closed = c.push_run(20, 1, AccessKind::Write).unwrap();
        assert_eq!(
            closed,
            PageRun {
                start: 10,
                len: 6,
                kind: AccessKind::Write
            }
        );
        assert_eq!(
            c.finish(),
            Some(PageRun {
                start: 20,
                len: 1,
                kind: AccessKind::Write
            })
        );
    }

    #[test]
    fn run_accessors() {
        let r = PageRun {
            start: 8,
            len: 3,
            kind: AccessKind::Read,
        };
        assert_eq!(r.end(), 11);
        assert!(r.contains(8));
        assert!(r.contains(10));
        assert!(!r.contains(11));
    }
}
