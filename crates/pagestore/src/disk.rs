//! Rotational-disk cost model.
//!
//! The paper's closing argument (§4 and §5) is a *systems* claim: retrieving
//! a stream of records with consecutive key values is faster from a dense
//! sequential file than from a B-tree, "because the latter entails much disk
//! arm movement when consecutive records are not stored in adjacent
//! locations". This module turns that claim into numbers by replaying a
//! physical-page access trace through a parametric seek/rotate/transfer
//! model.
//!
//! This is a *substitution* for 1986 hardware (documented in `DESIGN.md`):
//! the absolute milliseconds depend on the chosen parameters, but the
//! relative shape — sequential runs pay one seek, scattered accesses pay one
//! seek each — is hardware-independent and is exactly what the paper's
//! argument rests on.

use crate::trace::AccessEvent;

/// Parameters of a rotational disk.
///
/// ```
/// use dsf_pagestore::disk::DiskModel;
/// use dsf_pagestore::{AccessEvent, AccessKind};
/// let m = DiskModel::ibm3380_class();
/// let seq: Vec<AccessEvent> = (0..100u64)
///     .map(|page| AccessEvent { page, kind: AccessKind::Read })
///     .collect();
/// let scattered: Vec<AccessEvent> = (0..100u64)
///     .map(|i| AccessEvent { page: i * 1000, kind: AccessKind::Read })
///     .collect();
/// // One seek plus transfers vs a seek per page:
/// assert!(m.replay_ms(&scattered) > 10.0 * m.replay_ms(&seq));
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskModel {
    /// Average seek time in milliseconds, paid whenever the arm must move
    /// (i.e. the next page is not physically contiguous with the previous).
    pub avg_seek_ms: f64,
    /// Average rotational latency in milliseconds, paid with every seek.
    pub rotational_latency_ms: f64,
    /// Transfer time per page in milliseconds, paid for every page access.
    pub transfer_ms_per_page: f64,
    /// Forward jumps of at most this many pages are *read through* rather
    /// than seeked over: the head keeps streaming and the skipped pages
    /// cost their transfer time. This models how a sequential sweep over a
    /// dense file treats its empty pages; 0 makes every jump a seek.
    pub read_through_pages: u64,
}

impl DiskModel {
    /// A mid-1980s mainframe disk in the class the paper's readers would
    /// have had in mind (IBM 3380-like): ~16 ms average seek, ~8.3 ms
    /// average rotational latency, ~1 ms to transfer a page.
    pub fn ibm3380_class() -> Self {
        DiskModel {
            avg_seek_ms: 16.0,
            rotational_latency_ms: 8.3,
            transfer_ms_per_page: 1.0,
            read_through_pages: 16,
        }
    }

    /// A modern 7200 rpm SATA drive: ~8 ms seek, ~4.17 ms rotational
    /// latency, ~0.05 ms to transfer a page.
    pub fn modern_hdd() -> Self {
        DiskModel {
            avg_seek_ms: 8.0,
            rotational_latency_ms: 4.17,
            transfer_ms_per_page: 0.05,
            read_through_pages: 16,
        }
    }

    /// Cost of a single random page access (seek + rotate + transfer).
    pub fn random_access_ms(&self) -> f64 {
        self.avg_seek_ms + self.rotational_latency_ms + self.transfer_ms_per_page
    }

    /// Estimated time to perform `trace` in order.
    ///
    /// The first access always pays a full random access. A subsequent
    /// access to the same page is free (drive buffer); a short forward jump
    /// of `g ≤ read_through_pages` pages streams through at
    /// `min(g × transfer, seek + rotate + transfer)` — the scheduler takes
    /// whichever of reading through or seeking is cheaper; anything else
    /// pays a full random access.
    pub fn replay_ms(&self, trace: &[AccessEvent]) -> f64 {
        let mut total = 0.0;
        let mut prev: Option<u64> = None;
        for ev in trace {
            match prev {
                Some(p) if ev.page == p => {
                    // Re-touching the same page is free: it is already in
                    // the drive buffer / under the head.
                }
                Some(p) if ev.page > p && ev.page - p <= self.read_through_pages.max(1) => {
                    let stream = (ev.page - p) as f64 * self.transfer_ms_per_page;
                    total += stream.min(self.random_access_ms());
                }
                _ => total += self.random_access_ms(),
            }
            prev = Some(ev.page);
        }
        total
    }

    /// Breaks a trace into the statistics the experiments report.
    pub fn analyze(&self, trace: &[AccessEvent]) -> TraceAnalysis {
        let mut seeks = 0u64;
        let mut sequential = 0u64;
        let mut same_page = 0u64;
        let mut prev: Option<u64> = None;
        for ev in trace {
            match prev {
                Some(p) if ev.page == p => same_page += 1,
                Some(p) if ev.page > p && ev.page - p <= self.read_through_pages.max(1) => {
                    sequential += 1
                }
                _ => seeks += 1,
            }
            prev = Some(ev.page);
        }
        TraceAnalysis {
            accesses: trace.len() as u64,
            seeks,
            sequential,
            same_page,
            estimated_ms: self.replay_ms(trace),
        }
    }
}

/// Summary of a replayed access trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceAnalysis {
    /// Total page accesses in the trace.
    pub accesses: u64,
    /// Accesses that required arm movement.
    pub seeks: u64,
    /// Accesses that continued a physically contiguous run.
    pub sequential: u64,
    /// Accesses that re-touched the previous page.
    pub same_page: u64,
    /// Estimated wall-clock time under the model.
    pub estimated_ms: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{AccessEvent, AccessKind};

    fn ev(page: u64) -> AccessEvent {
        AccessEvent {
            page,
            kind: AccessKind::Read,
        }
    }

    #[test]
    fn empty_trace_costs_nothing() {
        let m = DiskModel::ibm3380_class();
        assert_eq!(m.replay_ms(&[]), 0.0);
    }

    #[test]
    fn sequential_run_pays_one_seek() {
        let m = DiskModel::ibm3380_class();
        let trace: Vec<_> = (0..100).map(ev).collect();
        let cost = m.replay_ms(&trace);
        let expected = m.random_access_ms() + 99.0 * m.transfer_ms_per_page;
        assert!(
            (cost - expected).abs() < 1e-9,
            "cost {cost} expected {expected}"
        );
    }

    #[test]
    fn scattered_accesses_each_pay_a_seek() {
        let m = DiskModel::ibm3380_class();
        let trace: Vec<_> = (0..100).map(|i| ev(i * 1000)).collect();
        let cost = m.replay_ms(&trace);
        let expected = 100.0 * m.random_access_ms();
        assert!((cost - expected).abs() < 1e-9);
    }

    #[test]
    fn short_forward_gaps_are_read_through() {
        let m = DiskModel::ibm3380_class(); // read_through_pages = 16
                                            // 0 → 10: streams through 10 pages; 10 → 9 (backwards): seeks.
        let trace = vec![ev(0), ev(10), ev(9)];
        let expected = m.random_access_ms() + 10.0 * m.transfer_ms_per_page + m.random_access_ms();
        assert!((m.replay_ms(&trace) - expected).abs() < 1e-9);
        // A gap just past the window seeks.
        let trace = vec![ev(0), ev(17)];
        let expected = 2.0 * m.random_access_ms();
        assert!((m.replay_ms(&trace) - expected).abs() < 1e-9);
    }

    #[test]
    fn same_page_retouch_is_free() {
        let m = DiskModel::modern_hdd();
        let trace = vec![ev(5), ev(5), ev(5)];
        assert!((m.replay_ms(&trace) - m.random_access_ms()).abs() < 1e-9);
    }

    #[test]
    fn sequential_beats_scattered_by_orders_of_magnitude() {
        let m = DiskModel::ibm3380_class();
        let seq: Vec<_> = (0..1000).map(ev).collect();
        let scattered: Vec<_> = (0..1000).map(|i| ev((i * 7919) % 100_000)).collect();
        let ratio = m.replay_ms(&scattered) / m.replay_ms(&seq);
        assert!(
            ratio > 10.0,
            "expected ≥10× win for sequential, got {ratio:.1}×"
        );
    }

    #[test]
    fn analyze_classifies_access_kinds() {
        let m = DiskModel::modern_hdd();
        let trace = vec![ev(0), ev(1), ev(1), ev(1000), ev(1001)];
        let a = m.analyze(&trace);
        assert_eq!(a.accesses, 5);
        assert_eq!(a.seeks, 2); // page 0 (first) and page 1000
        assert_eq!(a.sequential, 2); // 0→1 and 1000→1001
        assert_eq!(a.same_page, 1); // 1→1
        assert!(a.estimated_ms > 0.0);
    }

    #[test]
    fn presets_are_sane() {
        assert!(
            DiskModel::ibm3380_class().random_access_ms()
                > DiskModel::modern_hdd().random_access_ms()
        );
    }
}
