//! Optional ordered trace of physical page accesses.
//!
//! When enabled, every counted page touch in [`crate::PagedStore`] appends an
//! [`AccessEvent`]. The [`crate::disk`] module replays such traces through a
//! rotational-disk model to estimate wall-clock time — the quantity behind
//! the paper's disk-arm-movement argument for sequential files.
//!
//! Alongside the per-page event log the buffer maintains a **run log**: the
//! same access stream folded through a [`RunCoalescer`] into maximal
//! contiguous [`PageRun`]s. The run log is the planning input for fell-swoop
//! physical I/O — one seek + one syscall per run — while the event log
//! remains the ground truth for cache simulation and the disk model.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;

use crate::coalesce::{PageRun, RunCoalescer};

/// Whether a page access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The page was read.
    Read,
    /// The page was written.
    Write,
}

/// One physical page access, identified by its global page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global physical page number (slot index × pages-per-slot + offset).
    pub page: u64,
    /// Read or write.
    pub kind: AccessKind,
}

#[derive(Debug, Default)]
struct TraceInner {
    events: Vec<AccessEvent>,
    coalescer: RunCoalescer,
    runs: Vec<PageRun>,
}

/// An opt-in, interior-mutable buffer of [`AccessEvent`]s.
///
/// Disabled by default: recording every access of a long benchmark would
/// dominate memory. Enable it around the spans whose disk-time you want to
/// model, then [`TraceBuffer::take`] the events (or [`TraceBuffer::take_runs`]
/// the coalesced runs). Thread-safe (an atomic flag gates a mutex-protected
/// buffer), so traced structures can sit behind shared locks; when disabled
/// the cost is one relaxed load.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: AtomicBool,
    inner: Mutex<TraceInner>,
}

impl TraceBuffer {
    /// Creates a disabled buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Appends an event if recording is on.
    #[inline]
    pub fn record(&self, page: u64, kind: AccessKind) {
        if self.enabled.load(Relaxed) {
            let mut inner = self.inner.lock().expect("trace mutex poisoned");
            inner.events.push(AccessEvent { page, kind });
            if let Some(run) = inner.coalescer.push(page, kind) {
                inner.runs.push(run);
            }
        }
    }

    /// Appends `len` consecutive page accesses starting at `start` as one
    /// pre-formed run, if recording is on.
    ///
    /// The event log still receives one [`AccessEvent`] per page (so cache
    /// simulation and the disk model see the exact stream); the run log
    /// receives the span whole, merging with an open adjacent run.
    pub fn record_run(&self, start: u64, len: u64, kind: AccessKind) {
        if len == 0 || !self.enabled.load(Relaxed) {
            return;
        }
        let mut inner = self.inner.lock().expect("trace mutex poisoned");
        for page in start..start + len {
            inner.events.push(AccessEvent { page, kind });
        }
        if let Some(run) = inner.coalescer.push_run(start, len, kind) {
            inner.runs.push(run);
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .expect("trace mutex poisoned")
            .events
            .len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.inner
            .lock()
            .expect("trace mutex poisoned")
            .events
            .is_empty()
    }

    /// Removes and returns all recorded events. The run log is unaffected.
    pub fn take(&self) -> Vec<AccessEvent> {
        std::mem::take(&mut self.inner.lock().expect("trace mutex poisoned").events)
    }

    /// Removes and returns the coalesced run log (closing any open run).
    pub fn take_runs(&self) -> Vec<PageRun> {
        let mut inner = self.inner.lock().expect("trace mutex poisoned");
        if let Some(run) = inner.coalescer.finish() {
            inner.runs.push(run);
        }
        std::mem::take(&mut inner.runs)
    }

    /// Discards all recorded events and runs.
    pub fn clear(&self) {
        let mut inner = self.inner.lock().expect("trace mutex poisoned");
        inner.events.clear();
        inner.runs.clear();
        inner.coalescer.finish();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let t = TraceBuffer::new();
        t.record(1, AccessKind::Read);
        t.record_run(10, 3, AccessKind::Read);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert!(t.take_runs().is_empty());
    }

    #[test]
    fn enabled_buffer_records_in_order() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(5, AccessKind::Read);
        t.record(6, AccessKind::Write);
        assert_eq!(t.len(), 2);
        let evs = t.take();
        assert_eq!(
            evs,
            vec![
                AccessEvent {
                    page: 5,
                    kind: AccessKind::Read
                },
                AccessEvent {
                    page: 6,
                    kind: AccessKind::Write
                },
            ]
        );
        assert!(t.is_empty());
    }

    #[test]
    fn toggling_pauses_recording() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(1, AccessKind::Read);
        t.set_enabled(false);
        t.record(2, AccessKind::Read);
        t.set_enabled(true);
        t.record(3, AccessKind::Read);
        let pages: Vec<u64> = t.take().iter().map(|e| e.page).collect();
        assert_eq!(pages, vec![1, 3]);
    }

    #[test]
    fn clear_discards_events_but_keeps_state() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(1, AccessKind::Write);
        t.clear();
        assert!(t.is_empty());
        assert!(t.take_runs().is_empty());
        assert!(t.is_enabled());
    }

    #[test]
    fn record_run_expands_events_and_keeps_run_whole() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record_run(4, 3, AccessKind::Write);
        t.record_run(0, 0, AccessKind::Write); // empty: no-op
        let pages: Vec<u64> = t.take().iter().map(|e| e.page).collect();
        assert_eq!(pages, vec![4, 5, 6]);
        assert_eq!(
            t.take_runs(),
            vec![PageRun {
                start: 4,
                len: 3,
                kind: AccessKind::Write
            }]
        );
    }

    #[test]
    fn adjacent_accesses_coalesce_into_one_run() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(7, AccessKind::Read);
        t.record(8, AccessKind::Read);
        t.record_run(9, 2, AccessKind::Read);
        t.record(20, AccessKind::Read);
        let runs = t.take_runs();
        assert_eq!(runs.len(), 2);
        assert_eq!(
            runs[0],
            PageRun {
                start: 7,
                len: 4,
                kind: AccessKind::Read
            }
        );
        assert_eq!(runs[1].start, 20);
    }
}
