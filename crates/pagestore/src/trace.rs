//! Optional ordered trace of physical page accesses.
//!
//! When enabled, every counted page touch in [`crate::PagedStore`] appends an
//! [`AccessEvent`]. The [`crate::disk`] module replays such traces through a
//! rotational-disk model to estimate wall-clock time — the quantity behind
//! the paper's disk-arm-movement argument for sequential files.

use std::sync::atomic::{AtomicBool, Ordering::Relaxed};
use std::sync::Mutex;

/// Whether a page access was a read or a write.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// The page was read.
    Read,
    /// The page was written.
    Write,
}

/// One physical page access, identified by its global page number.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessEvent {
    /// Global physical page number (slot index × pages-per-slot + offset).
    pub page: u64,
    /// Read or write.
    pub kind: AccessKind,
}

/// An opt-in, interior-mutable buffer of [`AccessEvent`]s.
///
/// Disabled by default: recording every access of a long benchmark would
/// dominate memory. Enable it around the spans whose disk-time you want to
/// model, then [`TraceBuffer::take`] the events. Thread-safe (an atomic
/// flag gates a mutex-protected buffer), so traced structures can sit
/// behind shared locks; when disabled the cost is one relaxed load.
#[derive(Debug, Default)]
pub struct TraceBuffer {
    enabled: AtomicBool,
    events: Mutex<Vec<AccessEvent>>,
}

impl TraceBuffer {
    /// Creates a disabled buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Turns recording on or off. Already-recorded events are kept.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Relaxed);
    }

    /// Whether recording is currently on.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Relaxed)
    }

    /// Appends an event if recording is on.
    #[inline]
    pub fn record(&self, page: u64, kind: AccessKind) {
        if self.enabled.load(Relaxed) {
            self.events
                .lock()
                .expect("trace mutex poisoned")
                .push(AccessEvent { page, kind });
        }
    }

    /// Number of recorded events.
    pub fn len(&self) -> usize {
        self.events.lock().expect("trace mutex poisoned").len()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.events.lock().expect("trace mutex poisoned").is_empty()
    }

    /// Removes and returns all recorded events.
    pub fn take(&self) -> Vec<AccessEvent> {
        std::mem::take(&mut *self.events.lock().expect("trace mutex poisoned"))
    }

    /// Discards all recorded events.
    pub fn clear(&self) {
        self.events.lock().expect("trace mutex poisoned").clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_buffer_records_nothing() {
        let t = TraceBuffer::new();
        t.record(1, AccessKind::Read);
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
    }

    #[test]
    fn enabled_buffer_records_in_order() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(5, AccessKind::Read);
        t.record(6, AccessKind::Write);
        assert_eq!(t.len(), 2);
        let evs = t.take();
        assert_eq!(
            evs,
            vec![
                AccessEvent {
                    page: 5,
                    kind: AccessKind::Read
                },
                AccessEvent {
                    page: 6,
                    kind: AccessKind::Write
                },
            ]
        );
        assert!(t.is_empty());
    }

    #[test]
    fn toggling_pauses_recording() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(1, AccessKind::Read);
        t.set_enabled(false);
        t.record(2, AccessKind::Read);
        t.set_enabled(true);
        t.record(3, AccessKind::Read);
        let pages: Vec<u64> = t.take().iter().map(|e| e.page).collect();
        assert_eq!(pages, vec![1, 3]);
    }

    #[test]
    fn clear_discards_events_but_keeps_state() {
        let t = TraceBuffer::new();
        t.set_enabled(true);
        t.record(1, AccessKind::Write);
        t.clear();
        assert!(t.is_empty());
        assert!(t.is_enabled());
    }
}
