//! A real pinned buffer pool with write-back caching and run-coalesced I/O.
//!
//! [`LruCacheSim`](crate::LruCacheSim) *simulates* what a buffer pool would
//! do to a page trace; [`BufferPool`] *is* one: it holds page frames in
//! memory, serves hits without touching the backend, reads misses through
//! [`PageBackend::read_run`] (coalescing adjacent misses into one call),
//! tracks dirty frames, and writes them back in maximal contiguous runs on
//! flush. Frames can be pinned to exempt them from eviction while a caller
//! holds onto their contents.
//!
//! The recency and eviction policy is byte-for-byte the one `LruCacheSim`
//! uses (the shared `crate::lru::LruList`, insert-then-evict on overflow),
//! so on the same access stream and the same capacity the pool's
//! [`PoolStats`] report the same hit/miss counts the simulator predicts —
//! the reconciliation the fell-swoop experiment checks.

use std::collections::HashMap;
use std::io;

use crate::cache::CacheStats;
use crate::lru::LruList;
use crate::tel::tel;
use crate::trace::{AccessEvent, AccessKind, TraceBuffer};

/// Physical page storage a [`BufferPool`] caches in front of.
///
/// The contract is deliberately run-oriented: both transfers move `n`
/// consecutive pages in **one call**, so an implementation over a file can
/// issue a single seek plus a single read/write syscall per run.
pub trait PageBackend {
    /// Fixed size in bytes of every page.
    fn page_size(&self) -> usize;

    /// Reads the `buf.len() / page_size()` consecutive pages starting at
    /// `first_page` into `buf`.
    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> io::Result<()>;

    /// Writes `data` (a whole number of pages) over the consecutive pages
    /// starting at `first_page`.
    fn write_run(&mut self, first_page: u64, data: &[u8]) -> io::Result<()>;
}

/// Counters accumulated by a [`BufferPool`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PoolStats {
    /// Page requests served (`get`/`get_mut`/`pin`/`fetch_run` pages).
    pub accesses: u64,
    /// Requests satisfied from a resident frame.
    pub hits: u64,
    /// Requests that had to read the backend.
    pub misses: u64,
    /// Frames evicted to make room.
    pub evictions: u64,
    /// Dirty pages written back during eviction (victims plus any dirty
    /// neighbours clustered into their run).
    pub writebacks: u64,
    /// `write_run` calls those writebacks were folded into.
    pub writeback_runs: u64,
    /// Pages written out by `flush_all`.
    pub pages_flushed: u64,
    /// Contiguous runs those flushed pages coalesced into.
    pub flush_runs: u64,
}

impl PoolStats {
    /// The subset of counters comparable with [`crate::LruCacheSim`] replay.
    pub fn as_cache_stats(&self) -> CacheStats {
        CacheStats {
            accesses: self.accesses,
            hits: self.hits,
            misses: self.misses,
            evictions: self.evictions,
        }
    }
}

#[derive(Debug)]
struct Frame {
    page: u64,
    data: Box<[u8]>,
    dirty: bool,
    /// Flight-recorder seq of the command that dirtied this frame (the
    /// clean→dirty transition; later writes under other commands do not
    /// re-stamp). Background writeback happens on worker threads with no
    /// thread-local command context, so the attribution seq must travel
    /// with the frame. 0 = recorder disabled or outside any command.
    dirty_seq: u64,
    pins: u32,
}

/// A fixed-capacity write-back page cache over a [`PageBackend`].
pub struct BufferPool<B: PageBackend> {
    backend: B,
    capacity: usize,
    /// page → frame id. Frame ids double as [`LruList`] node ids.
    table: HashMap<u64, usize>,
    frames: Vec<Frame>,
    /// Recency order over *unpinned* resident frames only.
    lru: LruList,
    /// When set (the default), eviction writebacks absorb adjacent dirty
    /// frames and `flush_all` folds dirty pages into maximal runs; when
    /// clear, every page moves in its own `write_run` call — the
    /// historical one-page-at-a-time discipline, kept as a measurable
    /// baseline.
    coalescing: bool,
    stats: PoolStats,
    trace: TraceBuffer,
}

impl<B: PageBackend> BufferPool<B> {
    /// A pool of `capacity` page frames over `backend`.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(backend: B, capacity: usize) -> Self {
        assert!(capacity > 0, "pool capacity must be non-zero");
        BufferPool {
            backend,
            capacity,
            table: HashMap::with_capacity(capacity + 1),
            frames: Vec::with_capacity(capacity + 1),
            lru: LruList::with_capacity(capacity + 1),
            coalescing: true,
            stats: PoolStats::default(),
            trace: TraceBuffer::new(),
        }
    }

    /// Turns write-side run coalescing on or off (on by default). With it
    /// off, eviction writebacks and `flush_all` issue one `write_run` call
    /// per page — the baseline the fell-swoop experiment measures against.
    /// Recency, hit/miss and eviction behaviour are identical either way.
    pub fn set_coalescing(&mut self, on: bool) {
        self.coalescing = on;
    }

    /// Counter snapshot.
    pub fn stats(&self) -> PoolStats {
        self.stats
    }

    /// The pool's own access trace (disabled until enabled by the caller);
    /// it records the *logical* page stream, before caching, in the same
    /// [`AccessEvent`] format the rest of the workspace consumes.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Number of frames currently resident.
    pub fn resident_pages(&self) -> usize {
        self.table.len()
    }

    /// Frame capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Whether `page` is resident.
    pub fn contains(&self, page: u64) -> bool {
        self.table.contains_key(&page)
    }

    /// Read access to a page, faulting it in if absent.
    pub fn get(&mut self, page: u64) -> io::Result<&[u8]> {
        self.trace.record(page, AccessKind::Read);
        let id = self.ensure_resident(page)?;
        Ok(&self.frames[id].data)
    }

    /// Write access to a page, faulting it in if absent; marks it dirty.
    pub fn get_mut(&mut self, page: u64) -> io::Result<&mut [u8]> {
        self.trace.record(page, AccessKind::Write);
        let id = self.ensure_resident(page)?;
        let frame = &mut self.frames[id];
        if !frame.dirty {
            frame.dirty = true;
            frame.dirty_seq = dsf_flight::current_seq();
        }
        Ok(&mut frame.data)
    }

    /// Pins `page` (faulting it in if absent), exempting it from eviction
    /// until a matching [`unpin`](Self::unpin).
    pub fn pin(&mut self, page: u64) -> io::Result<()> {
        self.trace.record(page, AccessKind::Read);
        let id = self.ensure_resident(page)?;
        self.frames[id].pins += 1;
        self.lru.unlink(id);
        Ok(())
    }

    /// Releases one pin on `page`; when the last pin drops the frame rejoins
    /// the eviction order as most recently used.
    ///
    /// # Panics
    ///
    /// Panics if `page` is not resident or not pinned.
    pub fn unpin(&mut self, page: u64) {
        let &id = self.table.get(&page).expect("unpin of a non-resident page");
        let frame = &mut self.frames[id];
        assert!(frame.pins > 0, "unpin of an unpinned page");
        frame.pins -= 1;
        if frame.pins == 0 {
            self.lru.push_front(id);
        }
    }

    /// Pin count of a resident page (0 if unpinned or absent).
    pub fn pin_count(&self, page: u64) -> u32 {
        self.table.get(&page).map_or(0, |&id| self.frames[id].pins)
    }

    /// The batch pin hint: pins the `len` consecutive pages starting at
    /// `start`, faulting missing stretches in with coalesced
    /// [`PageBackend::read_run`] calls (the [`fetch_run`](Self::fetch_run)
    /// discipline, but each page is pinned the moment it is resident, so a
    /// later stretch's eviction can never displace an earlier page of the
    /// same run). This is how a batched caller keeps the pages of its
    /// sorted key span resident for a whole batch instead of letting the
    /// LRU churn them mid-way; release with a matching
    /// [`unpin_run`](Self::unpin_run).
    ///
    /// A run longer than the pool — or one that cannot fit beside the
    /// frames already pinned — fails with [`io::ErrorKind::OutOfMemory`].
    /// On any error the pages this call already pinned are unpinned again,
    /// so a failed hint never leaks pins.
    pub fn pin_run(&mut self, start: u64, len: u64) -> io::Result<()> {
        if len as usize > self.capacity {
            return Err(io::Error::new(
                io::ErrorKind::OutOfMemory,
                "pin_run longer than the buffer pool",
            ));
        }
        self.trace.record_run(start, len, AccessKind::Read);
        let page_size = self.backend.page_size();
        let end = start + len;
        let mut p = start;
        let mut result = Ok(());
        'runs: while p < end {
            if self.table.contains_key(&p) {
                // Walk the whole resident stretch, then charge stats and
                // telemetry once per stretch rather than once per page —
                // this is the batch hit path (a pinned run re-pinned every
                // batch is all hits) and the per-page counter bumps were
                // measurable in the batch-ingest CPU profile.
                let hit_start = p;
                while p < end {
                    match self.table.get(&p) {
                        Some(&id) => {
                            self.frames[id].pins += 1;
                            self.lru.unlink(id);
                            p += 1;
                        }
                        None => break,
                    }
                }
                let n = p - hit_start;
                self.stats.accesses += n;
                self.stats.hits += n;
                tel().pool_hits.add(n);
                continue;
            }
            let miss_start = p;
            while p < end && !self.table.contains_key(&p) {
                p += 1;
            }
            let miss_len = (p - miss_start) as usize;
            let mut buf = vec![0u8; miss_len * page_size];
            if let Err(e) = self.backend.read_run(miss_start, &mut buf) {
                result = Err(e);
                p = miss_start;
                break 'runs;
            }
            for (i, chunk) in buf.chunks_exact(page_size).enumerate() {
                self.stats.accesses += 1;
                self.stats.misses += 1;
                match self.install(miss_start + i as u64, chunk) {
                    Ok(id) => {
                        self.frames[id].pins += 1;
                        self.lru.unlink(id);
                    }
                    Err(e) => {
                        result = Err(e);
                        p = miss_start + i as u64;
                        break 'runs;
                    }
                }
            }
            tel().pool_misses.add(miss_len as u64);
            self.refresh_hit_ratio();
        }
        if let Err(e) = result {
            // Roll the partial pin back: everything in [start, p) was
            // pinned by this call and must not stay pinned on failure.
            for q in start..p {
                self.unpin(q);
            }
            return Err(e);
        }
        Ok(())
    }

    /// Releases one pin on each of the `len` pages starting at `start` —
    /// the counterpart of [`pin_run`](Self::pin_run).
    ///
    /// # Panics
    ///
    /// Panics if any page of the run is not resident or not pinned.
    pub fn unpin_run(&mut self, start: u64, len: u64) {
        for page in start..start + len {
            self.unpin(page);
        }
    }

    /// Faults the `len` consecutive pages starting at `start` into the pool
    /// in one fell swoop: resident stretches are hits, and each maximal
    /// stretch of missing pages is fetched with a **single**
    /// [`PageBackend::read_run`] call.
    pub fn fetch_run(&mut self, start: u64, len: u64) -> io::Result<()> {
        self.trace.record_run(start, len, AccessKind::Read);
        let page_size = self.backend.page_size();
        let end = start + len;
        let mut p = start;
        while p < end {
            if let Some(&id) = self.table.get(&p) {
                self.stats.accesses += 1;
                self.stats.hits += 1;
                tel().pool_hits.inc();
                if self.frames[id].pins == 0 {
                    self.lru.touch(id);
                }
                p += 1;
                continue;
            }
            let miss_start = p;
            while p < end && !self.table.contains_key(&p) {
                p += 1;
            }
            let miss_len = (p - miss_start) as usize;
            let mut buf = vec![0u8; miss_len * page_size];
            self.backend.read_run(miss_start, &mut buf)?;
            for (i, chunk) in buf.chunks_exact(page_size).enumerate() {
                self.stats.accesses += 1;
                self.stats.misses += 1;
                self.install(miss_start + i as u64, chunk)?;
            }
            tel().pool_misses.add(miss_len as u64);
            self.refresh_hit_ratio();
        }
        Ok(())
    }

    /// Writes every dirty frame back in maximal contiguous runs (one
    /// [`PageBackend::write_run`] call per run) and marks them clean.
    pub fn flush_all(&mut self) -> io::Result<()> {
        let page_size = self.backend.page_size();
        let mut dirty: Vec<u64> = self
            .frames
            .iter()
            .enumerate()
            .filter(|(id, f)| f.dirty && self.table.get(&f.page) == Some(id))
            .map(|(_, f)| f.page)
            .collect();
        dirty.sort_unstable();
        let mut i = 0;
        while i < dirty.len() {
            let mut j = i + 1;
            while self.coalescing && j < dirty.len() && dirty[j] == dirty[j - 1] + 1 {
                j += 1;
            }
            let run = &dirty[i..j];
            let mut buf = Vec::with_capacity(run.len() * page_size);
            for &page in run {
                let id = self.table[&page];
                buf.extend_from_slice(&self.frames[id].data);
            }
            self.backend.write_run(run[0], &buf)?;
            self.flight_writeback(run.iter().copied());
            for &page in run {
                let id = self.table[&page];
                let frame = &mut self.frames[id];
                frame.dirty = false;
                frame.dirty_seq = 0;
            }
            self.stats.pages_flushed += run.len() as u64;
            self.stats.flush_runs += 1;
            tel().run_len.record(run.len() as u64);
            i = j;
        }
        Ok(())
    }

    /// Flushes everything and hands the backend back.
    pub fn into_backend(mut self) -> io::Result<B> {
        self.flush_all()?;
        Ok(self.backend)
    }

    /// Hands the backend back **without** flushing, discarding any dirty
    /// frames — the "process died" teardown of the crash-consistency
    /// harness, where resident state is gone by definition and only what
    /// already reached the backend survives.
    pub fn into_backend_lossy(self) -> B {
        self.backend
    }

    /// Shared access to the backend (e.g. to read its counters).
    pub fn backend(&self) -> &B {
        &self.backend
    }

    /// Exclusive access to the backend — for backend-level operations that
    /// are not page I/O, such as forcing a [`crate::FaultBackend`]'s
    /// unsynced overlay to stable storage or arming a fault plan. Page
    /// *contents* must still go through the pool, or resident frames go
    /// stale.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// Replays a recorded trace through the pool: `Read` events via
    /// [`get`](Self::get), `Write` events via [`get_mut`](Self::get_mut).
    /// Returns the counter *delta* for the replay, directly comparable with
    /// [`crate::LruCacheSim::replay`] on the same trace and capacity.
    pub fn replay(&mut self, trace: &[AccessEvent]) -> io::Result<CacheStats> {
        let before = self.stats;
        for ev in trace {
            match ev.kind {
                AccessKind::Read => {
                    self.get(ev.page)?;
                }
                AccessKind::Write => {
                    self.get_mut(ev.page)?;
                }
            }
        }
        let after = self.stats;
        Ok(CacheStats {
            accesses: after.accesses - before.accesses,
            hits: after.hits - before.hits,
            misses: after.misses - before.misses,
            evictions: after.evictions - before.evictions,
        })
    }

    /// Returns `page`'s frame id, faulting the page in (and possibly
    /// evicting) on a miss. Counts the access.
    fn ensure_resident(&mut self, page: u64) -> io::Result<usize> {
        self.stats.accesses += 1;
        if let Some(&id) = self.table.get(&page) {
            self.stats.hits += 1;
            tel().pool_hits.inc();
            if self.frames[id].pins == 0 {
                self.lru.touch(id);
            }
            return Ok(id);
        }
        self.stats.misses += 1;
        tel().pool_misses.inc();
        self.refresh_hit_ratio();
        let page_size = self.backend.page_size();
        let mut buf = vec![0u8; page_size];
        self.backend.read_run(page, &mut buf)?;
        self.install(page, &buf)
    }

    /// Mirrors the pool hit ratio into the telemetry spine. Called from the
    /// miss path only — misses already pay backend I/O, so the division is
    /// lost in the noise, and a ratio that only moves on misses is still
    /// exact at every scrape that follows one.
    fn refresh_hit_ratio(&self) {
        if self.stats.accesses > 0 {
            tel()
                .hit_ratio
                .set(self.stats.hits as f64 / self.stats.accesses as f64);
        }
    }

    /// Inserts a freshly-read page (insert first, then evict on overflow —
    /// the same order `LruCacheSim::touch` uses, so miss/eviction counts
    /// line up).
    fn install(&mut self, page: u64, data: &[u8]) -> io::Result<usize> {
        let id = self.lru.alloc();
        if id == self.frames.len() {
            self.frames.push(Frame {
                page,
                data: data.into(),
                dirty: false,
                dirty_seq: 0,
                pins: 0,
            });
        } else {
            let frame = &mut self.frames[id];
            frame.page = page;
            frame.data.copy_from_slice(data);
            frame.dirty = false;
            frame.dirty_seq = 0;
            frame.pins = 0;
        }
        self.table.insert(page, id);
        self.lru.push_front(id);
        if self.table.len() > self.capacity {
            if self.lru.len() <= 1 {
                // The only evictable frame is the one just installed; the
                // caller is about to use it, so evicting it would hand back
                // a stale frame. Refuse instead.
                self.table.remove(&page);
                self.lru.unlink(id);
                self.lru.release(id);
                return Err(io::Error::new(
                    io::ErrorKind::OutOfMemory,
                    "buffer pool over capacity with every frame pinned",
                ));
            }
            self.evict_one()?;
        }
        Ok(id)
    }

    /// Evicts the least-recently-used unpinned frame, writing it back first
    /// if dirty. With coalescing on, the writeback absorbs the maximal
    /// contiguous stretch of dirty resident pages around the victim into
    /// the same `write_run` call (they stay resident, now clean) — the
    /// write-side half of the fell swoop.
    fn evict_one(&mut self) -> io::Result<()> {
        let victim = self.lru.pop_back().ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::OutOfMemory,
                "buffer pool over capacity with every frame pinned",
            )
        })?;
        let (page, dirty) = (self.frames[victim].page, self.frames[victim].dirty);
        if dirty {
            if self.coalescing {
                self.write_back_cluster(page)?;
            } else {
                let data = std::mem::take(&mut self.frames[victim].data);
                self.backend.write_run(page, &data)?;
                self.flight_writeback(std::iter::once(page));
                self.frames[victim].data = data;
                self.frames[victim].dirty = false;
                self.frames[victim].dirty_seq = 0;
                self.stats.writebacks += 1;
                self.stats.writeback_runs += 1;
                tel().pool_writebacks.inc();
                tel().run_len.record(1);
            }
        }
        self.table.remove(&page);
        self.lru.release(victim);
        self.stats.evictions += 1;
        tel().pool_evictions.inc();
        Ok(())
    }

    /// Attributes a just-written-back run of pages to the flight recorder,
    /// charging each page to the command seq stamped when it went dirty
    /// (one event per maximal same-seq stretch). Called *before* the
    /// frames are marked clean — the stamp is cleared with the dirty bit.
    /// A single branch when the recorder is off.
    fn flight_writeback(&self, pages: impl Iterator<Item = u64>) {
        if !dsf_flight::enabled() {
            return;
        }
        let mut cur: (u64, u64) = (0, 0);
        for p in pages {
            let seq = self
                .table
                .get(&p)
                .map_or(0, |&id| self.frames[id].dirty_seq);
            if seq == cur.0 {
                cur.1 += 1;
            } else {
                dsf_flight::record_writeback(cur.0, cur.1);
                cur = (seq, 1);
            }
        }
        dsf_flight::record_writeback(cur.0, cur.1);
    }

    /// Whether `page` is resident and dirty.
    fn is_dirty_resident(&self, page: u64) -> bool {
        self.table
            .get(&page)
            .is_some_and(|&id| self.frames[id].dirty)
    }

    /// Writes back the maximal contiguous stretch of dirty resident pages
    /// containing `page` in one `write_run` call and marks them clean.
    fn write_back_cluster(&mut self, page: u64) -> io::Result<()> {
        let mut lo = page;
        while lo > 0 && self.is_dirty_resident(lo - 1) {
            lo -= 1;
        }
        let mut hi = page + 1;
        while self.is_dirty_resident(hi) {
            hi += 1;
        }
        let page_size = self.backend.page_size();
        let mut buf = Vec::with_capacity((hi - lo) as usize * page_size);
        for p in lo..hi {
            buf.extend_from_slice(&self.frames[self.table[&p]].data);
        }
        self.backend.write_run(lo, &buf)?;
        self.flight_writeback(lo..hi);
        for p in lo..hi {
            let id = self.table[&p];
            let frame = &mut self.frames[id];
            frame.dirty = false;
            frame.dirty_seq = 0;
            self.stats.writebacks += 1;
        }
        self.stats.writeback_runs += 1;
        tel().pool_writebacks.add(hi - lo);
        tel().run_len.record(hi - lo);
        Ok(())
    }
}

impl<B: PageBackend + std::fmt::Debug> std::fmt::Debug for BufferPool<B> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("backend", &self.backend)
            .field("capacity", &self.capacity)
            .field("resident", &self.table.len())
            .field("stats", &self.stats)
            .finish()
    }
}

/// An in-memory [`PageBackend`] that counts its calls — the test double for
/// syscall-level accounting (each `read_run`/`write_run` call stands for one
/// seek + one syscall).
#[derive(Debug)]
pub struct MemBackend {
    page_size: usize,
    pages: HashMap<u64, Vec<u8>>,
    /// `read_run` calls issued.
    pub read_calls: u64,
    /// `write_run` calls issued.
    pub write_calls: u64,
    /// Total pages transferred by reads.
    pub pages_read: u64,
    /// Total pages transferred by writes.
    pub pages_written: u64,
}

impl MemBackend {
    /// An empty backend of `page_size`-byte pages; absent pages read as
    /// zeroes.
    pub fn new(page_size: usize) -> Self {
        assert!(page_size > 0, "page size must be non-zero");
        MemBackend {
            page_size,
            pages: HashMap::new(),
            read_calls: 0,
            write_calls: 0,
            pages_read: 0,
            pages_written: 0,
        }
    }

    /// The stored bytes of `page` (zeroes if never written).
    pub fn page(&self, page: u64) -> Vec<u8> {
        self.pages
            .get(&page)
            .cloned()
            .unwrap_or_else(|| vec![0; self.page_size])
    }

    /// Total I/O calls (reads + writes).
    pub fn io_calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }
}

impl PageBackend for MemBackend {
    fn page_size(&self) -> usize {
        self.page_size
    }

    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> io::Result<()> {
        assert_eq!(buf.len() % self.page_size, 0, "partial-page read");
        self.read_calls += 1;
        let n = buf.len() / self.page_size;
        self.pages_read += n as u64;
        for (i, chunk) in buf.chunks_exact_mut(self.page_size).enumerate() {
            match self.pages.get(&(first_page + i as u64)) {
                Some(data) => chunk.copy_from_slice(data),
                None => chunk.fill(0),
            }
        }
        Ok(())
    }

    fn write_run(&mut self, first_page: u64, data: &[u8]) -> io::Result<()> {
        assert_eq!(data.len() % self.page_size, 0, "partial-page write");
        self.write_calls += 1;
        let n = data.len() / self.page_size;
        self.pages_written += n as u64;
        for (i, chunk) in data.chunks_exact(self.page_size).enumerate() {
            self.pages.insert(first_page + i as u64, chunk.to_vec());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::LruCacheSim;

    const PS: usize = 64;

    fn pool(capacity: usize) -> BufferPool<MemBackend> {
        BufferPool::new(MemBackend::new(PS), capacity)
    }

    #[test]
    fn get_faults_in_and_then_hits() {
        let mut p = pool(4);
        assert_eq!(p.get(3).unwrap(), &[0u8; PS][..]);
        assert!(p.contains(3));
        p.get(3).unwrap();
        let s = p.stats();
        assert_eq!((s.accesses, s.hits, s.misses), (2, 1, 1));
        assert_eq!(p.backend().read_calls, 1);
    }

    #[test]
    fn writes_are_buffered_until_flush() {
        let mut p = pool(4);
        p.get_mut(1).unwrap()[0] = 0xAA;
        p.get_mut(2).unwrap()[0] = 0xBB;
        assert_eq!(p.backend().write_calls, 0, "write-back, not write-through");
        p.flush_all().unwrap();
        assert_eq!(p.backend().write_calls, 1, "adjacent dirty pages: one run");
        assert_eq!(p.backend().page(1)[0], 0xAA);
        assert_eq!(p.backend().page(2)[0], 0xBB);
        let s = p.stats();
        assert_eq!((s.pages_flushed, s.flush_runs), (2, 1));
        // Second flush is a no-op: everything is clean.
        p.flush_all().unwrap();
        assert_eq!(p.backend().write_calls, 1);
    }

    #[test]
    fn dirty_eviction_writes_back() {
        let mut p = pool(2);
        p.get_mut(1).unwrap()[0] = 7;
        p.get(2).unwrap();
        p.get(3).unwrap(); // evicts 1, which is dirty
        assert!(!p.contains(1));
        assert_eq!(p.backend().page(1)[0], 7);
        let s = p.stats();
        assert_eq!((s.evictions, s.writebacks), (1, 1));
        // Re-reading 1 sees the written-back data.
        assert_eq!(p.get(1).unwrap()[0], 7);
    }

    #[test]
    fn eviction_writeback_clusters_adjacent_dirty_pages() {
        let mut p = pool(4);
        for page in 0..4u64 {
            p.get_mut(page).unwrap()[0] = page as u8;
        }
        // Fault a 5th page: evicts page 0, whose writeback absorbs the
        // whole dirty stretch 0..4 in one call.
        p.get(10).unwrap();
        assert_eq!(p.backend().write_calls, 1);
        assert_eq!(p.backend().pages_written, 4);
        let s = p.stats();
        assert_eq!((s.writebacks, s.writeback_runs, s.evictions), (4, 1, 1));
        for page in 0..4u64 {
            assert_eq!(p.backend().page(page)[0], page as u8);
        }
        // The neighbours stay resident and are clean now: flushing writes
        // nothing further.
        p.flush_all().unwrap();
        assert_eq!(p.backend().write_calls, 1);
    }

    #[test]
    fn per_page_mode_disables_write_coalescing() {
        let mut p = pool(4);
        p.set_coalescing(false);
        for page in 0..4u64 {
            p.get_mut(page).unwrap()[0] = 1;
        }
        p.get(10).unwrap(); // evicts page 0: one single-page writeback
        let s = p.stats();
        assert_eq!((s.writebacks, s.writeback_runs), (1, 1));
        p.flush_all().unwrap(); // pages 1..4 still dirty, one call each
        let s = p.stats();
        assert_eq!((s.pages_flushed, s.flush_runs), (3, 3));
        assert_eq!(p.backend().write_calls, 4);
    }

    #[test]
    fn pinned_frames_survive_eviction_pressure() {
        let mut p = pool(2);
        p.pin(1).unwrap();
        for page in 2..10 {
            p.get(page).unwrap();
        }
        assert!(p.contains(1), "pinned page must not be evicted");
        assert_eq!(p.pin_count(1), 1);
        p.unpin(1);
        assert_eq!(p.pin_count(1), 0);
        p.get(20).unwrap();
        p.get(21).unwrap();
        assert!(!p.contains(1), "after unpin the page ages out normally");
    }

    #[test]
    fn all_pinned_overflow_is_an_error() {
        let mut p = pool(2);
        p.pin(1).unwrap();
        p.pin(2).unwrap();
        let err = p.get(3).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
    }

    #[test]
    fn unpin_balanced_with_multiple_pins() {
        let mut p = pool(2);
        p.pin(1).unwrap();
        p.pin(1).unwrap();
        assert_eq!(p.pin_count(1), 2);
        p.unpin(1);
        assert_eq!(p.pin_count(1), 1);
        p.unpin(1);
        assert_eq!(p.pin_count(1), 0);
    }

    #[test]
    #[should_panic(expected = "unpin of a non-resident page")]
    fn unpin_of_absent_page_panics() {
        pool(2).unpin(9);
    }

    #[test]
    fn pin_run_coalesces_reads_and_survives_pressure() {
        let mut p = pool(8);
        p.get(5).unwrap(); // 5 resident
        let before = p.backend().read_calls;
        p.pin_run(3, 6).unwrap(); // pages 3..9: misses 3-4 and 6-8, hit 5
        assert_eq!(
            p.backend().read_calls - before,
            2,
            "two miss stretches → two read_run calls"
        );
        for page in 3..9u64 {
            assert_eq!(p.pin_count(page), 1);
        }
        // Churn the two free frames hard: no pinned page may be displaced.
        for page in 100..120u64 {
            p.get(page).unwrap();
        }
        for page in 3..9u64 {
            assert!(p.contains(page), "pinned page {page} evicted mid-batch");
        }
        p.unpin_run(3, 6);
        for page in 3..9u64 {
            assert_eq!(p.pin_count(page), 0);
        }
        // After release the run ages out normally.
        for page in 200..216u64 {
            p.get(page).unwrap();
        }
        assert!(!p.contains(3));
    }

    #[test]
    fn pin_run_longer_than_pool_is_an_error() {
        let mut p = pool(4);
        let err = p.pin_run(0, 5).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        assert_eq!(p.resident_pages(), 0, "nothing faulted in on refusal");
    }

    #[test]
    fn failed_pin_run_rolls_its_pins_back() {
        let mut p = pool(4);
        p.pin(100).unwrap();
        p.pin(101).unwrap();
        p.pin(102).unwrap();
        // Room for one more frame only: the second page of the run cannot
        // fit beside the pinned frames.
        let err = p.pin_run(0, 2).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::OutOfMemory);
        assert_eq!(p.pin_count(0), 0, "partial pin must be rolled back");
        assert_eq!(p.pin_count(100), 1, "pre-existing pins untouched");
        p.unpin(100);
        p.unpin(101);
        p.unpin(102);
    }

    #[test]
    fn fetch_run_coalesces_misses_into_single_reads() {
        let mut p = pool(16);
        p.get(5).unwrap(); // 5 resident
        let before = p.backend().read_calls;
        p.fetch_run(3, 6).unwrap(); // pages 3..9: misses 3-4 and 6-8, hit 5
        assert_eq!(
            p.backend().read_calls - before,
            2,
            "two miss stretches → two read_run calls"
        );
        let s = p.stats();
        assert_eq!(s.hits, 1);
        assert_eq!(s.misses, 6); // 5 from the run + the initial get(5)
        for page in 3..9 {
            assert!(p.contains(page));
        }
    }

    #[test]
    fn fetch_run_fully_resident_reads_nothing() {
        let mut p = pool(8);
        p.fetch_run(0, 4).unwrap();
        let before = p.backend().read_calls;
        p.fetch_run(0, 4).unwrap();
        assert_eq!(p.backend().read_calls, before);
    }

    #[test]
    fn round_trip_through_backend() {
        let mut backend = MemBackend::new(PS);
        let mut data = vec![0u8; 3 * PS];
        for (i, b) in data.iter_mut().enumerate() {
            *b = (i % 251) as u8;
        }
        backend.write_run(10, &data).unwrap();
        let mut p = BufferPool::new(backend, 8);
        p.fetch_run(10, 3).unwrap();
        for i in 0..3u64 {
            let expect = &data[i as usize * PS..(i as usize + 1) * PS];
            assert_eq!(p.get(10 + i).unwrap(), expect);
        }
    }

    #[test]
    fn counters_reconcile_with_lru_cache_sim() {
        // The acceptance criterion: identical miss counts at identical
        // capacity on an identical access stream.
        let mut trace = Vec::new();
        let mut x = 0x9E3779B97F4A7C15u64;
        for i in 0..2000u64 {
            // Deterministic mix of locality (shift-like sweeps) and jumps.
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let page = if i % 7 < 5 { (i / 7) % 64 } else { x % 256 };
            let kind = if x & 1 == 0 {
                AccessKind::Read
            } else {
                AccessKind::Write
            };
            trace.push(AccessEvent { page, kind });
        }
        for capacity in [1usize, 2, 8, 32, 128] {
            let sim = LruCacheSim::new(capacity).replay(&trace);
            let got = pool(capacity).replay(&trace).unwrap();
            assert_eq!(got, sim, "capacity {capacity}");
            assert_eq!(got.hits + got.misses, got.accesses);
        }
    }

    #[test]
    fn pool_trace_records_logical_stream() {
        let mut p = pool(4);
        p.trace().set_enabled(true);
        p.get(1).unwrap();
        p.get(1).unwrap(); // hit still recorded: the trace is pre-cache
        p.get_mut(2).unwrap();
        let evs = p.trace().take();
        assert_eq!(evs.len(), 3);
        assert_eq!(evs[2].kind, AccessKind::Write);
    }

    #[test]
    fn into_backend_flushes() {
        let mut p = pool(4);
        p.get_mut(0).unwrap()[0] = 1;
        let backend = p.into_backend().unwrap();
        assert_eq!(backend.page(0)[0], 1);
    }
}
