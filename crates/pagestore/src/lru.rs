//! An O(1) intrusive LRU list over slab-allocated node ids.
//!
//! Shared by [`crate::LruCacheSim`] (trace replay) and
//! [`crate::BufferPool`] (the real pinned pool): both need *move-to-front*,
//! *push-front* and *pop-back* in constant time, keyed by a small dense id
//! they already hold. Nodes live in one `Vec`; links are indices, so there
//! is no per-entry allocation and no unsafe code.

/// Sentinel for "no node".
const NIL: usize = usize::MAX;

#[derive(Debug, Clone, Copy)]
struct Node {
    prev: usize,
    next: usize,
    /// Whether the node is currently linked into the list.
    linked: bool,
}

/// A doubly-linked LRU order over externally-owned slots.
///
/// The list stores *ids* (slab indices); callers keep whatever payload they
/// need in parallel arrays or maps. Front = most recently used, back =
/// least recently used.
#[derive(Debug, Default)]
pub struct LruList {
    nodes: Vec<Node>,
    free: Vec<usize>,
    head: usize,
    tail: usize,
    len: usize,
}

// Some conveniences (`new`, `is_empty`, `back`) are exercised only by this
// module's tests; the lib build would otherwise flag them.
#[allow(dead_code)]
impl LruList {
    /// An empty list.
    pub fn new() -> Self {
        LruList {
            nodes: Vec::new(),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// An empty list with room for `capacity` ids before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        LruList {
            nodes: Vec::with_capacity(capacity),
            free: Vec::new(),
            head: NIL,
            tail: NIL,
            len: 0,
        }
    }

    /// Number of linked ids.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no ids are linked.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Allocates an unlinked id (reusing freed ids first).
    pub fn alloc(&mut self) -> usize {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = Node {
                prev: NIL,
                next: NIL,
                linked: false,
            };
            id
        } else {
            self.nodes.push(Node {
                prev: NIL,
                next: NIL,
                linked: false,
            });
            self.nodes.len() - 1
        }
    }

    /// Returns an id to the allocator. The id must be unlinked.
    pub fn release(&mut self, id: usize) {
        debug_assert!(!self.nodes[id].linked, "release of a linked id");
        self.free.push(id);
    }

    /// Links `id` at the front (most recently used). The id must be
    /// unlinked.
    pub fn push_front(&mut self, id: usize) {
        debug_assert!(!self.nodes[id].linked, "push_front of a linked id");
        self.nodes[id] = Node {
            prev: NIL,
            next: self.head,
            linked: true,
        };
        if self.head != NIL {
            self.nodes[self.head].prev = id;
        }
        self.head = id;
        if self.tail == NIL {
            self.tail = id;
        }
        self.len += 1;
    }

    /// Unlinks `id` from wherever it sits. No-op if already unlinked.
    pub fn unlink(&mut self, id: usize) {
        if !self.nodes[id].linked {
            return;
        }
        let Node { prev, next, .. } = self.nodes[id];
        if prev != NIL {
            self.nodes[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.nodes[next].prev = prev;
        } else {
            self.tail = prev;
        }
        self.nodes[id].linked = false;
        self.len -= 1;
    }

    /// Moves a linked `id` to the front; links it if currently unlinked.
    pub fn touch(&mut self, id: usize) {
        self.unlink(id);
        self.push_front(id);
    }

    /// Unlinks and returns the least-recently-used id.
    pub fn pop_back(&mut self) -> Option<usize> {
        let id = self.tail;
        if id == NIL {
            return None;
        }
        self.unlink(id);
        Some(id)
    }

    /// The least-recently-used id without unlinking it.
    pub fn back(&self) -> Option<usize> {
        (self.tail != NIL).then_some(self.tail)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_touch_pop_follow_lru_order() {
        let mut l = LruList::new();
        let a = l.alloc();
        let b = l.alloc();
        let c = l.alloc();
        l.push_front(a);
        l.push_front(b);
        l.push_front(c); // order: c b a
        assert_eq!(l.len(), 3);
        assert_eq!(l.back(), Some(a));
        l.touch(a); // order: a c b
        assert_eq!(l.pop_back(), Some(b));
        assert_eq!(l.pop_back(), Some(c));
        assert_eq!(l.pop_back(), Some(a));
        assert_eq!(l.pop_back(), None);
        assert!(l.is_empty());
    }

    #[test]
    fn released_ids_are_reused() {
        let mut l = LruList::new();
        let a = l.alloc();
        l.push_front(a);
        l.unlink(a);
        l.release(a);
        let b = l.alloc();
        assert_eq!(a, b, "slab should recycle the freed id");
        l.push_front(b);
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn unlink_middle_keeps_neighbours_connected() {
        let mut l = LruList::new();
        let ids: Vec<usize> = (0..5).map(|_| l.alloc()).collect();
        for &id in &ids {
            l.push_front(id);
        }
        // order: 4 3 2 1 0
        l.unlink(ids[2]);
        assert_eq!(l.len(), 4);
        assert_eq!(l.pop_back(), Some(ids[0]));
        assert_eq!(l.pop_back(), Some(ids[1]));
        assert_eq!(l.pop_back(), Some(ids[3]));
        assert_eq!(l.pop_back(), Some(ids[4]));
    }

    #[test]
    fn unlink_of_unlinked_id_is_a_noop() {
        let mut l = LruList::new();
        let a = l.alloc();
        l.unlink(a);
        assert!(l.is_empty());
        l.push_front(a);
        l.unlink(a);
        l.unlink(a);
        assert!(l.is_empty());
    }
}
