//! Record and key abstractions shared by every structure in the workspace.

use std::fmt;

/// Marker trait for key types usable in the dense sequential file and its
/// comparators.
///
/// Keys must be totally ordered (`Ord`), cheap to copy (`Copy`) — they are
/// mirrored into the in-memory calibrator tree as search fingers — and
/// printable for diagnostics. A blanket implementation covers every type
/// with those bounds, so `u64`, `i32`, `[u8; 16]`, tuples of such, etc. all
/// work out of the box.
pub trait Key: Ord + Copy + fmt::Debug {}

impl<T: Ord + Copy + fmt::Debug> Key for T {}

/// A single record: a key plus an opaque payload.
///
/// The paper treats records as atomic units moved between pages; payloads
/// are never inspected by any maintenance algorithm.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record<K, V> {
    /// Search key; unique within a file.
    pub key: K,
    /// Opaque payload carried along with the key.
    pub value: V,
}

impl<K, V> Record<K, V> {
    /// Creates a record from its parts.
    pub fn new(key: K, value: V) -> Self {
        Record { key, value }
    }

    /// Splits the record back into its parts.
    pub fn into_parts(self) -> (K, V) {
        (self.key, self.value)
    }
}

impl<K: Key, V> Record<K, V> {
    /// Compares two records by key only.
    pub fn key_cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.key.cmp(&other.key)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_round_trip() {
        let r = Record::new(7u64, "payload");
        assert_eq!(r.key, 7);
        assert_eq!(r.value, "payload");
        let (k, v) = r.into_parts();
        assert_eq!((k, v), (7, "payload"));
    }

    #[test]
    fn key_cmp_orders_by_key_only() {
        let a = Record::new(1u32, 99);
        let b = Record::new(2u32, 0);
        assert_eq!(a.key_cmp(&b), std::cmp::Ordering::Less);
        assert_eq!(b.key_cmp(&a), std::cmp::Ordering::Greater);
        let c = Record::new(1u32, 12345);
        assert_eq!(a.key_cmp(&c), std::cmp::Ordering::Equal);
    }

    #[test]
    fn key_trait_blanket_impl_covers_common_types() {
        fn assert_key<K: Key>() {}
        assert_key::<u64>();
        assert_key::<i64>();
        assert_key::<(u32, u16)>();
        assert_key::<[u8; 8]>();
        assert_key::<char>();
    }
}
