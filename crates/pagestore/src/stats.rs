//! Page-access counters.
//!
//! The paper's complexity results are stated in *page accesses*; these
//! counters are the measurement instrument shared by every structure in the
//! workspace. They are interior-mutable (relaxed atomics) so that logically
//! read-only operations (lookups, scans) can charge reads through `&self`,
//! including from parallel readers behind a shared lock (`dsf-concurrent`).

use std::sync::atomic::{AtomicU64, Ordering::Relaxed};

use crate::tel::PagestoreTel;

/// Monotonic counters of physical page reads and writes.
pub struct IoStats {
    reads: AtomicU64,
    writes: AtomicU64,
    /// Pre-resolved telemetry handles: `charge_*` runs on the per-access
    /// hot path, so the OnceLock lookup happens once per `IoStats` (at
    /// construction) instead of once per charge.
    tel: &'static PagestoreTel,
}

impl Default for IoStats {
    fn default() -> Self {
        IoStats {
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            tel: crate::tel::tel(),
        }
    }
}

impl std::fmt::Debug for IoStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IoStats")
            .field("reads", &self.reads)
            .field("writes", &self.writes)
            .finish()
    }
}

/// A point-in-time copy of [`IoStats`], used to attribute accesses to a
/// single command via [`IoStats::since`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoSnapshot {
    /// Cumulative page reads at snapshot time.
    pub reads: u64,
    /// Cumulative page writes at snapshot time.
    pub writes: u64,
}

/// The difference between two snapshots: the cost of one span of work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IoDelta {
    /// Page reads performed in the span.
    pub reads: u64,
    /// Page writes performed in the span.
    pub writes: u64,
}

impl IoDelta {
    /// Total page accesses (reads + writes) in the span.
    pub fn accesses(&self) -> u64 {
        self.reads + self.writes
    }
}

impl IoStats {
    /// Creates zeroed counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Charges `n` page reads.
    ///
    /// Also mirrored into the process-wide telemetry spine
    /// (`dsf_page_reads_total`) — a single-branch no-op while the global
    /// registry is disabled, so per-instance attribution stays exact and
    /// free of observability cost by default — and into the flight
    /// recorder, which tags the charge with the current command sequence
    /// number and algorithm phase (same single-branch contract).
    #[inline]
    pub fn charge_reads(&self, n: u64) {
        self.reads.fetch_add(n, Relaxed);
        self.tel.reads.add(n);
        dsf_flight::record_access(dsf_flight::AccessKind::Read, n);
    }

    /// Charges `n` page writes (mirrored as `dsf_page_writes_total`).
    #[inline]
    pub fn charge_writes(&self, n: u64) {
        self.writes.fetch_add(n, Relaxed);
        self.tel.writes.add(n);
        dsf_flight::record_access(dsf_flight::AccessKind::Write, n);
    }

    /// Cumulative page reads.
    pub fn reads(&self) -> u64 {
        self.reads.load(Relaxed)
    }

    /// Cumulative page writes.
    pub fn writes(&self) -> u64 {
        self.writes.load(Relaxed)
    }

    /// Cumulative page accesses (reads + writes).
    pub fn accesses(&self) -> u64 {
        self.reads.load(Relaxed) + self.writes.load(Relaxed)
    }

    /// Takes a snapshot for later [`IoStats::since`] attribution.
    pub fn snapshot(&self) -> IoSnapshot {
        IoSnapshot {
            reads: self.reads.load(Relaxed),
            writes: self.writes.load(Relaxed),
        }
    }

    /// Accesses performed since `snap` was taken.
    pub fn since(&self, snap: IoSnapshot) -> IoDelta {
        IoDelta {
            reads: self.reads.load(Relaxed) - snap.reads,
            writes: self.writes.load(Relaxed) - snap.writes,
        }
    }

    /// Resets both counters to zero.
    pub fn reset(&self) {
        self.reads.store(0, Relaxed);
        self.writes.store(0, Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate() {
        let s = IoStats::new();
        s.charge_reads(3);
        s.charge_writes(2);
        s.charge_reads(1);
        assert_eq!(s.reads(), 4);
        assert_eq!(s.writes(), 2);
        assert_eq!(s.accesses(), 6);
    }

    #[test]
    fn snapshot_delta_isolates_a_span() {
        let s = IoStats::new();
        s.charge_reads(10);
        let snap = s.snapshot();
        s.charge_reads(2);
        s.charge_writes(5);
        let d = s.since(snap);
        assert_eq!(
            d,
            IoDelta {
                reads: 2,
                writes: 5
            }
        );
        assert_eq!(d.accesses(), 7);
    }

    #[test]
    fn reset_zeroes_counters() {
        let s = IoStats::new();
        s.charge_writes(9);
        s.reset();
        assert_eq!(s.accesses(), 0);
        assert_eq!(
            s.snapshot(),
            IoSnapshot {
                reads: 0,
                writes: 0
            }
        );
    }

    #[test]
    fn empty_delta_is_zero() {
        let s = IoStats::new();
        let snap = s.snapshot();
        assert_eq!(s.since(snap), IoDelta::default());
    }
}
