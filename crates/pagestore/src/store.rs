//! The paged store: slots of sorted records packed into physical pages.
//!
//! A *slot* is the unit the maintenance algorithms address. In the paper's
//! base regime one slot is one physical page. In the macro-block regime
//! (Theorem 5.7) one slot spans `K` consecutive physical pages whose records
//! are kept packed left-to-right at ≤ `page_capacity` records per page; every
//! slot operation charges the physical pages it actually touches, which is
//! what makes macro-block operations "K times as costly" exactly as the
//! paper requires.

use crate::record::{Key, Record};
use crate::stats::IoStats;
use crate::trace::{AccessKind, TraceBuffer};

/// Index of a slot (logical page / macro-block) in a [`PagedStore`].
pub type SlotId = u32;

/// Sizing parameters for a [`PagedStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreConfig {
    /// Number of slots (the calibrator's `M`).
    pub slots: u32,
    /// Physical pages per slot (the paper's `K`; 1 in the base regime).
    pub pages_per_slot: u32,
    /// Records per physical page (the paper's `D` in the base regime).
    pub page_capacity: u32,
}

/// Errors raised by store construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StoreError {
    /// A sizing parameter was zero.
    ZeroParameter(&'static str),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::ZeroParameter(p) => write!(f, "store parameter `{p}` must be non-zero"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Which end of a slot a bulk take/put addresses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum End {
    /// The low-key end.
    Front,
    /// The high-key end.
    Back,
}

/// An in-memory array of slots with page-access accounting.
///
/// Counted operations charge [`IoStats`] (and the optional [`TraceBuffer`])
/// for every physical page they touch. Metadata (`len`, `min_key`,
/// `max_key`, `total_records`) is free — the dense-file algorithms mirror it
/// in the in-memory calibrator. `peek_*` methods are free and reserved for
/// invariant checkers and tests.
#[derive(Debug)]
pub struct PagedStore<K, V> {
    cfg: StoreConfig,
    slots: Vec<Vec<Record<K, V>>>,
    total: usize,
    stats: IoStats,
    trace: TraceBuffer,
}

impl<K: Key, V> PagedStore<K, V> {
    /// Creates an empty store.
    pub fn new(cfg: StoreConfig) -> Result<Self, StoreError> {
        if cfg.slots == 0 {
            return Err(StoreError::ZeroParameter("slots"));
        }
        if cfg.pages_per_slot == 0 {
            return Err(StoreError::ZeroParameter("pages_per_slot"));
        }
        if cfg.page_capacity == 0 {
            return Err(StoreError::ZeroParameter("page_capacity"));
        }
        Ok(PagedStore {
            cfg,
            slots: (0..cfg.slots).map(|_| Vec::new()).collect(),
            total: 0,
            stats: IoStats::new(),
            trace: TraceBuffer::new(),
        })
    }

    /// Sizing parameters.
    pub fn config(&self) -> StoreConfig {
        self.cfg
    }

    /// Number of slots.
    pub fn slots(&self) -> u32 {
        self.cfg.slots
    }

    /// Total number of physical pages (`slots × pages_per_slot`).
    pub fn total_pages(&self) -> u64 {
        u64::from(self.cfg.slots) * u64::from(self.cfg.pages_per_slot)
    }

    /// The access counters.
    pub fn stats(&self) -> &IoStats {
        &self.stats
    }

    /// The optional access trace.
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    // ------------------------------------------------------------------
    // Free metadata.
    // ------------------------------------------------------------------

    /// Record count of `slot` (free: mirrored in the calibrator).
    pub fn len(&self, slot: SlotId) -> usize {
        self.slots[slot as usize].len()
    }

    /// Whether `slot` holds no records (free).
    pub fn is_empty(&self, slot: SlotId) -> bool {
        self.slots[slot as usize].is_empty()
    }

    /// Smallest key in `slot` (free: mirrored in the calibrator).
    pub fn min_key(&self, slot: SlotId) -> Option<K> {
        self.slots[slot as usize].first().map(|r| r.key)
    }

    /// Largest key in `slot` (free: mirrored in the calibrator).
    pub fn max_key(&self, slot: SlotId) -> Option<K> {
        self.slots[slot as usize].last().map(|r| r.key)
    }

    /// Total records across all slots (free).
    pub fn total_records(&self) -> usize {
        self.total
    }

    /// Raw slot contents. **Free — invariant checkers and tests only.**
    pub fn peek_slot(&self, slot: SlotId) -> &[Record<K, V>] {
        &self.slots[slot as usize]
    }

    // ------------------------------------------------------------------
    // Physical page geometry.
    // ------------------------------------------------------------------

    /// Physical page (within the slot) that holds record index `idx`.
    ///
    /// Records are packed left-to-right at `page_capacity` per page; a
    /// transient overflow beyond `pages_per_slot × page_capacity` is clamped
    /// onto the last page of the slot.
    fn page_within_slot(&self, idx: usize) -> u64 {
        let p = idx as u64 / u64::from(self.cfg.page_capacity);
        p.min(u64::from(self.cfg.pages_per_slot) - 1)
    }

    /// Global physical page number of record index `idx` in `slot`.
    fn global_page(&self, slot: SlotId, idx: usize) -> u64 {
        u64::from(slot) * u64::from(self.cfg.pages_per_slot) + self.page_within_slot(idx)
    }

    /// Charges one access per distinct physical page spanned by the record
    /// index range `lo..hi` of `slot`.
    fn charge_span(&self, slot: SlotId, lo: usize, hi: usize, kind: AccessKind) {
        if lo >= hi {
            return;
        }
        let first = self.page_within_slot(lo);
        let last = self.page_within_slot(hi - 1);
        let n = last - first + 1;
        match kind {
            AccessKind::Read => self.stats.charge_reads(n),
            AccessKind::Write => self.stats.charge_writes(n),
        }
        if self.trace.is_enabled() {
            let base = u64::from(slot) * u64::from(self.cfg.pages_per_slot);
            // One pre-formed run: a span is consecutive pages by
            // construction, so the trace's run log keeps it whole (and can
            // merge it with an adjacent span from the same sweep).
            self.trace.record_run(base + first, n, kind);
        }
    }

    /// Charges a read of the single page holding record index `idx`.
    fn charge_point_read(&self, slot: SlotId, idx: usize) {
        self.stats.charge_reads(1);
        self.trace
            .record(self.global_page(slot, idx), AccessKind::Read);
    }

    // ------------------------------------------------------------------
    // Counted operations.
    // ------------------------------------------------------------------

    /// Binary-searches `slot` for `key`, charging one read per distinct
    /// physical page probed.
    ///
    /// Returns `Ok(idx)` when the key is present, `Err(idx)` with the
    /// insertion index otherwise. An empty slot charges nothing — its
    /// emptiness is calibrator metadata.
    pub fn search(&self, slot: SlotId, key: &K) -> Result<usize, usize> {
        let recs = &self.slots[slot as usize];
        if recs.is_empty() {
            return Err(0);
        }
        // Simulate the probe sequence to charge the distinct pages touched.
        // A slot spans at most pages_per_slot pages, and a binary search
        // touches O(log) of them; a tiny seen-list keeps each one charged
        // exactly once even when probes revisit a page non-consecutively.
        let (mut lo, mut hi) = (0usize, recs.len());
        let mut seen: Vec<u64> = Vec::with_capacity(8);
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let page = self.page_within_slot(mid);
            if !seen.contains(&page) {
                self.charge_point_read(slot, mid);
                seen.push(page);
            }
            match recs[mid].key.cmp(key) {
                std::cmp::Ordering::Less => lo = mid + 1,
                std::cmp::Ordering::Greater => hi = mid,
                std::cmp::Ordering::Equal => return Ok(mid),
            }
        }
        Err(lo)
    }

    /// Looks up `key` in `slot`, charging like [`PagedStore::search`].
    pub fn get(&self, slot: SlotId, key: &K) -> Option<&V> {
        match self.search(slot, key) {
            Ok(idx) => Some(&self.slots[slot as usize][idx].value),
            Err(_) => None,
        }
    }

    /// Inserts (or replaces) `key` in `slot`.
    ///
    /// Charges the search reads plus writes for the suffix pages shifted by
    /// the insertion (one page in the base regime). Returns the previous
    /// value if the key was already present.
    pub fn insert(&mut self, slot: SlotId, key: K, value: V) -> Option<V> {
        match self.search(slot, &key) {
            Ok(idx) => {
                self.charge_span(slot, idx, idx + 1, AccessKind::Write);
                let old = std::mem::replace(&mut self.slots[slot as usize][idx].value, value);
                Some(old)
            }
            Err(idx) => {
                let new_len = self.slots[slot as usize].len() + 1;
                self.charge_span(slot, idx, new_len, AccessKind::Write);
                self.slots[slot as usize].insert(idx, Record::new(key, value));
                self.total += 1;
                None
            }
        }
    }

    /// Inserts a record at a known position `idx` (as returned by a prior
    /// [`PagedStore::search`] `Err`), charging only the suffix writes.
    ///
    /// Callers that must inspect the search result before committing (e.g.
    /// to enforce a file-level capacity bound) use this to avoid paying the
    /// search twice.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if `idx` is not the correct sorted position
    /// for `key` within `slot`.
    pub fn insert_searched(&mut self, slot: SlotId, idx: usize, key: K, value: V) {
        let recs = &self.slots[slot as usize];
        debug_assert!(
            idx == 0 || recs[idx - 1].key < key,
            "insert_searched: bad position"
        );
        debug_assert!(
            idx == recs.len() || key < recs[idx].key,
            "insert_searched: bad position"
        );
        let new_len = recs.len() + 1;
        self.charge_span(slot, idx, new_len, AccessKind::Write);
        self.slots[slot as usize].insert(idx, Record::new(key, value));
        self.total += 1;
    }

    /// Replaces the value at a known position `idx`, charging one page
    /// write. Returns the previous value.
    pub fn replace_at(&mut self, slot: SlotId, idx: usize, value: V) -> V {
        self.charge_span(slot, idx, idx + 1, AccessKind::Write);
        std::mem::replace(&mut self.slots[slot as usize][idx].value, value)
    }

    /// Removes `key` from `slot`, charging the search reads plus writes for
    /// the suffix pages shifted by the removal.
    pub fn remove(&mut self, slot: SlotId, key: &K) -> Option<V> {
        match self.search(slot, key) {
            Ok(idx) => {
                let old_len = self.slots[slot as usize].len();
                self.charge_span(slot, idx, old_len, AccessKind::Write);
                let rec = self.slots[slot as usize].remove(idx);
                self.total -= 1;
                Some(rec.value)
            }
            Err(_) => None,
        }
    }

    /// Removes up to `n` records from one end of `slot` and returns them in
    /// ascending key order.
    ///
    /// `Front` takes the lowest keys (the whole slot is rewritten — the
    /// packed layout shifts left); `Back` takes the highest keys (only the
    /// tail pages are touched). Both charge a read of the pages the departing
    /// records occupied.
    pub fn take(&mut self, slot: SlotId, n: usize, end: End) -> Vec<Record<K, V>> {
        let len = self.slots[slot as usize].len();
        let n = n.min(len);
        if n == 0 {
            return Vec::new();
        }
        let out = match end {
            End::Front => {
                self.charge_span(slot, 0, n, AccessKind::Read);
                self.charge_span(slot, 0, len, AccessKind::Write);
                let rest = self.slots[slot as usize].split_off(n);
                std::mem::replace(&mut self.slots[slot as usize], rest)
            }
            End::Back => {
                self.charge_span(slot, len - n, len, AccessKind::Read);
                self.charge_span(slot, len - n, len, AccessKind::Write);
                self.slots[slot as usize].split_off(len - n)
            }
        };
        self.total -= out.len();
        out
    }

    /// Appends `recs` (ascending, pre-sorted) to one end of `slot`.
    ///
    /// `Back` requires every new key to exceed the slot's current maximum
    /// and touches only the tail pages; `Front` requires every new key to
    /// precede the current minimum and rewrites the whole packed slot.
    ///
    /// # Panics
    ///
    /// In debug builds, panics if the ordering precondition is violated.
    pub fn put(&mut self, slot: SlotId, recs: Vec<Record<K, V>>, end: End) {
        if recs.is_empty() {
            return;
        }
        debug_assert!(
            recs.windows(2).all(|w| w[0].key < w[1].key),
            "put: input not sorted"
        );
        let old_len = self.slots[slot as usize].len();
        let new_len = old_len + recs.len();
        self.total += recs.len();
        match end {
            End::Back => {
                debug_assert!(
                    self.max_key(slot).is_none_or(|m| m < recs[0].key),
                    "put(Back): keys must exceed slot maximum"
                );
                // The page holding the current last record may be appended
                // into, so include it in the charged span.
                let from = old_len.saturating_sub(1);
                self.charge_span(slot, from, new_len, AccessKind::Write);
                self.slots[slot as usize].extend(recs);
            }
            End::Front => {
                debug_assert!(
                    self.min_key(slot)
                        .is_none_or(|m| recs.last().unwrap().key < m),
                    "put(Front): keys must precede slot minimum"
                );
                self.charge_span(slot, 0, new_len, AccessKind::Write);
                let mut new = recs;
                new.append(&mut self.slots[slot as usize]);
                self.slots[slot as usize] = new;
            }
        }
    }

    /// Reads and removes every record of `slot`, charging one read per
    /// non-empty page (used by one-shot redistribution in CONTROL 1 and the
    /// baselines).
    pub fn take_all(&mut self, slot: SlotId) -> Vec<Record<K, V>> {
        let len = self.slots[slot as usize].len();
        self.charge_span(slot, 0, len, AccessKind::Read);
        self.total -= len;
        std::mem::take(&mut self.slots[slot as usize])
    }

    /// Replaces the contents of `slot` with `recs` (ascending, pre-sorted),
    /// charging one write per page covered by the new contents or vacated
    /// from the old ones.
    pub fn replace(&mut self, slot: SlotId, recs: Vec<Record<K, V>>) {
        debug_assert!(
            recs.windows(2).all(|w| w[0].key < w[1].key),
            "replace: input not sorted"
        );
        let old_len = self.slots[slot as usize].len();
        // Charge every page the replacement touches: the pages the new
        // contents cover plus any previously-occupied tail pages that must
        // be vacated (symmetric with take(Front), which rewrites the whole
        // packed span).
        let touched = old_len.max(recs.len());
        if touched > 0 {
            self.charge_span(slot, 0, touched.max(1), AccessKind::Write);
        }
        self.total = self.total - old_len + recs.len();
        self.slots[slot as usize] = recs;
    }

    /// Replaces the raw contents of `slot` with **no** ordering validation
    /// and **no** access charges. **Audit and tests only** — this is the
    /// back door invariant-checker tests use to construct deliberately
    /// corrupted stores (unsorted slots, cross-slot disorder, overfull
    /// slots) that the counted mutators refuse to produce.
    pub fn corrupt_slot_for_audit(&mut self, slot: SlotId, recs: Vec<Record<K, V>>) {
        let old_len = self.slots[slot as usize].len();
        self.total = self.total - old_len + recs.len();
        self.slots[slot as usize] = recs;
    }

    /// Reads the records of one physical page of `slot`, charging one read.
    ///
    /// `page` is the page index within the slot; the returned slice is the
    /// records packed onto that page (empty if the page holds none). Range
    /// scans use this to stream a slot page by page.
    pub fn read_page(&self, slot: SlotId, page: u32) -> &[Record<K, V>] {
        debug_assert!(page < self.cfg.pages_per_slot);
        self.stats.charge_reads(1);
        self.trace.record(
            u64::from(slot) * u64::from(self.cfg.pages_per_slot) + u64::from(page),
            AccessKind::Read,
        );
        let recs = &self.slots[slot as usize];
        let cap = self.cfg.page_capacity as usize;
        let lo = (page as usize * cap).min(recs.len());
        let hi = if page + 1 == self.cfg.pages_per_slot {
            recs.len() // last page absorbs any transient overflow
        } else {
            ((page as usize + 1) * cap).min(recs.len())
        };
        &recs[lo..hi]
    }

    /// Number of physical pages of `slot` that currently hold records.
    pub fn pages_used(&self, slot: SlotId) -> u32 {
        let len = self.slots[slot as usize].len();
        if len == 0 {
            0
        } else {
            (self.page_within_slot(len - 1) + 1) as u32
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store(slots: u32, k: u32, cap: u32) -> PagedStore<u64, u32> {
        PagedStore::new(StoreConfig {
            slots,
            pages_per_slot: k,
            page_capacity: cap,
        })
        .unwrap()
    }

    #[test]
    fn rejects_zero_parameters() {
        for (s, k, c, field) in [
            (0u32, 1u32, 1u32, "slots"),
            (1, 0, 1, "pages_per_slot"),
            (1, 1, 0, "page_capacity"),
        ] {
            let err = PagedStore::<u64, u32>::new(StoreConfig {
                slots: s,
                pages_per_slot: k,
                page_capacity: c,
            })
            .unwrap_err();
            assert_eq!(err, StoreError::ZeroParameter(field));
        }
    }

    #[test]
    fn insert_get_remove_round_trip() {
        let mut st = store(4, 1, 8);
        assert_eq!(st.insert(2, 10, 100), None);
        assert_eq!(st.insert(2, 20, 200), None);
        assert_eq!(st.insert(2, 10, 101), Some(100)); // replace
        assert_eq!(st.get(2, &10), Some(&101));
        assert_eq!(st.get(2, &20), Some(&200));
        assert_eq!(st.get(2, &30), None);
        assert_eq!(st.len(2), 2);
        assert_eq!(st.total_records(), 2);
        assert_eq!(st.remove(2, &10), Some(101));
        assert_eq!(st.remove(2, &10), None);
        assert_eq!(st.total_records(), 1);
    }

    #[test]
    fn metadata_is_free() {
        let mut st = store(2, 1, 8);
        st.insert(0, 5, 0);
        st.insert(0, 9, 0);
        let snap = st.stats().snapshot();
        assert_eq!(st.len(0), 2);
        assert_eq!(st.min_key(0), Some(5));
        assert_eq!(st.max_key(0), Some(9));
        assert_eq!(st.total_records(), 2);
        let _ = st.peek_slot(0);
        assert_eq!(st.stats().since(snap).accesses(), 0);
    }

    #[test]
    fn single_page_slot_costs_one_page_per_touch() {
        let mut st = store(2, 1, 16);
        let snap = st.stats().snapshot();
        st.insert(0, 1, 0); // empty slot: no read, 1 write
        let d = st.stats().since(snap);
        assert_eq!((d.reads, d.writes), (0, 1));

        let snap = st.stats().snapshot();
        st.insert(0, 2, 0); // 1 probe read + 1 write
        let d = st.stats().since(snap);
        assert_eq!((d.reads, d.writes), (1, 1));
    }

    #[test]
    fn take_put_preserve_order_and_totals() {
        let mut st = store(2, 1, 16);
        for k in [10u64, 20, 30, 40, 50] {
            st.insert(0, k, k as u32);
        }
        let low = st.take(0, 2, End::Front);
        assert_eq!(low.iter().map(|r| r.key).collect::<Vec<_>>(), vec![10, 20]);
        let high = st.take(0, 2, End::Back);
        assert_eq!(high.iter().map(|r| r.key).collect::<Vec<_>>(), vec![40, 50]);
        assert_eq!(st.len(0), 1);

        st.put(1, high, End::Back);
        st.put(1, low, End::Front);
        assert_eq!(st.min_key(1), Some(10));
        assert_eq!(st.max_key(1), Some(50));
        assert_eq!(st.total_records(), 5);
    }

    #[test]
    fn take_clamps_to_len_and_zero_is_free() {
        let mut st = store(1, 1, 8);
        st.insert(0, 1, 0);
        let snap = st.stats().snapshot();
        assert!(st.take(0, 0, End::Front).is_empty());
        assert_eq!(st.stats().since(snap).accesses(), 0);
        let got = st.take(0, 99, End::Back);
        assert_eq!(got.len(), 1);
        assert_eq!(st.total_records(), 0);
    }

    #[test]
    fn macro_block_charges_scale_with_pages_touched() {
        // K = 4 pages of capacity 4 → slot capacity 16.
        let mut st = store(2, 4, 4);
        let recs: Vec<Record<u64, u32>> = (0..12).map(|k| Record::new(k, 0)).collect();
        let snap = st.stats().snapshot();
        st.replace(0, recs);
        // 12 records cover pages 0,1,2 → 3 writes.
        assert_eq!(st.stats().since(snap).writes, 3);

        // Taking from the front rewrites the whole packed prefix: reads of the
        // departing span (page 0) + writes of all 3 occupied pages.
        let snap = st.stats().snapshot();
        let out = st.take(0, 4, End::Front);
        assert_eq!(out.len(), 4);
        let d = st.stats().since(snap);
        assert_eq!((d.reads, d.writes), (1, 3));

        // Taking from the back touches only the tail page.
        let snap = st.stats().snapshot();
        let out = st.take(0, 2, End::Back);
        assert_eq!(out.len(), 2);
        let d = st.stats().since(snap);
        assert_eq!((d.reads, d.writes), (1, 1));
    }

    #[test]
    fn read_page_partitions_slot_contents() {
        let mut st = store(1, 3, 4);
        let recs: Vec<Record<u64, u32>> = (0..10).map(|k| Record::new(k, 0)).collect();
        st.replace(0, recs);
        assert_eq!(
            st.read_page(0, 0).iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![0, 1, 2, 3]
        );
        assert_eq!(
            st.read_page(0, 1).iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![4, 5, 6, 7]
        );
        assert_eq!(
            st.read_page(0, 2).iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![8, 9]
        );
        assert_eq!(st.pages_used(0), 3);
    }

    #[test]
    fn last_page_absorbs_transient_overflow() {
        let mut st = store(1, 2, 2);
        let recs: Vec<Record<u64, u32>> = (0..5).map(|k| Record::new(k, 0)).collect();
        st.replace(0, recs); // capacity 4, holding 5
        assert_eq!(st.read_page(0, 1).len(), 3);
        assert_eq!(st.pages_used(0), 2);
    }

    #[test]
    fn take_all_then_replace_models_redistribution() {
        let mut st = store(3, 1, 8);
        for k in 0..6u64 {
            st.insert(0, k, 0);
        }
        let snap = st.stats().snapshot();
        let all = st.take_all(0);
        assert_eq!(all.len(), 6);
        assert_eq!(st.stats().since(snap).reads, 1);
        st.replace(1, all[..3].to_vec());
        st.replace(2, all[3..].to_vec());
        assert_eq!(st.len(1), 3);
        assert_eq!(st.len(2), 3);
        assert_eq!(st.total_records(), 6);
    }

    #[test]
    fn trace_records_global_page_numbers() {
        let mut st = store(4, 2, 2);
        st.trace().set_enabled(true);
        st.insert(3, 1, 0); // slot 3, page 0 → global page 6
        let evs = st.trace().take();
        assert_eq!(evs.len(), 1);
        assert_eq!(evs[0].page, 6);
        assert_eq!(evs[0].kind, AccessKind::Write);
    }

    #[test]
    fn search_charges_distinct_probe_pages_only() {
        let mut st = store(1, 4, 4);
        let recs: Vec<Record<u64, u32>> = (0..16).map(|k| Record::new(k * 2, 0)).collect();
        st.replace(0, recs);
        let snap = st.stats().snapshot();
        assert_eq!(st.search(0, &14), Ok(7));
        let d = st.stats().since(snap);
        assert!(
            d.reads >= 1 && d.reads <= 3,
            "probes span at most log pages, got {}",
            d.reads
        );
    }

    #[test]
    fn corrupt_slot_for_audit_is_free_and_unchecked() {
        let mut st = store(2, 1, 4);
        st.insert(0, 5, 0);
        let snap = st.stats().snapshot();
        // Unsorted contents that `replace` would debug-panic on.
        st.corrupt_slot_for_audit(0, vec![Record::new(9, 0), Record::new(3, 0)]);
        assert_eq!(st.stats().since(snap).accesses(), 0);
        assert_eq!(st.total_records(), 2);
        assert_eq!(
            st.peek_slot(0).iter().map(|r| r.key).collect::<Vec<_>>(),
            vec![9, 3]
        );
    }

    #[test]
    fn replace_with_empty_clears_and_charges_once() {
        let mut st = store(1, 1, 4);
        st.insert(0, 1, 0);
        let snap = st.stats().snapshot();
        st.replace(0, Vec::new());
        assert_eq!(st.stats().since(snap).writes, 1);
        assert!(st.is_empty(0));
        // Clearing an already-empty slot is free.
        let snap = st.stats().snapshot();
        st.replace(0, Vec::new());
        assert_eq!(st.stats().since(snap).accesses(), 0);
    }
}
