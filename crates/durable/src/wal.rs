//! The write-ahead log and recovery machinery.

use std::io::Write;
use std::ops::Deref;
use std::path::{Path, PathBuf};

use dsf_core::snapshot::{fnv1a64, Codec, SnapshotError};
use dsf_core::{Command, CommandOutcome, DenseFile, DenseFileConfig, DsfError};
use dsf_pagestore::Key;

use crate::vfs::{StdFs, Vfs, VfsFile};

const CHECKPOINT: &str = "checkpoint.dsf";
const CHECKPOINT_TMP: &str = "checkpoint.dsf.tmp";
const WAL: &str = "wal.log";

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Magic + epoch at the head of the WAL; a log is only replayed when its
/// epoch matches the checkpoint's, so a crash between "new checkpoint
/// renamed" and "log truncated" can never replay a stale log onto the new
/// state. Version 02: frame checksums are salted with the epoch (see
/// [`frame_checksum`]), so a stale frame can never validate under a header
/// whose epoch bytes were torn into looking current.
const WAL_MAGIC: &[u8; 8] = b"DSFWAL02";
const WAL_HEADER: usize = 16;

/// When the log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every structural command (safest, slowest).
    EveryCommand,
    /// Only on explicit [`DurableFile::sync`] / [`DurableFile::checkpoint`]
    /// calls; a crash may lose the unsynced suffix of commands (never
    /// consistency).
    Manual,
    /// Timed, size-bounded **group commit**: command frames buffer in an
    /// open *commit window* (no syscall per command) and the whole window
    /// is written and fsynced at once when it holds `max_frames` frames,
    /// when it has been open for `max_micros` microseconds (checked at
    /// command boundaries — this is a single-threaded engine, there is no
    /// timer thread), at the next [`Durability::Strict`] command, or at an
    /// explicit [`DurableFile::sync`] / [`DurableFile::checkpoint`] /
    /// [`DurableFile::close_window`].
    ///
    /// A [`Durability::Relaxed`] command returns *before* its window's
    /// fsync and is durable only once
    /// [`DurableFile::durable_lsn`] reaches its LSN; a crash (process or
    /// power) loses the open window, and a failed window commit undoes
    /// every command the window held — memory rewinds to the durable
    /// watermark, exactly the state recovery would reconstruct.
    CommitWindow {
        /// Close the window once it buffers this many frames.
        max_frames: u32,
        /// Close the window at the first command boundary at least this
        /// many microseconds after the window opened.
        max_micros: u64,
    },
}

/// How durable a structural command must be when its call returns, under
/// [`SyncPolicy::CommitWindow`] (the other policies ignore this and behave
/// as they always have).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Durability {
    /// Durable on acknowledgement: the command closes the open window
    /// (one write + one fsync covering every frame buffered so far), so
    /// the relaxed commands queued before it share its fsync.
    #[default]
    Strict,
    /// Acknowledged once the frame is buffered in the open window; durable
    /// when the window closes. Track with [`DurableFile::durable_lsn`].
    Relaxed,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The checkpoint could not be parsed.
    Snapshot(SnapshotError),
    /// The underlying dense file rejected a command or configuration.
    File(DsfError),
    /// `open` was called on a directory without a checkpoint.
    NotInitialized,
    /// A failed checkpoint (or an unrecoverable log write) left the log
    /// unusable: the on-disk checkpoint epoch may be ahead of the log, so
    /// appending another command could be silently discarded by recovery.
    /// Structural commands fail with this error until a
    /// [`DurableFile::checkpoint`] retry succeeds (or the file is
    /// reopened).
    LogPoisoned,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Snapshot(e) => write!(f, "bad checkpoint: {e}"),
            DurableError::File(e) => write!(f, "dense file error: {e}"),
            DurableError::NotInitialized => {
                write!(f, "directory has no checkpoint; use create() first")
            }
            DurableError::LogPoisoned => {
                write!(
                    f,
                    "write-ahead log poisoned by a failed checkpoint; retry checkpoint() or reopen"
                )
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

impl From<DsfError> for DurableError {
    fn from(e: DsfError) -> Self {
        DurableError::File(e)
    }
}

/// The frame checksum: FNV-1a over the epoch (little-endian) followed by
/// the frame body. Salting with the epoch binds every frame to its log
/// generation, so bytes of an epoch-`e` frame surviving a torn log reset
/// can never replay under an epoch-`e+1` header.
fn frame_checksum(epoch: u64, body: &[u8]) -> u64 {
    let mut salted = Vec::with_capacity(8 + body.len());
    salted.extend_from_slice(&epoch.to_le_bytes());
    salted.extend_from_slice(body);
    fnv1a64(&salted)
}

/// The append path of the log: buffers one frame, writes it with a single
/// syscall, and **rolls the file back** when a write or post-write fsync
/// fails, so a frame whose command errored out (and was undone in memory)
/// can never survive on disk ahead of the in-memory state.
struct WalWriter<W: VfsFile> {
    file: W,
    /// Bytes of the frame(s) being appended (always empty between
    /// commands; a group commit buffers one frame per batched command).
    pending: Vec<u8>,
    /// Frames currently buffered in `pending`.
    pending_frames: u64,
    /// File length up to which every byte is an acknowledged frame.
    written: u64,
    /// Set when a rollback itself failed: the file's tail is in an unknown
    /// state and no further append may be trusted.
    poisoned: bool,
}

impl<W: VfsFile> WalWriter<W> {
    fn new(file: W, written: u64) -> Self {
        WalWriter {
            file,
            pending: Vec::new(),
            pending_frames: 0,
            written,
            poisoned: false,
        }
    }

    fn append(&mut self, frame: &[u8]) {
        self.pending.extend_from_slice(frame);
        self.pending_frames += 1;
    }

    /// Writes every pending frame with one syscall. On failure the
    /// partially written bytes are scrubbed with `set_len` back to the last
    /// acknowledged length.
    fn flush(&mut self) -> Result<(), DurableError> {
        if self.poisoned {
            self.pending.clear();
            self.pending_frames = 0;
            return Err(DurableError::LogPoisoned);
        }
        if self.pending.is_empty() {
            return Ok(());
        }
        let frames = std::mem::take(&mut self.pending_frames);
        match self.file.write_all(&self.pending) {
            Ok(()) => {
                self.written += self.pending.len() as u64;
                self.pending.clear();
                crate::tel::tel().frames.add(frames);
                Ok(())
            }
            Err(e) => {
                self.pending.clear();
                let target = self.written;
                self.rollback_to(target);
                Err(DurableError::Io(e))
            }
        }
    }

    /// Truncates the file back to `len` bytes (scrubbing a torn or
    /// unacknowledged frame); poisons the writer if the scrub fails.
    fn rollback_to(&mut self, len: u64) {
        crate::tel::tel().recovery_scrubs.inc();
        if self.file.set_len(len).is_err() || self.file.seek_end().is_err() {
            self.poisoned = true;
        } else {
            self.written = len;
        }
    }

    fn sync_data(&mut self) -> Result<(), DurableError> {
        if self.poisoned {
            return Err(DurableError::LogPoisoned);
        }
        let start =
            (dsf_telemetry::enabled() || dsf_flight::enabled()).then(std::time::Instant::now);
        let res = self.file.sync_data().map_err(DurableError::Io);
        if let Some(t0) = start {
            let micros = u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX);
            if dsf_telemetry::enabled() {
                let t = crate::tel::tel();
                t.fsyncs.inc();
                t.fsync_micros.record(micros);
            }
            // Charged to the command whose append forced the sync (the seq
            // is still parked on this thread after `end_command`).
            dsf_flight::record_fsync(micros);
        }
        res
    }
}

/// A crash-safe dense sequential file: checkpoint + write-ahead log.
///
/// Dereferences to [`DenseFile`] for all read operations (`get`, `range`,
/// `rank`, statistics, invariant checking); structural commands go through
/// [`DurableFile::insert`] / [`DurableFile::remove`] so they hit the log.
///
/// Every filesystem effect goes through a [`Vfs`] (third type parameter,
/// defaulting to the real filesystem, [`StdFs`]); the crash-consistency
/// harness substitutes [`crate::FaultFs`] to inject torn writes, transient
/// `EIO` and crash points deterministically.
///
/// ```
/// use dsf_core::DenseFileConfig;
/// use dsf_durable::{DurableFile, SyncPolicy};
///
/// let dir = std::env::temp_dir().join(format!("dsf-doc-{}", std::process::id()));
/// # std::fs::remove_dir_all(&dir).ok();
/// let cfg = DenseFileConfig::control2(32, 4, 24);
/// let mut f: DurableFile<u64, u64> =
///     DurableFile::create(&dir, cfg, SyncPolicy::Manual).unwrap();
/// f.insert(1, 100).unwrap();
/// f.insert(2, 200).unwrap();
/// drop(f); // crash-equivalent: nothing was synced, but the bytes were written
///
/// let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
/// assert_eq!(g.get(&1), Some(&100));
/// assert_eq!(g.len(), 2);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableFile<K, V, F: Vfs = StdFs> {
    fs: F,
    file: DenseFile<K, V>,
    /// `None` after a failed checkpoint left the on-disk epoch ambiguous
    /// (see [`DurableError::LogPoisoned`]).
    log: Option<WalWriter<F::File>>,
    dir: PathBuf,
    policy: SyncPolicy,
    commands_since_checkpoint: u64,
    epoch: u64,
    /// Frames buffered in the currently open commit window (0 = closed).
    window_frames: u64,
    /// When the open window's first frame was buffered (drives the
    /// `max_micros` trigger; `None` while closed).
    window_opened: Option<std::time::Instant>,
    /// How to rewind each windowed command in memory if the window's
    /// commit fails — commands acknowledged `Relaxed` were never durably
    /// acknowledged, so a failed fsync takes them all back.
    window_undo: Vec<UndoRec<K, V>>,
    /// LSN of the last structural command accepted into the log (the
    /// in-memory state is always at this LSN). Session-local: resets at
    /// open.
    appended_lsn: u64,
    /// LSN through which commands are on stable storage; always
    /// `<= appended_lsn`, equal except under an open commit window or
    /// unsynced `Manual` appends.
    durable_lsn: u64,
}

/// How to undo one windowed command in memory if its window commit fails.
enum UndoRec<K, V> {
    /// A fresh insert: undo by removing the key.
    Insert(K),
    /// A replacement: undo by restoring the old value.
    Replace(K, V),
    /// A removal: undo by re-inserting the old value.
    Remove(K, V),
}

impl<K, V, F: Vfs> Deref for DurableFile<K, V, F> {
    type Target = DenseFile<K, V>;

    fn deref(&self) -> &Self::Target {
        &self.file
    }
}

impl<K: Key + Codec, V: Codec + Clone> DurableFile<K, V> {
    /// Initializes `dir` (created if missing) with an empty file and an
    /// empty log. Fails if a checkpoint already exists.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        config: DenseFileConfig,
        policy: SyncPolicy,
    ) -> Result<Self, DurableError> {
        Self::create_with(StdFs, dir, config, policy)
    }

    /// Opens an existing directory: loads the checkpoint, replays the log's
    /// valid prefix, and truncates any torn tail.
    pub fn open<P: AsRef<Path>>(dir: P, policy: SyncPolicy) -> Result<Self, DurableError> {
        Self::open_with(StdFs, dir, policy)
    }
}

impl<K: Key + Codec, V: Codec + Clone, F: Vfs> DurableFile<K, V, F> {
    /// [`DurableFile::create`] against an explicit [`Vfs`].
    pub fn create_with<P: AsRef<Path>>(
        fs: F,
        dir: P,
        config: DenseFileConfig,
        policy: SyncPolicy,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        fs.create_dir_all(&dir)?;
        if fs.exists(&dir.join(CHECKPOINT)) {
            return Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "directory already contains a checkpoint",
            )));
        }
        let file: DenseFile<K, V> = DenseFile::new(config)?;
        write_checkpoint(&fs, &dir, &file, 0).map_err(CkptFail::into_error)?;
        let log = fresh_log(&fs, &dir, 0)?;
        Ok(DurableFile {
            fs,
            file,
            log: Some(log),
            dir,
            policy,
            commands_since_checkpoint: 0,
            epoch: 0,
            window_frames: 0,
            window_opened: None,
            window_undo: Vec::new(),
            appended_lsn: 0,
            durable_lsn: 0,
        })
    }

    /// [`DurableFile::open`] against an explicit [`Vfs`].
    pub fn open_with<P: AsRef<Path>>(
        fs: F,
        dir: P,
        policy: SyncPolicy,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let ckpt_path = dir.join(CHECKPOINT);
        if !fs.exists(&ckpt_path) {
            return Err(DurableError::NotInitialized);
        }
        let ckpt = fs.read(&ckpt_path)?;
        if ckpt.len() < 8 {
            return Err(DurableError::Snapshot(SnapshotError::Corrupt(
                "checkpoint shorter than its epoch header",
            )));
        }
        let epoch = u64::from_le_bytes(ckpt[..8].try_into().expect("eight bytes"));
        let mut input: &[u8] = &ckpt[8..];
        let mut file: DenseFile<K, V> = DenseFile::read_snapshot(&mut input)?;

        // Replay the log's valid prefix — but only if its epoch matches the
        // checkpoint's; a stale-epoch log (crash between checkpoint rename
        // and log reset) predates this checkpoint and must be discarded.
        let wal_path = dir.join(WAL);
        let bytes = if fs.exists(&wal_path) {
            fs.read(&wal_path)?
        } else {
            Vec::new()
        };
        let epoch_matches = bytes.len() >= WAL_HEADER
            && &bytes[..8] == WAL_MAGIC
            && bytes[8..16] == epoch.to_le_bytes();
        let (replayed, valid_len) = if epoch_matches {
            let (n, len) = replay(&mut file, &bytes[WAL_HEADER..], epoch);
            (n, WAL_HEADER + len)
        } else {
            (0, 0)
        };
        crate::tel::tel().frames_replayed.add(replayed);
        if valid_len < bytes.len() {
            // A torn tail (or an entire torn/stale log) is being discarded.
            crate::tel::tel().recovery_scrubs.inc();
        }
        let log = if valid_len == 0 {
            // Missing, torn-header, or stale-epoch log: start it fresh.
            fresh_log(&fs, &dir, epoch)?
        } else {
            // Truncate a torn tail so future appends continue the prefix,
            // and make the truncation durable *before* accepting appends:
            // otherwise a later crash could resurrect torn bytes behind
            // frames acknowledged after this open.
            let mut f = fs.open_rw(&wal_path)?;
            f.set_len(valid_len as u64)?;
            f.sync_data()?;
            f.seek_end()?;
            WalWriter::new(f, valid_len as u64)
        };
        Ok(DurableFile {
            fs,
            file,
            log: Some(log),
            dir,
            policy,
            commands_since_checkpoint: replayed,
            epoch,
            window_frames: 0,
            window_opened: None,
            window_undo: Vec::new(),
            appended_lsn: 0,
            durable_lsn: 0,
        })
    }

    /// Inserts a record durably (logged — and, except under an open commit
    /// window, fsynced per the policy — before the call returns). Returns
    /// the previous value on replacement. Equivalent to
    /// [`insert_with`](Self::insert_with) at [`Durability::Strict`].
    pub fn insert(&mut self, key: K, value: V) -> Result<Option<V>, DurableError> {
        self.insert_with(key, value, Durability::Strict)
    }

    /// [`insert`](Self::insert) with an explicit [`Durability`]. Under
    /// [`SyncPolicy::CommitWindow`], `Relaxed` returns once the frame is
    /// buffered in the open window (durable at the window's fsync; watch
    /// [`durable_lsn`](Self::durable_lsn)); `Strict` closes the window
    /// before returning. Other policies ignore the durability.
    pub fn insert_with(
        &mut self,
        key: K,
        value: V,
        durability: Durability,
    ) -> Result<Option<V>, DurableError> {
        if self.log_poisoned() {
            return Err(DurableError::LogPoisoned);
        }
        // Apply in memory first: only effective commands reach the log, and
        // a capacity rejection leaves both state and log untouched.
        let span_tok = dsf_telemetry::spans().push_token();
        let old = self.file.insert(key, value.clone())?;
        let mut body = vec![OP_INSERT];
        key.encode(&mut body);
        value.encode(&mut body);
        if self.windowed() {
            let undo = match &old {
                Some(v) => UndoRec::Replace(key, v.clone()),
                None => UndoRec::Insert(key),
            };
            self.window_append(&body, undo);
            // Spans are sampled 1-in-N inside `DenseFile`; stamp the WAL
            // frame only onto a span this very command pushed.
            dsf_telemetry::spans().amend_pushed_since(span_tok, |s| s.wal_frames += 1);
            // A failed window close has already undone this command (with
            // the rest of the window): the error is the acknowledgement.
            self.maybe_close_window(durability)?;
            return Ok(old);
        }
        if let Err(e) = self.append(&body) {
            // Keep memory and log in lock-step: undo the in-memory command
            // so the failed append does not leave memory ahead of the log.
            match old {
                Some(v) => {
                    let _ = self.file.insert(key, v);
                }
                None => {
                    self.file.remove(&key);
                }
            }
            return Err(e);
        }
        // See above: only a span this very command pushed is stamped.
        dsf_telemetry::spans().amend_pushed_since(span_tok, |s| s.wal_frames += 1);
        Ok(old)
    }

    /// Deletes a key durably. A miss changes nothing and logs nothing.
    /// Equivalent to [`remove_with`](Self::remove_with) at
    /// [`Durability::Strict`].
    pub fn remove(&mut self, key: &K) -> Result<Option<V>, DurableError> {
        self.remove_with(key, Durability::Strict)
    }

    /// [`remove`](Self::remove) with an explicit [`Durability`] — see
    /// [`insert_with`](Self::insert_with).
    pub fn remove_with(
        &mut self,
        key: &K,
        durability: Durability,
    ) -> Result<Option<V>, DurableError> {
        if self.log_poisoned() {
            return Err(DurableError::LogPoisoned);
        }
        let span_tok = dsf_telemetry::spans().push_token();
        let old = self.file.remove(key);
        if let Some(v) = old {
            let mut body = vec![OP_REMOVE];
            key.encode(&mut body);
            if self.windowed() {
                self.window_append(&body, UndoRec::Remove(*key, v.clone()));
                dsf_telemetry::spans().amend_pushed_since(span_tok, |s| s.wal_frames += 1);
                self.maybe_close_window(durability)?;
                return Ok(Some(v));
            }
            if let Err(e) = self.append(&body) {
                let _ = self.file.insert(*key, v);
                return Err(e);
            }
            // See `insert_with`: only a span pushed by this command is
            // stamped.
            dsf_telemetry::spans().amend_pushed_since(span_tok, |s| s.wal_frames += 1);
            return Ok(Some(v));
        }
        Ok(None)
    }

    /// Applies a batch of commands with **group commit**: the batch
    /// executes in memory through [`DenseFile::apply_batch`] while every
    /// effective command's frame is buffered, then the whole run of frames
    /// reaches the OS with a single `write` and — under
    /// [`SyncPolicy::EveryCommand`] — a single `fsync`, instead of one of
    /// each per command. Durability is all-or-nothing at the batch
    /// boundary: on any flush or sync failure the log is scrubbed back to
    /// the pre-batch watermark *and* every effective command is undone in
    /// memory (reverse order), so memory and log stay in lock-step exactly
    /// as in the single-command path.
    ///
    /// A crash mid-commit may leave any *prefix* of the batch's frames on
    /// disk; recovery replays that prefix — never a torn or reordered
    /// subset — which is the same contract an unacknowledged single
    /// command already has (the batch was never acknowledged).
    pub fn apply_batch(
        &mut self,
        cmds: &[Command<K, V>],
    ) -> Result<Vec<CommandOutcome<V>>, DurableError> {
        self.apply_batch_durable(cmds, Durability::Strict)
    }

    /// [`apply_batch`](Self::apply_batch) with an explicit [`Durability`].
    /// Under [`SyncPolicy::CommitWindow`], `Relaxed` buffers the batch's
    /// frames into the open window and returns before any syscall; the
    /// batch is durable when the window closes. `Strict` closes the window
    /// (batch frames and any relaxed commands waiting before them) before
    /// returning.
    pub fn apply_batch_durable(
        &mut self,
        cmds: &[Command<K, V>],
        durability: Durability,
    ) -> Result<Vec<CommandOutcome<V>>, DurableError> {
        self.apply_batch_durable_with(cmds, durability, |_, _, _| {})
    }

    /// [`apply_batch_durable`](Self::apply_batch_durable) with a
    /// per-command observer, called with `(index, outcome, flight_seq)`
    /// immediately after each command executes in memory — `flight_seq`
    /// is [`dsf_flight::current_seq`] at that instant (0 while the
    /// recorder is off), i.e. the sequence number the flight ring
    /// attributed the command's page and WAL-frame charges to. The network
    /// front-end uses this to stamp responses for end-to-end attribution.
    ///
    /// On `Err` the batch was rolled back *after* the observer already saw
    /// the in-memory outcomes; callers must treat observed outcomes as
    /// provisional until the call returns `Ok`.
    pub fn apply_batch_durable_with<O>(
        &mut self,
        cmds: &[Command<K, V>],
        durability: Durability,
        mut observe: O,
    ) -> Result<Vec<CommandOutcome<V>>, DurableError>
    where
        O: FnMut(usize, &CommandOutcome<V>, u64),
    {
        if self.log_poisoned() {
            return Err(DurableError::LogPoisoned);
        }
        if cmds.is_empty() {
            return Ok(Vec::new());
        }
        let epoch = self.epoch;
        let policy = self.policy;
        let log = self.log.as_mut().ok_or(DurableError::LogPoisoned)?;
        let base = log.written;
        let mut frames = 0u64;
        let spans = dsf_telemetry::spans();
        let mut span_tok = spans.push_token();
        // In-memory application and frame buffering interleave so the
        // flight recorder attributes each WAL frame to the command that
        // produced it; no syscall happens until the group flush below.
        let outcomes = self.file.apply_batch_with(cmds, |i, outcome| {
            observe(i, outcome, dsf_flight::current_seq());
            let body = match (&cmds[i], outcome) {
                (Command::Insert(k, v), CommandOutcome::Inserted | CommandOutcome::Replaced(_)) => {
                    let mut b = vec![OP_INSERT];
                    k.encode(&mut b);
                    v.encode(&mut b);
                    b
                }
                (Command::Remove(k), CommandOutcome::Removed(_)) => {
                    let mut b = vec![OP_REMOVE];
                    k.encode(&mut b);
                    b
                }
                // Misses and rejections log nothing (as in the
                // single-command path); re-arm the span token so a later
                // command cannot stamp this command's span.
                _ => {
                    span_tok = spans.push_token();
                    return;
                }
            };
            let mut frame = Vec::with_capacity(body.len() + 12);
            (body.len() as u32).encode(&mut frame);
            frame.extend_from_slice(&body);
            frame_checksum(epoch, &body).encode(&mut frame);
            log.append(&frame);
            frames += 1;
            dsf_flight::record_wal_frame(frame.len() as u64);
            // Stamp the span this very command pushed (if it was sampled),
            // then re-arm the token for the next command.
            spans.amend_pushed_since(span_tok, |s| s.wal_frames += 1);
            span_tok = spans.push_token();
        });
        if matches!(policy, SyncPolicy::CommitWindow { .. }) {
            // The frames are already buffered in the log's pending window
            // (the observer above appended them); arm the undo records and
            // let the window triggers decide when the syscalls happen. A
            // failed close undoes the whole window — this batch included —
            // via those records, so no rollback is needed here.
            for (cmd, outcome) in cmds.iter().zip(&outcomes) {
                let undo = match (cmd, outcome) {
                    (Command::Insert(k, _), CommandOutcome::Inserted) => UndoRec::Insert(*k),
                    (Command::Insert(k, _), CommandOutcome::Replaced(old)) => {
                        UndoRec::Replace(*k, old.clone())
                    }
                    (Command::Remove(k), CommandOutcome::Removed(old)) => {
                        UndoRec::Remove(*k, old.clone())
                    }
                    _ => continue,
                };
                self.window_undo.push(undo);
            }
            if frames > 0 && self.window_frames == 0 {
                self.window_opened = Some(std::time::Instant::now());
            }
            self.window_frames += frames;
            self.appended_lsn += frames;
            if dsf_telemetry::enabled() {
                crate::tel::tel().group_commit_frames.record(frames);
            }
            self.maybe_close_window(durability)?;
            return Ok(outcomes);
        }
        // Group commit: one write for every buffered frame, at most one
        // fsync for the whole batch.
        let mut commit_err = log.flush().err();
        if commit_err.is_none() && policy == SyncPolicy::EveryCommand && frames > 0 {
            if let Err(e) = log.sync_data() {
                log.rollback_to(base);
                commit_err = Some(e);
            }
        }
        if let Some(e) = commit_err {
            // Prefix-consistent batch rollback: the log was scrubbed back
            // to the pre-batch watermark, so undo every effective command
            // in memory. Reverse order makes duplicate keys unwind
            // correctly and keeps every intermediate step within the
            // capacities the forward pass already fit in.
            for (cmd, outcome) in cmds.iter().zip(&outcomes).rev() {
                match (cmd, outcome) {
                    (Command::Insert(k, _), CommandOutcome::Inserted) => {
                        self.file.remove(k);
                    }
                    (Command::Insert(k, _), CommandOutcome::Replaced(old)) => {
                        let _ = self.file.insert(*k, old.clone());
                    }
                    (Command::Remove(k), CommandOutcome::Removed(old)) => {
                        let _ = self.file.insert(*k, old.clone());
                    }
                    _ => {}
                }
            }
            return Err(e);
        }
        self.commands_since_checkpoint += frames;
        self.appended_lsn += frames;
        if policy == SyncPolicy::EveryCommand {
            self.durable_lsn = self.appended_lsn;
        }
        if dsf_telemetry::enabled() {
            crate::tel::tel().group_commit_frames.record(frames);
        }
        Ok(outcomes)
    }

    /// Whether the policy buffers commands into a commit window.
    fn windowed(&self) -> bool {
        matches!(self.policy, SyncPolicy::CommitWindow { .. })
    }

    /// Buffers one frame into the open commit window — no syscall — and
    /// arms the undo record replayed if the window's commit later fails.
    fn window_append(&mut self, body: &[u8], undo: UndoRec<K, V>) {
        let epoch = self.epoch;
        let log = self
            .log
            .as_mut()
            .expect("callers check log_poisoned() first");
        let mut frame = Vec::with_capacity(body.len() + 12);
        (body.len() as u32).encode(&mut frame);
        frame.extend_from_slice(body);
        frame_checksum(epoch, body).encode(&mut frame);
        log.append(&frame);
        dsf_flight::record_wal_frame(frame.len() as u64);
        if self.window_frames == 0 {
            self.window_opened = Some(std::time::Instant::now());
        }
        self.window_frames += 1;
        self.appended_lsn += 1;
        self.window_undo.push(undo);
    }

    /// Closes the window if the command's durability or the policy's size
    /// or age trigger demands it.
    fn maybe_close_window(&mut self, durability: Durability) -> Result<(), DurableError> {
        let SyncPolicy::CommitWindow {
            max_frames,
            max_micros,
        } = self.policy
        else {
            return Ok(());
        };
        let over_size = self.window_frames >= u64::from(max_frames);
        let over_age = self
            .window_opened
            .is_some_and(|t| t.elapsed().as_micros() >= u128::from(max_micros));
        if durability == Durability::Strict || over_size || over_age {
            self.close_window()?;
        }
        Ok(())
    }

    /// Commits the open window: every buffered frame reaches the OS with
    /// one `write` and stable storage with one `fsync`, after which every
    /// windowed command is durable ([`durable_lsn`](Self::durable_lsn)
    /// catches up to [`appended_lsn`](Self::appended_lsn)). A closed
    /// window is a no-op.
    ///
    /// On failure the log is scrubbed back to the durable watermark and
    /// **every command the window held is undone in memory** — relaxed
    /// commands were acknowledged but never durably so, and this rewinds
    /// the engine to exactly the state crash recovery would reconstruct.
    pub fn close_window(&mut self) -> Result<(), DurableError> {
        if self.window_frames == 0 {
            self.window_opened = None;
            return Ok(());
        }
        let frames = self.window_frames;
        let log = self.log.as_mut().ok_or(DurableError::LogPoisoned)?;
        let base = log.written;
        let mut commit_err = log.flush().err();
        if commit_err.is_none() {
            if let Err(e) = log.sync_data() {
                log.rollback_to(base);
                commit_err = Some(e);
            }
        }
        // The window is spent either way.
        self.window_frames = 0;
        self.window_opened = None;
        let undo = std::mem::take(&mut self.window_undo);
        match commit_err {
            None => {
                self.commands_since_checkpoint += frames;
                self.durable_lsn = self.appended_lsn;
                if dsf_telemetry::enabled() {
                    let t = crate::tel::tel();
                    t.commit_window_fsyncs.inc();
                    t.commit_window_frames.record(frames);
                }
                Ok(())
            }
            Some(e) => {
                // Reverse order unwinds duplicate keys correctly and keeps
                // every intermediate step within capacities the forward
                // pass already fit in.
                for rec in undo.into_iter().rev() {
                    match rec {
                        UndoRec::Insert(k) => {
                            self.file.remove(&k);
                        }
                        UndoRec::Replace(k, v) | UndoRec::Remove(k, v) => {
                            let _ = self.file.insert(k, v);
                        }
                    }
                }
                self.appended_lsn = self.durable_lsn;
                Err(e)
            }
        }
    }

    fn append(&mut self, body: &[u8]) -> Result<(), DurableError> {
        let epoch = self.epoch;
        let policy = self.policy;
        let log = self.log.as_mut().ok_or(DurableError::LogPoisoned)?;
        let mut frame = Vec::with_capacity(body.len() + 12);
        (body.len() as u32).encode(&mut frame);
        frame.extend_from_slice(body);
        frame_checksum(epoch, body).encode(&mut frame);
        let base = log.written;
        log.append(&frame);
        // Both policies move the bytes to the OS immediately, so a
        // *process* crash (as opposed to a power failure) loses nothing.
        log.flush()?;
        if policy == SyncPolicy::EveryCommand {
            if let Err(e) = log.sync_data() {
                // The frame is on disk but was never made durable and the
                // caller will be told the command failed (and memory
                // undone): scrub it so recovery cannot replay a command
                // the caller believes never happened.
                log.rollback_to(base);
                return Err(e);
            }
        }
        self.commands_since_checkpoint += 1;
        self.appended_lsn += 1;
        if policy == SyncPolicy::EveryCommand {
            self.durable_lsn = self.appended_lsn;
        }
        // The flight frame lands on the just-ended command's seq (flight
        // records every command, unsampled). Span stamping is the caller's
        // job: only it knows whether this command pushed a span.
        dsf_flight::record_wal_frame(frame.len() as u64);
        Ok(())
    }

    /// Forces the log to stable storage (closing the commit window first
    /// if one is open, with its usual failure semantics).
    pub fn sync(&mut self) -> Result<(), DurableError> {
        if self.window_frames > 0 {
            return self.close_window();
        }
        let log = self.log.as_mut().ok_or(DurableError::LogPoisoned)?;
        log.flush()?;
        log.sync_data()?;
        self.durable_lsn = self.appended_lsn;
        Ok(())
    }

    /// Writes a fresh checkpoint atomically and starts a new log epoch.
    ///
    /// Crash-safety: the new checkpoint (with epoch `e+1`) is renamed and
    /// the directory fsynced *before* the log is reset; a crash in between
    /// leaves an epoch-`e` log next to an epoch-`e+1` checkpoint, which
    /// recovery discards instead of replaying stale commands.
    ///
    /// Failure-safety: a failure before the rename leaves the old
    /// checkpoint + log fully intact and the file usable. A failure at or
    /// after the point where the new checkpoint may be durable **poisons
    /// the log** ([`DurableError::LogPoisoned`]): structural commands are
    /// refused (they could be appended to a log that recovery would
    /// discard) until a `checkpoint` retry succeeds. This call is the
    /// retry: it is safe and meaningful to call again after any failure.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        // The checkpoint snapshots the in-memory state, which includes any
        // windowed (not yet durable) commands — commit them first so the
        // snapshot never outruns the log it supersedes. On failure the
        // window's undo has already rewound memory; nothing is poisoned
        // and the checkpoint simply did not happen.
        self.close_window()?;
        let new_epoch = self.epoch + 1;
        if let Err(fail) = write_checkpoint(&self.fs, &self.dir, &self.file, new_epoch) {
            return match fail {
                CkptFail::Before(e) => Err(e),
                CkptFail::After(e) => {
                    self.log = None;
                    Err(e)
                }
            };
        }
        match fresh_log(&self.fs, &self.dir, new_epoch) {
            Ok(log) => {
                self.log = Some(log);
                self.epoch = new_epoch;
                self.commands_since_checkpoint = 0;
                // Everything in memory is durable via the checkpoint, even
                // commands whose frames were never individually fsynced.
                self.durable_lsn = self.appended_lsn;
                crate::tel::tel().checkpoints.inc();
                Ok(())
            }
            Err(e) => {
                // The epoch-(e+1) checkpoint is durable but the log still
                // carries epoch e: one more append would be silently
                // discarded by recovery. Refuse commands until a retry.
                self.log = None;
                Err(e)
            }
        }
    }

    /// Whether the log is poisoned (structural commands are refused until
    /// a successful [`checkpoint`](Self::checkpoint) retry or a reopen).
    pub fn log_poisoned(&self) -> bool {
        self.log.as_ref().is_none_or(|l| l.poisoned)
    }

    /// The current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// LSN of the last structural command accepted into the log — the
    /// in-memory state is always at this LSN. Session-local (resets to 0
    /// at `create`/`open`); one effective command = one LSN.
    pub fn appended_lsn(&self) -> u64 {
        self.appended_lsn
    }

    /// LSN through which commands are durable on stable storage. A
    /// [`Durability::Relaxed`] command with LSN `n` must not be treated as
    /// durable until `durable_lsn() >= n` — its window's fsync is what
    /// moves this watermark.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// Frames buffered in the currently open commit window (0 = closed).
    pub fn window_frames(&self) -> u64 {
        self.window_frames
    }

    /// Structural commands logged since the last checkpoint (after `open`,
    /// the number of replayed commands).
    pub fn commands_since_checkpoint(&self) -> u64 {
        self.commands_since_checkpoint
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

/// How far a failed checkpoint got, which decides whether the old log is
/// still trustworthy.
enum CkptFail {
    /// Nothing of the new checkpoint can be visible: old state intact.
    Before(DurableError),
    /// The rename happened (or may be durable): the old-epoch log must not
    /// accept further appends.
    After(DurableError),
}

impl CkptFail {
    fn into_error(self) -> DurableError {
        match self {
            CkptFail::Before(e) | CkptFail::After(e) => e,
        }
    }
}

fn write_checkpoint<F: Vfs, K: Key + Codec, V: Codec>(
    fs: &F,
    dir: &Path,
    file: &DenseFile<K, V>,
    epoch: u64,
) -> Result<(), CkptFail> {
    let tmp = dir.join(CHECKPOINT_TMP);
    let write_tmp = || -> Result<(), DurableError> {
        let mut out = fs.create(&tmp)?;
        out.write_all(&epoch.to_le_bytes())?;
        file.write_snapshot(&mut out)?;
        out.sync_all()?;
        Ok(())
    };
    write_tmp().map_err(CkptFail::Before)?;
    // rename is atomic: an error means it did not happen.
    fs.rename(&tmp, &dir.join(CHECKPOINT))
        .map_err(|e| CkptFail::Before(DurableError::Io(e)))?;
    // Make the rename itself durable: fsync the parent directory so a power
    // failure cannot resurrect the old checkpoint after the caller was told
    // the new one is safe. From here on the new checkpoint may be durable.
    fs.sync_dir(dir)
        .map_err(|e| CkptFail::After(DurableError::Io(e)))?;
    Ok(())
}

/// Creates (or truncates) the WAL with a fresh epoch header, synced.
fn fresh_log<F: Vfs>(fs: &F, dir: &Path, epoch: u64) -> Result<WalWriter<F::File>, DurableError> {
    let mut f = fs.create(&dir.join(WAL))?;
    let mut header = Vec::with_capacity(WAL_HEADER);
    header.extend_from_slice(WAL_MAGIC);
    header.extend_from_slice(&epoch.to_le_bytes());
    f.write_all(&header)?;
    f.sync_data()?;
    Ok(WalWriter::new(f, WAL_HEADER as u64))
}

/// Applies every complete, checksum-valid record of `bytes` to `file`;
/// returns `(commands replayed, valid prefix length)`. Checksums are
/// validated under `epoch` (see [`frame_checksum`]).
fn replay<K: Key + Codec, V: Codec>(
    file: &mut DenseFile<K, V>,
    bytes: &[u8],
    epoch: u64,
) -> (u64, usize) {
    let mut pos = 0usize;
    let mut replayed = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("four bytes")) as usize;
        if rest.len() < 4 + len + 8 {
            break; // torn tail
        }
        let body = &rest[4..4 + len];
        let stored =
            u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().expect("eight bytes"));
        if frame_checksum(epoch, body) != stored {
            break; // corrupt (or stale-epoch) record: stop at the valid prefix
        }
        if !apply(file, body) {
            break; // malformed body — treat like corruption
        }
        pos += 4 + len + 8;
        replayed += 1;
    }
    (replayed, pos)
}

fn apply<K: Key + Codec, V: Codec>(file: &mut DenseFile<K, V>, body: &[u8]) -> bool {
    let mut input = body;
    let Ok(op) = u8::decode(&mut input) else {
        return false;
    };
    match op {
        OP_INSERT => {
            let (Ok(key), Ok(value)) = (K::decode(&mut input), V::decode(&mut input)) else {
                return false;
            };
            file.insert(key, value).is_ok()
        }
        OP_REMOVE => {
            let Ok(key) = K::decode(&mut input) else {
                return false;
            };
            file.remove(&key);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsf-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cfg() -> DenseFileConfig {
        DenseFileConfig::control2(32, 8, 40)
    }

    #[test]
    fn create_write_reopen() {
        let dir = tempdir("basic");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::EveryCommand).unwrap();
        for k in 0..100u64 {
            f.insert(k * 3, k).unwrap();
        }
        f.remove(&30).unwrap();
        assert_eq!(f.commands_since_checkpoint(), 101);
        drop(f);

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 99);
        assert_eq!(g.get(&3), Some(&1));
        assert_eq!(g.get(&30), None);
        assert_eq!(g.commands_since_checkpoint(), 101);
        g.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let dir = tempdir("ckpt");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..50u64 {
            f.insert(k, k).unwrap();
        }
        f.checkpoint().unwrap();
        assert_eq!(f.commands_since_checkpoint(), 0);
        assert_eq!(f.epoch(), 1);
        // Only the epoch header remains.
        assert_eq!(
            std::fs::metadata(dir.join(WAL)).unwrap().len(),
            WAL_HEADER as u64
        );
        f.insert(999, 999).unwrap();
        drop(f);

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 51);
        assert_eq!(g.commands_since_checkpoint(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_double_create_and_uninitialized_open() {
        let dir = tempdir("guards");
        let _f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        assert!(matches!(
            DurableFile::<u64, u64>::create(&dir, cfg(), SyncPolicy::Manual),
            Err(DurableError::Io(_))
        ));
        let empty = tempdir("guards-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            DurableFile::<u64, u64>::open(&empty, SyncPolicy::Manual),
            Err(DurableError::NotInitialized)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn capacity_rejection_leaves_log_clean() {
        let dir = tempdir("cap");
        let tiny = DenseFileConfig::control2(2, 1, 8);
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, tiny, SyncPolicy::EveryCommand).unwrap();
        f.insert(1, 1).unwrap();
        f.insert(2, 2).unwrap();
        assert!(f.insert(3, 3).is_err());
        assert_eq!(f.commands_since_checkpoint(), 2);
        drop(f);
        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The crash-injection test: truncate the log at *every byte length*
    /// and confirm recovery always yields a consistent prefix of the
    /// command history with all invariants intact.
    #[test]
    fn recovery_from_every_possible_torn_tail() {
        let dir = tempdir("torn");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        // A history with inserts, replacements and deletes.
        let mut history: Vec<(u8, u64, u64)> = Vec::new();
        for i in 0..40u64 {
            let k = (i * 37) % 64;
            if i % 5 == 4 {
                if f.remove(&k).unwrap().is_some() {
                    history.push((OP_REMOVE, k, 0));
                }
            } else {
                f.insert(k, i).unwrap();
                history.push((OP_INSERT, k, i));
            }
        }
        f.sync().unwrap();
        drop(f);
        let full_log = std::fs::read(dir.join(WAL)).unwrap();

        for cut in 0..=full_log.len() {
            std::fs::write(dir.join(WAL), &full_log[..cut]).unwrap();
            let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
            let m = g.commands_since_checkpoint() as usize;
            assert!(m <= history.len(), "cut {cut}: replayed too much");
            // Expected state: replay the first m history entries on a model.
            let mut model = std::collections::BTreeMap::new();
            for &(op, k, v) in &history[..m] {
                if op == OP_INSERT {
                    model.insert(k, v);
                } else {
                    model.remove(&k);
                }
            }
            let got: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u64, u64)> = model.into_iter().collect();
            assert_eq!(got, want, "cut {cut}: state is not the {m}-command prefix");
            g.check_invariants()
                .unwrap_or_else(|e| panic!("cut {cut}: {e:?}"));
            // Recovery truncated the tail (or rewrote a fresh header when
            // the cut destroyed it): the log now parses cleanly.
            let len_after = std::fs::metadata(dir.join(WAL)).unwrap().len() as usize;
            assert!(len_after <= cut.max(WAL_HEADER));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The exact crash window the epoch header exists for: new checkpoint
    /// renamed, old (stale) log still on disk. Recovery must discard the
    /// stale log rather than replay it.
    #[test]
    fn stale_log_after_checkpoint_crash_is_discarded() {
        let dir = tempdir("epoch");
        let tiny = DenseFileConfig::control2(2, 1, 8); // capacity 2
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, tiny, SyncPolicy::Manual).unwrap();
        // History: ins(1,1), ins(5,5), rm(5), ins-replace(1,2), ins(9,9).
        f.insert(1, 1).unwrap();
        f.insert(5, 5).unwrap();
        f.remove(&5).unwrap();
        f.insert(1, 2).unwrap();
        f.insert(9, 9).unwrap();
        f.sync().unwrap();
        let stale_log = std::fs::read(dir.join(WAL)).unwrap();
        // Checkpoint, then simulate the crash by restoring the stale log
        // (as if set_len/rewrite never hit the disk).
        f.checkpoint().unwrap();
        drop(f);
        std::fs::write(dir.join(WAL), &stale_log).unwrap();

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(
            g.commands_since_checkpoint(),
            0,
            "stale-epoch log must be ignored"
        );
        let got: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(
            got,
            vec![(1, 2), (9, 9)],
            "state is the checkpoint, not a stale replay"
        );
        g.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The harder variant of the stale-log window: the log reset tore
    /// *mid-header*, leaving the **new** epoch bytes stitched onto **old**
    /// frame bytes. The epoch check alone passes; only the epoch-salted
    /// frame checksums stop the stale frames from replaying.
    #[test]
    fn stale_frames_under_a_new_epoch_header_are_rejected() {
        let dir = tempdir("epoch-salt");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..10u64 {
            f.insert(k, k).unwrap();
        }
        f.sync().unwrap();
        let stale_log = std::fs::read(dir.join(WAL)).unwrap();
        f.checkpoint().unwrap(); // epoch 1, log reset
        drop(f);
        // Simulated torn reset: header bytes (with the new epoch) persisted,
        // but the truncation of the old frames did not.
        let mut mixed = std::fs::read(dir.join(WAL)).unwrap(); // fresh header, epoch 1
        mixed.extend_from_slice(&stale_log[WAL_HEADER..]); // old epoch-0 frames
        std::fs::write(dir.join(WAL), &mixed).unwrap();

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(
            g.commands_since_checkpoint(),
            0,
            "epoch-salted checksums must reject stale frames under a current header"
        );
        assert_eq!(g.len(), 10, "state is exactly the checkpoint");
        g.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_mid_log_stops_replay_at_prefix() {
        let dir = tempdir("corrupt");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..20u64 {
            f.insert(k, k).unwrap();
        }
        f.sync().unwrap();
        drop(f);
        let mut log = std::fs::read(dir.join(WAL)).unwrap();
        let mid = log.len() / 2;
        log[mid] ^= 0xff;
        std::fs::write(dir.join(WAL), &log).unwrap();

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert!(g.len() < 20, "corruption must cut the replay short");
        g.check_invariants().unwrap();
        // The valid keys are exactly 0..len (inserted in order).
        let got: Vec<u64> = g.iter().map(|(k, _)| *k).collect();
        let want: Vec<u64> = (0..g.len()).collect();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_continue_after_torn_tail_recovery() {
        let dir = tempdir("continue");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..10u64 {
            f.insert(k, k).unwrap();
        }
        f.sync().unwrap();
        drop(f);
        // Tear the last few bytes.
        let log = std::fs::read(dir.join(WAL)).unwrap();
        std::fs::write(dir.join(WAL), &log[..log.len() - 3]).unwrap();

        let mut g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        let recovered = g.len();
        assert_eq!(recovered, 9);
        for k in 100..120u64 {
            g.insert(k, k).unwrap();
        }
        g.sync().unwrap();
        drop(g);
        let h: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(h.len(), recovered + 20);
        h.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_render_messages() {
        let e = DurableError::NotInitialized;
        assert!(e.to_string().contains("no checkpoint"));
        let e: DurableError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: DurableError = DsfError::CapacityExceeded { capacity: 9 }.into();
        assert!(e.to_string().contains("9"));
        let e = DurableError::LogPoisoned;
        assert!(e.to_string().contains("poisoned"));
    }

    #[test]
    fn string_values_round_trip_through_the_log() {
        let dir = tempdir("strings");
        let mut f: DurableFile<u64, String> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        f.insert(1, "första".into()).unwrap();
        f.insert(2, "andra".into()).unwrap();
        f.insert(1, "ersatt".into()).unwrap();
        drop(f);
        let g: DurableFile<u64, String> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.get(&1), Some(&"ersatt".to_string()));
        assert_eq!(g.get(&2), Some(&"andra".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
