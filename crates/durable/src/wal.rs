//! The write-ahead log and recovery machinery.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::ops::Deref;
use std::path::{Path, PathBuf};

use dsf_core::snapshot::{fnv1a64, Codec, SnapshotError};
use dsf_core::{DenseFile, DenseFileConfig, DsfError};
use dsf_pagestore::Key;

const CHECKPOINT: &str = "checkpoint.dsf";
const CHECKPOINT_TMP: &str = "checkpoint.dsf.tmp";
const WAL: &str = "wal.log";

const OP_INSERT: u8 = 1;
const OP_REMOVE: u8 = 2;

/// Magic + epoch at the head of the WAL; a log is only replayed when its
/// epoch matches the checkpoint's, so a crash between "new checkpoint
/// renamed" and "log truncated" can never replay a stale log onto the new
/// state.
const WAL_MAGIC: &[u8; 8] = b"DSFWAL01";
const WAL_HEADER: usize = 16;

/// When the log is flushed to stable storage.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `fsync` after every structural command (safest, slowest).
    EveryCommand,
    /// Only on explicit [`DurableFile::sync`] / [`DurableFile::checkpoint`]
    /// calls; a crash may lose the unsynced suffix of commands (never
    /// consistency).
    Manual,
}

/// Errors from the durability layer.
#[derive(Debug)]
pub enum DurableError {
    /// Filesystem failure.
    Io(std::io::Error),
    /// The checkpoint could not be parsed.
    Snapshot(SnapshotError),
    /// The underlying dense file rejected a command or configuration.
    File(DsfError),
    /// `open` was called on a directory without a checkpoint.
    NotInitialized,
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Io(e) => write!(f, "durability I/O error: {e}"),
            DurableError::Snapshot(e) => write!(f, "bad checkpoint: {e}"),
            DurableError::File(e) => write!(f, "dense file error: {e}"),
            DurableError::NotInitialized => {
                write!(f, "directory has no checkpoint; use create() first")
            }
        }
    }
}

impl std::error::Error for DurableError {}

impl From<std::io::Error> for DurableError {
    fn from(e: std::io::Error) -> Self {
        DurableError::Io(e)
    }
}

impl From<SnapshotError> for DurableError {
    fn from(e: SnapshotError) -> Self {
        DurableError::Snapshot(e)
    }
}

impl From<DsfError> for DurableError {
    fn from(e: DsfError) -> Self {
        DurableError::File(e)
    }
}

/// A crash-safe dense sequential file: checkpoint + write-ahead log.
///
/// Dereferences to [`DenseFile`] for all read operations (`get`, `range`,
/// `rank`, statistics, invariant checking); structural commands go through
/// [`DurableFile::insert`] / [`DurableFile::remove`] so they hit the log.
///
/// ```
/// use dsf_core::DenseFileConfig;
/// use dsf_durable::{DurableFile, SyncPolicy};
///
/// let dir = std::env::temp_dir().join(format!("dsf-doc-{}", std::process::id()));
/// let cfg = DenseFileConfig::control2(32, 4, 24);
/// let mut f: DurableFile<u64, u64> =
///     DurableFile::create(&dir, cfg, SyncPolicy::Manual).unwrap();
/// f.insert(1, 100).unwrap();
/// f.insert(2, 200).unwrap();
/// drop(f); // crash-equivalent: nothing was synced, but the bytes were written
///
/// let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
/// assert_eq!(g.get(&1), Some(&100));
/// assert_eq!(g.len(), 2);
/// # std::fs::remove_dir_all(&dir).ok();
/// ```
pub struct DurableFile<K, V> {
    file: DenseFile<K, V>,
    log: BufWriter<File>,
    dir: PathBuf,
    policy: SyncPolicy,
    commands_since_checkpoint: u64,
    epoch: u64,
}

impl<K, V> Deref for DurableFile<K, V> {
    type Target = DenseFile<K, V>;

    fn deref(&self) -> &Self::Target {
        &self.file
    }
}

impl<K: Key + Codec, V: Codec + Clone> DurableFile<K, V> {
    /// Initializes `dir` (created if missing) with an empty file and an
    /// empty log. Fails if a checkpoint already exists.
    pub fn create<P: AsRef<Path>>(
        dir: P,
        config: DenseFileConfig,
        policy: SyncPolicy,
    ) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        std::fs::create_dir_all(&dir)?;
        if dir.join(CHECKPOINT).exists() {
            return Err(DurableError::Io(std::io::Error::new(
                std::io::ErrorKind::AlreadyExists,
                "directory already contains a checkpoint",
            )));
        }
        let file: DenseFile<K, V> = DenseFile::new(config)?;
        write_checkpoint(&dir, &file, 0)?;
        let log = fresh_log(&dir, 0)?;
        Ok(DurableFile {
            file,
            log: BufWriter::new(log),
            dir,
            policy,
            commands_since_checkpoint: 0,
            epoch: 0,
        })
    }

    /// Opens an existing directory: loads the checkpoint, replays the log's
    /// valid prefix, and truncates any torn tail.
    pub fn open<P: AsRef<Path>>(dir: P, policy: SyncPolicy) -> Result<Self, DurableError> {
        let dir = dir.as_ref().to_path_buf();
        let ckpt_path = dir.join(CHECKPOINT);
        if !ckpt_path.exists() {
            return Err(DurableError::NotInitialized);
        }
        let mut ckpt = File::open(&ckpt_path)?;
        let mut epoch_bytes = [0u8; 8];
        ckpt.read_exact(&mut epoch_bytes)?;
        let epoch = u64::from_le_bytes(epoch_bytes);
        let mut file: DenseFile<K, V> = DenseFile::read_snapshot(&mut ckpt)?;

        // Replay the log's valid prefix — but only if its epoch matches the
        // checkpoint's; a stale-epoch log (crash between checkpoint rename
        // and log reset) predates this checkpoint and must be discarded.
        let wal_path = dir.join(WAL);
        let mut bytes = Vec::new();
        if wal_path.exists() {
            File::open(&wal_path)?.read_to_end(&mut bytes)?;
        }
        let epoch_matches = bytes.len() >= WAL_HEADER
            && &bytes[..8] == WAL_MAGIC
            && bytes[8..16] == epoch.to_le_bytes();
        let (replayed, valid_len) = if epoch_matches {
            let (n, len) = replay(&mut file, &bytes[WAL_HEADER..]);
            (n, WAL_HEADER + len)
        } else {
            (0, 0)
        };
        let mut log_file = if valid_len == 0 {
            // Missing, torn-header, or stale-epoch log: start it fresh.
            fresh_log(&dir, epoch)?
        } else {
            // Truncate a torn tail so future appends continue the prefix.
            let f = OpenOptions::new()
                .create(true)
                .truncate(false)
                .write(true)
                .open(&wal_path)?;
            f.set_len(valid_len as u64)?;
            f
        };
        log_file.seek(SeekFrom::End(0))?;
        Ok(DurableFile {
            file,
            log: BufWriter::new(log_file),
            dir,
            policy,
            commands_since_checkpoint: replayed,
            epoch,
        })
    }

    /// Inserts a record durably (logged before the call returns). Returns
    /// the previous value on replacement.
    pub fn insert(&mut self, key: K, value: V) -> Result<Option<V>, DurableError> {
        // Apply in memory first: only effective commands reach the log, and
        // a capacity rejection leaves both state and log untouched.
        let old = self.file.insert(key, value.clone())?;
        let mut body = vec![OP_INSERT];
        key.encode(&mut body);
        value.encode(&mut body);
        if let Err(e) = self.append(&body) {
            // Keep memory and log in lock-step: undo the in-memory command
            // so the failed append does not leave memory ahead of the log.
            match old {
                Some(v) => {
                    let _ = self.file.insert(key, v);
                }
                None => {
                    self.file.remove(&key);
                }
            }
            return Err(e);
        }
        Ok(old)
    }

    /// Deletes a key durably. A miss changes nothing and logs nothing.
    pub fn remove(&mut self, key: &K) -> Result<Option<V>, DurableError> {
        let old = self.file.remove(key);
        if let Some(v) = old {
            let mut body = vec![OP_REMOVE];
            key.encode(&mut body);
            if let Err(e) = self.append(&body) {
                let _ = self.file.insert(*key, v);
                return Err(e);
            }
            return Ok(Some(v));
        }
        Ok(None)
    }

    fn append(&mut self, body: &[u8]) -> Result<(), DurableError> {
        let mut frame = Vec::with_capacity(body.len() + 12);
        (body.len() as u32).encode(&mut frame);
        frame.extend_from_slice(body);
        fnv1a64(body).encode(&mut frame);
        self.log.write_all(&frame)?;
        self.commands_since_checkpoint += 1;
        match self.policy {
            SyncPolicy::EveryCommand => {
                self.log.flush()?;
                self.log.get_ref().sync_data()?;
            }
            SyncPolicy::Manual => {
                // Keep bytes moving towards the OS so a *process* crash (as
                // opposed to a power failure) loses nothing.
                self.log.flush()?;
            }
        }
        Ok(())
    }

    /// Forces the log to stable storage.
    pub fn sync(&mut self) -> Result<(), DurableError> {
        self.log.flush()?;
        self.log.get_ref().sync_data()?;
        Ok(())
    }

    /// Writes a fresh checkpoint atomically and starts a new log epoch.
    ///
    /// Crash-safety: the new checkpoint (with epoch `e+1`) is renamed and
    /// the directory fsynced *before* the log is reset; a crash in between
    /// leaves an epoch-`e` log next to an epoch-`e+1` checkpoint, which
    /// recovery discards instead of replaying stale commands.
    pub fn checkpoint(&mut self) -> Result<(), DurableError> {
        let new_epoch = self.epoch + 1;
        write_checkpoint(&self.dir, &self.file, new_epoch)?;
        self.log.flush()?;
        let log = fresh_log(&self.dir, new_epoch)?;
        self.log = BufWriter::new(log);
        self.epoch = new_epoch;
        self.commands_since_checkpoint = 0;
        Ok(())
    }

    /// The current checkpoint epoch.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Structural commands logged since the last checkpoint (after `open`,
    /// the number of replayed commands).
    pub fn commands_since_checkpoint(&self) -> u64 {
        self.commands_since_checkpoint
    }

    /// The data directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}

fn write_checkpoint<K: Key + Codec, V: Codec>(
    dir: &Path,
    file: &DenseFile<K, V>,
    epoch: u64,
) -> Result<(), DurableError> {
    let tmp = dir.join(CHECKPOINT_TMP);
    {
        let mut out = File::create(&tmp)?;
        out.write_all(&epoch.to_le_bytes())?;
        file.write_snapshot(&mut out)?;
        out.sync_all()?;
    }
    std::fs::rename(&tmp, dir.join(CHECKPOINT))?;
    // Make the rename itself durable: fsync the parent directory so a power
    // failure cannot resurrect the old checkpoint after the caller was told
    // the new one is safe.
    fsync_dir(dir)?;
    Ok(())
}

/// Creates (or truncates) the WAL with a fresh epoch header, synced.
fn fresh_log(dir: &Path, epoch: u64) -> Result<File, DurableError> {
    let mut f = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .open(dir.join(WAL))?;
    f.write_all(WAL_MAGIC)?;
    f.write_all(&epoch.to_le_bytes())?;
    f.sync_data()?;
    Ok(f)
}

/// Best-effort directory fsync (a no-op error on platforms that refuse to
/// open directories is swallowed — the rename is still ordered on those).
fn fsync_dir(dir: &Path) -> Result<(), DurableError> {
    if let Ok(d) = File::open(dir) {
        d.sync_all()?;
    }
    Ok(())
}

/// Applies every complete, checksum-valid record of `bytes` to `file`;
/// returns `(commands replayed, valid prefix length)`.
fn replay<K: Key + Codec, V: Codec>(file: &mut DenseFile<K, V>, bytes: &[u8]) -> (u64, usize) {
    let mut pos = 0usize;
    let mut replayed = 0u64;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 4 {
            break;
        }
        let len = u32::from_le_bytes(rest[..4].try_into().expect("four bytes")) as usize;
        if rest.len() < 4 + len + 8 {
            break; // torn tail
        }
        let body = &rest[4..4 + len];
        let stored =
            u64::from_le_bytes(rest[4 + len..4 + len + 8].try_into().expect("eight bytes"));
        if fnv1a64(body) != stored {
            break; // corrupt record: stop at the valid prefix
        }
        if !apply(file, body) {
            break; // malformed body — treat like corruption
        }
        pos += 4 + len + 8;
        replayed += 1;
    }
    (replayed, pos)
}

fn apply<K: Key + Codec, V: Codec>(file: &mut DenseFile<K, V>, body: &[u8]) -> bool {
    let mut input = body;
    let Ok(op) = u8::decode(&mut input) else {
        return false;
    };
    match op {
        OP_INSERT => {
            let (Ok(key), Ok(value)) = (K::decode(&mut input), V::decode(&mut input)) else {
                return false;
            };
            file.insert(key, value).is_ok()
        }
        OP_REMOVE => {
            let Ok(key) = K::decode(&mut input) else {
                return false;
            };
            file.remove(&key);
            true
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tempdir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "dsf-wal-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        dir
    }

    fn cfg() -> DenseFileConfig {
        DenseFileConfig::control2(32, 8, 40)
    }

    #[test]
    fn create_write_reopen() {
        let dir = tempdir("basic");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::EveryCommand).unwrap();
        for k in 0..100u64 {
            f.insert(k * 3, k).unwrap();
        }
        f.remove(&30).unwrap();
        assert_eq!(f.commands_since_checkpoint(), 101);
        drop(f);

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 99);
        assert_eq!(g.get(&3), Some(&1));
        assert_eq!(g.get(&30), None);
        assert_eq!(g.commands_since_checkpoint(), 101);
        g.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn checkpoint_truncates_the_log() {
        let dir = tempdir("ckpt");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..50u64 {
            f.insert(k, k).unwrap();
        }
        f.checkpoint().unwrap();
        assert_eq!(f.commands_since_checkpoint(), 0);
        assert_eq!(f.epoch(), 1);
        // Only the epoch header remains.
        assert_eq!(
            std::fs::metadata(dir.join(WAL)).unwrap().len(),
            WAL_HEADER as u64
        );
        f.insert(999, 999).unwrap();
        drop(f);

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 51);
        assert_eq!(g.commands_since_checkpoint(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_double_create_and_uninitialized_open() {
        let dir = tempdir("guards");
        let _f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        assert!(matches!(
            DurableFile::<u64, u64>::create(&dir, cfg(), SyncPolicy::Manual),
            Err(DurableError::Io(_))
        ));
        let empty = tempdir("guards-empty");
        std::fs::create_dir_all(&empty).unwrap();
        assert!(matches!(
            DurableFile::<u64, u64>::open(&empty, SyncPolicy::Manual),
            Err(DurableError::NotInitialized)
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::remove_dir_all(&empty).ok();
    }

    #[test]
    fn capacity_rejection_leaves_log_clean() {
        let dir = tempdir("cap");
        let tiny = DenseFileConfig::control2(2, 1, 8);
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, tiny, SyncPolicy::EveryCommand).unwrap();
        f.insert(1, 1).unwrap();
        f.insert(2, 2).unwrap();
        assert!(f.insert(3, 3).is_err());
        assert_eq!(f.commands_since_checkpoint(), 2);
        drop(f);
        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The crash-injection test: truncate the log at *every byte length*
    /// and confirm recovery always yields a consistent prefix of the
    /// command history with all invariants intact.
    #[test]
    fn recovery_from_every_possible_torn_tail() {
        let dir = tempdir("torn");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        // A history with inserts, replacements and deletes.
        let mut history: Vec<(u8, u64, u64)> = Vec::new();
        for i in 0..40u64 {
            let k = (i * 37) % 64;
            if i % 5 == 4 {
                if f.remove(&k).unwrap().is_some() {
                    history.push((OP_REMOVE, k, 0));
                }
            } else {
                f.insert(k, i).unwrap();
                history.push((OP_INSERT, k, i));
            }
        }
        f.sync().unwrap();
        drop(f);
        let full_log = std::fs::read(dir.join(WAL)).unwrap();

        for cut in 0..=full_log.len() {
            std::fs::write(dir.join(WAL), &full_log[..cut]).unwrap();
            let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
            let m = g.commands_since_checkpoint() as usize;
            assert!(m <= history.len(), "cut {cut}: replayed too much");
            // Expected state: replay the first m history entries on a model.
            let mut model = std::collections::BTreeMap::new();
            for &(op, k, v) in &history[..m] {
                if op == OP_INSERT {
                    model.insert(k, v);
                } else {
                    model.remove(&k);
                }
            }
            let got: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
            let want: Vec<(u64, u64)> = model.into_iter().collect();
            assert_eq!(got, want, "cut {cut}: state is not the {m}-command prefix");
            g.check_invariants()
                .unwrap_or_else(|e| panic!("cut {cut}: {e:?}"));
            // Recovery truncated the tail (or rewrote a fresh header when
            // the cut destroyed it): the log now parses cleanly.
            let len_after = std::fs::metadata(dir.join(WAL)).unwrap().len() as usize;
            assert!(len_after <= cut.max(WAL_HEADER));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The exact crash window the epoch header exists for: new checkpoint
    /// renamed, old (stale) log still on disk. Recovery must discard the
    /// stale log rather than replay it onto the new state.
    #[test]
    fn stale_log_after_checkpoint_crash_is_discarded() {
        let dir = tempdir("epoch");
        let tiny = DenseFileConfig::control2(2, 1, 8); // capacity 2
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, tiny, SyncPolicy::Manual).unwrap();
        // History: ins(1,1), ins(5,5), rm(5), ins-replace(1,2), ins(9,9).
        f.insert(1, 1).unwrap();
        f.insert(5, 5).unwrap();
        f.remove(&5).unwrap();
        f.insert(1, 2).unwrap();
        f.insert(9, 9).unwrap();
        f.sync().unwrap();
        let stale_log = std::fs::read(dir.join(WAL)).unwrap();
        // Checkpoint, then simulate the crash by restoring the stale log
        // (as if set_len/rewrite never hit the disk).
        f.checkpoint().unwrap();
        drop(f);
        std::fs::write(dir.join(WAL), &stale_log).unwrap();

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(
            g.commands_since_checkpoint(),
            0,
            "stale-epoch log must be ignored"
        );
        let got: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(
            got,
            vec![(1, 2), (9, 9)],
            "state is the checkpoint, not a stale replay"
        );
        g.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupted_record_mid_log_stops_replay_at_prefix() {
        let dir = tempdir("corrupt");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..20u64 {
            f.insert(k, k).unwrap();
        }
        f.sync().unwrap();
        drop(f);
        let mut log = std::fs::read(dir.join(WAL)).unwrap();
        let mid = log.len() / 2;
        log[mid] ^= 0xff;
        std::fs::write(dir.join(WAL), &log).unwrap();

        let g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert!(g.len() < 20, "corruption must cut the replay short");
        g.check_invariants().unwrap();
        // The valid keys are exactly 0..len (inserted in order).
        let got: Vec<u64> = g.iter().map(|(k, _)| *k).collect();
        let want: Vec<u64> = (0..g.len()).collect();
        assert_eq!(got, want);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn writes_continue_after_torn_tail_recovery() {
        let dir = tempdir("continue");
        let mut f: DurableFile<u64, u64> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        for k in 0..10u64 {
            f.insert(k, k).unwrap();
        }
        f.sync().unwrap();
        drop(f);
        // Tear the last few bytes.
        let log = std::fs::read(dir.join(WAL)).unwrap();
        std::fs::write(dir.join(WAL), &log[..log.len() - 3]).unwrap();

        let mut g: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        let recovered = g.len();
        assert_eq!(recovered, 9);
        for k in 100..120u64 {
            g.insert(k, k).unwrap();
        }
        g.sync().unwrap();
        drop(g);
        let h: DurableFile<u64, u64> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(h.len(), recovered + 20);
        h.check_invariants().unwrap();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn errors_render_messages() {
        let e = DurableError::NotInitialized;
        assert!(e.to_string().contains("no checkpoint"));
        let e: DurableError = std::io::Error::other("boom").into();
        assert!(e.to_string().contains("boom"));
        let e: DurableError = DsfError::CapacityExceeded { capacity: 9 }.into();
        assert!(e.to_string().contains("9"));
    }

    #[test]
    fn string_values_round_trip_through_the_log() {
        let dir = tempdir("strings");
        let mut f: DurableFile<u64, String> =
            DurableFile::create(&dir, cfg(), SyncPolicy::Manual).unwrap();
        f.insert(1, "första".into()).unwrap();
        f.insert(2, "andra".into()).unwrap();
        f.insert(1, "ersatt".into()).unwrap();
        drop(f);
        let g: DurableFile<u64, String> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        assert_eq!(g.get(&1), Some(&"ersatt".to_string()));
        assert_eq!(g.get(&2), Some(&"andra".to_string()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
