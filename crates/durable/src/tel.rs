//! This crate's handles into the global telemetry spine.
//!
//! The durability layer's health is about exactly three things: how fast
//! frames reach the log, how expensive `fsync` is (the dominant latency of
//! `SyncPolicy::EveryCommand`), and whether recovery ever has to scrub torn
//! or unacknowledged bytes. Each gets a first-class metric here; all are
//! single-branch no-ops while the global registry is disabled.

use std::sync::{Arc, OnceLock};

use dsf_telemetry::{Counter, Histogram};

pub(crate) struct DurableTel {
    /// `dsf_wal_frames_total` — frames acknowledged by the log.
    pub frames: Arc<Counter>,
    /// `dsf_wal_fsyncs_total` — `sync_data` calls issued.
    pub fsyncs: Arc<Counter>,
    /// `dsf_wal_fsync_micros` — wall-clock latency of each `sync_data`.
    pub fsync_micros: Arc<Histogram>,
    /// `dsf_wal_recovery_scrubs_total` — times a torn/unacknowledged tail
    /// was truncated away (append rollback or open-time recovery).
    pub recovery_scrubs: Arc<Counter>,
    /// `dsf_wal_frames_replayed_total` — frames replayed at open.
    pub frames_replayed: Arc<Counter>,
    /// `dsf_checkpoints_total` — successful checkpoints.
    pub checkpoints: Arc<Counter>,
    /// `dsf_wal_group_commit_frames` — frames per
    /// [`DurableFile::apply_batch`](crate::DurableFile::apply_batch) group
    /// commit (each observation is one batch; a batch of all-misses
    /// observes 0).
    pub group_commit_frames: Arc<Histogram>,
    /// `dsf_commit_window_fsyncs` — commit windows closed with a
    /// successful fsync under [`SyncPolicy::CommitWindow`]
    /// (crate::SyncPolicy::CommitWindow); each one made every command
    /// buffered in that window durable at once.
    pub commit_window_fsyncs: Arc<Counter>,
    /// `dsf_commit_window_frames` — frames made durable per closed commit
    /// window (the group-commit fan-in; higher means fewer fsyncs per
    /// command).
    pub commit_window_frames: Arc<Histogram>,
}

pub(crate) fn tel() -> &'static DurableTel {
    static TEL: OnceLock<DurableTel> = OnceLock::new();
    TEL.get_or_init(|| {
        let r = dsf_telemetry::global();
        DurableTel {
            frames: r.counter("dsf_wal_frames_total", "WAL frames acknowledged"),
            fsyncs: r.counter("dsf_wal_fsyncs_total", "WAL sync_data calls"),
            fsync_micros: r.histogram(
                "dsf_wal_fsync_micros",
                "wall-clock microseconds per WAL sync_data call",
            ),
            recovery_scrubs: r.counter(
                "dsf_wal_recovery_scrubs_total",
                "torn or unacknowledged WAL tails truncated away",
            ),
            frames_replayed: r.counter(
                "dsf_wal_frames_replayed_total",
                "WAL frames replayed during open",
            ),
            checkpoints: r.counter("dsf_checkpoints_total", "checkpoints completed"),
            group_commit_frames: r.histogram(
                "dsf_wal_group_commit_frames",
                "WAL frames per apply_batch group commit",
            ),
            commit_window_fsyncs: r.counter(
                "dsf_commit_window_fsyncs",
                "commit windows closed with a successful fsync",
            ),
            commit_window_frames: r.histogram(
                "dsf_commit_window_frames",
                "WAL frames made durable per closed commit window",
            ),
        }
    })
}
