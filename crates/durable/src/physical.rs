//! The physical image: the dense file laid out on disk *as the paper
//! describes it* — `M` consecutive fixed-size pages, records stored at
//! their page addresses.
//!
//! The snapshot format (`dsf_core::snapshot`) is a compact logical dump;
//! this module writes the **physical** layout instead: page `p` of the file
//! lives at byte offset `header + p × page_size`, holding its records
//! (length-prefixed, `Codec`-encoded) and a CRC. That buys the property the
//! whole paper is about: a key-range of records occupies a *contiguous byte
//! range of the file*, so stream retrieval is a seek plus sequential reads
//! — against the real filesystem, not a simulator.
//!
//! The header carries a **page directory** — one occupancy bit per page —
//! loaded at open time, exactly the resident metadata an ISAM install (or
//! the paper's calibrator) keeps in memory. [`PhysicalImage::stream_range`]
//! uses it to binary-search only over populated pages (O(log M) seeks, like
//! a cold ISAM probe) and then reads forward until the range ends, skipping
//! holes without touching them. [`PhysicalImage::point_read`] is the
//! comparison case — every lookup pays the positioning. The
//! `exp_physical_io` experiment measures both with real `read()` traffic.

use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::Path;

use dsf_core::snapshot::{fnv1a64, Codec, SnapshotError};
use dsf_core::{DenseFile, DenseFileConfig, MacroBlocking};
use dsf_pagestore::Key;

use crate::DurableError;

const MAGIC: &[u8; 8] = b"DSFPHYS2";

/// Geometry of an image, stored in its header page.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ImageHeader {
    /// Bytes per physical page (user-chosen; typically 4096).
    pub page_size: u32,
    /// Logical slots (`M#`).
    pub slots: u32,
    /// Pages per slot (`K`).
    pub k: u32,
    /// Records per page (`D`).
    pub page_capacity: u32,
    /// `d` in user units.
    pub min_density: u32,
    /// Shift budget.
    pub j: u32,
    /// Requested page count `M`.
    pub requested_pages: u32,
    /// Maintenance algorithm (1 = CONTROL 1, 2 = CONTROL 2).
    pub algorithm: u32,
}

/// Byte-level statistics of one physical I/O operation.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IoReport {
    /// Pages read from the image.
    pub pages_read: u64,
    /// `seek` calls issued (non-contiguous repositioning).
    pub seeks: u64,
    /// Bytes read.
    pub bytes_read: u64,
    /// `read` syscalls issued. A coalesced run of `n` pages is one call;
    /// the per-page path issues `n`.
    pub read_calls: u64,
    /// Pages written to the image.
    pub pages_written: u64,
    /// Bytes written.
    pub bytes_written: u64,
    /// `write` syscalls issued.
    pub write_calls: u64,
}

impl IoReport {
    /// Total read + write syscalls (the fell-swoop figure of merit).
    pub fn io_calls(&self) -> u64 {
        self.read_calls + self.write_calls
    }

    /// Adds another report's counters into this one.
    pub fn absorb(&mut self, other: &IoReport) {
        self.pages_read += other.pages_read;
        self.seeks += other.seeks;
        self.bytes_read += other.bytes_read;
        self.read_calls += other.read_calls;
        self.pages_written += other.pages_written;
        self.bytes_written += other.bytes_written;
        self.write_calls += other.write_calls;
    }
}

/// Pages moved per coalesced transfer: bounds run-buffer memory (with 4 KiB
/// pages a run buffer is ≤ 256 KiB) and, for range streams, the worst-case
/// over-read past the last in-range page.
const RUN_PAGES: usize = 64;

/// Lookahead for range streams, kept small because a stream stops as soon as
/// it sees a key past the range end: reading far ahead would charge pages
/// the per-page path never touches.
const STREAM_RUN_PAGES: usize = 4;

/// A dense file stored on disk in physical page layout.
#[derive(Debug)]
pub struct PhysicalImage {
    file: File,
    header: ImageHeader,
    /// Pages occupied by the header + directory.
    header_pages: u64,
    /// Populated data pages, ascending (decoded from the directory bitmap).
    populated: Vec<u64>,
    /// Whether the file handle permits `write_pages`.
    writable: bool,
    /// Lifetime I/O counters for the raw page interface (the
    /// [`dsf_pagestore::PageBackend`] impl), accumulated across calls.
    io: IoReport,
}

impl PhysicalImage {
    /// Writes `file` to `path` in physical layout with `page_size`-byte
    /// pages.
    ///
    /// # Errors
    ///
    /// Fails if any page's encoded records exceed `page_size` (choose a
    /// bigger page or a smaller `D`), or on I/O problems.
    pub fn create<K, V, P>(
        dense: &DenseFile<K, V>,
        path: P,
        page_size: u32,
    ) -> Result<Self, DurableError>
    where
        K: Key + Codec,
        V: Codec,
        P: AsRef<Path>,
    {
        let cfg = dense.config();
        let header = ImageHeader {
            page_size,
            slots: cfg.slots,
            k: cfg.k,
            page_capacity: cfg.page_capacity,
            min_density: (cfg.slot_min / u64::from(cfg.k)) as u32,
            j: cfg.j,
            requested_pages: cfg.requested_pages,
            algorithm: match cfg.algorithm {
                dsf_core::Algorithm::Control1 => 1,
                dsf_core::Algorithm::Control2 => 2,
            },
        };
        let mut out = File::create(path.as_ref())?;

        // Header: fixed fields, then the page directory (one occupancy bit
        // per data page), then a checksum over both; padded to a whole
        // number of pages.
        let total_pages = u64::from(header.slots) * u64::from(header.k);
        let mut bitmap = vec![0u8; total_pages.div_ceil(8) as usize];
        for slot in 0..cfg.slots {
            for page in 0..cfg.k {
                if !dense.store().read_page(slot, page).is_empty() {
                    let g = u64::from(slot) * u64::from(cfg.k) + u64::from(page);
                    bitmap[(g / 8) as usize] |= 1 << (g % 8);
                }
            }
        }
        let mut hbuf = Vec::with_capacity(page_size as usize);
        hbuf.extend_from_slice(MAGIC);
        for v in [
            header.page_size,
            header.slots,
            header.k,
            header.page_capacity,
            header.min_density,
            header.j,
            header.requested_pages,
            header.algorithm,
        ] {
            v.encode(&mut hbuf);
        }
        hbuf.extend_from_slice(&bitmap);
        fnv1a64(&hbuf).encode(&mut hbuf);
        let header_pages = (hbuf.len() as u64).div_ceil(u64::from(page_size)).max(1);
        if u64::from(page_size) < 64 {
            return Err(DurableError::Io(std::io::Error::other(
                "page_size below header size",
            )));
        }
        hbuf.resize((header_pages * u64::from(page_size)) as usize, 0);
        out.write_all(&hbuf)?;

        // Data pages: each physical page carries (count, records..., crc),
        // zero-padded to page_size. Pages are accumulated into run-sized
        // buffers so the image is written with one syscall per RUN_PAGES
        // pages instead of one per page.
        let mut run = Vec::with_capacity(RUN_PAGES * page_size as usize);
        for slot in 0..cfg.slots {
            for page in 0..cfg.k {
                let recs = dense.store().read_page(slot, page);
                let mut body = Vec::new();
                (recs.len() as u32).encode(&mut body);
                for rec in recs {
                    rec.key.encode(&mut body);
                    rec.value.encode(&mut body);
                }
                fnv1a64(&body).encode(&mut body);
                if body.len() > page_size as usize {
                    return Err(DurableError::Io(std::io::Error::other(format!(
                        "page {slot}/{page} needs {} bytes, page_size is {page_size}",
                        body.len()
                    ))));
                }
                body.resize(page_size as usize, 0);
                run.extend_from_slice(&body);
                if run.len() >= RUN_PAGES * page_size as usize {
                    out.write_all(&run)?;
                    run.clear();
                }
            }
        }
        if !run.is_empty() {
            out.write_all(&run)?;
        }
        out.sync_all()?;
        drop(out);
        Self::open(path)
    }

    /// Opens an image for physical reads; loads the page directory.
    pub fn open<P: AsRef<Path>>(path: P) -> Result<Self, DurableError> {
        let file = File::open(path.as_ref())?;
        Self::from_file(file, false)
    }

    /// Opens an image for reads *and* raw page writes (the
    /// [`dsf_pagestore::PageBackend`] interface used by a write-back buffer pool).
    pub fn open_rw<P: AsRef<Path>>(path: P) -> Result<Self, DurableError> {
        let file = std::fs::OpenOptions::new()
            .read(true)
            .write(true)
            .open(path.as_ref())?;
        Self::from_file(file, true)
    }

    fn from_file(mut file: File, writable: bool) -> Result<Self, DurableError> {
        let mut fixed = vec![0u8; 8 + 8 * 4];
        file.read_exact(&mut fixed)?;
        if &fixed[..8] != MAGIC {
            return Err(DurableError::Snapshot(SnapshotError::BadMagic));
        }
        let mut input = &fixed[8..];
        let mut fields = [0u32; 8];
        for f in &mut fields {
            *f = u32::decode(&mut input).map_err(DurableError::Snapshot)?;
        }
        let header = ImageHeader {
            page_size: fields[0],
            slots: fields[1],
            k: fields[2],
            page_capacity: fields[3],
            min_density: fields[4],
            j: fields[5],
            requested_pages: fields[6],
            algorithm: fields[7],
        };
        if header.algorithm != 1 && header.algorithm != 2 {
            return Err(DurableError::Snapshot(SnapshotError::Corrupt(
                "unknown algorithm",
            )));
        }
        if header.page_size < 64 {
            return Err(DurableError::Snapshot(SnapshotError::Corrupt(
                "tiny page_size",
            )));
        }
        let total_pages = u64::from(header.slots) * u64::from(header.k);
        let mut bitmap = vec![0u8; total_pages.div_ceil(8) as usize];
        file.read_exact(&mut bitmap)?;
        let mut crc_bytes = [0u8; 8];
        file.read_exact(&mut crc_bytes)?;
        let stored = u64::from_le_bytes(crc_bytes);
        let mut hashed = fixed.clone();
        hashed.extend_from_slice(&bitmap);
        if fnv1a64(&hashed) != stored {
            return Err(DurableError::Snapshot(SnapshotError::ChecksumMismatch));
        }
        let header_len = fixed.len() as u64 + bitmap.len() as u64 + 8;
        let header_pages = header_len.div_ceil(u64::from(header.page_size)).max(1);
        let populated: Vec<u64> = (0..total_pages)
            .filter(|&g| bitmap[(g / 8) as usize] & (1 << (g % 8)) != 0)
            .collect();
        Ok(PhysicalImage {
            file,
            header,
            header_pages,
            populated,
            writable,
            io: IoReport::default(),
        })
    }

    /// The image geometry.
    pub fn header(&self) -> ImageHeader {
        self.header
    }

    /// Total physical pages of the image (excluding the header page).
    pub fn pages(&self) -> u64 {
        u64::from(self.header.slots) * u64::from(self.header.k)
    }

    fn page_offset(&self, page: u64) -> u64 {
        (self.header_pages + page) * u64::from(self.header.page_size)
    }

    /// Populated data pages in address order (directory metadata).
    pub fn populated_pages(&self) -> &[u64] {
        &self.populated
    }

    /// Reads `n` consecutive raw pages starting at `first` in **one fell
    /// swoop**: at most one seek plus exactly one read syscall.
    fn read_pages_raw(
        &mut self,
        first: u64,
        n: usize,
        report: &mut IoReport,
        expect_seek: bool,
    ) -> Result<Vec<u8>, DurableError> {
        let ps = self.header.page_size as usize;
        if expect_seek {
            self.file.seek(SeekFrom::Start(self.page_offset(first)))?;
            report.seeks += 1;
        }
        let mut buf = vec![0u8; n * ps];
        self.file.read_exact(&mut buf)?;
        report.read_calls += 1;
        report.pages_read += n as u64;
        report.bytes_read += (n * ps) as u64;
        Ok(buf)
    }

    /// Decodes one raw page image into its records, verifying the page CRC.
    fn decode_page<K: Key + Codec, V: Codec>(
        buf: &[u8],
        page_capacity: u32,
    ) -> Result<Vec<(K, V)>, DurableError> {
        let mut input = buf;
        let n = u32::decode(&mut input).map_err(DurableError::Snapshot)?;
        if n > page_capacity + 1 {
            return Err(DurableError::Snapshot(SnapshotError::Corrupt(
                "page over-full",
            )));
        }
        let mut out = Vec::with_capacity(n as usize);
        for _ in 0..n {
            let k = K::decode(&mut input).map_err(DurableError::Snapshot)?;
            let v = V::decode(&mut input).map_err(DurableError::Snapshot)?;
            out.push((k, v));
        }
        // Verify the page CRC over the consumed prefix.
        let consumed = buf.len() - input.len();
        let stored = u64::decode(&mut input).map_err(DurableError::Snapshot)?;
        if fnv1a64(&buf[..consumed]) != stored {
            return Err(DurableError::Snapshot(SnapshotError::ChecksumMismatch));
        }
        Ok(out)
    }

    /// Reads one physical page's records.
    fn read_page<K: Key + Codec, V: Codec>(
        &mut self,
        page: u64,
        report: &mut IoReport,
        expect_seek: bool,
    ) -> Result<Vec<(K, V)>, DurableError> {
        let buf = self.read_pages_raw(page, 1, report, expect_seek)?;
        Self::decode_page(&buf, self.header.page_capacity)
    }

    /// First key of populated page index `i` (one seek + read).
    fn populated_min<K: Key + Codec, V: Codec>(
        &mut self,
        i: usize,
        report: &mut IoReport,
    ) -> Result<K, DurableError> {
        let page = self.populated[i];
        self.read_page::<K, V>(page, report, true)?
            .first()
            .map(|(k, _)| *k)
            .ok_or(DurableError::Snapshot(SnapshotError::Corrupt(
                "directory bit set on an empty page",
            )))
    }

    /// Streams every record with key in `[lo, hi]` straight off the disk:
    /// an O(log M)-probe positioning phase, then strictly forward reads.
    pub fn stream_range<K: Key + Codec, V: Codec>(
        &mut self,
        lo: K,
        hi: K,
    ) -> Result<(Vec<(K, V)>, IoReport), DurableError> {
        let mut report = IoReport::default();
        let n = self.populated.len();
        if n == 0 {
            return Ok((Vec::new(), report));
        }
        // Binary search over the populated pages (the directory is resident
        // metadata, like the calibrator) for the last one whose min key is
        // ≤ lo: exactly O(log n) probes, no empty page ever touched.
        let (mut a, mut b) = (0usize, n);
        let mut start = 0usize;
        while a < b {
            let mid = a + (b - a) / 2;
            if self.populated_min::<K, V>(mid, &mut report)? <= lo {
                start = mid;
                a = mid + 1;
            } else {
                b = mid;
            }
        }
        // Forward sweep over populated pages, coalesced: each maximal
        // stretch of physically contiguous populated pages (capped at
        // STREAM_RUN_PAGES of lookahead) is read with one syscall, and
        // contiguous successor runs continue without a seek.
        let ps = self.header.page_size as usize;
        let mut out = Vec::new();
        let mut prev_page: Option<u64> = None;
        let mut i = start;
        'sweep: while i < n {
            let first = self.populated[i];
            let mut j = i + 1;
            while j < n
                && j - i < STREAM_RUN_PAGES
                && self.populated[j] == self.populated[j - 1] + 1
            {
                j += 1;
            }
            let seek = prev_page != Some(first.wrapping_sub(1));
            let buf = self.read_pages_raw(first, j - i, &mut report, seek)?;
            prev_page = Some(first + (j - i) as u64 - 1);
            for page_buf in buf.chunks_exact(ps) {
                let recs = Self::decode_page::<K, V>(page_buf, self.header.page_capacity)?;
                for (k, v) in recs {
                    if k > hi {
                        break 'sweep;
                    }
                    if k >= lo {
                        out.push((k, v));
                    }
                }
            }
            i = j;
        }
        Ok((out, report))
    }

    /// Looks up one key with a cold binary search over pages — the
    /// random-access comparison case for [`PhysicalImage::stream_range`].
    pub fn point_read<K: Key + Codec, V: Codec>(
        &mut self,
        key: K,
    ) -> Result<(Option<V>, IoReport), DurableError> {
        let (found, mut report) = self.stream_range::<K, V>(key, key)?;
        let v = found.into_iter().next().map(|(_, v)| v);
        // A point read's sweep is at most a page or two; fold it in.
        report.seeks = report.seeks.max(1);
        Ok((v, report))
    }

    /// Loads the whole image back into an in-memory dense file (geometry
    /// and contents; flags re-derived), verifying every page CRC.
    pub fn load<K: Key + Codec, V: Codec>(&mut self) -> Result<DenseFile<K, V>, DurableError> {
        let h = self.header;
        let mut config =
            DenseFileConfig::control2(h.requested_pages, h.min_density, h.page_capacity)
                .with_j(h.j)
                .with_macro_blocking(MacroBlocking::Force(h.k));
        config.algorithm = if h.algorithm == 1 {
            dsf_core::Algorithm::Control1
        } else {
            dsf_core::Algorithm::Control2
        };
        let mut file: DenseFile<K, V> = DenseFile::new(config)?;
        let mut layout: Vec<Vec<(K, V)>> = (0..h.slots).map(|_| Vec::new()).collect();
        let mut report = IoReport::default();
        // One initial seek, then the whole image streams in RUN_PAGES-sized
        // reads: ceil(M / RUN_PAGES) syscalls instead of M.
        let total = self.pages();
        let ps = h.page_size as usize;
        let mut page = 0u64;
        let mut first_read = true;
        while page < total {
            let n = RUN_PAGES.min((total - page) as usize);
            let buf = self.read_pages_raw(page, n, &mut report, first_read)?;
            first_read = false;
            for page_buf in buf.chunks_exact(ps) {
                let slot = (page / u64::from(h.k)) as usize;
                layout[slot].extend(Self::decode_page::<K, V>(page_buf, h.page_capacity)?);
                page += 1;
            }
        }
        file.bulk_load_per_slot(layout)
            .map_err(DurableError::File)?;
        Ok(file)
    }

    // ------------------------------------------------------------------
    // Raw page interface (the `PageBackend` impl): whole raw page images,
    // one seek + one syscall per run, counters accumulated in `self.io`.
    // ------------------------------------------------------------------

    /// Lifetime I/O counters of the raw page interface.
    pub fn io_totals(&self) -> IoReport {
        self.io
    }

    /// Resets the raw-interface counters.
    pub fn reset_io(&mut self) {
        self.io = IoReport::default();
    }

    /// Reads `buf.len() / page_size` consecutive raw page images starting
    /// at data page `first` with one seek + one read syscall.
    pub fn read_pages(&mut self, first: u64, buf: &mut [u8]) -> std::io::Result<()> {
        let ps = self.header.page_size as usize;
        assert_eq!(buf.len() % ps, 0, "partial-page read");
        let n = (buf.len() / ps) as u64;
        if first + n > self.pages() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "page run past end of image",
            ));
        }
        self.file.seek(SeekFrom::Start(self.page_offset(first)))?;
        self.file.read_exact(buf)?;
        self.io.seeks += 1;
        self.io.read_calls += 1;
        self.io.pages_read += n;
        self.io.bytes_read += buf.len() as u64;
        Ok(())
    }

    /// Writes `data.len() / page_size` consecutive raw page images starting
    /// at data page `first` with one seek + one write syscall.
    ///
    /// This is a frame-level interface (for a write-back buffer pool): it
    /// replaces page images wholesale and does **not** update the page
    /// directory, so only pages already marked populated should gain
    /// records this way. Requires [`PhysicalImage::open_rw`].
    pub fn write_pages(&mut self, first: u64, data: &[u8]) -> std::io::Result<()> {
        if !self.writable {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "image opened read-only; use open_rw",
            ));
        }
        let ps = self.header.page_size as usize;
        assert_eq!(data.len() % ps, 0, "partial-page write");
        let n = (data.len() / ps) as u64;
        if first + n > self.pages() {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "page run past end of image",
            ));
        }
        self.file.seek(SeekFrom::Start(self.page_offset(first)))?;
        self.file.write_all(data)?;
        self.io.seeks += 1;
        self.io.write_calls += 1;
        self.io.pages_written += n;
        self.io.bytes_written += data.len() as u64;
        Ok(())
    }

    /// Flushes raw page writes to stable storage.
    pub fn sync(&mut self) -> std::io::Result<()> {
        self.file.sync_all()
    }
}

impl dsf_pagestore::PageBackend for PhysicalImage {
    fn page_size(&self) -> usize {
        self.header.page_size as usize
    }

    fn read_run(&mut self, first_page: u64, buf: &mut [u8]) -> std::io::Result<()> {
        self.read_pages(first_page, buf)
    }

    fn write_run(&mut self, first_page: u64, data: &[u8]) -> std::io::Result<()> {
        self.write_pages(first_page, data)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn temppath(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "dsf-phys-{tag}-{}-{:?}.img",
            std::process::id(),
            std::thread::current().id()
        ))
    }

    fn sample_file() -> DenseFile<u64, u64> {
        let mut f = DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
        f.bulk_load((0..400u64).map(|i| (i * 7, i))).unwrap();
        for i in 0..100u64 {
            f.insert(i * 7 + 3, 1000 + i).unwrap();
        }
        f
    }

    #[test]
    fn image_round_trip() {
        let path = temppath("roundtrip");
        let f = sample_file();
        let mut img = PhysicalImage::create(&f, &path, 4096).unwrap();
        assert_eq!(img.pages(), 64);
        let g: DenseFile<u64, u64> = img.load().unwrap();
        assert_eq!(g.len(), f.len());
        let a: Vec<(u64, u64)> = f.iter().map(|(k, v)| (*k, *v)).collect();
        let b: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        assert_eq!(a, b);
        g.check_invariants().unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stream_range_reads_the_right_records_with_few_seeks() {
        let path = temppath("stream");
        let f = sample_file();
        let mut img = PhysicalImage::create(&f, &path, 4096).unwrap();
        let (got, report) = img.stream_range::<u64, u64>(700, 1400).unwrap();
        let want: Vec<(u64, u64)> = f.range(700..=1400).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        assert!(!got.is_empty());
        // Positioning costs O(log M) seeks; the sweep itself none.
        assert!(report.seeks <= 10, "seeks {}", report.seeks);
        assert!(report.pages_read < 30, "pages {}", report.pages_read);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn point_reads_hit_and_miss() {
        let path = temppath("point");
        let f = sample_file();
        let mut img = PhysicalImage::create(&f, &path, 4096).unwrap();
        let (v, _) = img.point_read::<u64, u64>(14).unwrap();
        assert_eq!(v, Some(2));
        let (v, _) = img.point_read::<u64, u64>(15).unwrap();
        assert_eq!(v, None);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn page_too_small_is_rejected() {
        let path = temppath("tiny");
        let f = sample_file();
        let err = PhysicalImage::create(&f, &path, 64).unwrap_err();
        assert!(matches!(err, DurableError::Io(_)), "{err:?}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn corrupted_pages_are_detected() {
        let path = temppath("corrupt");
        let f = sample_file();
        PhysicalImage::create(&f, &path, 4096).unwrap();
        // Flip a byte in the middle of some data page.
        let mut bytes = std::fs::read(&path).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xff;
        // Keep flipping until we actually hit a non-padding byte region...
        // simpler: flip the first byte of page 1's body.
        bytes[4096 + 1] ^= 0xff;
        std::fs::write(&path, &bytes).unwrap();
        let mut img = PhysicalImage::open(&path).unwrap();
        assert!(img.load::<u64, u64>().is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn header_corruption_is_detected() {
        let path = temppath("hdr");
        let f = sample_file();
        PhysicalImage::create(&f, &path, 4096).unwrap();
        let mut bytes = std::fs::read(&path).unwrap();
        bytes[10] ^= 0xff; // inside the header fields
        std::fs::write(&path, &bytes).unwrap();
        assert!(PhysicalImage::open(&path).is_err());
        bytes[10] ^= 0xff;
        bytes[0] = b'X'; // magic
        std::fs::write(&path, &bytes).unwrap();
        assert!(PhysicalImage::open(&path).is_err());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn algorithm_round_trips() {
        let path = temppath("alg");
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control1(32, 4, 24)).unwrap();
        f.bulk_load((0..50u64).map(|i| (i, i))).unwrap();
        let mut img = PhysicalImage::create(&f, &path, 2048).unwrap();
        let g: DenseFile<u64, u64> = img.load().unwrap();
        assert_eq!(g.config().algorithm, dsf_core::Algorithm::Control1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn macro_block_images_round_trip() {
        let path = temppath("macro");
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
        assert!(f.config().k > 1);
        f.bulk_load((0..200u64).map(|i| (i * 3, i))).unwrap();
        let mut img = PhysicalImage::create(&f, &path, 1024).unwrap();
        let g: DenseFile<u64, u64> = img.load().unwrap();
        assert_eq!(g.config().k, f.config().k);
        assert_eq!(g.len(), 200);
        let (got, _) = img.stream_range::<u64, u64>(90, 150).unwrap();
        let want: Vec<(u64, u64)> = f.range(90..=150).map(|(k, v)| (*k, *v)).collect();
        assert_eq!(got, want);
        std::fs::remove_file(&path).ok();
    }
}
