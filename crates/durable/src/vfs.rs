//! The filesystem boundary of the durability layer, made swappable.
//!
//! [`DurableFile`](crate::DurableFile) performs every filesystem effect —
//! creating files, appending to the log, fsyncing, the checkpoint
//! temp-file rename — through the [`Vfs`] trait. Production code uses
//! [`StdFs`] (a zero-cost shim over `std::fs`); the crash-consistency
//! harness uses [`FaultFs`], a deterministic fault-injecting in-memory
//! filesystem that models the gap between *visible* state (what syscalls
//! observe) and *durable* state (what survives a power failure).
//!
//! ## The fault model
//!
//! `FaultFs` counts every mutating syscall and consults a seeded
//! [`FaultPlan`]:
//!
//! * **transient `EIO`** — the scheduled syscall fails with no effect and
//!   the filesystem keeps working; the caller may retry;
//! * **crash** — the scheduled syscall fails after a *seeded partial
//!   effect* (a write applies an arbitrary byte prefix — a torn write) and
//!   every later syscall fails until [`FaultFs::power_cycle`];
//! * **power cycle** — un-fsynced data is lost adversarially: each file
//!   reverts to its durable image plus a seeded prefix of whatever
//!   unsynced suffix was visible, so a torn log tail can land at *any*
//!   byte boundary. Renames are atomic: a rename not yet made durable by a
//!   directory fsync simply has not happened.
//!
//! Content becomes durable on `sync_data`/`sync_all` of the file; a rename
//! becomes durable on `sync_dir` of the parent. (One simplification
//! relative to POSIX: fsyncing a freshly created file also makes its
//! directory entry durable. The WAL only ever creates fresh files at
//! already-durable names or renames over them, so no code path depends on
//! the difference.)

use std::collections::HashMap;
use std::io::{self, Write};
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// An open writable file handle of a [`Vfs`].
pub trait VfsFile: Write {
    /// Flushes the file's data (and enough metadata to read it back) to
    /// stable storage.
    fn sync_data(&mut self) -> io::Result<()>;

    /// Flushes the file's data and all metadata to stable storage.
    fn sync_all(&mut self) -> io::Result<()>;

    /// Truncates (or zero-extends) the file to `len` bytes.
    fn set_len(&mut self, len: u64) -> io::Result<()>;

    /// Positions the write cursor at the end of the file; returns the
    /// file's length.
    fn seek_end(&mut self) -> io::Result<u64>;
}

/// The filesystem operations the durability layer needs.
pub trait Vfs: Clone {
    /// The writable file handle type.
    type File: VfsFile;

    /// Creates `dir` and any missing parents.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// Whether `path` names an existing file.
    fn exists(&self, path: &Path) -> bool;

    /// Reads the whole file at `path`.
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates (truncating if present) `path` for writing.
    fn create(&self, path: &Path) -> io::Result<Self::File>;

    /// Opens `path` for writing without truncation, creating it if absent.
    fn open_rw(&self, path: &Path) -> io::Result<Self::File>;

    /// Atomically renames `from` to `to` (replacing `to` if present).
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Fsyncs the directory at `dir`, making renames within it durable.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;
}

// ---------------------------------------------------------------------
// StdFs: the real filesystem.
// ---------------------------------------------------------------------

/// The production [`Vfs`]: plain `std::fs`.
#[derive(Debug, Clone, Copy, Default)]
pub struct StdFs;

impl VfsFile for std::fs::File {
    fn sync_data(&mut self) -> io::Result<()> {
        std::fs::File::sync_data(self)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        std::fs::File::sync_all(self)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        std::fs::File::set_len(self, len)
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        use std::io::Seek;
        self.seek(io::SeekFrom::End(0))
    }
}

impl Vfs for StdFs {
    type File = std::fs::File;

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn exists(&self, path: &Path) -> bool {
        path.exists()
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn create(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::File::create(path)
    }

    fn open_rw(&self, path: &Path) -> io::Result<Self::File> {
        std::fs::OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(path)
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Best effort: platforms that refuse to open directories still
        // order the rename; swallow the open failure like the pre-Vfs code.
        if let Ok(d) = std::fs::File::open(dir) {
            d.sync_all()?;
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------
// FaultFs: the deterministic fault-injecting filesystem.
// ---------------------------------------------------------------------

/// The kind of a counted syscall, recorded so a harness can check which
/// code paths its crash points actually landed on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SyscallKind {
    /// Truncating create (`Vfs::create`).
    Create,
    /// Non-truncating writable open (`Vfs::open_rw`).
    OpenRw,
    /// Whole-file read (`Vfs::read`).
    ReadFile,
    /// A `write` on an open handle.
    Write,
    /// `sync_data` on an open handle.
    SyncData,
    /// `sync_all` on an open handle.
    SyncAll,
    /// `set_len` on an open handle.
    SetLen,
    /// `Vfs::rename`.
    Rename,
    /// `Vfs::sync_dir`.
    SyncDir,
}

/// A seeded schedule of faults for one [`FaultFs`] run.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Crash on the Nth counted syscall (1-based): the syscall applies a
    /// seeded partial effect, then fails, and the filesystem is dead until
    /// [`FaultFs::power_cycle`].
    pub crash_at: Option<u64>,
    /// Syscall ordinals (1-based) that fail with transient `EIO` and **no
    /// effect**; operation continues normally afterwards.
    pub eio_at: Vec<u64>,
    /// Seed for every adversarial choice (torn-write cuts, lost-suffix
    /// lengths).
    pub seed: u64,
}

impl FaultPlan {
    /// A plan that crashes on syscall `n`, with adversarial choices drawn
    /// from `seed`.
    pub fn crash_at(n: u64, seed: u64) -> Self {
        FaultPlan {
            crash_at: Some(n),
            eio_at: Vec::new(),
            seed,
        }
    }

    /// A plan that injects one transient `EIO` at syscall `n`.
    pub fn eio_at(n: u64, seed: u64) -> Self {
        FaultPlan {
            crash_at: None,
            eio_at: vec![n],
            seed,
        }
    }
}

#[derive(Debug, Default)]
struct FaultState {
    /// What syscalls currently observe.
    visible: HashMap<PathBuf, Vec<u8>>,
    /// What a power failure preserves.
    durable: HashMap<PathBuf, Vec<u8>>,
    /// Renames applied to `visible` but not yet fsynced into `durable`.
    pending_renames: Vec<(PathBuf, PathBuf)>,
    plan: FaultPlan,
    rng: u64,
    syscalls: u64,
    injected_eio: u64,
    crashed: bool,
    crash_kind: Option<SyscallKind>,
    kinds: Vec<SyscallKind>,
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E3779B97F4A7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

enum Gate {
    /// Apply the full effect.
    Proceed,
    /// Crash mid-syscall: apply a partial effect of seeded size, then fail.
    CrashPartial(u64),
}

impl FaultState {
    /// Counts one syscall and decides its fate.
    fn gate(&mut self, kind: SyscallKind) -> io::Result<Gate> {
        if self.crashed {
            return Err(io::Error::other("FaultFs: filesystem is crashed"));
        }
        self.syscalls += 1;
        self.kinds.push(kind);
        let n = self.syscalls;
        if self.plan.eio_at.contains(&n) {
            self.injected_eio += 1;
            return Err(io::Error::other(format!(
                "FaultFs: injected transient EIO at syscall {n} ({kind:?})"
            )));
        }
        if self.plan.crash_at == Some(n) {
            self.crashed = true;
            self.crash_kind = Some(kind);
            return Ok(Gate::CrashPartial(splitmix(&mut self.rng)));
        }
        Ok(Gate::Proceed)
    }

    fn crash_err(kind: SyscallKind, n: u64) -> io::Error {
        io::Error::other(format!("FaultFs: injected crash at syscall {n} ({kind:?})"))
    }
}

/// A deterministic fault-injecting in-memory filesystem (see the module
/// docs for the model). Cheap to clone: clones share state, so a harness
/// can keep a handle while a [`DurableFile`](crate::DurableFile) owns
/// another.
#[derive(Debug, Clone, Default)]
pub struct FaultFs(Arc<Mutex<FaultState>>);

impl FaultFs {
    /// An empty filesystem executing `plan`.
    pub fn new(plan: FaultPlan) -> Self {
        let rng = plan.seed ^ 0xD5F0_FAE1_7C0D_E5EE;
        FaultFs(Arc::new(Mutex::new(FaultState {
            plan,
            rng,
            ..FaultState::default()
        })))
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, FaultState> {
        self.0.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Installs a new fault plan (syscall counting continues); used for
    /// multi-crash schedules.
    pub fn set_plan(&self, plan: FaultPlan) {
        let mut st = self.lock();
        st.rng = plan.seed ^ 0xD5F0_FAE1_7C0D_E5EE;
        st.plan = plan;
    }

    /// Counted syscalls so far.
    pub fn syscalls(&self) -> u64 {
        self.lock().syscalls
    }

    /// Transient `EIO`s injected so far.
    pub fn injected_eio(&self) -> u64 {
        self.lock().injected_eio
    }

    /// Whether the filesystem is crashed (dead until
    /// [`power_cycle`](Self::power_cycle)).
    pub fn crashed(&self) -> bool {
        self.lock().crashed
    }

    /// The syscall kind the crash landed on, if crashed.
    pub fn crash_kind(&self) -> Option<SyscallKind> {
        self.lock().crash_kind
    }

    /// The kinds of every counted syscall, in order.
    pub fn kind_log(&self) -> Vec<SyscallKind> {
        self.lock().kinds.clone()
    }

    /// The bytes that would survive a power failure right now (`None` if
    /// the file would not exist).
    pub fn durable_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().durable.get(path).cloned()
    }

    /// The currently visible bytes of `path`.
    pub fn visible_bytes(&self, path: &Path) -> Option<Vec<u8>> {
        self.lock().visible.get(path).cloned()
    }

    /// Simulates the reboot after a crash (or a surprise power failure if
    /// not crashed): un-fsynced state is adversarially lost, pending
    /// renames are dropped, and the filesystem becomes operational again
    /// with all faults disarmed.
    pub fn power_cycle(&self) {
        let mut st = self.lock();
        let mut rng = st.rng;
        // Renames not yet pinned by a directory fsync are *unspecified* on
        // a real filesystem: the entry may have reached the on-disk
        // directory anyway. Decide each pending rename by seed — commit or
        // revert, atomically either way (a rename is never torn).
        let pending = std::mem::take(&mut st.pending_renames);
        let mut renamed: Vec<PathBuf> = Vec::new();
        for (from, to) in pending {
            renamed.push(from.clone());
            renamed.push(to.clone());
            if splitmix(&mut rng) & 1 == 1 {
                if let Some(content) = st.durable.remove(&from) {
                    st.durable.insert(to, content);
                } else if let Some(content) = st.visible.get(&to).cloned() {
                    st.durable.insert(to, content);
                }
            }
        }
        let mut after: HashMap<PathBuf, Vec<u8>> = HashMap::new();
        let mut names: Vec<PathBuf> = st.durable.keys().cloned().collect();
        names.sort();
        for name in names {
            let dur = &st.durable[&name];
            let content = if renamed.contains(&name) {
                dur.clone()
            } else {
                match st.visible.get(&name) {
                    None => dur.clone(),
                    Some(vis) if vis == dur => dur.clone(),
                    Some(vis) => {
                        // Keep the common prefix, then a seeded mix point:
                        // visible bytes up to the cut, durable bytes past
                        // it. For an append-only file this is exactly "the
                        // tail tore at an arbitrary byte".
                        let p = vis
                            .iter()
                            .zip(dur.iter())
                            .take_while(|(a, b)| a == b)
                            .count();
                        let hi = vis.len().max(dur.len());
                        let cut = p + (splitmix(&mut rng) as usize) % (hi - p + 1);
                        let mut out = vis[..cut.min(vis.len())].to_vec();
                        if dur.len() > cut {
                            out.extend_from_slice(&dur[cut..]);
                        }
                        out
                    }
                }
            };
            after.insert(name, content);
        }
        st.rng = rng;
        st.visible = after.clone();
        st.durable = after;
        st.crashed = false;
        st.plan = FaultPlan::default();
    }
}

/// A writable handle into a [`FaultFs`] file.
#[derive(Debug)]
pub struct FaultFile {
    fs: FaultFs,
    path: PathBuf,
    pos: u64,
}

impl Write for FaultFile {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        let mut st = self.fs.lock();
        let gate = st.gate(SyscallKind::Write)?;
        let n = st.syscalls;
        let apply = |st: &mut FaultState, bytes: &[u8], pos: u64| {
            let data = st.visible.entry(self.path.clone()).or_default();
            let pos = pos as usize;
            if data.len() < pos {
                data.resize(pos, 0);
            }
            let overlap = (data.len() - pos).min(bytes.len());
            data[pos..pos + overlap].copy_from_slice(&bytes[..overlap]);
            data.extend_from_slice(&bytes[overlap..]);
        };
        match gate {
            Gate::Proceed => {
                apply(&mut st, buf, self.pos);
                self.pos += buf.len() as u64;
                Ok(buf.len())
            }
            Gate::CrashPartial(r) => {
                // Torn write: a seeded prefix of the buffer lands.
                let cut = (r as usize) % (buf.len() + 1);
                apply(&mut st, &buf[..cut], self.pos);
                Err(FaultState::crash_err(SyscallKind::Write, n))
            }
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        Ok(())
    }
}

impl VfsFile for FaultFile {
    fn sync_data(&mut self) -> io::Result<()> {
        self.sync_impl(SyscallKind::SyncData)
    }

    fn sync_all(&mut self) -> io::Result<()> {
        self.sync_impl(SyscallKind::SyncAll)
    }

    fn set_len(&mut self, len: u64) -> io::Result<()> {
        let mut st = self.fs.lock();
        let gate = st.gate(SyscallKind::SetLen)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                let data = st.visible.entry(self.path.clone()).or_default();
                data.resize(len as usize, 0);
                Ok(())
            }
            // A crashed truncate did not happen (size is metadata: it
            // either commits or it does not).
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::SetLen, n)),
        }
    }

    fn seek_end(&mut self) -> io::Result<u64> {
        let st = self.fs.lock();
        let len = st.visible.get(&self.path).map_or(0, Vec::len) as u64;
        drop(st);
        self.pos = len;
        Ok(len)
    }
}

impl FaultFile {
    fn sync_impl(&mut self, kind: SyscallKind) -> io::Result<()> {
        let mut st = self.fs.lock();
        let gate = st.gate(kind)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                let content = st.visible.get(&self.path).cloned().unwrap_or_default();
                st.durable.insert(self.path.clone(), content);
                Ok(())
            }
            // A crashed fsync persisted nothing new (the crash-at-the-next-
            // syscall case covers "everything reached disk anyway").
            Gate::CrashPartial(_) => Err(FaultState::crash_err(kind, n)),
        }
    }
}

impl Vfs for FaultFs {
    type File = FaultFile;

    fn create_dir_all(&self, _dir: &Path) -> io::Result<()> {
        Ok(())
    }

    fn exists(&self, path: &Path) -> bool {
        self.lock().visible.contains_key(path)
    }

    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let mut st = self.lock();
        let gate = st.gate(SyscallKind::ReadFile)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => st
                .visible
                .get(path)
                .cloned()
                .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "FaultFs: no such file")),
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::ReadFile, n)),
        }
    }

    fn create(&self, path: &Path) -> io::Result<Self::File> {
        let mut st = self.lock();
        let gate = st.gate(SyscallKind::Create)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                st.visible.insert(path.to_path_buf(), Vec::new());
                Ok(FaultFile {
                    fs: self.clone(),
                    path: path.to_path_buf(),
                    pos: 0,
                })
            }
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::Create, n)),
        }
    }

    fn open_rw(&self, path: &Path) -> io::Result<Self::File> {
        let mut st = self.lock();
        let gate = st.gate(SyscallKind::OpenRw)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                st.visible.entry(path.to_path_buf()).or_default();
                Ok(FaultFile {
                    fs: self.clone(),
                    path: path.to_path_buf(),
                    pos: 0,
                })
            }
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::OpenRw, n)),
        }
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let gate = st.gate(SyscallKind::Rename)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                let content = st.visible.remove(from).ok_or_else(|| {
                    io::Error::new(io::ErrorKind::NotFound, "FaultFs: rename source missing")
                })?;
                st.visible.insert(to.to_path_buf(), content);
                st.pending_renames
                    .push((from.to_path_buf(), to.to_path_buf()));
                Ok(())
            }
            // An errored rename did not happen (POSIX rename is atomic).
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::Rename, n)),
        }
    }

    fn sync_dir(&self, _dir: &Path) -> io::Result<()> {
        let mut st = self.lock();
        let gate = st.gate(SyscallKind::SyncDir)?;
        let n = st.syscalls;
        match gate {
            Gate::Proceed => {
                let pending = std::mem::take(&mut st.pending_renames);
                for (from, to) in pending {
                    // The renamed content was fsynced under its old name
                    // (the WAL always syncs the temp file before renaming);
                    // the directory fsync moves the durable entry.
                    if let Some(content) = st.durable.remove(&from) {
                        st.durable.insert(to, content);
                    } else if let Some(content) = st.visible.get(&to).cloned() {
                        // Renaming a never-synced file: conservatively make
                        // the visible content durable with the entry (the
                        // WAL never does this, but don't lose data silently
                        // if a future caller does).
                        st.durable.insert(to, content);
                    }
                }
                Ok(())
            }
            Gate::CrashPartial(_) => Err(FaultState::crash_err(SyscallKind::SyncDir, n)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn synced_data_survives_power_cycle_unsynced_does_not() {
        let fs = FaultFs::new(FaultPlan::default());
        let mut f = fs.create(&p("/a")).unwrap();
        f.write_all(b"durable").unwrap();
        f.sync_data().unwrap();
        f.write_all(b"-volatile-with-a-long-tail").unwrap();
        fs.power_cycle();
        let got = fs.visible_bytes(&p("/a")).unwrap();
        assert!(got.starts_with(b"durable"), "{got:?}");
        assert!(got.len() <= b"durable-volatile-with-a-long-tail".len());
        // The kept suffix is a prefix of what was written: torn, never
        // reordered.
        assert_eq!(got, b"durable-volatile-with-a-long-tail"[..got.len()]);
    }

    #[test]
    fn crash_at_write_applies_a_prefix_then_kills_the_fs() {
        let fs = FaultFs::new(FaultPlan::crash_at(2, 7));
        let mut f = fs.create(&p("/a")).unwrap(); // syscall 1
        let err = f.write_all(b"0123456789").unwrap_err(); // syscall 2: crash
        assert!(err.to_string().contains("crash"), "{err}");
        assert!(fs.crashed());
        assert_eq!(fs.crash_kind(), Some(SyscallKind::Write));
        let torn = fs.visible_bytes(&p("/a")).unwrap();
        assert!(torn.len() <= 10);
        assert_eq!(torn, b"0123456789"[..torn.len()]);
        // Everything later fails until power_cycle.
        assert!(fs.read(&p("/a")).is_err());
        fs.power_cycle();
        assert!(!fs.crashed());
        // Nothing was ever synced: the file reverts to empty existence in
        // durable space? It was never durable at all — it's gone.
        assert!(fs.visible_bytes(&p("/a")).is_none());
    }

    #[test]
    fn transient_eio_has_no_effect_and_operation_continues() {
        let fs = FaultFs::new(FaultPlan::eio_at(2, 0));
        let mut f = fs.create(&p("/a")).unwrap(); // 1
        assert!(f.write_all(b"xx").is_err()); // 2: EIO, nothing applied
        assert_eq!(fs.visible_bytes(&p("/a")).unwrap(), b"");
        f.write_all(b"yy").unwrap(); // 3: fine
        assert_eq!(fs.visible_bytes(&p("/a")).unwrap(), b"yy");
        assert_eq!(fs.injected_eio(), 1);
    }

    #[test]
    fn unsynced_rename_commits_or_reverts_but_never_tears() {
        // Without a directory fsync a rename's durability is unspecified:
        // across seeds the power cycle must produce both outcomes, and
        // each must be atomic — whole old content or whole new, no mix.
        let mut saw_old = false;
        let mut saw_new = false;
        for seed in 0..16u64 {
            let fs = FaultFs::new(FaultPlan {
                seed,
                ..FaultPlan::default()
            });
            let mut old = fs.create(&p("/ck")).unwrap();
            old.write_all(b"old").unwrap();
            old.sync_all().unwrap();
            let mut tmp = fs.create(&p("/ck.tmp")).unwrap();
            tmp.write_all(b"new!").unwrap();
            tmp.sync_all().unwrap();
            fs.rename(&p("/ck.tmp"), &p("/ck")).unwrap();
            assert_eq!(fs.visible_bytes(&p("/ck")).unwrap(), b"new!");
            fs.power_cycle();
            match fs.visible_bytes(&p("/ck")).unwrap() {
                b if b == b"old" => {
                    saw_old = true;
                    // The temp file's durable content survives under its
                    // own name when the rename reverts.
                    assert_eq!(fs.visible_bytes(&p("/ck.tmp")).unwrap(), b"new!");
                }
                b if b == b"new!" => {
                    saw_new = true;
                    assert!(fs.visible_bytes(&p("/ck.tmp")).is_none());
                }
                b => panic!("torn rename: {b:?}"),
            }
        }
        assert!(saw_old && saw_new, "both outcomes must be reachable");
    }

    #[test]
    fn synced_rename_is_durable() {
        let fs = FaultFs::new(FaultPlan::default());
        let mut old = fs.create(&p("/ck")).unwrap();
        old.write_all(b"old").unwrap();
        old.sync_all().unwrap();
        let mut tmp = fs.create(&p("/ck.tmp")).unwrap();
        tmp.write_all(b"new!").unwrap();
        tmp.sync_all().unwrap();
        fs.rename(&p("/ck.tmp"), &p("/ck")).unwrap();
        fs.sync_dir(&p("/")).unwrap();
        fs.power_cycle();
        assert_eq!(fs.visible_bytes(&p("/ck")).unwrap(), b"new!");
        assert!(fs.visible_bytes(&p("/ck.tmp")).is_none());
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let run = |seed: u64| {
            let fs = FaultFs::new(FaultPlan::crash_at(4, seed));
            let mut f = fs.create(&p("/a")).unwrap();
            f.write_all(b"base").unwrap();
            f.sync_data().unwrap();
            let _ = f.write_all(b"0123456789abcdef");
            fs.power_cycle();
            fs.visible_bytes(&p("/a")).unwrap()
        };
        assert_eq!(run(42), run(42));
        // Different seeds reach different torn lengths for at least one of
        // a handful of seeds (overwhelmingly likely).
        let outcomes: std::collections::HashSet<Vec<u8>> = (0..16u64).map(run).collect();
        assert!(outcomes.len() > 1, "seeds never vary the tear point");
    }

    #[test]
    fn set_len_truncates_visibly() {
        let fs = FaultFs::new(FaultPlan::default());
        let mut f = fs.create(&p("/a")).unwrap();
        f.write_all(b"0123456789").unwrap();
        f.set_len(4).unwrap();
        assert_eq!(fs.visible_bytes(&p("/a")).unwrap(), b"0123");
        assert_eq!(f.seek_end().unwrap(), 4);
        f.write_all(b"X").unwrap();
        assert_eq!(fs.visible_bytes(&p("/a")).unwrap(), b"0123X");
    }
}
