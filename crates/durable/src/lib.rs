//! # dsf-durable — crash-safe dense sequential files
//!
//! The paper's model is a file in "auxiliary memory" that survives the
//! process; this crate supplies the standard machinery that makes the
//! in-memory implementation behave that way:
//!
//! * a **checkpoint** — the checksummed snapshot format of
//!   `dsf_core::snapshot`, written atomically (temp file + rename);
//! * a **write-ahead log** — every structural command (insert of a new
//!   key, value replacement, delete) is appended as a length-framed,
//!   CRC-guarded record *before* being applied in memory;
//! * **recovery** — opening a directory loads the latest checkpoint and
//!   replays the log's valid prefix; a torn tail (the bytes a crash cut
//!   short) is detected by framing/checksum and discarded, exactly like
//!   any ARIES-family redo log;
//! * **epochs** — the log's header names the checkpoint generation it
//!   belongs to, so a crash *between* "new checkpoint renamed" and "log
//!   reset" can never replay stale commands onto the new state: recovery
//!   sees the epoch mismatch and discards the old log. Checkpoint renames
//!   are made durable with a parent-directory fsync.
//!
//! Group-commit policy is the caller's choice: [`SyncPolicy::EveryCommand`]
//! fsyncs per command, [`SyncPolicy::Manual`] leaves syncing to explicit
//! [`DurableFile::sync`] calls (and the OS).
//!
//! The crash-injection tests in this crate truncate the log at every byte
//! boundary of its tail and assert that recovery always yields a consistent
//! prefix of the command history with all paper invariants intact.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod physical;
mod wal;

pub use physical::{ImageHeader, IoReport, PhysicalImage};
pub use wal::{DurableError, DurableFile, SyncPolicy};
