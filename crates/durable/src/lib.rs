//! # dsf-durable — crash-safe dense sequential files
//!
//! The paper's model is a file in "auxiliary memory" that survives the
//! process; this crate supplies the standard machinery that makes the
//! in-memory implementation behave that way:
//!
//! * a **checkpoint** — the checksummed snapshot format of
//!   `dsf_core::snapshot`, written atomically (temp file + rename);
//! * a **write-ahead log** — every structural command (insert of a new
//!   key, value replacement, delete) is appended as a length-framed,
//!   CRC-guarded record *before* being applied in memory;
//! * **recovery** — opening a directory loads the latest checkpoint and
//!   replays the log's valid prefix; a torn tail (the bytes a crash cut
//!   short) is detected by framing/checksum and discarded, exactly like
//!   any ARIES-family redo log;
//! * **epochs** — the log's header names the checkpoint generation it
//!   belongs to, so a crash *between* "new checkpoint renamed" and "log
//!   reset" can never replay stale commands onto the new state: recovery
//!   sees the epoch mismatch and discards the old log. Checkpoint renames
//!   are made durable with a parent-directory fsync.
//!
//! Group-commit policy is the caller's choice: [`SyncPolicy::EveryCommand`]
//! fsyncs per command, [`SyncPolicy::Manual`] leaves syncing to explicit
//! [`DurableFile::sync`] calls (and the OS), and
//! [`SyncPolicy::CommitWindow`] buffers frames into a timed, size-bounded
//! group-commit window — one `write` + one `fsync` per window, with
//! per-command [`Durability`] choosing whether the call waits for that
//! fsync (`Strict`, the default) or returns as soon as its frame is
//! buffered (`Relaxed`, tracked by [`DurableFile::durable_lsn`]).
//!
//! Every filesystem effect of the WAL path goes through the [`vfs::Vfs`]
//! trait. Production code uses [`vfs::StdFs`] (the real filesystem); the
//! crash-consistency harness swaps in [`vfs::FaultFs`], a deterministic
//! fault-injecting filesystem that models the durable-vs-volatile split
//! (torn writes, lost un-fsynced data, transient `EIO`, seeded crash
//! points). The crash-injection tests in this crate truncate the log at
//! every byte boundary of its tail, and the model checker in
//! `tests/fault_injection.rs` crashes the WAL at every injected syscall,
//! asserting that recovery always yields a consistent prefix of the
//! command history with all paper invariants intact. See
//! `docs/FAULTMODEL.md` for the fault taxonomy and the guarantees.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod physical;
mod tel;
pub mod vfs;
mod wal;

pub use physical::{ImageHeader, IoReport, PhysicalImage};
pub use vfs::{FaultFs, FaultPlan, StdFs, SyscallKind, Vfs, VfsFile};
pub use wal::{Durability, DurableError, DurableFile, SyncPolicy};
