//! Property-based crash injection: arbitrary command histories, arbitrary
//! crash points, and optional mid-history checkpoints — recovery must
//! always yield the exact replayed-prefix state with all invariants.

use dsf_core::DenseFileConfig;
use dsf_durable::{DurableFile, SyncPolicy};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::PathBuf;

fn tempdir(tag: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dsf-crashprop-{}-{tag}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

#[derive(Debug, Clone, Copy)]
enum HOp {
    Insert(u16, u16),
    Remove(u16),
    Checkpoint,
}

fn op_strategy() -> impl Strategy<Value = HOp> {
    prop_oneof![
        6 => (any::<u16>(), any::<u16>()).prop_map(|(k, v)| HOp::Insert(k, v)),
        3 => any::<u16>().prop_map(HOp::Remove),
        1 => Just(HOp::Checkpoint),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    #[test]
    fn recovery_is_always_a_command_prefix(
        seed in any::<u64>(),
        ops in prop::collection::vec(op_strategy(), 1..80),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tempdir(seed);
        let cfg = DenseFileConfig::control2(32, 8, 48);
        let mut f: DurableFile<u16, u16> =
            DurableFile::create(&dir, cfg, SyncPolicy::Manual).unwrap();

        // Execute the history, remembering the *effective* command list
        // since the last checkpoint plus the state at that checkpoint.
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        let mut base: BTreeMap<u16, u16> = BTreeMap::new(); // state at last checkpoint
        let mut tail: Vec<HOp> = Vec::new(); // effective commands since
        for &op in &ops {
            match op {
                HOp::Insert(k, v) => {
                    if model.contains_key(&k) || (model.len() as u64) < f.capacity() {
                        f.insert(k, v).unwrap();
                        model.insert(k, v);
                        tail.push(op);
                    }
                }
                HOp::Remove(k) => {
                    let got = f.remove(&k).unwrap();
                    let want = model.remove(&k);
                    prop_assert_eq!(got, want);
                    if want.is_some() {
                        tail.push(op);
                    }
                }
                HOp::Checkpoint => {
                    f.checkpoint().unwrap();
                    base = model.clone();
                    tail.clear();
                }
            }
        }
        f.sync().unwrap();
        drop(f);

        // Crash: cut the log at an arbitrary byte.
        let wal = dir.join("wal.log");
        let bytes = std::fs::read(&wal).unwrap();
        let cut = (bytes.len() as f64 * cut_frac) as usize;
        std::fs::write(&wal, &bytes[..cut]).unwrap();

        let g: DurableFile<u16, u16> = DurableFile::open(&dir, SyncPolicy::Manual).unwrap();
        let m = g.commands_since_checkpoint() as usize;
        prop_assert!(m <= tail.len());
        let mut want = base;
        for &op in &tail[..m] {
            match op {
                HOp::Insert(k, v) => {
                    want.insert(k, v);
                }
                HOp::Remove(k) => {
                    want.remove(&k);
                }
                HOp::Checkpoint => unreachable!("checkpoints reset the tail"),
            }
        }
        let got: Vec<(u16, u16)> = g.iter().map(|(k, v)| (*k, *v)).collect();
        let want: Vec<(u16, u16)> = want.into_iter().collect();
        prop_assert_eq!(got, want, "cut at byte {} of {}", cut, bytes.len());
        g.check_invariants().map_err(|e| TestCaseError::fail(format!("{e:?}")))?;
        std::fs::remove_dir_all(&dir).ok();
    }
}

mod physical_properties {
    use dsf_core::{DenseFile, DenseFileConfig};
    use dsf_durable::PhysicalImage;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

        /// Arbitrary contents round-trip through the physical image, and
        /// arbitrary ranged reads off disk agree with in-memory scans.
        #[test]
        fn image_round_trips_and_streams(
            keys in prop::collection::btree_set(any::<u16>(), 0..300),
            ranges in prop::collection::vec((any::<u16>(), any::<u16>()), 1..6),
            seed in any::<u64>(),
        ) {
            let mut f: DenseFile<u16, u32> =
                DenseFile::new(DenseFileConfig::control2(32, 16, 64)).unwrap();
            for &k in &keys {
                f.insert(k, u32::from(k) + 7).unwrap();
            }
            let path = std::env::temp_dir().join(format!(
                "dsf-physprop-{}-{seed}.img",
                std::process::id()
            ));
            let mut img = PhysicalImage::create(&f, &path, 2048).unwrap();
            let g: DenseFile<u16, u32> = img.load().unwrap();
            let a: Vec<(u16, u32)> = f.iter().map(|(k, v)| (*k, *v)).collect();
            let b: Vec<(u16, u32)> = g.iter().map(|(k, v)| (*k, *v)).collect();
            prop_assert_eq!(a, b);
            for &(x, y) in &ranges {
                let (lo, hi) = (x.min(y), x.max(y));
                let (got, _) = img.stream_range::<u16, u32>(lo, hi).unwrap();
                let want: Vec<(u16, u32)> =
                    f.range(lo..=hi).map(|(k, v)| (*k, *v)).collect();
                prop_assert_eq!(got, want, "range {}..={}", lo, hi);
            }
            std::fs::remove_file(&path).ok();
        }

        /// Garbage bytes never panic the opener.
        #[test]
        fn opener_rejects_garbage(bytes in prop::collection::vec(any::<u8>(), 0..300)) {
            let path = std::env::temp_dir().join(format!(
                "dsf-physgarbage-{}-{:?}.img",
                std::process::id(),
                std::thread::current().id()
            ));
            std::fs::write(&path, &bytes).unwrap();
            let _ = PhysicalImage::open(&path);
            std::fs::remove_file(&path).ok();
        }
    }
}
