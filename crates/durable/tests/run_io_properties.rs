//! Run-coalesced raw page I/O: `write_pages` → `read_pages` must be
//! byte-identical to the per-page path over arbitrary run layouts
//! (including empty and single-page runs), and a write-back
//! [`BufferPool`] over a [`PhysicalImage`] must persist exactly what was
//! staged.

use std::path::PathBuf;

use dsf_core::{DenseFile, DenseFileConfig};
use dsf_durable::PhysicalImage;
use dsf_pagestore::BufferPool;
use proptest::prelude::*;

const PAGE_SIZE: u32 = 1024;
const IMAGE_PAGES: u64 = 64;

fn temppath(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!(
        "dsf-runio-{tag}-{}-{:?}.img",
        std::process::id(),
        std::thread::current().id()
    ))
}

/// A writable 64-page scratch image populated from a dense file.
fn scratch_image(tag: &str) -> (PhysicalImage, PathBuf) {
    let path = temppath(tag);
    let mut f: DenseFile<u64, u64> =
        DenseFile::new(DenseFileConfig::control2(IMAGE_PAGES as u32, 8, 40)).unwrap();
    f.bulk_load((0..400u64).map(|i| (i * 7, i))).unwrap();
    PhysicalImage::create(&f, &path, PAGE_SIZE).unwrap();
    let img = PhysicalImage::open_rw(&path).unwrap();
    (img, path)
}

/// Deterministic page-run payload: `pages` pages seeded by `seed`.
fn payload(pages: u64, seed: u8) -> Vec<u8> {
    (0..pages as usize * PAGE_SIZE as usize)
        .map(|j| (j as u8).wrapping_mul(31).wrapping_add(seed))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 24, ..ProptestConfig::default() })]

    fn write_run_read_run_round_trips_vs_per_page(
        runs in prop::collection::vec((0u64..60, 0u64..5, any::<u8>()), 0..8)
    ) {
        let (mut img, path) = scratch_image("prop");
        let ps = PAGE_SIZE as usize;
        for &(start, len, seed) in &runs {
            let data = payload(len, seed);
            img.write_pages(start, &data).unwrap();

            // Coalesced read-back: one call for the whole run.
            let mut whole = vec![0u8; data.len()];
            img.read_pages(start, &mut whole).unwrap();
            prop_assert_eq!(&whole, &data);

            // Per-page read-back: one call per page, same bytes.
            for p in 0..len {
                let mut one = vec![0u8; ps];
                img.read_pages(start + p, &mut one).unwrap();
                prop_assert_eq!(
                    &one[..],
                    &data[p as usize * ps..(p as usize + 1) * ps]
                );
            }
        }
        std::fs::remove_file(&path).ok();
    }
}

#[test]
fn empty_and_single_page_runs_are_legal() {
    let (mut img, path) = scratch_image("edge");
    // Empty run: a no-op on both sides.
    img.write_pages(5, &[]).unwrap();
    img.read_pages(5, &mut []).unwrap();
    // Single-page run.
    let data = payload(1, 0xC3);
    img.write_pages(63, &data).unwrap();
    let mut back = vec![0u8; data.len()];
    img.read_pages(63, &mut back).unwrap();
    assert_eq!(back, data);
    // Runs past the end of the image are rejected.
    assert!(img.read_pages(63, &mut vec![0u8; 2 * data.len()]).is_err());
    assert!(img.write_pages(64, &data).is_err());
    std::fs::remove_file(&path).ok();
}

#[test]
fn read_only_image_rejects_raw_writes() {
    let (img, path) = scratch_image("ro");
    drop(img);
    let mut ro = PhysicalImage::open(&path).unwrap();
    let err = ro.write_pages(0, &payload(1, 1)).unwrap_err();
    assert_eq!(err.kind(), std::io::ErrorKind::PermissionDenied);
    std::fs::remove_file(&path).ok();
}

#[test]
fn run_reads_cost_one_syscall_for_many_pages() {
    let (mut img, path) = scratch_image("calls");
    img.reset_io();
    let mut buf = vec![0u8; 16 * PAGE_SIZE as usize];
    img.read_pages(0, &mut buf).unwrap();
    let coalesced = img.io_totals();
    assert_eq!(coalesced.read_calls, 1);
    assert_eq!(coalesced.pages_read, 16);

    img.reset_io();
    let mut one = vec![0u8; PAGE_SIZE as usize];
    for p in 0..16 {
        img.read_pages(p, &mut one).unwrap();
    }
    let per_page = img.io_totals();
    assert_eq!(per_page.read_calls, 16);
    assert_eq!(per_page.pages_read, 16);
    std::fs::remove_file(&path).ok();
}

#[test]
fn buffer_pool_over_image_persists_staged_writes() {
    let (mut img, path) = scratch_image("pool");
    // Remember what pages 10..14 look like, then stage edits through a
    // write-back pool and flush.
    let ps = PAGE_SIZE as usize;
    let mut before = vec![0u8; 4 * ps];
    img.read_pages(10, &mut before).unwrap();

    let mut pool = BufferPool::new(img, 8);
    pool.fetch_run(10, 4).unwrap();
    for p in 10..14u64 {
        pool.get_mut(p).unwrap()[ps - 1] = p as u8;
    }
    pool.flush_all().unwrap();
    let stats = pool.stats();
    assert_eq!(stats.flush_runs, 1, "4 adjacent dirty pages: one write run");
    let mut img = pool.into_backend().unwrap();

    let mut after = vec![0u8; 4 * ps];
    img.read_pages(10, &mut after).unwrap();
    for p in 0..4usize {
        let (b, a) = (&before[p * ps..(p + 1) * ps], &after[p * ps..(p + 1) * ps]);
        assert_eq!(&a[..ps - 1], &b[..ps - 1], "untouched bytes preserved");
        assert_eq!(a[ps - 1], 10 + p as u8, "staged byte persisted");
    }
    std::fs::remove_file(&path).ok();
}
