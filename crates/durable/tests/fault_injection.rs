//! The crash-recovery model checker.
//!
//! A deterministic op trace (inserts, removes, syncs, checkpoints) runs
//! against a [`DurableFile`] mounted on a [`FaultFs`], and the injected
//! crash point sweeps across **every syscall** the trace makes — WAL
//! appends, per-command fsyncs, the checkpoint temp-write/rename/dir-fsync
//! sequence, and the log reset. After each crash the power cycle
//! adversarially tears un-fsynced bytes, the file is reopened, and the
//! recovered state must be:
//!
//! * a **prefix** of the acknowledged command history (never interleaved,
//!   never reordered),
//! * at least as long as the **durability floor** — everything
//!   acknowledged under `SyncPolicy::EveryCommand`, everything up to the
//!   last acknowledged `sync`/`checkpoint` under `SyncPolicy::Manual`,
//! * at most one command longer (a command that *failed* at the crash may
//!   have reached disk — indeterminate, like any errored commit),
//! * free of invariant violations, and usable for further writes.
//!
//! A second sweep injects transient `EIO` (no crash) at every syscall and
//! requires the final state to match the acknowledged history **exactly**:
//! failed commands must be fully scrubbed, and a poisoned log must heal
//! through a `checkpoint` retry.
//!
//! Knobs: `DSF_FAULT_SEED` picks the trace/tear seed, `DSF_FAULT_QUICK=1`
//! strides the sweeps for CI. On failure the offending sweep, seed and
//! crash point are written to `target/fault-failure-seed.txt` so CI can
//! upload them as an artifact.

use std::collections::{BTreeMap, BTreeSet};

use dsf_core::{Command, CommandOutcome, DenseFileConfig};
use dsf_durable::{
    Durability, DurableError, DurableFile, FaultFs, FaultPlan, SyncPolicy, SyscallKind,
};

const DIR: &str = "/db";
const DEFAULT_SEED: u64 = 0xd5f_c4a5;

/// The commit-window policy under sweep: close every 4 frames, and make
/// the age trigger unreachable so the syscall schedule is deterministic
/// (faults are counted in syscalls; a wall-clock trigger would move them).
const WINDOW: SyncPolicy = SyncPolicy::CommitWindow {
    max_frames: 4,
    max_micros: u64::MAX,
};

fn seed() -> u64 {
    std::env::var("DSF_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DEFAULT_SEED)
}

fn stride() -> u64 {
    match std::env::var("DSF_FAULT_QUICK") {
        Ok(v) if v != "0" && !v.is_empty() => 5,
        _ => 1,
    }
}

fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn cfg() -> DenseFileConfig {
    DenseFileConfig::control2(32, 8, 40)
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Op {
    Insert(u64, u64),
    Remove(u64),
    /// `apply_batch` group commit; the seed expands deterministically into
    /// a small mixed command batch (see [`expand_batch`]).
    Batch(u64),
    Sync,
    Checkpoint,
}

/// Expands a batch seed into 4–7 mixed commands over the same narrow key
/// range as the rest of the trace, so duplicate keys, replaces, and
/// hitting/missing removes all occur inside one group commit.
fn expand_batch(bseed: u64) -> Vec<Command<u64, u64>> {
    let mut rng = bseed ^ 0xba7c_ba7c_ba7c_ba7c;
    let len = 4 + (splitmix(&mut rng) % 4) as usize;
    (0..len)
        .map(|_| {
            let k = splitmix(&mut rng) % 40;
            let v = splitmix(&mut rng) % 1_000;
            if splitmix(&mut rng) % 3 < 2 {
                Command::Insert(k, v)
            } else {
                Command::Remove(k)
            }
        })
        .collect()
}

/// An acknowledged (or in-flight) structural command.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Cmd {
    Ins(u64, u64),
    Rm(u64),
}

fn apply_cmd(model: &mut BTreeMap<u64, u64>, c: Cmd) {
    match c {
        Cmd::Ins(k, v) => {
            model.insert(k, v);
        }
        Cmd::Rm(k) => {
            model.remove(&k);
        }
    }
}

/// A deterministic op trace: ~60% inserts over a small key range (so
/// replacements and effective removes both happen), ~25% removes, plus
/// syncs and checkpoints to move the durability floor around.
fn gen_trace(seed: u64, len: usize) -> Vec<Op> {
    let mut rng = seed ^ 0x7ace_7ace_7ace_7ace;
    (0..len)
        .map(|_| {
            let r = splitmix(&mut rng) % 100;
            let k = splitmix(&mut rng) % 40;
            let v = splitmix(&mut rng) % 1_000;
            match r {
                0..=47 => Op::Insert(k, v),
                48..=67 => Op::Remove(k),
                68..=82 => Op::Batch(splitmix(&mut rng)),
                83..=92 => Op::Sync,
                _ => Op::Checkpoint,
            }
        })
        .collect()
}

struct RunOutcome {
    file: Option<DurableFile<u64, u64, FaultFs>>,
    /// Commands acknowledged `Ok` to the caller, in order.
    acked: Vec<Cmd>,
    /// Number of acked commands guaranteed durable (policy floor).
    floor: usize,
    /// The effective commands of the operation that errored out at the
    /// crash point, in frame order: they were undone in memory, but any
    /// *prefix* of their log frames may have reached disk (one frame for a
    /// single command, up to a whole group commit for `apply_batch` — a
    /// torn batch must surface as a clean frame prefix, never a gap).
    in_flight: Vec<Cmd>,
}

/// The commands of `cmds` that would append WAL frames when applied to a
/// file currently holding `shadow`: inserts always (insert or replace),
/// removes only when the key is present.
fn effective_cmds(shadow: &BTreeMap<u64, u64>, cmds: &[Command<u64, u64>]) -> Vec<Cmd> {
    let mut m = shadow.clone();
    let mut out = Vec::new();
    for c in cmds {
        match c {
            Command::Insert(k, v) => {
                m.insert(*k, *v);
                out.push(Cmd::Ins(*k, *v));
            }
            Command::Remove(k) => {
                if m.remove(k).is_some() {
                    out.push(Cmd::Rm(*k));
                }
            }
        }
    }
    out
}

/// A failed commit-window close revokes the `Relaxed` acks buffered in
/// that window: the file rewound them from memory and scrubbed their
/// frames, so the model must forget them too. `durable_lsn` counts the
/// effective commands made durable, which is exactly the surviving prefix
/// of `acked`.
fn retract_revoked(
    out: &mut RunOutcome,
    shadow: &mut BTreeMap<u64, u64>,
    f: &DurableFile<u64, u64, FaultFs>,
) {
    let durable = f.durable_lsn() as usize;
    if out.acked.len() > durable {
        out.acked.truncate(durable);
        shadow.clear();
        for &c in out.acked.iter() {
            apply_cmd(shadow, c);
        }
        out.floor = out.floor.min(durable);
    }
}

/// Runs `trace` until completion or the first crash-type error.
fn execute(fs: &FaultFs, trace: &[Op], policy: SyncPolicy) -> RunOutcome {
    let every = policy == SyncPolicy::EveryCommand;
    let windowed = matches!(policy, SyncPolicy::CommitWindow { .. });
    // Under CommitWindow the trace issues `Relaxed` commands: each acks as
    // soon as its frame is buffered, and durability arrives (or the ack is
    // revoked) at the window close — the adversarial case for the sweep.
    let durability = if windowed {
        Durability::Relaxed
    } else {
        Durability::Strict
    };
    let mut out = RunOutcome {
        file: None,
        acked: Vec::new(),
        floor: 0,
        in_flight: Vec::new(),
    };
    // Mirrors the acked history, so a crashed batch's effective commands
    // can be derived without touching the (possibly crashed) file.
    let mut shadow: BTreeMap<u64, u64> = BTreeMap::new();
    let Ok(mut f) = DurableFile::<u64, u64, _>::create_with(fs.clone(), DIR, cfg(), policy) else {
        return out; // crashed during create: nothing was acknowledged
    };
    for &op in trace {
        match op {
            Op::Insert(k, v) => match f.insert_with(k, v, durability) {
                Ok(_) => {
                    out.acked.push(Cmd::Ins(k, v));
                    shadow.insert(k, v);
                    if every {
                        out.floor = out.acked.len();
                    } else if windowed {
                        // A size-triggered auto-close silently advances
                        // durability for everything buffered so far.
                        out.floor = f.durable_lsn() as usize;
                    }
                }
                Err(DurableError::File(_)) | Err(DurableError::LogPoisoned) => {}
                Err(_) => {
                    if fs.crashed() {
                        out.in_flight = vec![Cmd::Ins(k, v)];
                        break;
                    }
                    // Transient failure: the command was undone and its
                    // frame scrubbed; the prefix check holds us to that.
                    // A failed window close also revoked the window's
                    // earlier Relaxed acks.
                    if windowed {
                        retract_revoked(&mut out, &mut shadow, &f);
                    }
                }
            },
            Op::Remove(k) => match f.remove_with(&k, durability) {
                Ok(Some(_)) => {
                    out.acked.push(Cmd::Rm(k));
                    shadow.remove(&k);
                    if every {
                        out.floor = out.acked.len();
                    } else if windowed {
                        out.floor = f.durable_lsn() as usize;
                    }
                }
                Ok(None) | Err(DurableError::LogPoisoned) => {}
                Err(_) => {
                    if fs.crashed() {
                        // remove only logs (and can only fail) when the
                        // key was present, so the in-flight command is real.
                        out.in_flight = vec![Cmd::Rm(k)];
                        break;
                    }
                    if windowed {
                        retract_revoked(&mut out, &mut shadow, &f);
                    }
                }
            },
            Op::Batch(bseed) => {
                let cmds = expand_batch(bseed);
                match f.apply_batch_durable(&cmds, durability) {
                    Ok(outcomes) => {
                        for (c, o) in cmds.iter().zip(&outcomes) {
                            let cmd = match (c, o) {
                                (
                                    Command::Insert(k, v),
                                    CommandOutcome::Inserted | CommandOutcome::Replaced(_),
                                ) => Cmd::Ins(*k, *v),
                                (Command::Remove(k), CommandOutcome::Removed(_)) => Cmd::Rm(*k),
                                _ => continue,
                            };
                            out.acked.push(cmd);
                            apply_cmd(&mut shadow, cmd);
                        }
                        // Group commit: the whole batch fsyncs as one unit.
                        if every {
                            out.floor = out.acked.len();
                        } else if windowed {
                            out.floor = f.durable_lsn() as usize;
                        }
                    }
                    Err(DurableError::LogPoisoned) => {}
                    Err(_) => {
                        if fs.crashed() {
                            // Any prefix of the batch's frames may have
                            // reached disk before the crash.
                            out.in_flight = effective_cmds(&shadow, &cmds);
                            break;
                        }
                        // Transient: the group commit was rolled back whole
                        // (log scrubbed to the pre-batch watermark, memory
                        // undone); nothing was acknowledged — and a failed
                        // window close revoked the window's Relaxed acks.
                        if windowed {
                            retract_revoked(&mut out, &mut shadow, &f);
                        }
                    }
                }
            }
            Op::Sync => match f.sync() {
                Ok(()) => out.floor = out.acked.len(),
                Err(_) => {
                    if fs.crashed() {
                        break;
                    }
                    // Under CommitWindow, sync closes the window; a failed
                    // close revoked its Relaxed acks.
                    if windowed {
                        retract_revoked(&mut out, &mut shadow, &f);
                    }
                }
            },
            Op::Checkpoint => match f.checkpoint() {
                Ok(()) => out.floor = out.acked.len(),
                Err(_) => {
                    if fs.crashed() {
                        break;
                    }
                    // A non-crash checkpoint failure may have poisoned the
                    // log; later commands turn into LogPoisoned no-ops
                    // until a retry succeeds. Under CommitWindow the
                    // checkpoint closes the window first, so a failure may
                    // also have revoked the window's Relaxed acks.
                    if windowed {
                        retract_revoked(&mut out, &mut shadow, &f);
                    }
                }
            },
        }
        if fs.crashed() {
            break;
        }
    }
    out.file = Some(f);
    out
}

/// Power-cycles, reopens, and checks the recovery contract.
fn check_recovery(fs: &FaultFs, policy: SyncPolicy, out: &RunOutcome) -> Result<(), String> {
    fs.power_cycle();
    let g = match DurableFile::<u64, u64, _>::open_with(fs.clone(), DIR, policy) {
        Ok(g) => g,
        Err(DurableError::NotInitialized) => {
            // Legal only if the crash beat create()'s checkpoint to disk.
            if out.acked.is_empty() && out.floor == 0 {
                return Ok(());
            }
            return Err("checkpoint vanished after acknowledged commands".into());
        }
        Err(e) => return Err(format!("recovery failed: {e}")),
    };
    g.check_invariants()
        .map_err(|e| format!("invariant violations after recovery: {e:?}"))?;
    let got: Vec<(u64, u64)> = g.iter().map(|(k, v)| (*k, *v)).collect();

    // The recovered state must be apply(acked[..p]) for some p in
    // [floor, len], or apply(acked) extended by a clean *prefix* of the
    // in-flight operation's frames (a torn group commit may land any
    // number of its frames, but never a gap and never out of order).
    let mut model = BTreeMap::new();
    let mut matched = false;
    for p in 0..=out.acked.len() {
        if p > 0 {
            apply_cmd(&mut model, out.acked[p - 1]);
        }
        if p >= out.floor {
            let want: Vec<(u64, u64)> = model.iter().map(|(k, v)| (*k, *v)).collect();
            if got == want {
                matched = true;
                break;
            }
            if p == out.acked.len() {
                let mut ext = model.clone();
                for c in &out.in_flight {
                    apply_cmd(&mut ext, *c);
                    let want: Vec<(u64, u64)> = ext.iter().map(|(k, v)| (*k, *v)).collect();
                    if got == want {
                        matched = true;
                        break;
                    }
                }
            }
        }
    }
    if !matched {
        return Err(format!(
            "recovered state is neither an acked prefix nor a clean in-flight frame prefix: \
             floor={} acked={} in_flight={:?} got {} records",
            out.floor,
            out.acked.len(),
            out.in_flight,
            got.len()
        ));
    }

    // The recovered file must stay usable: write, sync, reopen, read back.
    let mut g = g;
    g.insert(999_999, 1)
        .map_err(|e| format!("post-recovery insert failed: {e}"))?;
    g.sync()
        .map_err(|e| format!("post-recovery sync failed: {e}"))?;
    drop(g);
    let h = DurableFile::<u64, u64, _>::open_with(fs.clone(), DIR, policy)
        .map_err(|e| format!("second reopen failed: {e}"))?;
    if h.get(&999_999) != Some(&1) {
        return Err("post-recovery write lost on reopen".into());
    }
    h.check_invariants()
        .map_err(|e| format!("invariants after post-recovery write: {e:?}"))?;
    Ok(())
}

/// Counts the syscalls a fault-free run of `trace` makes.
fn dry_run(trace: &[Op], policy: SyncPolicy) -> u64 {
    let fs = FaultFs::new(FaultPlan::default());
    let out = execute(&fs, trace, policy);
    assert!(out.in_flight.is_empty(), "dry run must not fail");
    fs.syscalls()
}

/// Writes the failing sweep + seed + crash point where CI picks it up as
/// an artifact, and returns the message to panic with.
fn report_failure(sweep: &str, seed: u64, point: u64, detail: String) -> String {
    let line = format!("sweep={sweep} DSF_FAULT_SEED={seed} crash_point={point}\n{detail}\n");
    let target = std::env::var("CARGO_TARGET_DIR")
        .unwrap_or_else(|_| concat!(env!("CARGO_MANIFEST_DIR"), "/../../target").to_string());
    let _ = std::fs::create_dir_all(&target);
    let _ = std::fs::write(format!("{target}/fault-failure-seed.txt"), &line);
    line
}

/// Pinned regression seeds for this harness (satellite: the shimmed
/// proptest corpus format, shared with `proptest-regressions/`).
fn pinned_seeds(test_name: &str) -> Vec<u64> {
    proptest::corpus_seeds(env!("CARGO_MANIFEST_DIR"), file!(), test_name)
}

/// Sweeps the crash point across every syscall of the trace under
/// `policy`; returns (crash points explored, distinct crash kinds).
/// Ops per trace: Manual batches commands between fsyncs, so it needs a
/// longer trace to exercise as many syscalls as EveryCommand.
fn trace_len(policy: SyncPolicy) -> usize {
    match policy {
        SyncPolicy::EveryCommand => 48,
        SyncPolicy::Manual => 96,
        // A window closes every 4 frames (one write + one fsync), so the
        // syscall density sits between the other two policies.
        SyncPolicy::CommitWindow { .. } => 96,
    }
}

fn crash_sweep(sweep: &str, policy: SyncPolicy, run_seed: u64) -> (u64, BTreeSet<SyscallKind>) {
    let trace = gen_trace(run_seed, trace_len(policy));
    let total = dry_run(&trace, policy);
    let mut kinds = BTreeSet::new();
    let mut points = 0u64;
    let mut n = 1;
    while n <= total {
        let fs = FaultFs::new(FaultPlan::crash_at(n, run_seed ^ n));
        let out = execute(&fs, &trace, policy);
        if !fs.crashed() {
            panic!(
                "{}",
                report_failure(sweep, run_seed, n, "crash point never fired".into())
            );
        }
        if let Some(k) = fs.crash_kind() {
            kinds.insert(k);
        }
        points += 1;
        if let Err(e) = check_recovery(&fs, policy, &out) {
            panic!("{}", report_failure(sweep, run_seed, n, e));
        }
        n += stride();
    }
    (points, kinds)
}

#[test]
fn crash_sweep_every_command_policy() {
    for s in pinned_seeds("crash_sweep_every_command_policy")
        .into_iter()
        .chain([seed()])
    {
        let (points, kinds) = crash_sweep("every-command", SyncPolicy::EveryCommand, s);
        if stride() == 1 {
            assert!(points >= 70, "only {points} crash points explored");
            for k in [
                SyscallKind::Write,
                SyscallKind::SyncData,
                SyscallKind::Create,
                SyscallKind::SyncAll,
                SyscallKind::Rename,
                SyscallKind::SyncDir,
            ] {
                assert!(
                    kinds.contains(&k),
                    "no crash point landed on {k:?}: {kinds:?}"
                );
            }
        }
    }
}

#[test]
fn crash_sweep_manual_policy() {
    for s in pinned_seeds("crash_sweep_manual_policy")
        .into_iter()
        .chain([seed()])
    {
        let (points, kinds) = crash_sweep("manual", SyncPolicy::Manual, s);
        if stride() == 1 {
            assert!(points >= 70, "only {points} crash points explored");
            // Manual still syncs at explicit Sync ops and inside checkpoints.
            for k in [
                SyscallKind::Write,
                SyscallKind::SyncData,
                SyscallKind::Rename,
                SyscallKind::SyncDir,
            ] {
                assert!(
                    kinds.contains(&k),
                    "no crash point landed on {k:?}: {kinds:?}"
                );
            }
        }
    }
}

#[test]
fn crash_sweep_commit_window_policy() {
    for s in pinned_seeds("crash_sweep_commit_window_policy")
        .into_iter()
        .chain([seed()])
    {
        let (points, kinds) = crash_sweep("commit-window", WINDOW, s);
        if stride() == 1 {
            assert!(points >= 70, "only {points} crash points explored");
            // Closes fire at size triggers, Sync ops and checkpoints, so
            // crashes must land inside the window's write/fsync pair and
            // inside the checkpoint rename path.
            for k in [
                SyscallKind::Write,
                SyscallKind::SyncData,
                SyscallKind::Rename,
                SyscallKind::SyncDir,
            ] {
                assert!(
                    kinds.contains(&k),
                    "no crash point landed on {k:?}: {kinds:?}"
                );
            }
        }
    }
}

/// The double fault: a transient `EIO` immediately followed by a crash on
/// the *next* syscall — which is often the rollback/scrub path itself, the
/// hardest place to get right.
#[test]
fn double_fault_eio_then_crash_sweep() {
    for run_seed in pinned_seeds("double_fault_eio_then_crash_sweep")
        .into_iter()
        .chain([seed()])
    {
        double_fault_sweep(run_seed);
    }
}

fn double_fault_sweep(run_seed: u64) {
    for policy in [SyncPolicy::EveryCommand, SyncPolicy::Manual, WINDOW] {
        let trace = gen_trace(run_seed, trace_len(policy));
        let total = dry_run(&trace, policy);
        let mut n = 1;
        while n <= total {
            let plan = FaultPlan {
                crash_at: Some(n + 1),
                eio_at: vec![n],
                seed: run_seed ^ n.rotate_left(17),
            };
            let fs = FaultFs::new(plan);
            let out = execute(&fs, &trace, policy);
            // The EIO may reroute control flow so that fewer than n+1
            // syscalls ever happen; only crashed runs need recovery checks.
            if fs.crashed() {
                if let Err(e) = check_recovery(&fs, policy, &out) {
                    panic!("{}", report_failure("double-fault", run_seed, n, e));
                }
            }
            n += stride().max(2);
        }
    }
}

/// Transient-`EIO`-only sweep: no crash, so at the end the state must match
/// the acknowledged history **exactly** — failed commands fully scrubbed,
/// poisoned logs healed by a checkpoint retry, nothing lost, nothing extra.
#[test]
fn transient_eio_sweep_requires_exact_state() {
    for run_seed in pinned_seeds("transient_eio_sweep_requires_exact_state")
        .into_iter()
        .chain([seed()])
    {
        eio_sweep(run_seed);
    }
}

fn eio_sweep(run_seed: u64) {
    for policy in [SyncPolicy::EveryCommand, SyncPolicy::Manual, WINDOW] {
        let trace = gen_trace(run_seed, trace_len(policy));
        let total = dry_run(&trace, policy);
        let mut n = 1;
        while n <= total {
            let fs = FaultFs::new(FaultPlan::eio_at(n, run_seed ^ n));
            let mut out = execute(&fs, &trace, policy);
            assert!(!fs.crashed(), "EIO-only plan must never crash");
            if let Some(f) = out.file.as_mut() {
                // Heal a poisoned log (EIO in a checkpoint's rename/
                // sync_dir window) and make everything durable.
                if f.log_poisoned() {
                    f.checkpoint().unwrap_or_else(|e| {
                        panic!(
                            "{}",
                            report_failure(
                                "eio",
                                run_seed,
                                n,
                                format!("checkpoint retry failed: {e}")
                            )
                        )
                    });
                }
                f.sync().unwrap_or_else(|e| {
                    panic!(
                        "{}",
                        report_failure("eio", run_seed, n, format!("final sync failed: {e}"))
                    )
                });
                out.floor = out.acked.len();
                out.in_flight.clear();
                drop(out.file.take());
            }
            // (file == None: the EIO landed inside create() itself; the
            // recovery contract still holds with an empty history.)
            if let Err(e) = check_recovery(&fs, policy, &out) {
                panic!("{}", report_failure("eio", run_seed, n, e));
            }
            n += stride();
        }
    }
}

/// A `Relaxed` command must never be reported durable before its window's
/// fsync — and must actually be lost by a power cut that beats the close.
/// (Three closes: a Strict piggyback, the size trigger, an explicit sync.)
#[test]
fn relaxed_acks_are_not_durable_until_the_window_closes() {
    let fs = FaultFs::new(FaultPlan::default());
    let mut f = DurableFile::<u64, u64, _>::create_with(fs.clone(), DIR, cfg(), WINDOW).unwrap();
    f.insert_with(1, 10, Durability::Relaxed).unwrap();
    f.insert_with(2, 20, Durability::Relaxed).unwrap();
    assert_eq!(f.window_frames(), 2, "window must still be open");
    assert_eq!(f.appended_lsn(), 2);
    assert_eq!(
        f.durable_lsn(),
        0,
        "Relaxed acks reported durable before the window's fsync"
    );
    // Power-cut with the window open: neither command may survive.
    drop(f);
    fs.power_cycle();
    let mut g = DurableFile::<u64, u64, _>::open_with(fs.clone(), DIR, WINDOW).unwrap();
    assert_eq!(
        g.iter().count(),
        0,
        "un-fsynced window survived a power cut"
    );

    // Same two commands, but a Strict command arrives in the same window:
    // its close makes the earlier Relaxed acks durable along with it.
    g.insert_with(1, 10, Durability::Relaxed).unwrap();
    g.insert_with(2, 20, Durability::Relaxed).unwrap();
    assert_eq!(g.durable_lsn(), 0);
    g.insert_with(3, 30, Durability::Strict).unwrap();
    assert_eq!(g.window_frames(), 0, "Strict must close the window");
    assert_eq!(g.durable_lsn(), g.appended_lsn());
    drop(g);
    fs.power_cycle();
    let mut h = DurableFile::<u64, u64, _>::open_with(fs.clone(), DIR, WINDOW).unwrap();
    assert_eq!(h.iter().count(), 3, "closed window lost by a power cut");

    // The size trigger closes by itself at `max_frames` Relaxed commands.
    for i in 0..4u64 {
        h.insert_with(100 + i, i, Durability::Relaxed).unwrap();
    }
    assert_eq!(
        h.window_frames(),
        0,
        "size trigger did not close the window"
    );
    assert_eq!(h.durable_lsn(), h.appended_lsn());
    drop(h);
    fs.power_cycle();
    let j = DurableFile::<u64, u64, _>::open_with(fs.clone(), DIR, WINDOW).unwrap();
    assert_eq!(
        j.iter().count(),
        7,
        "size-triggered close lost by a power cut"
    );
}

/// The headline number for the acceptance criterion: the two WAL sweeps
/// together must explore at least 140 distinct crash points (the pool
/// writeback sweep in `dsf-pagestore` adds its own 60+).
#[test]
fn sweeps_explore_enough_crash_points() {
    if stride() != 1 {
        return; // quick mode samples; the full run enforces the bound
    }
    let trace_ec = gen_trace(seed(), trace_len(SyncPolicy::EveryCommand));
    let trace_m = gen_trace(seed(), trace_len(SyncPolicy::Manual));
    let total =
        dry_run(&trace_ec, SyncPolicy::EveryCommand) + dry_run(&trace_m, SyncPolicy::Manual);
    assert!(
        total >= 140,
        "WAL sweeps cover only {total} crash points; grow the trace"
    );
}
