//! # dsf-concurrent — a range-sharded concurrent dense file
//!
//! The paper's algorithms are sequential: every command runs its own
//! J-shift maintenance pass against shared calibrator state. The standard
//! deployment answer — used by every partitioned sequential store since —
//! is *range sharding*: split the key space into contiguous stripes, give
//! each stripe its own independent `(d,D)`-dense file behind a reader-writer
//! lock, and route commands by key. Shards never exchange records, so each
//! keeps the paper's per-command worst-case bound independently, updates to
//! different stripes run in parallel, and ordered scans visit shards in
//! key order (each stripe is still physically sequential on its own
//! extent).
//!
//! Limitations are inherent and documented: a severely skewed workload can
//! fill one shard while others sit empty (capacity is per shard — exactly
//! like any range-partitioned system), and a cross-shard scan releases one
//! shard's lock before taking the next, so it is *per-shard* consistent
//! rather than a global snapshot.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod tel;

use parking_lot::RwLock;

use dsf_core::{
    Command, CommandOutcome, DenseFile, DenseFileConfig, DsfError, InvariantViolation, OpStats,
};

/// How keys map to shards: `shard i` owns `[i·stripe, (i+1)·stripe)` with
/// the last shard absorbing the remainder of the `u64` space.
#[derive(Debug, Clone, Copy)]
struct Router {
    shards: u32,
    stripe: u64,
}

impl Router {
    fn new(shards: u32) -> Self {
        // Ceil so that `shards × stripe` covers the whole space.
        let stripe = (u64::MAX / u64::from(shards)).saturating_add(1);
        Router { shards, stripe }
    }

    fn shard_of(&self, key: u64) -> usize {
        ((key / self.stripe) as usize).min(self.shards as usize - 1)
    }

    /// First key of a shard (for scan planning).
    fn shard_start(&self, shard: usize) -> u64 {
        self.stripe.saturating_mul(shard as u64)
    }
}

/// A concurrent ordered map: `N` range shards, each an independent
/// [`DenseFile`] behind a [`parking_lot::RwLock`].
///
/// ```
/// use dsf_concurrent::ShardedFile;
/// use dsf_core::DenseFileConfig;
///
/// let file: ShardedFile<String> =
///     ShardedFile::new(4, DenseFileConfig::control2(64, 8, 40)).unwrap();
/// file.insert(10, "ten".into()).unwrap();
/// file.insert(u64::MAX - 1, "far".into()).unwrap();
/// assert_eq!(file.get(&10), Some("ten".into()));
/// assert_eq!(file.len(), 2);
/// let keys: Vec<u64> = file.collect_range(0, u64::MAX, usize::MAX)
///     .into_iter().map(|(k, _)| k).collect();
/// assert_eq!(keys, vec![10, u64::MAX - 1]);
/// ```
pub struct ShardedFile<V> {
    router: Router,
    shards: Vec<RwLock<DenseFile<u64, V>>>,
    /// Per-shard `dsf_shard_commands_total{shard="i"}` handles, registered
    /// at construction so the hot path only bumps a relaxed atomic.
    shard_commands: Vec<std::sync::Arc<dsf_telemetry::Counter>>,
    /// Fixed at construction (`shards × d·M`); cached so callers don't take
    /// every shard lock to read a constant.
    capacity: u64,
}

impl<V> ShardedFile<V> {
    /// Creates `shards` stripes, each an empty dense file built from
    /// `per_shard` (so total capacity is `shards × d·M`).
    pub fn new(shards: u32, per_shard: DenseFileConfig) -> Result<Self, DsfError> {
        assert!(shards > 0, "at least one shard required");
        let mut v = Vec::with_capacity(shards as usize);
        let mut shard_commands = Vec::with_capacity(shards as usize);
        for s in 0..shards {
            v.push(RwLock::new(DenseFile::new(per_shard)?));
            shard_commands.push(dsf_telemetry::global().counter_with(
                "dsf_shard_commands_total",
                &[("shard", &s.to_string())],
                "structural commands routed to this shard",
            ));
        }
        let capacity = v.iter().map(|s| s.read().capacity()).sum();
        Ok(ShardedFile {
            router: Router::new(shards),
            shards: v,
            shard_commands,
            capacity,
        })
    }

    /// Takes shard `s`'s write lock, feeding `dsf_shard_lock_wait_micros`
    /// on sampled acquisitions (1-in-16, and only while telemetry is on —
    /// the common case is one branch and a plain `write()`).
    ///
    /// While the flight recorder is on, every acquisition first parks the
    /// upcoming command's sequence number (`prepare_command`) so the
    /// recorded lock wait and the command that follows share one seq.
    fn lock_write(&self, s: usize) -> parking_lot::RwLockWriteGuard<'_, DenseFile<u64, V>> {
        if dsf_flight::enabled() {
            dsf_flight::prepare_command();
            let t0 = std::time::Instant::now();
            let guard = self.shards[s].write();
            dsf_flight::record_lock_wait(
                s as u64,
                u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
            );
            if dsf_telemetry::enabled() {
                let t = tel::tel();
                let n = t
                    .sample_clock
                    .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                if n.is_multiple_of(tel::LOCK_WAIT_SAMPLE_EVERY) {
                    t.lock_wait
                        .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                }
            }
            return guard;
        }
        if dsf_telemetry::enabled() {
            let t = tel::tel();
            let n = t
                .sample_clock
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            if n.is_multiple_of(tel::LOCK_WAIT_SAMPLE_EVERY) {
                let t0 = std::time::Instant::now();
                let guard = self.shards[s].write();
                t.lock_wait
                    .record(u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX));
                return guard;
            }
        }
        self.shards[s].write()
    }

    /// Number of shards.
    pub fn shard_count(&self) -> u32 {
        self.router.shards
    }

    /// The shard index a key routes to.
    pub fn shard_of(&self, key: u64) -> usize {
        self.router.shard_of(key)
    }

    /// Total records across shards (takes each read lock briefly).
    pub fn len(&self) -> u64 {
        self.shards.iter().map(|s| s.read().len()).sum()
    }

    /// Whether no shard holds records.
    pub fn is_empty(&self) -> bool {
        self.shards.iter().all(|s| s.read().is_empty())
    }

    /// Total capacity (`shards × d·M`); a constant, read lock-free.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bulk-loads strictly-ascending records, each stripe receiving its
    /// key range via [`DenseFile::bulk_load`] — so every shard starts from
    /// the uniform-density spread of Theorem 5.5, exactly as a single
    /// dense file would (incremental inserts leave a different physical
    /// layout).
    ///
    /// # Errors
    ///
    /// Any per-shard [`DenseFile::bulk_load`] error (shard not empty,
    /// records out of order, or one stripe over its `d·M` capacity).
    /// Stripes loaded before the failing one keep their records.
    pub fn bulk_load<I>(&self, items: I) -> Result<(), DsfError>
    where
        I: IntoIterator<Item = (u64, V)>,
    {
        let n = self.router.shards as usize;
        let mut parts: Vec<Vec<(u64, V)>> = (0..n).map(|_| Vec::new()).collect();
        for (k, v) in items {
            parts[self.router.shard_of(k)].push((k, v));
        }
        for (s, part) in parts.into_iter().enumerate() {
            if !part.is_empty() {
                self.shards[s].write().bulk_load(part)?;
            }
        }
        Ok(())
    }

    /// Inserts a record into its stripe.
    ///
    /// # Errors
    ///
    /// [`DsfError::CapacityExceeded`] when the *stripe* is full — range
    /// partitioning means a skewed workload can exhaust one stripe early.
    pub fn insert(&self, key: u64, value: V) -> Result<Option<V>, DsfError> {
        let s = self.router.shard_of(key);
        self.shard_commands[s].inc();
        self.lock_write(s).insert(key, value)
    }

    /// Deletes a key from its stripe.
    pub fn remove(&self, key: &u64) -> Option<V> {
        let s = self.router.shard_of(*key);
        self.shard_commands[s].inc();
        self.lock_write(s).remove(key)
    }

    /// Applies a batch of commands, partitioned by stripe and executed
    /// **in parallel**: every shard the batch touches gets one scoped
    /// thread (the [`par_collect_range`](Self::par_collect_range) pattern)
    /// that takes the shard's write lock *once*, runs its sub-batch through
    /// [`DenseFile::apply_batch`], and releases — one lock acquisition per
    /// shard per batch instead of one per command.
    ///
    /// Outcomes are returned in the caller's command order. Equivalence
    /// with one-at-a-time application holds because stripes are
    /// key-disjoint (commands on different shards commute) and each
    /// shard's sub-batch preserves the caller's relative order.
    pub fn apply_batch(&self, cmds: &[Command<u64, V>]) -> Vec<CommandOutcome<V>>
    where
        V: Clone + Send + Sync,
    {
        self.apply_batch_with(cmds, |_, _, _| {})
    }

    /// [`apply_batch`](Self::apply_batch) with a per-command observer,
    /// called with `(caller_index, outcome, flight_seq)` on the applying
    /// shard's thread immediately after each command completes —
    /// `flight_seq` is [`dsf_flight::current_seq`] at that instant (0 when
    /// the recorder is off), which is exactly the sequence number the
    /// flight ring attributed the command's page charges to. This is how
    /// the network front-end stamps every response with the seq a later
    /// `dsf flight replay` will report, end to end.
    ///
    /// The observer may be called from several shard threads concurrently
    /// (hence `Fn + Sync`), but for any single caller index it is called
    /// exactly once.
    pub fn apply_batch_with<F>(
        &self,
        cmds: &[Command<u64, V>],
        observe: F,
    ) -> Vec<CommandOutcome<V>>
    where
        V: Clone + Send + Sync,
        F: Fn(usize, &CommandOutcome<V>, u64) + Sync,
    {
        // Partition by stripe, remembering each command's original index.
        type Part<V> = (Vec<usize>, Vec<Command<u64, V>>);
        let n_shards = self.router.shards as usize;
        let mut parts: Vec<Part<V>> = (0..n_shards).map(|_| (Vec::new(), Vec::new())).collect();
        for (i, cmd) in cmds.iter().enumerate() {
            let s = self.router.shard_of(*cmd.key());
            parts[s].0.push(i);
            parts[s].1.push(cmd.clone());
        }
        let observe = &observe;
        let results: Vec<(Vec<usize>, Vec<CommandOutcome<V>>)> = std::thread::scope(|scope| {
            let handles: Vec<_> = parts
                .into_iter()
                .enumerate()
                .filter(|(_, (idx, _))| !idx.is_empty())
                .map(|(s, (idx, sub))| {
                    self.shard_commands[s].add(sub.len() as u64);
                    scope.spawn(move || {
                        let mut shard = self.lock_write(s);
                        let outcomes = shard.apply_batch_with(&sub, |j, o| {
                            observe(idx[j], o, dsf_flight::current_seq());
                        });
                        (idx, outcomes)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard batch panicked"))
                .collect()
        });
        // Scatter the per-shard outcomes back into caller order.
        let mut out: Vec<Option<CommandOutcome<V>>> = (0..cmds.len()).map(|_| None).collect();
        for (idx, outcomes) in results {
            for (i, o) in idx.into_iter().zip(outcomes) {
                out[i] = Some(o);
            }
        }
        out.into_iter()
            .map(|o| o.expect("every command routes to exactly one shard"))
            .collect()
    }

    /// Looks a key up (read lock; concurrent lookups don't block each
    /// other).
    pub fn get(&self, key: &u64) -> Option<V>
    where
        V: Clone,
    {
        self.shards[self.router.shard_of(*key)]
            .read()
            .get(key)
            .cloned()
    }

    /// Whether a key is present.
    pub fn contains_key(&self, key: &u64) -> bool {
        self.shards[self.router.shard_of(*key)]
            .read()
            .contains_key(key)
    }

    /// Streams records with keys in `[lo, hi]` in ascending order into `f`,
    /// visiting shards in key order. Per-shard consistent: each shard's
    /// read lock is held only while that shard streams.
    pub fn scan<F: FnMut(u64, &V)>(&self, lo: u64, hi: u64, mut f: F) {
        let first = self.router.shard_of(lo);
        let last = self.router.shard_of(hi);
        for s in first..=last {
            let shard = self.shards[s].read();
            let from = lo.max(self.router.shard_start(s));
            for (k, v) in shard.range(from..=hi) {
                f(*k, v);
            }
        }
    }

    /// Exact number of records of `shard` (already read-locked) with keys
    /// in `[from, hi]`, from resident rank metadata — no page access.
    fn count_in(shard: &DenseFile<u64, V>, from: u64, hi: u64) -> usize {
        let thru_hi = shard.rank(&hi) + u64::from(shard.contains_key(&hi));
        thru_hi.saturating_sub(shard.rank(&from)) as usize
    }

    /// Collects up to `limit` records with keys in `[lo, hi]`, streaming
    /// into one output buffer that is pre-sized per shard (an exact
    /// rank-based count taken under the same read lock the records stream
    /// under, so the buffer never reallocates mid-shard).
    pub fn collect_range(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, V)>
    where
        V: Clone,
    {
        let mut out: Vec<(u64, V)> = Vec::new();
        let first = self.router.shard_of(lo);
        let last = self.router.shard_of(hi);
        'outer: for s in first..=last {
            let shard = self.shards[s].read();
            let from = lo.max(self.router.shard_start(s));
            let expect = Self::count_in(&shard, from, hi).min(limit - out.len());
            out.reserve(expect);
            for (k, v) in shard.range(from..=hi) {
                if out.len() >= limit {
                    break 'outer;
                }
                out.push((*k, v.clone()));
            }
        }
        out
    }

    /// Parallel [`collect_range`](Self::collect_range): every shard the
    /// range intersects scans concurrently on its own thread (each under
    /// its own read lock), and the per-shard results — already sorted and
    /// key-disjoint by construction — are merged in shard order.
    ///
    /// Same consistency contract as the sequential version (per-shard, not
    /// a global snapshot). `limit` is applied to the merged stream, so at
    /// most `limit` records are returned, taken from the lowest keys.
    pub fn par_collect_range(&self, lo: u64, hi: u64, limit: usize) -> Vec<(u64, V)>
    where
        V: Clone + Send + Sync,
    {
        let first = self.router.shard_of(lo);
        let last = self.router.shard_of(hi);
        let parts: Vec<Vec<(u64, V)>> = std::thread::scope(|scope| {
            let handles: Vec<_> = (first..=last)
                .map(|s| {
                    scope.spawn(move || {
                        let shard = self.shards[s].read();
                        let from = lo.max(self.router.shard_start(s));
                        let expect = Self::count_in(&shard, from, hi).min(limit);
                        let mut part = Vec::with_capacity(expect);
                        for (k, v) in shard.range(from..=hi) {
                            if part.len() >= limit {
                                break;
                            }
                            part.push((*k, v.clone()));
                        }
                        part
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard scan panicked"))
                .collect()
        });
        // Stripes are contiguous and ascending: concatenation in shard
        // order IS the key-order merge.
        let total: usize = parts.iter().map(Vec::len).sum();
        let mut out = Vec::with_capacity(total.min(limit));
        for part in parts {
            for kv in part {
                if out.len() >= limit {
                    return out;
                }
                out.push(kv);
            }
        }
        out
    }

    /// Parallel [`scan`](Self::scan): gathers each shard's stripe
    /// concurrently (see [`par_collect_range`](Self::par_collect_range)),
    /// then replays the merged stream through `f` in ascending key order.
    pub fn par_scan<F: FnMut(u64, &V)>(&self, lo: u64, hi: u64, mut f: F)
    where
        V: Clone + Send + Sync,
    {
        for (k, v) in self.par_collect_range(lo, hi, usize::MAX) {
            f(k, &v);
        }
    }

    /// Number of records with keys strictly below `key` across all shards.
    pub fn rank(&self, key: &u64) -> u64 {
        let target = self.router.shard_of(*key);
        let mut rank = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            match s.cmp(&target) {
                std::cmp::Ordering::Less => rank += shard.read().len(),
                std::cmp::Ordering::Equal => rank += shard.read().rank(key),
                std::cmp::Ordering::Greater => break,
            }
        }
        rank
    }

    /// Runs the full paper invariant checker on every shard.
    pub fn check_invariants(&self) -> Result<(), Vec<(usize, InvariantViolation)>> {
        let mut out = Vec::new();
        for (s, shard) in self.shards.iter().enumerate() {
            if let Err(vs) = shard.read().check_invariants() {
                out.extend(vs.into_iter().map(|v| (s, v)));
            }
        }
        if out.is_empty() {
            Ok(())
        } else {
            Err(out)
        }
    }

    /// Worst single command across shards (the per-stripe worst-case bound).
    pub fn max_command_accesses(&self) -> u64 {
        self.shards
            .iter()
            .map(|s| s.read().op_stats().max_accesses)
            .max()
            .unwrap_or(0)
    }

    /// One [`OpStats`] for the whole structure: every shard's stats folded
    /// together with [`OpStats::merge`] (sums and histograms add, extremes
    /// take the max). Per-shard consistent — each shard's read lock is held
    /// only while that shard is folded in, like [`len`](Self::len).
    pub fn merged_op_stats(&self) -> OpStats {
        let mut out = OpStats::default();
        for shard in &self.shards {
            out.merge(shard.read().op_stats());
        }
        out
    }

    /// Runs `f` against one shard's file under its read lock (metrics,
    /// diagnostics).
    pub fn with_shard<T>(&self, shard: usize, f: impl FnOnce(&DenseFile<u64, V>) -> T) -> T {
        f(&self.shards[shard].read())
    }

    /// Vacuums every shard (each under its own write lock, one at a time).
    pub fn vacuum_all(&self) {
        for shard in &self.shards {
            shard.write().vacuum();
        }
    }
}

impl<V: dsf_core::snapshot::Codec + Clone> ShardedFile<V> {
    /// Writes a globally consistent snapshot: takes *all* shard read locks
    /// before serializing any of them, so the result is a point-in-time
    /// image of the whole map (writers wait; readers proceed).
    pub fn write_snapshot<W: std::io::Write>(
        &self,
        w: &mut W,
    ) -> Result<(), dsf_core::SnapshotError> {
        let guards: Vec<_> = self.shards.iter().map(|s| s.read()).collect();
        (guards.len() as u32).encode_to(w)?;
        for g in &guards {
            let mut bytes = Vec::new();
            g.write_snapshot(&mut bytes)?;
            (bytes.len() as u64).encode_to(w)?;
            w.write_all(&bytes).map_err(dsf_core::SnapshotError::Io)?;
        }
        Ok(())
    }

    /// Restores a sharded file written by [`ShardedFile::write_snapshot`].
    pub fn read_snapshot<R: std::io::Read>(r: &mut R) -> Result<Self, dsf_core::SnapshotError> {
        let mut all = Vec::new();
        r.read_to_end(&mut all)
            .map_err(dsf_core::SnapshotError::Io)?;
        let mut input = all.as_slice();
        let shards = read_u32(&mut input)?;
        if shards == 0 {
            return Err(dsf_core::SnapshotError::Corrupt("zero shards"));
        }
        let router = Router::new(shards);
        let mut v = Vec::with_capacity(shards as usize);
        for shard in 0..shards as usize {
            let len = read_u64(&mut input)? as usize;
            if input.len() < len {
                return Err(dsf_core::SnapshotError::Corrupt("short shard payload"));
            }
            let (head, tail) = input.split_at(len);
            input = tail;
            let mut head = head;
            let file: DenseFile<u64, V> = DenseFile::read_snapshot(&mut head)?;
            // The outer framing carries no checksum, so a reordered or
            // forged snapshot could place keys in the wrong stripe — where
            // routing would silently miss them. Reject any shard whose key
            // range escapes its stripe.
            let in_stripe = |kv: (&u64, &V)| router.shard_of(*kv.0) == shard;
            if !(file.first().is_none_or(in_stripe) && file.last().is_none_or(in_stripe)) {
                return Err(dsf_core::SnapshotError::Corrupt(
                    "shard contents outside its key stripe",
                ));
            }
            v.push(RwLock::new(file));
        }
        if !input.is_empty() {
            return Err(dsf_core::SnapshotError::Corrupt("trailing bytes"));
        }
        let capacity = v.iter().map(|s| s.read().capacity()).sum();
        let shard_commands = (0..shards)
            .map(|s| {
                dsf_telemetry::global().counter_with(
                    "dsf_shard_commands_total",
                    &[("shard", &s.to_string())],
                    "structural commands routed to this shard",
                )
            })
            .collect();
        Ok(ShardedFile {
            router,
            shards: v,
            shard_commands,
            capacity,
        })
    }
}

/// Tiny write-side helpers (the core `Codec` writes into a `Vec`; here we
/// stream straight to the writer).
trait EncodeTo {
    fn encode_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), dsf_core::SnapshotError>;
}

impl EncodeTo for u32 {
    fn encode_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), dsf_core::SnapshotError> {
        w.write_all(&self.to_le_bytes())
            .map_err(dsf_core::SnapshotError::Io)
    }
}

impl EncodeTo for u64 {
    fn encode_to<W: std::io::Write>(&self, w: &mut W) -> Result<(), dsf_core::SnapshotError> {
        w.write_all(&self.to_le_bytes())
            .map_err(dsf_core::SnapshotError::Io)
    }
}

fn read_u32(input: &mut &[u8]) -> Result<u32, dsf_core::SnapshotError> {
    if input.len() < 4 {
        return Err(dsf_core::SnapshotError::Corrupt("short header"));
    }
    let (head, tail) = input.split_at(4);
    *input = tail;
    Ok(u32::from_le_bytes(head.try_into().expect("four bytes")))
}

fn read_u64(input: &mut &[u8]) -> Result<u64, dsf_core::SnapshotError> {
    if input.len() < 8 {
        return Err(dsf_core::SnapshotError::Corrupt("short header"));
    }
    let (head, tail) = input.split_at(8);
    *input = tail;
    Ok(u64::from_le_bytes(head.try_into().expect("eight bytes")))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn file(shards: u32) -> ShardedFile<u64> {
        ShardedFile::new(shards, DenseFileConfig::control2(32, 8, 40)).unwrap()
    }

    #[test]
    fn routing_covers_the_whole_key_space() {
        let f = file(5);
        assert_eq!(f.shard_of(0), 0);
        assert_eq!(f.shard_of(u64::MAX), 4);
        // Boundaries are monotone.
        let mut prev = 0;
        for k in (0..64).map(|i| i * (u64::MAX / 63)) {
            let s = f.shard_of(k);
            assert!(s >= prev);
            prev = s;
        }
    }

    #[test]
    fn basic_map_semantics() {
        let f = file(4);
        assert_eq!(f.insert(1, 10).unwrap(), None);
        assert_eq!(f.insert(u64::MAX / 2, 20).unwrap(), None);
        assert_eq!(f.insert(u64::MAX - 5, 30).unwrap(), None);
        assert_eq!(f.insert(1, 11).unwrap(), Some(10));
        assert_eq!(f.len(), 3);
        assert_eq!(f.get(&1), Some(11));
        assert!(f.contains_key(&(u64::MAX - 5)));
        assert_eq!(f.remove(&1), Some(11));
        assert_eq!(f.remove(&1), None);
        f.check_invariants().unwrap();
    }

    #[test]
    fn scans_cross_shard_boundaries_in_order() {
        let f = file(8);
        let stripe = u64::MAX / 8 + 1;
        // 70 keys spread over ~7 stripes (stays well inside u64).
        let keys: Vec<u64> = (0..70u64).map(|i| i * (stripe / 10)).collect();
        for &k in &keys {
            f.insert(k, k).unwrap();
        }
        let got: Vec<u64> = f
            .collect_range(0, u64::MAX, usize::MAX)
            .into_iter()
            .map(|(k, _)| k)
            .collect();
        let mut want = keys.clone();
        want.sort_unstable();
        want.dedup();
        assert_eq!(got, want);
        // Bounded range crossing one boundary.
        let lo = stripe - 5 * (stripe / 10);
        let hi = stripe + 5 * (stripe / 10);
        let got = f.collect_range(lo, hi, usize::MAX);
        assert!(got.iter().all(|(k, _)| *k >= lo && *k <= hi));
        assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        // Limit applies across shards.
        assert_eq!(f.collect_range(0, u64::MAX, 7).len(), 7);
    }

    #[test]
    fn rank_spans_shards() {
        let f = file(4);
        let stripe = u64::MAX / 4 + 1;
        for i in 0..40u64 {
            f.insert(i * (stripe / 10), i).unwrap();
        }
        assert_eq!(f.rank(&0), 0);
        assert_eq!(f.rank(&u64::MAX), 40);
        for probe in [stripe / 2, stripe * 2, stripe * 3 + 17] {
            let want = (0..40u64).filter(|i| i * (stripe / 10) < probe).count() as u64;
            assert_eq!(f.rank(&probe), want, "rank({probe})");
        }
    }

    #[test]
    fn capacity_is_per_stripe() {
        let f = ShardedFile::<u64>::new(2, DenseFileConfig::control2(2, 1, 8)).unwrap();
        assert_eq!(f.capacity(), 4);
        // Fill shard 0 only: two keys fit, the third fails even though
        // shard 1 is empty.
        f.insert(0, 0).unwrap();
        f.insert(1, 0).unwrap();
        assert!(matches!(
            f.insert(2, 0),
            Err(DsfError::CapacityExceeded { .. })
        ));
        // Shard 1 still accepts.
        f.insert(u64::MAX, 0).unwrap();
        assert_eq!(f.len(), 3);
    }

    #[test]
    fn parallel_writers_on_distinct_stripes() {
        let f = Arc::new(file(8));
        let stripe = u64::MAX / 8 + 1;
        let mut handles = Vec::new();
        for t in 0..8u64 {
            let f = Arc::clone(&f);
            handles.push(std::thread::spawn(move || {
                let base = t * stripe;
                for i in 0..200u64 {
                    f.insert(base + i * 1000, t).unwrap();
                }
                for i in 0..100u64 {
                    assert_eq!(f.remove(&(base + i * 2000)), Some(t));
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(f.len(), 8 * 100);
        f.check_invariants().unwrap();
        let all = f.collect_range(0, u64::MAX, usize::MAX);
        assert_eq!(all.len(), 800);
        assert!(all.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn sharded_snapshot_round_trip() {
        let f = file(4);
        for i in 0..200u64 {
            f.insert(i * (u64::MAX / 256), i).unwrap();
        }
        f.vacuum_all();
        let mut bytes = Vec::new();
        f.write_snapshot(&mut bytes).unwrap();
        let g: ShardedFile<u64> = ShardedFile::read_snapshot(&mut bytes.as_slice()).unwrap();
        assert_eq!(g.shard_count(), 4);
        assert_eq!(g.len(), f.len());
        let a = f.collect_range(0, u64::MAX, usize::MAX);
        let b = g.collect_range(0, u64::MAX, usize::MAX);
        assert_eq!(a, b);
        g.check_invariants().unwrap();

        // Corruption is rejected.
        let mut bad = bytes.clone();
        let n = bad.len();
        bad[n / 2] ^= 0xff;
        assert!(ShardedFile::<u64>::read_snapshot(&mut bad.as_slice()).is_err());
        assert!(ShardedFile::<u64>::read_snapshot(&mut &bytes[..n / 3]).is_err());

        // A reordered snapshot (shard payloads swapped) must be rejected:
        // its keys would live outside their router stripes.
        let mut fresh: Vec<ShardedFile<u64>> = Vec::new();
        let _ = &mut fresh;
        let mut input = &bytes[4..];
        let mut payloads: Vec<&[u8]> = Vec::new();
        for _ in 0..4 {
            let len = u64::from_le_bytes(input[..8].try_into().unwrap()) as usize;
            payloads.push(&input[..8 + len]);
            input = &input[8 + len..];
        }
        payloads.swap(0, 3);
        let mut forged = bytes[..4].to_vec();
        for p in payloads {
            forged.extend_from_slice(p);
        }
        assert!(
            ShardedFile::<u64>::read_snapshot(&mut forged.as_slice()).is_err(),
            "reordered shards must be rejected"
        );
    }

    #[test]
    fn par_collect_range_matches_sequential() {
        let f = file(8);
        let stripe = u64::MAX / 8 + 1;
        for i in 0..300u64 {
            f.insert(i * (stripe / 41), i).unwrap();
        }
        for (lo, hi) in [
            (0, u64::MAX),
            (stripe / 2, stripe * 3),
            (stripe * 2 + 7, stripe * 2 + 7), // single key range
            (stripe * 6, u64::MAX),
            (u64::MAX - 3, u64::MAX), // empty
        ] {
            let seq = f.collect_range(lo, hi, usize::MAX);
            let par = f.par_collect_range(lo, hi, usize::MAX);
            assert_eq!(seq, par, "[{lo}, {hi}]");
        }
        // Limits truncate the merged stream from the low end.
        assert_eq!(
            f.par_collect_range(0, u64::MAX, 13),
            f.collect_range(0, u64::MAX, 13)
        );
        // par_scan replays the same stream in order.
        let mut scanned = Vec::new();
        f.par_scan(0, u64::MAX, |k, v| scanned.push((k, *v)));
        assert_eq!(scanned, f.collect_range(0, u64::MAX, usize::MAX));
    }

    #[test]
    fn cross_boundary_ranges_stay_sorted_under_concurrent_inserts() {
        // Satellite acceptance: a range spanning shard boundaries must
        // return globally sorted, in-bounds keys while writers hammer the
        // same stripes.
        let f = Arc::new(ShardedFile::<u64>::new(8, DenseFileConfig::control2(64, 8, 40)).unwrap());
        let stripe = u64::MAX / 8 + 1;
        for i in 0..400u64 {
            f.insert(i * (stripe / 53), i).unwrap();
        }
        let lo = stripe / 2; // middle of shard 0
        let hi = stripe * 5 + stripe / 2; // middle of shard 5
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let writers: Vec<_> = (0..4u64)
            .map(|t| {
                let f = Arc::clone(&f);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut i = 0u64;
                    while !stop.load(std::sync::atomic::Ordering::Relaxed) {
                        // Each writer walks its own stripe (t and t+4), so
                        // inserts land on both sides of the scanned range.
                        let shard = if i.is_multiple_of(2) { t } else { t + 4 };
                        let k = shard * stripe + stripe / 4 + i * 7919 + 1;
                        let _ = f.insert(k, t);
                        i = (i + 1) % 400;
                    }
                })
            })
            .collect();
        for _ in 0..60 {
            for result in [
                f.collect_range(lo, hi, usize::MAX),
                f.par_collect_range(lo, hi, usize::MAX),
            ] {
                assert!(
                    result.windows(2).all(|w| w[0].0 < w[1].0),
                    "out-of-order keys in cross-boundary range"
                );
                assert!(result.iter().all(|(k, _)| *k >= lo && *k <= hi));
                assert!(!result.is_empty());
            }
        }
        stop.store(true, std::sync::atomic::Ordering::Relaxed);
        for w in writers {
            w.join().unwrap();
        }
        f.check_invariants().unwrap();
    }

    #[test]
    fn merged_op_stats_aggregates_all_shards() {
        let f = file(4);
        let stripe = u64::MAX / 4 + 1;
        for i in 0..80u64 {
            f.insert(i * (stripe / 30), i).unwrap();
        }
        for i in 0..10u64 {
            assert!(f.remove(&(i * (stripe / 30))).is_some());
        }
        let merged = f.merged_op_stats();
        let mut want_commands = 0;
        let mut want_total = 0;
        let mut want_max = 0;
        for s in 0..f.shard_count() as usize {
            f.with_shard(s, |shard| {
                want_commands += shard.op_stats().commands;
                want_total += shard.op_stats().total_accesses;
                want_max = want_max.max(shard.op_stats().max_accesses);
            });
        }
        assert_eq!(merged.commands, 90);
        assert_eq!(merged.commands, want_commands);
        assert_eq!(merged.total_accesses, want_total);
        assert_eq!(merged.max_accesses, want_max);
        assert_eq!(merged.histogram.total(), want_commands);
    }

    #[test]
    fn readers_run_against_concurrent_writers() {
        let f = Arc::new(file(4));
        for i in 0..400u64 {
            f.insert(i * (u64::MAX / 400), i).unwrap();
        }
        let writer = {
            let f = Arc::clone(&f);
            std::thread::spawn(move || {
                // Spread writes over all stripes to stay within per-stripe
                // capacity.
                for i in 0..500u64 {
                    f.insert(i * (u64::MAX / 512) + 13, i).unwrap();
                }
            })
        };
        // Readers: scans must always be internally sorted even mid-write.
        for _ in 0..50 {
            let got = f.collect_range(0, u64::MAX, 10_000);
            assert!(got.windows(2).all(|w| w[0].0 < w[1].0));
        }
        writer.join().unwrap();
        f.check_invariants().unwrap();
        assert!(f.max_command_accesses() > 0);
    }
}
