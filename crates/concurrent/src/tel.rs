//! This crate's handles into the global telemetry spine.
//!
//! The sharded wrapper exports two things the per-shard `OpStats` cannot
//! show: *where* commands land (`dsf_shard_commands_total{shard="i"}` —
//! skew made visible, the known failure mode of range partitioning) and
//! *how long* writers wait for shard locks (`dsf_shard_lock_wait_micros`,
//! sampled ~1-in-16 so the `Instant` reads stay off most commands). All
//! no-ops while the global registry is disabled.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use dsf_telemetry::Histogram;

pub(crate) struct ConcurrentTel {
    /// `dsf_shard_lock_wait_micros` — sampled write-lock acquisition wait.
    pub lock_wait: Arc<Histogram>,
    /// Free-running clock driving the 1-in-16 sampling decision.
    pub sample_clock: AtomicU64,
}

/// Every 16th lock acquisition is timed.
pub(crate) const LOCK_WAIT_SAMPLE_EVERY: u64 = 16;

pub(crate) fn tel() -> &'static ConcurrentTel {
    static TEL: OnceLock<ConcurrentTel> = OnceLock::new();
    TEL.get_or_init(|| ConcurrentTel {
        lock_wait: dsf_telemetry::global().histogram(
            "dsf_shard_lock_wait_micros",
            "microseconds writers waited for a shard lock (1-in-16 sampled)",
        ),
        sample_clock: AtomicU64::new(0),
    })
}
