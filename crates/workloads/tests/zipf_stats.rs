//! Statistical sanity for the Zipf sampler and the streams built on it.
//!
//! `Zipf::sample` drives the E17 zipfian scenario, so a silently broken
//! CDF (off-by-one in `partition_point`, un-normalized weights, inverted
//! skew) would quietly invalidate every skewed benchmark. These tests
//! compare large empirical samples against the analytic distribution
//! across a theta sweep, and check `zipf_ops` honors its `read_ratio`
//! in expectation. Everything is seeded, so the observed frequencies are
//! reproducible and the tolerances can stay tight without flakiness.

use dsf_workloads::{zipf_ops, Op, Zipf};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// The analytic Zipf pmf for `n` ranks at exponent `theta`.
fn analytic_pmf(n: usize, theta: f64) -> Vec<f64> {
    let weights: Vec<f64> = (0..n).map(|i| 1.0 / ((i + 1) as f64).powf(theta)).collect();
    let h: f64 = weights.iter().sum();
    weights.into_iter().map(|w| w / h).collect()
}

/// Draws `samples` ranks and returns the empirical pmf.
fn empirical_pmf(n: usize, theta: f64, seed: u64, samples: usize) -> Vec<f64> {
    let zipf = Zipf::new(n, theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut counts = vec![0u64; n];
    for _ in 0..samples {
        let rank = zipf.sample(&mut rng);
        assert!(rank < n, "sample out of domain");
        counts[rank] += 1;
    }
    counts
        .into_iter()
        .map(|c| c as f64 / samples as f64)
        .collect()
}

#[test]
fn zipf_matches_analytic_distribution_across_theta_sweep() {
    const N: usize = 100;
    const SAMPLES: usize = 200_000;
    // theta = 0 is uniform; 0.99 is the YCSB classic; 1.5 is heavily
    // skewed. The sweep catches errors that only show at one extreme
    // (e.g. a normalization bug vanishes at theta = 0).
    for (i, &theta) in [0.0, 0.5, 0.99, 1.5].iter().enumerate() {
        let analytic = analytic_pmf(N, theta);
        let empirical = empirical_pmf(N, theta, 0x21BF + i as u64, SAMPLES);

        // Total variation distance: half the L1 gap between the pmfs.
        // With 200k samples over 100 ranks, a correct sampler lands well
        // under 0.01; a rank-shifted or un-normalized CDF blows past it.
        let tv = 0.5
            * analytic
                .iter()
                .zip(&empirical)
                .map(|(a, e)| (a - e).abs())
                .sum::<f64>();
        assert!(
            tv < 0.01,
            "theta={theta}: total variation {tv:.4} too large"
        );

        // Head ranks carry enough mass for a per-rank check: every rank
        // with analytic mass ≥ 2% must be within 8% relative error (≥ 5
        // sigma at 200k samples, so real CDF bugs fail and noise never
        // does; theta = 0 per-rank accuracy has its own test below).
        for (rank, (&a, &e)) in analytic.iter().zip(&empirical).enumerate() {
            if a >= 0.02 {
                let rel = (e - a).abs() / a;
                assert!(
                    rel < 0.08,
                    "theta={theta} rank={rank}: analytic {a:.4} vs empirical {e:.4}"
                );
            }
        }

        // Monotone skew: empirical mass must not increase with rank by
        // more than sampling noise anywhere in the head.
        if theta > 0.0 {
            for w in empirical[..10].windows(2) {
                assert!(w[0] + 0.01 > w[1], "head ranks out of order: {w:?}");
            }
        }
    }
}

#[test]
fn zipf_theta_zero_is_uniform() {
    const N: usize = 50;
    let empirical = empirical_pmf(N, 0.0, 0x21BF, 200_000);
    let uniform = 1.0 / N as f64;
    for (rank, &e) in empirical.iter().enumerate() {
        assert!(
            (e - uniform).abs() / uniform < 0.1,
            "rank {rank}: {e:.4} vs uniform {uniform:.4}"
        );
    }
}

#[test]
fn zipf_ops_honors_read_ratio_in_expectation() {
    let keys: Vec<u64> = (0..64u64).map(|i| i * 10).collect();
    const N: usize = 50_000;
    // The boundary ratios must be exact, not just close.
    assert!(zipf_ops(7, N, &keys, 0.99, 0.0)
        .iter()
        .all(|op| matches!(op, Op::Insert(_))));
    assert!(zipf_ops(7, N, &keys, 0.99, 1.0)
        .iter()
        .all(|op| matches!(op, Op::Get(_))));
    for &ratio in &[0.25, 0.5, 0.75] {
        let ops = zipf_ops(7, N, &keys, 0.99, ratio);
        assert_eq!(ops.len(), N);
        let reads = ops.iter().filter(|op| matches!(op, Op::Get(_))).count();
        let observed = reads as f64 / N as f64;
        // 3-sigma for a Bernoulli(ratio) over 50k trials is under 0.007;
        // 0.02 keeps the check airtight against real bugs without ever
        // tripping on the seeded stream.
        assert!(
            (observed - ratio).abs() < 0.02,
            "read_ratio {ratio}: observed {observed:.4}"
        );
    }
}
