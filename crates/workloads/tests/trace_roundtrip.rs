//! Round-trip property tests for the trace text format, plus a pinned
//! golden corpus of scenario traces.
//!
//! The property half proves `read_trace(write_trace(ops)) == ops` for
//! arbitrary op sequences — every `Op` variant, adversarial key values
//! (0 and `u64::MAX` are drawn with extra weight), and degenerate scan
//! limits. Failing seeds pin into `proptest-regressions/trace_roundtrip.txt`
//! and replay before every random sweep.
//!
//! The golden half freezes one trace per E17 scenario at a small geometry:
//! the generators are pure functions of `(scenario, geometry, seed,
//! ops_len)`, so the byte-exact trace is committed under `tests/corpus/`
//! and any drift in generator output — however subtle — fails loudly.
//! Regenerate deliberately with `DSF_UPDATE_CORPUS=1 cargo test -p
//! dsf-workloads --test trace_roundtrip`.

use dsf_workloads::{read_trace, scenario_plan, write_trace, Geometry, Op, Scenario};
use proptest::prelude::*;

/// Key strategy biased toward the values most likely to break a text
/// format: zero, the u64 maximum, and power-of-two boundaries.
fn arb_key() -> impl Strategy<Value = u64> {
    prop_oneof![
        4 => any::<u64>(),
        1 => Just(0u64),
        1 => Just(u64::MAX),
        1 => (0u32..64).prop_map(|b| 1u64 << b),
        1 => (0u32..64).prop_map(|b| (1u64 << b).wrapping_sub(1)),
    ]
}

/// Any single op, all four variants reachable.
fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => arb_key().prop_map(Op::Insert),
        3 => arb_key().prop_map(Op::Remove),
        2 => arb_key().prop_map(Op::Get),
        2 => (arb_key(), 0usize..100_000).prop_map(|(start, limit)| Op::Scan { start, limit }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]
    fn trace_round_trips_any_op_sequence(ops in prop::collection::vec(arb_op(), 0..200)) {
        let text = write_trace(&ops);
        prop_assert_eq!(read_trace(&text).unwrap(), ops);
    }

    fn trace_survives_comment_and_blank_injection(ops in prop::collection::vec(arb_op(), 1..50)) {
        // Interleave the noise read_trace documents as ignorable; the op
        // stream must come back untouched.
        let mut noisy = String::from("# injected header\n\n");
        for line in write_trace(&ops).lines() {
            noisy.push_str(line);
            noisy.push_str("\n# inline comment\n\n");
        }
        prop_assert_eq!(read_trace(&noisy).unwrap(), ops);
    }
}

/// The small-geometry twin of `DenseFileConfig::control2(256, 8, 40)`,
/// matching the scenario module's own unit tests.
fn corpus_geom() -> Geometry {
    Geometry {
        slots: 256,
        slot_min: 8,
        slot_max: 40,
        log_slots: 8,
    }
}

const CORPUS_SEED: u64 = 0xC0FFEE;
const CORPUS_OPS: usize = 1024;

#[test]
fn scenario_traces_match_pinned_corpus() {
    let dir = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let geom = corpus_geom();
    for s in Scenario::ALL {
        let plan = scenario_plan(s, &geom, CORPUS_SEED, CORPUS_OPS);
        let text = write_trace(&plan.ops);
        let path = dir.join(format!("{}.trace", s.name()));
        if std::env::var_os("DSF_UPDATE_CORPUS").is_some() {
            std::fs::create_dir_all(&dir).unwrap();
            std::fs::write(&path, &text).unwrap();
            continue;
        }
        let pinned = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing pinned trace {} ({e}); regenerate with DSF_UPDATE_CORPUS=1",
                path.display()
            )
        });
        assert_eq!(
            text,
            pinned,
            "generator output for `{}` drifted from the pinned corpus; if \
             intentional, regenerate with DSF_UPDATE_CORPUS=1 and review the diff",
            s.name()
        );
        // The pinned bytes replay to exactly the in-memory plan, so a
        // committed trace file is a complete seed-free reproduction.
        assert_eq!(read_trace(&pinned).unwrap(), plan.ops);
    }
}
