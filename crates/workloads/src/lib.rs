//! # dsf-workloads — deterministic workload generators
//!
//! Every experiment in this repository replays a deterministic operation
//! stream built here. The generators cover the access patterns the paper's
//! introduction reasons about:
//!
//! * **uniform** — inserts spread over the whole key universe (the friendly
//!   case every heuristic handles);
//! * **ascending / descending** — append/prepend-style loads;
//! * **burst** — "a large surge of insertions … in a relatively small
//!   portion of the sequential file", the pattern that breaks overflow
//!   chaining (§1);
//! * **hammer** — an adversarial stream that aims every insertion at one
//!   fixed point of the key space, maximizing local density pressure (the
//!   workload the worst-case bound is measured against);
//! * **hotspot / mixed** — skewed and insert/delete-mixed streams for
//!   steady-state behaviour.
//!
//! All functions are pure in their `seed`: the same arguments always yield
//! the same stream, so experiments are reproducible run to run.
//!
//! The [`scenario`] module composes these primitives into the five named
//! end-to-end scenarios of the E17 scale matrix (adversarial, zipfian,
//! time-series, delete-churn, scan-while-write), each a backbone + op
//! stream derived purely from a file [`Geometry`] and a seed.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod scenario;
pub use scenario::{
    backbone_keys, scenario_plan, Geometry, Scenario, ScenarioPlan, SCENARIO_STRIDE,
};

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// One operation of a workload stream (keys are `u64`; values are derived
/// from keys by the harness).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Insert this key.
    Insert(u64),
    /// Delete this key.
    Remove(u64),
    /// Look this key up.
    Get(u64),
    /// Stream `limit` records starting at `start`.
    Scan {
        /// First key of the stream request.
        start: u64,
        /// Records to retrieve.
        limit: usize,
    },
}

/// `n` evenly spaced `(key, value)` pairs (`key = i·stride`, `value = i`) —
/// the uniform initial distribution of Theorem 5.5, ready for `bulk_load`.
pub fn evenly_spaced(n: u64, stride: u64) -> Vec<(u64, u64)> {
    assert!(stride > 0, "stride must be non-zero");
    (0..n).map(|i| (i * stride, i)).collect()
}

/// `n` distinct keys drawn uniformly from `[lo, hi)`, in insertion order.
///
/// # Panics
///
/// Panics if the interval cannot supply `n` distinct keys.
pub fn uniform_unique(seed: u64, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    assert!(hi > lo, "empty interval");
    assert!(
        (hi - lo) as u128 >= n as u128,
        "interval too small for {n} distinct keys"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        let k = rng.gen_range(lo..hi);
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// `n` ascending keys `start, start+step, …`.
pub fn ascending(n: usize, start: u64, step: u64) -> Vec<u64> {
    assert!(step > 0, "step must be non-zero");
    (0..n as u64).map(|i| start + i * step).collect()
}

/// `n` descending keys `start, start−step, …`.
pub fn descending(n: usize, start: u64, step: u64) -> Vec<u64> {
    assert!(step > 0, "step must be non-zero");
    assert!(
        start >= step * (n as u64).saturating_sub(1),
        "descending stream would underflow"
    );
    (0..n as u64).map(|i| start - i * step).collect()
}

/// A surge: `n` distinct keys confined to the narrow window `[lo, hi)`,
/// shuffled. Aimed at a file whose resident keys span a much wider range,
/// this is the paper's "large surge of insertions in a relatively small
/// portion of the sequential file".
pub fn burst(seed: u64, n: usize, lo: u64, hi: u64) -> Vec<u64> {
    uniform_unique(seed, n, lo, hi)
}

/// The adversarial hammer: every key lands immediately above `point`, in
/// descending order (`point + n·step, point + (n−1)·step, …`), so each
/// insertion goes to the *same* page region and density pressure at that
/// point is maximal. This is the stream that exercises the worst-case
/// guarantee.
pub fn hammer(n: usize, point: u64, step: u64) -> Vec<u64> {
    assert!(step > 0, "step must be non-zero");
    (0..n as u64)
        .map(|i| point + (n as u64 - i) * step)
        .collect()
}

/// A skewed insert stream: with probability `hot_ratio` the key falls in
/// `[hot_lo, hot_hi)`, otherwise anywhere in `[0, universe)`. Keys are
/// deduplicated; the stream may therefore be slightly shorter than `n`.
pub fn hotspot(
    seed: u64,
    n: usize,
    hot_lo: u64,
    hot_hi: u64,
    universe: u64,
    hot_ratio: f64,
) -> Vec<u64> {
    assert!(
        hot_lo < hot_hi && hot_hi <= universe,
        "hot range must nest in the universe"
    );
    assert!(
        (0.0..=1.0).contains(&hot_ratio),
        "hot_ratio must be a probability"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut seen = HashSet::with_capacity(n);
    let mut out = Vec::with_capacity(n);
    for _ in 0..n * 4 {
        if out.len() >= n {
            break;
        }
        let k = if rng.gen_bool(hot_ratio) {
            rng.gen_range(hot_lo..hot_hi)
        } else {
            rng.gen_range(0..universe)
        };
        if seen.insert(k) {
            out.push(k);
        }
    }
    out
}

/// A mixed stream of `n` operations: inserts with probability
/// `insert_ratio`, deletes of previously-inserted keys otherwise (falling
/// back to an insert while nothing is resident). Keys come from
/// `[0, universe)`.
pub fn mixed_ops(seed: u64, n: usize, insert_ratio: f64, universe: u64) -> Vec<Op> {
    assert!(
        (0.0..=1.0).contains(&insert_ratio),
        "insert_ratio must be a probability"
    );
    assert!(universe > 0, "universe must be non-empty");
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut resident: Vec<u64> = Vec::new();
    let mut resident_set: HashSet<u64> = HashSet::new();
    let mut out = Vec::with_capacity(n);
    while out.len() < n {
        if resident.is_empty() || rng.gen_bool(insert_ratio) {
            let k = rng.gen_range(0..universe);
            if resident_set.insert(k) {
                resident.push(k);
                out.push(Op::Insert(k));
            }
        } else {
            let i = rng.gen_range(0..resident.len());
            let k = resident.swap_remove(i);
            resident_set.remove(&k);
            out.push(Op::Remove(k));
        }
    }
    out
}

/// `n` stream-retrieval requests of `limit` records each, starting at
/// uniform points of `[0, universe)`.
pub fn scan_points(seed: u64, n: usize, universe: u64, limit: usize) -> Vec<Op> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| Op::Scan {
            start: rng.gen_range(0..universe),
            limit,
        })
        .collect()
}

/// Shuffles a key stream deterministically (e.g. to randomize an ascending
/// stream while keeping the key *set* identical).
pub fn shuffled(seed: u64, mut keys: Vec<u64>) -> Vec<u64> {
    let mut rng = SmallRng::seed_from_u64(seed);
    keys.shuffle(&mut rng);
    keys
}

/// A bounded Zipf(θ) sampler over ranks `0..n`, using the inverse-CDF
/// method over a precomputed table (exact, no rejection).
///
/// Rank 0 is the hottest. θ = 0 degenerates to uniform; θ ≈ 0.99 is the
/// classic YCSB skew.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the sampler for `n` ranks with exponent `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative/non-finite.
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta.is_finite() && theta >= 0.0, "theta must be ≥ 0");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(theta);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Zipf { cdf }
    }

    /// Draws one rank.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// `n` operations against a fixed resident key set, with Zipf-skewed key
/// popularity: `read_ratio` of the ops are lookups, the rest replace-style
/// inserts of the same keys. Models the skewed read-mostly traffic the
/// dense file serves between structural changes.
pub fn zipf_ops(seed: u64, n: usize, keys: &[u64], theta: f64, read_ratio: f64) -> Vec<Op> {
    assert!(!keys.is_empty(), "need resident keys");
    assert!((0.0..=1.0).contains(&read_ratio));
    let zipf = Zipf::new(keys.len(), theta);
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let k = keys[zipf.sample(&mut rng)];
            if rng.gen_bool(read_ratio) {
                Op::Get(k)
            } else {
                Op::Insert(k)
            }
        })
        .collect()
}

/// A rolling time-series window: `n` paired operations that append a fresh
/// record at the advancing right edge and expire the oldest at the left,
/// starting from an existing window `[window_lo, window_hi)` of keys spaced
/// `step` apart. The classic log/metrics retention pattern — the file's
/// contents slide rightward at constant size.
pub fn rolling_window(n: usize, window_lo: u64, window_hi: u64, step: u64) -> Vec<Op> {
    assert!(step > 0, "step must be non-zero");
    assert!(window_hi > window_lo, "window must be non-empty");
    let mut ops = Vec::with_capacity(n * 2);
    let mut left = window_lo;
    let mut right = window_hi;
    for _ in 0..n {
        ops.push(Op::Insert(right));
        ops.push(Op::Remove(left));
        right += step;
        left += step;
    }
    ops
}

// ---------------------------------------------------------------------
// Trace files: record and replay op streams.
// ---------------------------------------------------------------------

/// Serializes an op stream to the trace text format (one op per line:
/// `i <key>`, `r <key>`, `g <key>`, `s <start> <limit>`; `#` comments).
pub fn write_trace(ops: &[Op]) -> String {
    let mut out = String::with_capacity(ops.len() * 12);
    out.push_str("# dsf-workloads trace v1\n");
    for op in ops {
        match *op {
            Op::Insert(k) => out.push_str(&format!("i {k}\n")),
            Op::Remove(k) => out.push_str(&format!("r {k}\n")),
            Op::Get(k) => out.push_str(&format!("g {k}\n")),
            Op::Scan { start, limit } => out.push_str(&format!("s {start} {limit}\n")),
        }
    }
    out
}

/// Parses the trace text format written by [`write_trace`].
pub fn read_trace(text: &str) -> Result<Vec<Op>, String> {
    let mut ops = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut parts = line.split_whitespace();
        let tag = parts.next().expect("non-empty line");
        let mut num = |what: &str| -> Result<u64, String> {
            parts
                .next()
                .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                .parse()
                .map_err(|_| format!("line {}: bad {what}", lineno + 1))
        };
        let op = match tag {
            "i" => Op::Insert(num("key")?),
            "r" => Op::Remove(num("key")?),
            "g" => Op::Get(num("key")?),
            "s" => Op::Scan {
                start: num("start")?,
                limit: num("limit")? as usize,
            },
            other => return Err(format!("line {}: unknown op `{other}`", lineno + 1)),
        };
        ops.push(op);
    }
    Ok(ops)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evenly_spaced_is_sorted_unique() {
        let v = evenly_spaced(100, 7);
        assert_eq!(v.len(), 100);
        assert!(v.windows(2).all(|w| w[0].0 < w[1].0));
        assert_eq!(v[10], (70, 10));
    }

    #[test]
    fn uniform_unique_is_deterministic_and_unique() {
        let a = uniform_unique(1, 1000, 0, 1 << 40);
        let b = uniform_unique(1, 1000, 0, 1 << 40);
        assert_eq!(a, b);
        let c = uniform_unique(2, 1000, 0, 1 << 40);
        assert_ne!(a, c);
        let set: HashSet<u64> = a.iter().copied().collect();
        assert_eq!(set.len(), 1000);
    }

    #[test]
    fn uniform_unique_exhausts_small_intervals() {
        let mut v = uniform_unique(9, 10, 100, 110);
        v.sort_unstable();
        assert_eq!(v, (100..110).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "interval too small")]
    fn uniform_unique_rejects_impossible_requests() {
        uniform_unique(0, 11, 0, 10);
    }

    #[test]
    fn ascending_descending_shapes() {
        assert_eq!(ascending(4, 10, 5), vec![10, 15, 20, 25]);
        assert_eq!(descending(4, 25, 5), vec![25, 20, 15, 10]);
    }

    #[test]
    fn burst_stays_in_window() {
        let v = burst(3, 500, 1000, 3000);
        assert!(v.iter().all(|&k| (1000..3000).contains(&k)));
        let set: HashSet<u64> = v.iter().copied().collect();
        assert_eq!(set.len(), 500);
    }

    #[test]
    fn hammer_descends_onto_the_point() {
        let v = hammer(5, 100, 2);
        assert_eq!(v, vec![110, 108, 106, 104, 102]);
        assert!(v.iter().all(|&k| k > 100));
    }

    #[test]
    fn hotspot_respects_the_ratio_roughly() {
        let v = hotspot(5, 10_000, 0, 1 << 20, 1 << 30, 0.8);
        let hot = v.iter().filter(|&&k| k < (1 << 20)).count() as f64 / v.len() as f64;
        assert!(hot > 0.5, "expected mostly-hot stream, got {hot:.2}");
    }

    #[test]
    fn mixed_ops_remove_only_resident_keys() {
        let ops = mixed_ops(11, 2000, 0.6, 1 << 20);
        assert_eq!(ops.len(), 2000);
        let mut resident = HashSet::new();
        for op in &ops {
            match op {
                Op::Insert(k) => {
                    assert!(resident.insert(*k), "insert of an already-resident key");
                }
                Op::Remove(k) => {
                    assert!(resident.remove(k), "remove of a non-resident key");
                }
                _ => unreachable!("mixed_ops only emits inserts/removes"),
            }
        }
    }

    #[test]
    fn zipf_is_skewed_and_deterministic() {
        let z = Zipf::new(1000, 0.99);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        // Rank 0 is far hotter than rank 500.
        assert!(
            counts[0] > 20 * counts[500].max(1),
            "{} vs {}",
            counts[0],
            counts[500]
        );
        // θ = 0 is uniform-ish: the head is not special.
        let z0 = Zipf::new(1000, 0.0);
        let mut rng = SmallRng::seed_from_u64(1);
        let mut counts0 = vec![0u32; 1000];
        for _ in 0..20_000 {
            counts0[z0.sample(&mut rng)] += 1;
        }
        assert!(counts0[0] < 4 * counts0[500].max(1));
    }

    #[test]
    fn zipf_ops_only_touch_resident_keys() {
        let keys: Vec<u64> = (0..50).map(|i| i * 7).collect();
        let ops = zipf_ops(3, 500, &keys, 0.8, 0.7);
        assert_eq!(ops.len(), 500);
        let keyset: HashSet<u64> = keys.iter().copied().collect();
        let mut reads = 0;
        for op in &ops {
            match op {
                Op::Get(k) => {
                    reads += 1;
                    assert!(keyset.contains(k));
                }
                Op::Insert(k) => assert!(keyset.contains(k)),
                _ => unreachable!(),
            }
        }
        let ratio = reads as f64 / 500.0;
        assert!((0.55..0.85).contains(&ratio), "read ratio {ratio}");
    }

    #[test]
    fn rolling_window_slides_at_constant_size() {
        let ops = rolling_window(5, 100, 110, 2);
        assert_eq!(ops.len(), 10);
        assert_eq!(ops[0], Op::Insert(110));
        assert_eq!(ops[1], Op::Remove(100));
        assert_eq!(ops[8], Op::Insert(118));
        assert_eq!(ops[9], Op::Remove(108));
    }

    #[test]
    fn trace_round_trip() {
        let ops = vec![
            Op::Insert(5),
            Op::Remove(7),
            Op::Get(9),
            Op::Scan {
                start: 100,
                limit: 42,
            },
        ];
        let text = write_trace(&ops);
        assert_eq!(read_trace(&text).unwrap(), ops);
        // Comments and blanks are tolerated; junk is not.
        assert_eq!(read_trace("# x\n\n i 3 \n").unwrap(), vec![Op::Insert(3)]);
        assert!(read_trace("q 1").is_err());
        assert!(read_trace("i").is_err());
        assert!(read_trace("s 1").is_err());
    }

    #[test]
    fn scan_points_and_shuffle_are_deterministic() {
        assert_eq!(scan_points(4, 10, 1000, 50), scan_points(4, 10, 1000, 50));
        let keys = ascending(100, 0, 1);
        let s1 = shuffled(8, keys.clone());
        let s2 = shuffled(8, keys.clone());
        assert_eq!(s1, s2);
        assert_ne!(s1, keys);
        let mut sorted = s1.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, keys);
    }
}
