//! # Scenario matrix — named workloads for the scale-out experiments
//!
//! Each scenario is a *complete* experiment input: a uniform backbone to
//! bulk-load plus a deterministic [`Op`] stream to replay, both derived
//! purely from a file [`Geometry`] and a seed. The same plan therefore
//! replays bit-identically through a `DenseFile`, the B+-tree, the PMA,
//! and the naive/overflow baselines — which is what makes the scenarios
//! usable both as benchmarks (E17) and as differential-test oracles.
//!
//! ## The adversarial scenario and why it is worst-case
//!
//! CONTROL 2 charges every command a fixed budget of `J` SHIFT steps, and
//! the per-command page bound `K·(3J+2)+2` is met *with equality* only
//! when a command actually executes all `J` steps. SHIFT work exists
//! exactly while some calibrator node carries a warning flag, and the
//! flag discipline is a hysteresis band: a node `v` raises its flag when
//! its density `p(v)` reaches `g(v,⅔)` and lowers it only once SHIFT has
//! drained `p(v)` to `g(v,⅓)`. The adversarial stream exploits this in
//! two phases:
//!
//! 1. **Surge** — every insertion lands in the key range of one width-`W`
//!    subtree `v` (in fact between two adjacent backbone records, so the
//!    point pressure on the landing slot is also maximal). Each command
//!    adds exactly one record to `p(v)` while SHIFT, bounded by `J` steps
//!    per command, can drain only a bounded amount — so after
//!    [`Geometry::threshold_records`]`(depth(v), W, 2)` net arrivals
//!    `p(v) ≥ g(v,⅔)` and the whole root→`v` path holds raised flags.
//! 2. **Pin** — the stream then becomes a *mass-transfer hammer*: every
//!    insertion still lands at the cluster's advancing edge (the same
//!    single-leaf point pressure as the classic hammer, the stream the
//!    worst-case bound is traditionally measured against), while each
//!    insertion is paired with a deletion of the oldest key of the *cold
//!    far region* — the file's opposite end, maximally distant from the
//!    pressure point. The pairing keeps global occupancy constant, but —
//!    crucially — the deletions land in subtrees that sit far below
//!    every warning threshold, so they can never lower a raised flag or
//!    cancel pending SHIFT work. The hot point therefore gains one net
//!    record per command pair: its density cannot relieve (deletes don't
//!    touch it) and cannot exceed `g(v,1)` for any enclosing `v`
//!    (BALANCE forbids it), so CONTROL 2 is *forced* to keep shifting
//!    the incoming mass outward through an ever-wider saturated region.
//!    The warned backlog grows monotonically — flags re-raise as fast as
//!    SHIFT drains, with nothing ever un-warning a node early — until
//!    every command exhausts its full `J`-step budget and costs exactly
//!    `K·(3J+2)+2` pages, the bound with equality. Unlike the plain
//!    hammer, which terminates when the file fills, this stream sustains
//!    that plateau at constant occupancy for as long as the cold region
//!    holds records (half the file's capacity — millions of commands at
//!    the E17 geometry).
//!
//! No oblivious stream can do better per command: the bound caps every
//! command at `J` SHIFT steps regardless of history, so "worst case" means
//! *sustaining* full-budget commands, not exceeding them — and sustaining
//! them is precisely what the pin phase does. E17 confirms empirically
//! that the observed worst command under this stream meets the audited
//! bound while friendlier scenarios stay far below it.
//!
//! ## The delete-side adversary
//!
//! [`Scenario::AdversarialDelete`] is the mirror stream, aimed at the
//! *lower* half of the hysteresis band. CONTROL 2's step 2 probes, on
//! every command touching a warned subtree, whether the subtree has
//! cooled to `g(v,⅓)` (`lower_if_cold`) — the threshold that decides
//! when a raised flag may be retired. The plain adversary never
//! exercises that decision from the delete side: its deletions land in
//! the cold far region, outside every warned subtree.
//!
//! This variant keeps the surge phase identical (same subtree, same
//! `g(v,⅔)` arithmetic), then pins with **triples**: two insertions at
//! the cluster's advancing right edge plus one deletion of the cluster's
//! own *oldest* hot key (FIFO from the trailing edge). The arithmetic:
//!
//! * Each triple adds two records to `p(v)` and removes one — net `+1`,
//!   so the subtree's density keeps outpacing the per-command bounded
//!   SHIFT drain and the flags stay pinned, exactly as in the plain
//!   adversary.
//! * But each deletion's root→leaf path now runs entirely *inside* the
//!   warned subtree: step 2's `lower_if_cold` probe evaluates `p(v)`
//!   against `g(v,⅓)` on warned nodes on every such delete, and the
//!   delete's own SHIFT budget drains the very region its siblings are
//!   refilling. The stream therefore alternates pressure and relief on
//!   the same nodes — the hysteresis band's lower threshold is probed
//!   (and must keep *refusing* to lower, since density never falls that
//!   far) on every third command, the case the delete-side rules of the
//!   paper exist for.
//! * The trailing edge advances one key per triple while the leading
//!   edge advances two, so the hot corridor `[tail, front)` never
//!   empties: every deletion targets a key that is still resident, and
//!   the whole corridor stays inside the attacked window.

use crate::{Op, Zipf};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use std::collections::HashSet;

/// Key spacing of every scenario backbone: backbone keys are multiples of
/// this stride, and generated keys are odd offsets from them, so fresh
/// keys can never collide with the backbone.
pub const SCENARIO_STRIDE: u64 = 1 << 16;

/// The file geometry a scenario is generated against — the subset of a
/// resolved `(d,D)`-dense configuration the generators need. Mirrors the
/// calibrator's slot-level view (`d# = K·d`, `D# = K·D` per slot) so this
/// crate stays dependency-free while agreeing exactly with `dsf-core`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Geometry {
    /// Logical slots (the calibrator's `M`). Must be a power of two.
    pub slots: u64,
    /// Per-slot lower density `d#`.
    pub slot_min: u64,
    /// Per-slot upper density `D#`.
    pub slot_max: u64,
    /// Calibrator depth bound `L = max(1, ⌈log₂ slots⌉)`.
    pub log_slots: u32,
}

impl Geometry {
    /// Guaranteed capacity `slots · d#` (what `bulk_load` may fill to).
    pub fn capacity(&self) -> u64 {
        self.slots * self.slot_min
    }

    /// The density gap `D# − d#`.
    pub fn gap(&self) -> u64 {
        self.slot_max - self.slot_min
    }

    /// The smallest record count that puts a width-`width` subtree at
    /// depth `depth` at or above its `g(v, q/3)` threshold: the least `c`
    /// with `3L·c ≥ width·(3L·d# + (3·depth + q − 3)·gap)`.
    ///
    /// This mirrors `Calibrator::records_until_ge` over an empty tree
    /// (exact integer arithmetic, same numerator); a differential test in
    /// `dsf-bench` pins the agreement.
    pub fn threshold_records(&self, depth: u32, width: u64, q: u8) -> u64 {
        assert!(q <= 3, "q selects g(v,0)..g(v,1)");
        let l = i128::from(self.log_slots);
        let gap = i128::from(self.gap());
        let per_slot =
            3 * l * i128::from(self.slot_min) + (3 * i128::from(depth) + i128::from(q) - 3) * gap;
        let rhs = i128::from(width) * per_slot;
        if rhs <= 0 {
            return 0;
        }
        let step = 3 * l;
        ((rhs + step - 1) / step) as u64
    }
}

/// The six scenarios of the E17 matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Scenario {
    /// The worst-case stream documented in the module header: surge one
    /// subtree into the warning band, then pin it there with
    /// insert/delete pairs at its boundary.
    Adversarial,
    /// The delete-side mirror (module header, "the delete-side
    /// adversary"): same surge, then 2-insert/1-delete triples whose
    /// deletions run inside the warned subtree, hammering CONTROL 2's
    /// lower `g(v,⅓)` threshold probe on every third command.
    AdversarialDelete,
    /// Zipf(0.99)-skewed structural churn with 25% point reads: hot ranks
    /// gain and lose neighbour records while cold ranks sleep.
    Zipfian,
    /// Append-only time-series ingest at the right edge, switching to
    /// sliding-window retention (append + expire oldest) once the file
    /// reaches ¾ occupancy.
    TimeSeries,
    /// Delete-heavy churn (65% deletes) against the resident set,
    /// shrinking the file while inserts trickle in.
    DeleteChurn,
    /// 70% uniform inserts interleaved with 64-record range scans — the
    /// scan-while-write mix.
    ScanWhileWrite,
}

impl Scenario {
    /// Every scenario, in matrix order.
    pub const ALL: [Scenario; 6] = [
        Scenario::Adversarial,
        Scenario::AdversarialDelete,
        Scenario::Zipfian,
        Scenario::TimeSeries,
        Scenario::DeleteChurn,
        Scenario::ScanWhileWrite,
    ];

    /// Stable snake_case name (used as a JSON metric suffix and in CLI
    /// output, so it must never change for an existing scenario).
    pub fn name(&self) -> &'static str {
        match self {
            Scenario::Adversarial => "adversarial",
            Scenario::AdversarialDelete => "adversarial_delete",
            Scenario::Zipfian => "zipfian",
            Scenario::TimeSeries => "time_series",
            Scenario::DeleteChurn => "delete_churn",
            Scenario::ScanWhileWrite => "scan_while_write",
        }
    }
}

/// A generated scenario: backbone to bulk-load, then ops to replay.
#[derive(Debug, Clone)]
pub struct ScenarioPlan {
    /// Which scenario this is.
    pub scenario: Scenario,
    /// Strictly-ascending backbone keys (half the file's capacity).
    pub backbone: Vec<u64>,
    /// The operation stream.
    pub ops: Vec<Op>,
}

/// Builds the plan for one scenario. Pure in `(scenario, geom, seed,
/// ops_len)`: identical arguments always yield an identical plan.
///
/// Invariants guaranteed by construction (and asserted where cheap):
/// every `Insert` key is absent at insertion time, every `Remove` key is
/// present, and the resident count never exceeds `geom.capacity()` — so
/// any structure with replace-on-duplicate or refuse-at-capacity edge
/// behaviour sees neither, and differential replays cannot diverge on
/// semantics the baselines don't share.
pub fn scenario_plan(
    scenario: Scenario,
    geom: &Geometry,
    seed: u64,
    ops_len: usize,
) -> ScenarioPlan {
    assert!(
        geom.slots.is_power_of_two(),
        "scenario geometry wants 2^k slots"
    );
    assert!(geom.slot_min >= 2, "backbone needs d# ≥ 2");
    let backbone = backbone_keys(geom);
    let ops = match scenario {
        Scenario::Adversarial => adversarial_ops(geom, &backbone, ops_len),
        Scenario::AdversarialDelete => adversarial_delete_ops(geom, &backbone, ops_len),
        Scenario::Zipfian => zipfian_ops(geom, &backbone, seed, ops_len),
        Scenario::TimeSeries => time_series_ops(geom, &backbone, ops_len),
        Scenario::DeleteChurn => delete_churn_ops(geom, &backbone, seed, ops_len),
        Scenario::ScanWhileWrite => scan_while_write_ops(geom, &backbone, seed, ops_len),
    };
    ScenarioPlan {
        scenario,
        backbone,
        ops,
    }
}

/// The uniform backbone every scenario starts from: half the guaranteed
/// capacity, keys `i · SCENARIO_STRIDE`.
pub fn backbone_keys(geom: &Geometry) -> Vec<u64> {
    let n0 = geom.capacity() / 2;
    (0..n0).map(|i| i * SCENARIO_STRIDE).collect()
}

/// Tracks net insertions so every generator can prove it stays within the
/// file's guaranteed capacity.
struct HeadroomGuard {
    headroom: u64,
    net: i64,
}

impl HeadroomGuard {
    fn new(geom: &Geometry, backbone: &[u64]) -> Self {
        HeadroomGuard {
            headroom: geom.capacity() - backbone.len() as u64,
            net: 0,
        }
    }
    fn insert(&mut self) {
        self.net += 1;
        assert!(
            self.net <= self.headroom as i64,
            "scenario would overflow capacity (headroom {})",
            self.headroom
        );
    }
    fn remove(&mut self) {
        self.net -= 1;
    }
}

/// The shared setup of both adversarial streams: which subtree to attack,
/// how many surge inserts lift it past `g(v,⅔)`, and where hot keys go.
struct AdversarialWindow {
    /// Surge length (inserts that end above the raise threshold).
    surge_n: u64,
    /// First hot key is `base + 2`; hot key `j` is `base + 2j`.
    base: u64,
    /// Backbone slots strictly left of the attacked window (`s0 · b0`):
    /// the cold region the insert-side adversary deletes from.
    cold_slots: u64,
}

fn adversarial_window(geom: &Geometry, backbone: &[u64], ops_len: usize) -> AdversarialWindow {
    let b0 = backbone.len() as u64 / geom.slots;
    assert!(b0 >= 1, "backbone must populate every slot");

    // Attack a width-2^a subtree around the middle of the file; its depth
    // in the calibrator is log_slots − a (leaves sit at depth log_slots).
    let a = 4u32.min(geom.log_slots);
    let width = (1u64 << a).min(geom.slots);
    let depth = geom.log_slots - a;
    let s0 = (geom.slots / 2) / width * width;
    let in_window = b0 * width;

    // Records that put the subtree at its raise threshold g(v,⅔), plus one
    // per slot of margin so the surge ends *above* the boundary.
    let raise = geom.threshold_records(depth, width, 2);
    let surge_n = raise.saturating_sub(in_window) + width;
    assert!(
        ops_len >= 2 * surge_n as usize,
        "ops_len {ops_len} leaves no pin phase after a {surge_n}-insert surge"
    );

    // Key layout inside the window: all hot keys are odd (disjoint from
    // the backbone) and sit between backbone records s0·b0 and s0·b0+1,
    // so the point pressure lands on a single leaf's key range.
    let window_lo = s0 * b0 * SCENARIO_STRIDE;
    AdversarialWindow {
        surge_n,
        base: window_lo + 9,
        cold_slots: s0 * b0,
    }
}

fn adversarial_ops(geom: &Geometry, backbone: &[u64], ops_len: usize) -> Vec<Op> {
    let AdversarialWindow {
        surge_n,
        base,
        cold_slots,
    } = adversarial_window(geom, backbone, ops_len);

    // The surge ascends from `base`; the pin phase keeps ascending (every
    // insert lands at the cluster's advancing right edge — the hammer's
    // single-leaf pressure) while deleting the cold region's backbone
    // keys FIFO from the file's far left end.
    let mut guard = HeadroomGuard::new(geom, backbone);
    let mut ops = Vec::with_capacity(ops_len);
    for j in 1..=surge_n {
        guard.insert();
        ops.push(Op::Insert(base + 2 * j));
    }
    let (mut next, mut cold) = (surge_n + 1, 0u64);
    while ops.len() < ops_len {
        guard.insert();
        ops.push(Op::Insert(base + 2 * next));
        next += 1;
        if ops.len() < ops_len {
            // Deletes must never reach the hot window (they would relieve
            // the pressure the stream exists to sustain).
            assert!(cold < cold_slots, "cold region exhausted — raise capacity");
            guard.remove();
            ops.push(Op::Remove(cold * SCENARIO_STRIDE));
            cold += 1;
        }
    }
    ops
}

fn adversarial_delete_ops(geom: &Geometry, backbone: &[u64], ops_len: usize) -> Vec<Op> {
    let AdversarialWindow { surge_n, base, .. } = adversarial_window(geom, backbone, ops_len);

    // Identical surge; then the triple pin: two inserts at the advancing
    // right edge, one delete of the oldest hot key (FIFO from the
    // trailing edge). Net +1 record per triple keeps the flags raised;
    // every delete's path runs inside the warned subtree, so CONTROL 2's
    // step-2 `lower_if_cold` probe of g(v,⅓) fires on warned nodes —
    // and must keep refusing — on every third command.
    let mut guard = HeadroomGuard::new(geom, backbone);
    let mut ops = Vec::with_capacity(ops_len);
    for j in 1..=surge_n {
        guard.insert();
        ops.push(Op::Insert(base + 2 * j));
    }
    // Hot corridor [tail, next): tail advances 1 per triple, next 2 per
    // triple, so the corridor never empties and every delete is resident.
    let (mut next, mut tail) = (surge_n + 1, 1u64);
    while ops.len() < ops_len {
        for _ in 0..2 {
            if ops.len() < ops_len {
                guard.insert();
                ops.push(Op::Insert(base + 2 * next));
                next += 1;
            }
        }
        if ops.len() < ops_len {
            debug_assert!(tail < next, "hot corridor emptied");
            guard.remove();
            ops.push(Op::Remove(base + 2 * tail));
            tail += 1;
        }
    }
    ops
}

fn zipfian_ops(geom: &Geometry, backbone: &[u64], seed: u64, ops_len: usize) -> Vec<Op> {
    const THETA: f64 = 0.99;
    const READ_RATIO: f64 = 0.25;
    let mut rng = SmallRng::seed_from_u64(seed);
    let zipf = Zipf::new(backbone.len(), THETA);
    let mut guard = HeadroomGuard::new(geom, backbone);
    let cap_extra = (guard.headroom / 2).max(1) as usize;
    let mut extras: Vec<u64> = Vec::new();
    let mut extra_set: HashSet<u64> = HashSet::new();
    let mut ops = Vec::with_capacity(ops_len);
    while ops.len() < ops_len {
        let rank = zipf.sample(&mut rng);
        if rng.gen_bool(READ_RATIO) {
            ops.push(Op::Get(backbone[rank]));
            continue;
        }
        let k = backbone[rank] + 1;
        if extra_set.contains(&k) {
            extra_set.remove(&k);
            extras.swap_remove(extras.iter().position(|&e| e == k).expect("tracked"));
            guard.remove();
            ops.push(Op::Remove(k));
        } else if extras.len() < cap_extra {
            extra_set.insert(k);
            extras.push(k);
            guard.insert();
            ops.push(Op::Insert(k));
        } else {
            let i = rng.gen_range(0..extras.len());
            let victim = extras.swap_remove(i);
            extra_set.remove(&victim);
            guard.remove();
            ops.push(Op::Remove(victim));
        }
    }
    ops
}

fn time_series_ops(geom: &Geometry, backbone: &[u64], ops_len: usize) -> Vec<Op> {
    let mut guard = HeadroomGuard::new(geom, backbone);
    // Pure appends until ¾ occupancy, then sliding-window retention.
    let appends = (guard.headroom / 2).min(ops_len as u64);
    let mut right = backbone.len() as u64 * SCENARIO_STRIDE;
    let mut left = 0u64;
    let mut ops = Vec::with_capacity(ops_len);
    for _ in 0..appends {
        guard.insert();
        ops.push(Op::Insert(right));
        right += SCENARIO_STRIDE;
    }
    while ops.len() < ops_len {
        guard.insert();
        ops.push(Op::Insert(right));
        right += SCENARIO_STRIDE;
        if ops.len() < ops_len {
            guard.remove();
            ops.push(Op::Remove(left));
            left += SCENARIO_STRIDE;
        }
    }
    ops
}

fn delete_churn_ops(geom: &Geometry, backbone: &[u64], seed: u64, ops_len: usize) -> Vec<Op> {
    const INSERT_RATIO: f64 = 0.35;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut guard = HeadroomGuard::new(geom, backbone);
    let universe = backbone.len() as u64 * SCENARIO_STRIDE;
    let floor = backbone.len() / 4;
    let mut resident: Vec<u64> = backbone.to_vec();
    let mut occupied: HashSet<u64> = backbone.iter().copied().collect();
    let mut ops = Vec::with_capacity(ops_len);
    while ops.len() < ops_len {
        if resident.len() > floor && !rng.gen_bool(INSERT_RATIO) {
            let i = rng.gen_range(0..resident.len());
            let k = resident.swap_remove(i);
            occupied.remove(&k);
            guard.remove();
            ops.push(Op::Remove(k));
        } else {
            let k = loop {
                let c = rng.gen_range(1..universe) | 1;
                if occupied.insert(c) {
                    break c;
                }
            };
            resident.push(k);
            guard.insert();
            ops.push(Op::Insert(k));
        }
    }
    ops
}

fn scan_while_write_ops(geom: &Geometry, backbone: &[u64], seed: u64, ops_len: usize) -> Vec<Op> {
    const WRITE_RATIO: f64 = 0.7;
    const SCAN_LIMIT: usize = 64;
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut guard = HeadroomGuard::new(geom, backbone);
    let universe = backbone.len() as u64 * SCENARIO_STRIDE;
    let mut occupied: HashSet<u64> = HashSet::new();
    let mut ops = Vec::with_capacity(ops_len);
    while ops.len() < ops_len {
        if rng.gen_bool(WRITE_RATIO) {
            let k = loop {
                let c = rng.gen_range(1..universe) | 1;
                if occupied.insert(c) {
                    break c;
                }
            };
            guard.insert();
            ops.push(Op::Insert(k));
        } else {
            ops.push(Op::Scan {
                start: rng.gen_range(0..universe),
                limit: SCAN_LIMIT,
            });
        }
    }
    ops
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_geom() -> Geometry {
        // Matches DenseFileConfig::control2(256, 8, 40): K = 1.
        Geometry {
            slots: 256,
            slot_min: 8,
            slot_max: 40,
            log_slots: 8,
        }
    }

    /// Replays a plan against a key-set model, proving inserts are always
    /// fresh, removes always present, and occupancy stays within capacity.
    fn check_plan_coherent(plan: &ScenarioPlan, geom: &Geometry) {
        let mut resident: HashSet<u64> = plan.backbone.iter().copied().collect();
        assert!(
            plan.backbone.windows(2).all(|w| w[0] < w[1]),
            "backbone must be strictly ascending"
        );
        for op in &plan.ops {
            match *op {
                Op::Insert(k) => {
                    assert!(resident.insert(k), "insert of a resident key {k}");
                    assert!(resident.len() as u64 <= geom.capacity(), "over capacity");
                }
                Op::Remove(k) => assert!(resident.remove(&k), "remove of absent key {k}"),
                Op::Get(k) => assert!(resident.contains(&k), "get of absent key {k}"),
                Op::Scan { .. } => {}
            }
        }
    }

    #[test]
    fn every_scenario_is_coherent_and_deterministic() {
        let geom = small_geom();
        for s in Scenario::ALL {
            let plan = scenario_plan(s, &geom, 42, 900);
            assert_eq!(plan.ops.len(), 900, "{}", s.name());
            check_plan_coherent(&plan, &geom);
            let again = scenario_plan(s, &geom, 42, 900);
            assert_eq!(plan.ops, again.ops, "{} not deterministic", s.name());
            let other = scenario_plan(s, &geom, 43, 900);
            if matches!(
                s,
                Scenario::Zipfian | Scenario::DeleteChurn | Scenario::ScanWhileWrite
            ) {
                assert_ne!(plan.ops, other.ops, "{} ignores its seed", s.name());
            }
        }
    }

    #[test]
    fn adversarial_surge_reaches_the_raise_threshold() {
        let geom = small_geom();
        let plan = scenario_plan(Scenario::Adversarial, &geom, 1, 900);
        // The surge prefix is pure insertions confined to one subtree's
        // key range, sized to lift it past g(v,⅔).
        let a = 4;
        let width = 1u64 << a;
        let depth = geom.log_slots - a;
        let b0 = plan.backbone.len() as u64 / geom.slots;
        let s0 = (geom.slots / 2) / width * width;
        let window_lo = s0 * b0 * SCENARIO_STRIDE;
        let window_hi = (s0 + width) * b0 * SCENARIO_STRIDE;
        let raise = geom.threshold_records(depth, width, 2);
        let surge_n = (raise - b0 * width + width) as usize;
        let surge: Vec<u64> = plan.ops[..surge_n]
            .iter()
            .map(|op| match op {
                Op::Insert(k) => *k,
                other => panic!("surge prefix must be inserts, got {other:?}"),
            })
            .collect();
        assert!(surge.iter().all(|&k| (window_lo..window_hi).contains(&k)));
        assert!(
            surge.len() as u64 + b0 * width >= raise,
            "surge {} + resident {} < raise threshold {raise}",
            surge.len(),
            b0 * width
        );
        // Point pressure: consecutive inserts land at the cluster's edge.
        assert!(surge.windows(2).all(|w| w[1] == w[0] + 2));
        // The pin phase is the mass-transfer hammer: inserts keep
        // advancing the hot edge inside the window; removes sweep the
        // cold backbone FIFO from the far left end, never reaching the
        // window.
        let tail = &plan.ops[surge_n..];
        let mut edge = *surge.last().unwrap();
        let mut cold = 0u64;
        for op in tail {
            match *op {
                Op::Insert(k) => {
                    assert_eq!(k, edge + 2, "insert off the advancing edge");
                    assert!((window_lo..window_hi).contains(&k));
                    edge = k;
                }
                Op::Remove(k) => {
                    assert_eq!(k, cold * SCENARIO_STRIDE, "remove not cold-FIFO");
                    assert!(k < window_lo, "delete reached the hot window");
                    cold += 1;
                }
                other => panic!("pin phase has no {other:?}"),
            }
        }
        assert!(!tail.is_empty(), "ops budget leaves a pin phase");
    }

    #[test]
    fn adversarial_delete_pins_with_in_window_triples() {
        let geom = small_geom();
        let plan = scenario_plan(Scenario::AdversarialDelete, &geom, 1, 900);
        // Same surge arithmetic as the insert-side adversary.
        let a = 4;
        let width = 1u64 << a;
        let depth = geom.log_slots - a;
        let b0 = plan.backbone.len() as u64 / geom.slots;
        let s0 = (geom.slots / 2) / width * width;
        let window_lo = s0 * b0 * SCENARIO_STRIDE;
        let window_hi = (s0 + width) * b0 * SCENARIO_STRIDE;
        let raise = geom.threshold_records(depth, width, 2);
        let surge_n = (raise - b0 * width + width) as usize;
        let surge: Vec<u64> = plan.ops[..surge_n]
            .iter()
            .map(|op| match op {
                Op::Insert(k) => *k,
                other => panic!("surge prefix must be inserts, got {other:?}"),
            })
            .collect();
        assert!(surge.iter().all(|&k| (window_lo..window_hi).contains(&k)));
        assert!(surge.windows(2).all(|w| w[1] == w[0] + 2));

        // Pin phase: 2-insert/1-delete triples. Inserts advance the right
        // edge; deletes sweep the hot cluster FIFO from its left —
        // *inside* the attacked window, unlike the insert-side adversary.
        let tail_ops = &plan.ops[surge_n..];
        assert!(!tail_ops.is_empty(), "ops budget leaves a pin phase");
        let base = surge[0] - 2;
        let mut edge = *surge.last().unwrap();
        let mut oldest = base + 2; // first surge key
        let mut net: i64 = 0;
        for (i, op) in tail_ops.iter().enumerate() {
            match *op {
                Op::Insert(k) => {
                    assert_eq!(i % 3 / 2, 0, "inserts come in leading pairs");
                    assert_eq!(k, edge + 2, "insert off the advancing edge");
                    assert!((window_lo..window_hi).contains(&k));
                    edge = k;
                    net += 1;
                }
                Op::Remove(k) => {
                    assert_eq!(i % 3, 2, "every third op is the delete");
                    assert_eq!(k, oldest, "delete not hot-FIFO");
                    assert!(
                        (window_lo..window_hi).contains(&k),
                        "delete escaped the warned window"
                    );
                    assert!(k < edge, "delete overtook the corridor");
                    oldest += 2;
                    net -= 1;
                }
                other => panic!("pin phase has no {other:?}"),
            }
        }
        // Net growth: the flags can never starve.
        assert!(net > 0, "pin phase must keep net-filling the subtree");
    }

    #[test]
    fn threshold_records_closed_form_examples() {
        let geom = small_geom();
        // Leaf (depth L, width 1), q=3 is g(v,1) = D#: 3L·c ≥ 3L·d# + 3L·gap.
        assert_eq!(geom.threshold_records(8, 1, 3), geom.slot_max);
        // Root (depth 0, width M), q=3: c ≥ M·(d# + gap·(3·0+0)/3L)... exact:
        // 3·8·c ≥ 256·(24·8 + 0·32) → c ≥ 2048 = M·d#.
        assert_eq!(geom.threshold_records(0, 256, 3), geom.capacity());
        // q < 3 at the root clamps to the non-negative numerator.
        assert!(geom.threshold_records(0, 256, 2) < geom.capacity());
    }

    #[test]
    fn time_series_appends_then_slides() {
        let geom = small_geom();
        let plan = scenario_plan(Scenario::TimeSeries, &geom, 7, 800);
        let headroom = geom.capacity() - plan.backbone.len() as u64;
        let appends = (headroom / 2) as usize;
        assert!(plan.ops[..appends]
            .iter()
            .all(|op| matches!(op, Op::Insert(_))));
        assert!(plan.ops[appends..]
            .iter()
            .any(|op| matches!(op, Op::Remove(_))));
    }

    #[test]
    fn delete_churn_is_delete_heavy() {
        let geom = small_geom();
        let plan = scenario_plan(Scenario::DeleteChurn, &geom, 9, 1000);
        let removes = plan
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Remove(_)))
            .count();
        assert!(removes > 500, "only {removes}/1000 removes");
    }

    #[test]
    fn scan_while_write_mixes_both() {
        let geom = small_geom();
        let plan = scenario_plan(Scenario::ScanWhileWrite, &geom, 11, 1000);
        let scans = plan
            .ops
            .iter()
            .filter(|op| matches!(op, Op::Scan { .. }))
            .count();
        assert!((150..450).contains(&scans), "{scans} scans of 1000");
    }
}
