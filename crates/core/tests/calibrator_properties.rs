//! Property tests for the calibrator's warning bookkeeping and SELECT,
//! against brute-force reference implementations.

use dsf_core::calibrator::Calibrator;
use dsf_core::NodeId;
use proptest::prelude::*;

/// Brute-force SELECT: the paper's definition evaluated literally over all
/// nodes.
fn reference_select(cal: &Calibrator<u64>, slot: u32) -> Option<NodeId> {
    // Lowest ancestor α of the leaf with a warned proper descendant.
    let mut alpha = None;
    let mut a = cal.leaf_of(slot).parent()?;
    loop {
        let has_warned_proper_descendant = cal.all_nodes().into_iter().any(|n| {
            n != a && cal.is_warned(n) && {
                // n is a descendant of a?
                let (alo, ahi) = cal.range(a);
                let (nlo, nhi) = cal.range(n);
                alo <= nlo && nhi <= ahi && cal.width(n) < cal.width(a) && is_descendant(n, a)
            }
        });
        if has_warned_proper_descendant {
            alpha = Some(a);
            break;
        }
        match a.parent() {
            Some(p) => a = p,
            None => break,
        }
    }
    let alpha = alpha?;
    // Deepest warned proper descendant, leftmost tie-break (heap order at
    // equal depth is left-to-right).
    cal.all_nodes()
        .into_iter()
        .filter(|&n| n != alpha && cal.is_warned(n) && is_descendant(n, alpha))
        .max_by_key(|n| (n.depth(), std::cmp::Reverse(n.0)))
}

fn is_descendant(mut n: NodeId, ancestor: NodeId) -> bool {
    while let Some(p) = n.parent() {
        if p == ancestor {
            return true;
        }
        n = p;
    }
    false
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 128, ..ProptestConfig::default() })]

    /// SELECT agrees with the brute-force definition under arbitrary
    /// warning-flag states, including after raise/lower churn.
    #[test]
    fn select_matches_brute_force(
        slots in 2u32..40,
        flips in prop::collection::vec((any::<u32>(), any::<bool>()), 1..60),
        probe_slots in prop::collection::vec(any::<u32>(), 1..8),
    ) {
        let mut cal: Calibrator<u64> = Calibrator::new(slots, 1, 1000);
        let nodes = cal.all_nodes();
        let non_root: Vec<NodeId> =
            nodes.iter().copied().filter(|&n| n != NodeId::ROOT).collect();
        for &(idx, on) in &flips {
            let n = non_root[idx as usize % non_root.len()];
            cal.set_warning(n, on);
        }
        // warned_total agrees with a raw count.
        let brute_count =
            cal.all_nodes().iter().filter(|&&n| cal.is_warned(n)).count() as u32;
        prop_assert_eq!(cal.warned_total(), brute_count);

        for &ps in &probe_slots {
            let slot = ps % slots;
            let got = cal.select(slot);
            let want = reference_select(&cal, slot);
            // Depth must match exactly; the node itself must be a warned
            // deepest descendant (tie-break between equally deep nodes is
            // implementation-defined in the paper, pinned leftmost here).
            match (got, want) {
                (None, None) => {}
                (Some(g), Some(w)) => {
                    prop_assert_eq!(g.depth(), w.depth(), "depth for slot {}", slot);
                    prop_assert!(cal.is_warned(g));
                    prop_assert_eq!(g, w, "leftmost tie-break for slot {}", slot);
                }
                other => prop_assert!(false, "select disagreed: {:?}", other),
            }
        }
    }

    /// Counter/min-key propagation is consistent with a from-scratch
    /// rebuild after arbitrary incremental updates.
    #[test]
    fn incremental_updates_equal_rebuild(
        slots in 1u32..40,
        updates in prop::collection::vec((any::<u32>(), 0u64..50, any::<u64>()), 1..60),
    ) {
        let mut inc: Calibrator<u64> = Calibrator::new(slots, 1, 1000);
        let mut state: Vec<(u64, Option<u64>)> = vec![(0, None); slots as usize];
        for &(s, n, min) in &updates {
            let s = s % slots;
            let old = state[s as usize].0 as i64;
            let minv = if n > 0 { Some(min) } else { None };
            state[s as usize] = (n, minv);
            inc.add_count(s, n as i64 - old);
            inc.refresh_min(s, minv);
        }
        let mut rebuilt: Calibrator<u64> = Calibrator::new(slots, 1, 1000);
        for (s, &(n, min)) in state.iter().enumerate() {
            rebuilt.set_leaf_raw(s as u32, n, min);
        }
        rebuilt.recompute_subtree(NodeId::ROOT);
        for n in inc.all_nodes() {
            prop_assert_eq!(inc.count(n), rebuilt.count(n), "count at {:?}", n);
            prop_assert_eq!(inc.min_key(n), rebuilt.min_key(n), "min at {:?}", n);
        }
        prop_assert_eq!(inc.total(), rebuilt.total());
    }

    /// next_nonempty / prev_nonempty agree with linear scans.
    #[test]
    fn nonempty_scans_match_linear(
        slots in 1u32..48,
        filled in prop::collection::btree_set(any::<u32>(), 0..20),
        queries in prop::collection::vec((any::<u32>(), any::<u32>()), 1..10),
    ) {
        let mut cal: Calibrator<u64> = Calibrator::new(slots, 1, 1000);
        let filled: Vec<u32> = filled.into_iter().map(|s| s % slots).collect();
        for &s in &filled {
            if cal.count(cal.leaf_of(s)) == 0 {
                cal.add_count(s, 2);
                cal.refresh_min(s, Some(u64::from(s)));
            }
        }
        for &(a, b) in &queries {
            let (lo, hi) = ((a % slots).min(b % slots), (a % slots).max(b % slots));
            let want_next = (lo..=hi).find(|&s| filled.contains(&s));
            prop_assert_eq!(cal.next_nonempty(lo, hi), want_next);
            let want_prev = (lo..=hi).rev().find(|&s| filled.contains(&s));
            prop_assert_eq!(cal.prev_nonempty(lo, hi), want_prev);
        }
    }
}
