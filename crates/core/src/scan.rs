//! Stream retrieval: ordered scans over the dense file.
//!
//! Scans are the paper's raison d'être — a dense sequential file stores
//! records with consecutive keys in physically adjacent pages, so a scan
//! charges one page read per page crossed and its access trace is a
//! contiguous run (one seek under the disk model). The scan walks slots in
//! address order, skipping empty slots using calibrator metadata (free) and
//! reading record pages through the counted [`dsf_pagestore::PagedStore::read_page`].

use std::ops::Bound;

use dsf_pagestore::{AccessKind, Key, PageRun, Record, RunCoalescer};

use crate::file::DenseFile;

/// An ordered iterator over `(&K, &V)` pairs.
///
/// Created by [`DenseFile::iter`] and [`DenseFile::range`].
pub struct Scan<'a, K, V> {
    file: &'a DenseFile<K, V>,
    /// Current slot, or `None` when exhausted.
    slot: Option<u32>,
    /// Next page within the slot to read.
    page: u32,
    /// Records of the page most recently read.
    buf: &'a [Record<K, V>],
    /// Next index within `buf`.
    idx: usize,
    /// Upper bound on keys.
    end: Bound<K>,
    /// Lower bound, applied while skipping into position.
    start: Bound<K>,
    /// Whether the lower bound has been satisfied already.
    started: bool,
}

impl<'a, K: Key, V> Scan<'a, K, V> {
    pub(crate) fn all(file: &'a DenseFile<K, V>) -> Self {
        Self::bounded(file, Bound::Unbounded, Bound::Unbounded)
    }

    pub(crate) fn bounded(file: &'a DenseFile<K, V>, start: Bound<K>, end: Bound<K>) -> Self {
        let mut page = 0u32;
        let slot = if file.is_empty() {
            None
        } else {
            match &start {
                Bound::Unbounded => file.cal.next_nonempty(0, file.cfg.slots - 1),
                Bound::Included(k) | Bound::Excluded(k) => {
                    // The slot of the greatest record ≤ k.
                    let s = file.cal.find_slot(k);
                    if file.store.is_empty(s) {
                        file.cal.next_nonempty(s, file.cfg.slots - 1)
                    } else {
                        // Position at the physical page holding the bound
                        // (one charged search) instead of sweeping the slot
                        // from page 0 — with K pages per slot that sweep
                        // would cost up to K−1 extra reads.
                        let idx = match file.store.search(s, k) {
                            Ok(i) | Err(i) => i,
                        };
                        page = ((idx as u32) / file.cfg.page_capacity).min(file.cfg.k - 1);
                        Some(s)
                    }
                }
            }
        };
        Scan {
            file,
            slot,
            page,
            buf: &[],
            idx: 0,
            end,
            start,
            started: false,
        }
    }

    /// Loads the next non-empty page into `buf`; returns `false` at the end
    /// of the file.
    fn advance_page(&mut self) -> bool {
        loop {
            let Some(slot) = self.slot else {
                return false;
            };
            let used = self.file.store.pages_used(slot);
            if self.page < used {
                self.buf = self.file.store.read_page(slot, self.page);
                self.page += 1;
                self.idx = 0;
                if !self.buf.is_empty() {
                    return true;
                }
            } else {
                self.slot = if slot + 1 < self.file.cfg.slots {
                    self.file
                        .cal
                        .next_nonempty(slot + 1, self.file.cfg.slots - 1)
                } else {
                    None
                };
                self.page = 0;
            }
        }
    }

    fn before_start(&self, key: &K) -> bool {
        match &self.start {
            Bound::Unbounded => false,
            Bound::Included(s) => key < s,
            Bound::Excluded(s) => key <= s,
        }
    }

    fn past_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => false,
            Bound::Included(e) => key > e,
            Bound::Excluded(e) => key >= e,
        }
    }
}

impl<'a, K: Key, V> Iterator for Scan<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx >= self.buf.len() && !self.advance_page() {
                return None;
            }
            let rec = &self.buf[self.idx];
            self.idx += 1;
            if !self.started {
                if self.before_start(&rec.key) {
                    continue;
                }
                self.started = true;
            }
            if self.past_end(&rec.key) {
                self.slot = None; // exhaust
                self.buf = &[];
                self.idx = 0;
                return None;
            }
            return Some((&rec.key, &rec.value));
        }
    }
}

/// A descending-order iterator over `(&K, &V)` pairs.
///
/// Created by [`DenseFile::iter_rev`] and [`DenseFile::range_rev`]. Reverse
/// streams pay the same page reads as forward ones but their access trace
/// runs high-to-low — the disk model prices them accordingly (real drives
/// cannot read backwards through the buffer, so a reverse sweep seeks more;
/// this iterator exists for completeness and in-memory use).
pub struct ScanRev<'a, K, V> {
    file: &'a DenseFile<K, V>,
    /// Current slot, or `None` when exhausted.
    slot: Option<u32>,
    /// Page within the slot that `buf` came from (we walk pages downward).
    page: u32,
    buf: &'a [Record<K, V>],
    /// Index *one past* the next record to yield (we walk `buf` backward).
    idx: usize,
    start: Bound<K>,
    end: Bound<K>,
    /// Whether the upper bound has been satisfied already.
    started: bool,
    /// Whether `buf` currently holds a page of `slot`.
    loaded: bool,
}

impl<'a, K: Key, V> ScanRev<'a, K, V> {
    pub(crate) fn bounded(file: &'a DenseFile<K, V>, start: Bound<K>, end: Bound<K>) -> Self {
        let mut page = 0u32;
        let mut loaded = false;
        let slot = if file.is_empty() {
            None
        } else {
            match &end {
                Bound::Unbounded => file.cal.prev_nonempty(0, file.cfg.slots - 1),
                Bound::Included(k) | Bound::Excluded(k) => {
                    // The greatest record ≤ k lives in find_slot(k).
                    let s = file.cal.find_slot(k);
                    if file.store.is_empty(s) {
                        file.cal.prev_nonempty(0, s)
                    } else {
                        // Position at the page holding the bound so the
                        // retreat doesn't pay for the slot's tail pages.
                        let idx = match file.store.search(s, k) {
                            Ok(i) | Err(i) => i,
                        };
                        let target = ((idx as u32) / file.cfg.page_capacity).min(file.cfg.k - 1);
                        // retreat_page pre-decrements when `loaded`.
                        page = target + 1;
                        loaded = true;
                        Some(s)
                    }
                }
            }
        };
        ScanRev {
            file,
            slot,
            page,
            buf: &[],
            idx: 0,
            start,
            end,
            started: false,
            loaded,
        }
    }

    /// Loads the previous non-empty page into `buf`; `false` at the start
    /// of the file.
    fn retreat_page(&mut self) -> bool {
        loop {
            let Some(slot) = self.slot else {
                return false;
            };
            if !self.loaded {
                // Start from the slot's last used page.
                let used = self.file.store.pages_used(slot);
                if used == 0 {
                    self.slot = if slot > 0 {
                        self.file.cal.prev_nonempty(0, slot - 1)
                    } else {
                        None
                    };
                    continue;
                }
                self.page = used - 1;
                self.loaded = true;
            } else if self.page > 0 {
                self.page -= 1;
            } else {
                self.loaded = false;
                self.slot = if slot > 0 {
                    self.file.cal.prev_nonempty(0, slot - 1)
                } else {
                    None
                };
                continue;
            }
            self.buf = self.file.store.read_page(slot, self.page);
            self.idx = self.buf.len();
            if !self.buf.is_empty() {
                return true;
            }
        }
    }

    fn past_end(&self, key: &K) -> bool {
        match &self.end {
            Bound::Unbounded => false,
            Bound::Included(e) => key > e,
            Bound::Excluded(e) => key >= e,
        }
    }

    fn before_start(&self, key: &K) -> bool {
        match &self.start {
            Bound::Unbounded => false,
            Bound::Included(s) => key < s,
            Bound::Excluded(s) => key <= s,
        }
    }
}

impl<'a, K: Key, V> Iterator for ScanRev<'a, K, V> {
    type Item = (&'a K, &'a V);

    fn next(&mut self) -> Option<Self::Item> {
        loop {
            if self.idx == 0 && !self.retreat_page() {
                return None;
            }
            self.idx -= 1;
            let rec = &self.buf[self.idx];
            if !self.started {
                if self.past_end(&rec.key) {
                    continue;
                }
                self.started = true;
            }
            if self.before_start(&rec.key) {
                self.slot = None;
                self.buf = &[];
                self.idx = 0;
                return None;
            }
            return Some((&rec.key, &rec.value));
        }
    }
}

impl<K: Key, V> DenseFile<K, V> {
    /// Streams every record in *descending* key order.
    pub fn iter_rev(&self) -> ScanRev<'_, K, V> {
        ScanRev::bounded(self, Bound::Unbounded, Bound::Unbounded)
    }

    /// Streams the records with keys in `range` in *descending* key order.
    pub fn range_rev<R: std::ops::RangeBounds<K>>(&self, range: R) -> ScanRev<'_, K, V> {
        ScanRev::bounded(
            self,
            range.start_bound().cloned(),
            range.end_bound().cloned(),
        )
    }

    /// Plans the physical page runs a retrieval of `[lo, hi]` may touch,
    /// using **resident metadata only** (the calibrator plus per-slot page
    /// counts) — no page access is charged.
    ///
    /// The result is a conservative cover: maximal runs of consecutive
    /// global pages spanning every used page of every slot the range
    /// intersects, plus the first page of the following slot (where a
    /// forward scan discovers it has passed `hi`). These are the prefetch
    /// hints for a fell-swoop physical layer — each run maps to one
    /// `BufferPool::fetch_run` / one sequential read, instead of the
    /// page-at-a-time faults the scan would otherwise take.
    pub fn range_runs(&self, lo: &K, hi: &K) -> Vec<PageRun> {
        if self.is_empty() || lo > hi {
            return Vec::new();
        }
        let k = u64::from(self.cfg.k);
        let s_lo = self.cal.find_slot(lo);
        let s_hi = self.cal.find_slot(hi);
        let mut coalescer = RunCoalescer::new();
        let mut runs = Vec::new();
        for s in s_lo..=s_hi {
            let used = u64::from(self.store.pages_used(s));
            if used == 0 {
                continue;
            }
            if let Some(run) = coalescer.push_run(u64::from(s) * k, used, AccessKind::Read) {
                runs.push(run);
            }
        }
        // The stop page: a forward scan reads one page past the range to
        // see a key > hi.
        if s_hi < self.cfg.slots - 1 {
            if let Some(s) = self.cal.next_nonempty(s_hi + 1, self.cfg.slots - 1) {
                if let Some(run) = coalescer.push_run(u64::from(s) * k, 1, AccessKind::Read) {
                    runs.push(run);
                }
            }
        }
        runs.extend(coalescer.finish());
        runs
    }

    /// Drains the trace's coalesced run log (see
    /// [`dsf_pagestore::TraceBuffer::take_runs`]): the maximal contiguous
    /// page runs of every access recorded since the last drain. SHIFT
    /// sweeps and scans show up here as a handful of runs rather than a
    /// page-by-page stream.
    pub fn io_runs(&self) -> Vec<PageRun> {
        self.io_trace().take_runs()
    }
}

#[cfg(test)]
mod tests {
    use crate::config::DenseFileConfig;
    use crate::file::DenseFile;

    fn loaded(n: u64) -> DenseFile<u64, u64> {
        let mut f = DenseFile::new(DenseFileConfig::control2(64, 8, 48)).unwrap();
        f.bulk_load((0..n).map(|i| (i * 10, i))).unwrap();
        f
    }

    #[test]
    fn full_iteration_yields_everything_in_order() {
        let f = loaded(300);
        let keys: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys.len(), 300);
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys[0], 0);
        assert_eq!(*keys.last().unwrap(), 2990);
    }

    #[test]
    fn empty_file_yields_nothing() {
        let f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        assert_eq!(f.iter().count(), 0);
        assert_eq!(f.range(10..20).count(), 0);
    }

    #[test]
    fn range_bounds_are_respected() {
        let f = loaded(100); // keys 0,10,...,990
        let got: Vec<u64> = f.range(250..=500).map(|(k, _)| *k).collect();
        assert_eq!(got.first(), Some(&250));
        assert_eq!(got.last(), Some(&500));
        assert_eq!(got.len(), 26);

        let got: Vec<u64> = f.range(251..500).map(|(k, _)| *k).collect();
        assert_eq!(got.first(), Some(&260));
        assert_eq!(got.last(), Some(&490));

        let got: Vec<u64> = f.range(..30).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![0, 10, 20]);

        let got: Vec<u64> = f.range(980..).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![980, 990]);
    }

    #[test]
    fn range_between_keys_is_empty() {
        let f = loaded(100);
        assert_eq!(f.range(251..=259).count(), 0);
        assert_eq!(f.range(1000..).count(), 0);
    }

    #[test]
    fn scan_is_physically_sequential() {
        let f = loaded(500);
        f.io_trace().set_enabled(true);
        let n = f.iter().count();
        assert_eq!(n, 500);
        let trace = f.io_trace().take();
        assert!(!trace.is_empty());
        // Page numbers must be non-decreasing: a dense-file scan never seeks
        // backwards.
        assert!(trace.windows(2).all(|w| w[0].page <= w[1].page));
        f.io_trace().set_enabled(false);
    }

    #[test]
    fn scan_after_heavy_updates_stays_ordered() {
        let mut f = loaded(200);
        for i in 0..200u64 {
            f.insert(i * 10 + 5, i).unwrap();
        }
        for i in (0..200u64).step_by(3) {
            f.remove(&(i * 10));
        }
        let keys: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        assert!(keys.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(keys.len() as u64, f.len());
    }

    #[test]
    fn reverse_iteration_mirrors_forward() {
        let f = loaded(300);
        let fwd: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        let mut rev: Vec<u64> = f.iter_rev().map(|(k, _)| *k).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn reverse_ranges_respect_bounds() {
        let f = loaded(100); // keys 0,10,...,990
        let got: Vec<u64> = f.range_rev(250..=500).map(|(k, _)| *k).collect();
        assert_eq!(got.first(), Some(&500));
        assert_eq!(got.last(), Some(&250));
        assert_eq!(got.len(), 26);
        let got: Vec<u64> = f.range_rev(251..500).map(|(k, _)| *k).collect();
        assert_eq!(got.first(), Some(&490));
        assert_eq!(got.last(), Some(&260));
        let got: Vec<u64> = f.range_rev(..30).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![20, 10, 0]);
        let got: Vec<u64> = f.range_rev(980..).map(|(k, _)| *k).collect();
        assert_eq!(got, vec![990, 980]);
        assert_eq!(f.range_rev(251..=259).count(), 0);
        assert_eq!(f.range_rev(1000..).count(), 0);
    }

    #[test]
    fn reverse_scan_after_updates_and_in_macro_mode() {
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
        assert!(f.config().k > 1, "macro-block regime expected");
        f.bulk_load((0..200u64).map(|i| (i * 3, i))).unwrap();
        for i in 0..100u64 {
            f.insert(i * 6 + 1, i).unwrap();
        }
        for i in (0..200u64).step_by(5) {
            f.remove(&(i * 3));
        }
        let fwd: Vec<u64> = f.iter().map(|(k, _)| *k).collect();
        let mut rev: Vec<u64> = f.iter_rev().map(|(k, _)| *k).collect();
        rev.reverse();
        assert_eq!(fwd, rev);
    }

    #[test]
    fn reverse_scan_on_empty_file() {
        let f: DenseFile<u64, u64> = DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        assert_eq!(f.iter_rev().count(), 0);
        assert_eq!(f.range_rev(1..9).count(), 0);
    }

    #[test]
    fn full_scan_coalesces_to_a_single_run() {
        // 64 slots, one page each, all populated: the scan's page stream is
        // 0,1,…,63 and the run log folds it into exactly one fell swoop.
        let f = loaded(500);
        assert_eq!(f.config().k, 1);
        f.io_trace().set_enabled(true);
        assert_eq!(f.iter().count(), 500);
        let runs = f.io_runs();
        f.io_trace().set_enabled(false);
        assert_eq!(runs.len(), 1, "runs: {runs:?}");
        assert_eq!(runs[0].start, 0);
        assert_eq!(runs[0].len, 64);
    }

    #[test]
    fn shift_heavy_inserts_coalesce_their_write_spans() {
        // Macro-block mode: every charged span covers whole stretches of a
        // slot's K pages, so the run log must be much shorter than the
        // event log.
        let mut f: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(64, 6, 8)).unwrap();
        assert!(f.config().k > 1, "macro-block regime expected");
        f.bulk_load((0..300u64).map(|i| (i * 4, i))).unwrap();
        f.io_trace().set_enabled(true);
        for i in 0..100u64 {
            f.insert(i * 8 + 1, i).unwrap();
        }
        let events = f.io_trace().take();
        let runs = f.io_runs();
        f.io_trace().set_enabled(false);
        assert!(!events.is_empty());
        let covered: u64 = runs.iter().map(|r| r.len).sum();
        assert_eq!(covered, events.len() as u64, "runs cover every event");
        assert!(
            runs.len() * 2 <= events.len(),
            "expected ≥2× coalescing, got {} runs over {} events",
            runs.len(),
            events.len()
        );
    }

    #[test]
    fn range_runs_cover_what_the_scan_touches() {
        let mut f = loaded(100); // keys 0,10,…,990
        for i in 0..40u64 {
            f.insert(i * 20 + 5, i).unwrap();
        }
        let planned = f.range_runs(&250, &510);
        assert!(!planned.is_empty());
        // Planned runs are disjoint, ascending, and coalesced (no two
        // adjacent runs touch).
        for w in planned.windows(2) {
            assert!(w[0].end() < w[1].start, "not coalesced: {planned:?}");
        }
        // Every page the real scan reads is inside some planned run.
        f.io_trace().clear();
        f.io_trace().set_enabled(true);
        let want: Vec<u64> = f.range(250..=510).map(|(k, _)| *k).collect();
        let trace = f.io_trace().take();
        f.io_trace().set_enabled(false);
        assert!(!want.is_empty());
        for ev in &trace {
            assert!(
                planned.iter().any(|r| r.contains(ev.page)),
                "page {} outside planned runs {planned:?}",
                ev.page
            );
        }
        // And the plan is itself small: a dense range maps to few swoops.
        assert!(planned.len() <= 3, "planned: {planned:?}");
    }

    #[test]
    fn range_runs_edge_cases() {
        let empty: DenseFile<u64, u64> =
            DenseFile::new(DenseFileConfig::control2(8, 2, 16)).unwrap();
        assert!(empty.range_runs(&0, &100).is_empty());
        let f = loaded(100);
        assert!(f.range_runs(&50, &40).is_empty(), "inverted range");
        // A range past every key still yields at most the tail slot pages.
        let tail = f.range_runs(&100_000, &200_000);
        assert!(tail.len() <= 1, "tail: {tail:?}");
    }

    #[test]
    fn range_with_bound_below_all_keys_starts_at_first_record() {
        let mut f = DenseFile::new(DenseFileConfig::control2(16, 4, 32)).unwrap();
        f.bulk_load((100..110u64).map(|k| (k, k))).unwrap();
        let got: Vec<u64> = f.range(0..).map(|(k, _)| *k).collect();
        assert_eq!(got.len(), 10);
        assert_eq!(got[0], 100);
    }
}
