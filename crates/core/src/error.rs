//! Error types of the dense sequential file.

pub use crate::config::ConfigError;

/// Errors returned by [`crate::DenseFile`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DsfError {
    /// The configuration failed validation.
    Config(ConfigError),
    /// Inserting would exceed the file's capacity `N = d·M`. The paper's
    /// algorithms are defined only for files whose "cardinality never
    /// exceeds N = dM" (Theorem 5.5); the caller must rebuild into a larger
    /// file (see `DenseFile::rebuild_into`).
    CapacityExceeded {
        /// The fixed capacity `N = d#·M#`.
        capacity: u64,
    },
    /// A bulk load was rejected.
    BulkLoad(BulkLoadError),
}

/// Reasons a bulk load is rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BulkLoadError {
    /// The file already contains records.
    NotEmpty,
    /// Input keys were not strictly ascending.
    NotSorted {
        /// Index (in input order) of the offending record.
        index: usize,
    },
    /// More records than the capacity `N = d#·M#`.
    TooMany {
        /// Number of records supplied.
        records: u64,
        /// The file capacity.
        capacity: u64,
    },
    /// A per-slot layout had the wrong number of slots.
    LayoutWidth {
        /// Slots supplied.
        got: usize,
        /// Slots expected.
        expected: u32,
    },
    /// A per-slot layout put more records in a slot than its density bound
    /// `D#` allows.
    SlotOverflow {
        /// The offending slot.
        slot: u32,
        /// Records supplied for it.
        len: usize,
        /// The bound `D#`.
        max: u64,
    },
    /// A per-slot layout violates the paper's BALANCE(d,D) precondition:
    /// Theorem 5.5 requires an initial state every node of which satisfies
    /// `p(v) ≤ g(v,1)`.
    Unbalanced {
        /// Heap index of the offending calibrator node.
        node: u32,
    },
}

impl From<ConfigError> for DsfError {
    fn from(e: ConfigError) -> Self {
        DsfError::Config(e)
    }
}

impl From<BulkLoadError> for DsfError {
    fn from(e: BulkLoadError) -> Self {
        DsfError::BulkLoad(e)
    }
}

impl std::fmt::Display for DsfError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DsfError::Config(e) => write!(f, "invalid configuration: {e}"),
            DsfError::CapacityExceeded { capacity } => {
                write!(f, "file is at its capacity of N = d·M = {capacity} records")
            }
            DsfError::BulkLoad(e) => write!(f, "bulk load rejected: {e}"),
        }
    }
}

impl std::fmt::Display for BulkLoadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BulkLoadError::NotEmpty => write!(f, "file already contains records"),
            BulkLoadError::NotSorted { index } => {
                write!(
                    f,
                    "keys must be strictly ascending (violated at input index {index})"
                )
            }
            BulkLoadError::TooMany { records, capacity } => {
                write!(
                    f,
                    "{records} records exceed the file capacity of {capacity}"
                )
            }
            BulkLoadError::LayoutWidth { got, expected } => {
                write!(f, "layout has {got} slots, file has {expected}")
            }
            BulkLoadError::SlotOverflow { slot, len, max } => {
                write!(f, "slot {slot} given {len} records, density bound is {max}")
            }
            BulkLoadError::Unbalanced { node } => {
                write!(f, "layout violates BALANCE(d,D) at calibrator node {node}")
            }
        }
    }
}

impl std::error::Error for DsfError {}
impl std::error::Error for BulkLoadError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_useful_messages() {
        let e = DsfError::CapacityExceeded { capacity: 72 };
        assert!(e.to_string().contains("72"));
        let e = DsfError::BulkLoad(BulkLoadError::NotSorted { index: 3 });
        assert!(e.to_string().contains("index 3"));
        let e: DsfError = ConfigError::ZeroPages.into();
        assert!(matches!(e, DsfError::Config(_)));
        let e: DsfError = BulkLoadError::NotEmpty.into();
        assert!(e.to_string().contains("already contains"));
    }
}
