//! # dsf-core — Willard's dense sequential file
//!
//! A faithful, production-quality implementation of
//!
//! > Dan E. Willard, *Good Worst-Case Algorithms for Inserting and Deleting
//! > Records in Dense Sequential Files*, SIGMOD 1986.
//!
//! A **(d,D)-dense sequential file** stores a dynamic set of keyed records
//! in ascending key order across `M` consecutive pages, holding at most
//! `N = d·M` records with no page exceeding `D`. The payoff is *stream
//! retrieval*: a range scan reads physically adjacent pages, which on
//! rotational media is dramatically cheaper than chasing a B-tree's
//! scattered leaves. The challenge is maintenance — and this crate provides
//! both of the paper's answers:
//!
//! * [`Algorithm::Control1`] — the amortized algorithm (§3): when a
//!   calibrator node's density exceeds its `g(v,1)` bound, redistribute its
//!   father's range in one shot. `O(log²M/(D−d))` amortized, `O(M)` worst
//!   case.
//! * [`Algorithm::Control2`] — the worst-case algorithm (§4): warning flags
//!   with hysteresis, `DEST`/`SOURCE` pointers, and `J` incremental SHIFT
//!   operations per command spread every rebalance over many commands —
//!   `O(log²M/(D−d))` **per command, worst case** (Theorem 5.5), with the
//!   macro-block reduction (Theorem 5.7) covering small density gaps.
//!
//! ## Quick start
//!
//! ```
//! use dsf_core::{DenseFile, DenseFileConfig};
//!
//! // 256 pages, at most 8·256 = 2048 records, at most 40 records per page.
//! let mut file: DenseFile<u64, String> =
//!     DenseFile::new(DenseFileConfig::control2(256, 8, 40)).unwrap();
//!
//! file.bulk_load((0..1000u64).map(|k| (k * 10, format!("row-{k}")))).unwrap();
//! file.insert(55, "fifty-five".into()).unwrap();
//!
//! // Stream retrieval: records 100..=200 in key order, physically sequential.
//! let streamed: Vec<u64> = file.range(100..=200).map(|(k, _)| *k).collect();
//! assert_eq!(streamed.len(), 11);
//!
//! // The paper's guarantee, measurable: worst command cost stays bounded.
//! println!("worst command: {} page accesses", file.op_stats().max_accesses);
//! # file.check_invariants().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod batch;
pub mod calibrator;
mod config;
mod control1;
mod control2;
mod error;
mod file;
mod invariant;
mod maintenance;
mod order;
mod scan;
pub mod snapshot;
pub mod stats;
mod tel;
pub mod trace;

pub use batch::{Command, CommandOutcome};
pub use calibrator::{Calibrator, NodeId};
pub use config::{
    ceil_log2, AblationTweaks, Algorithm, ConfigError, DenseFileConfig, MacroBlocking,
    ResolvedConfig,
};
pub use error::{BulkLoadError, DsfError};
pub use file::{Audit, DenseFile};
pub use invariant::InvariantViolation;
pub use scan::{Scan, ScanRev};
pub use snapshot::{Codec, SnapshotError};
pub use stats::{AccessHistogram, OpStats};
pub use tel::SPAN_SAMPLE_EVERY;
pub use trace::{CommandKind, Moment, StepEvent, StepRecorder};
