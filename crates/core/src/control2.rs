//! CONTROL 2 — the paper's worst-case maintenance algorithm (§4).
//!
//! After step 1 of every command (performed in `file.rs`) this module runs:
//!
//! * **step 2** — lower the warning flag of any path node whose density
//!   fell to `p(x) ≤ g(x,⅓)`;
//! * **step 3** — ACTIVATE any non-root path node that rose to
//!   `p(w) ≥ g(w,⅔)` while unwarned: raise its flag, aim its `DEST` pointer
//!   at the far end of its father's range, and apply the two roll-back
//!   rules to warned nodes whose pointers traverse an enclosing range;
//! * **step 4** — `J` iterations of SELECT → SHIFT → flag-lowering.
//!
//! SHIFT moves records from `SOURCE(v)` (the nearest non-empty page beyond
//! `DEST(v)`) into `DEST(v)` until either the source empties or some node of
//! `UP(v)` — the nodes containing the destination but not the source —
//! reaches its `g(·,0)` density, in which case `DEST(v)` advances past the
//! highest such saturated node. Repeated over many commands this spreads the
//! records of the warned node's father evenly, which is what ultimately
//! drives `p(v)` back below `g(v,⅓)` — the paper's "evolutionary process".
//!
//! Every subroutine is a faithful transcription of the paper's definitions;
//! the unit tests in this module and the golden test of Example 5.2 pin the
//! behaviour move for move.

use dsf_pagestore::{End, Key};

use crate::calibrator::NodeId;
use crate::file::DenseFile;
use crate::trace::{Moment, StepEvent};

/// Outcome of one SHIFT invocation (used by step 4c and the trace).
#[derive(Debug, Clone, Copy)]
pub(crate) struct ShiftOutcome {
    /// The source page, if one existed.
    pub source: Option<u32>,
    /// The destination page records were moved to.
    pub dest: u32,
    /// Records moved.
    pub moved: u64,
}

impl<K: Key, V> DenseFile<K, V> {
    /// Steps 2–4 of CONTROL 2, run after step 1 touched `slot`.
    pub(crate) fn control2_after_update(&mut self, slot: u32) {
        self.lower_flags_on_path(slot); // step 2
        self.activate_on_path(slot); // step 3
        self.emit_flag_stable(Moment::AfterStep3);
        for _ in 0..self.cfg.j {
            // step 4a
            let selected = if self.cfg.tweaks.select_shallowest {
                self.cal.select_shallowest(slot)
            } else {
                self.cal.select(slot)
            };
            let Some(v) = selected else {
                // No warned node anywhere; SELECT cannot succeed for the
                // rest of this command either.
                self.stats.idle_steps += 1;
                self.emit(|| StepEvent::ShiftIdle);
                break;
            };
            self.emit(|| StepEvent::Selected { node: v });
            // step 4b: the shift's page traffic lands in the flight
            // record's Shift phase.
            let outcome = {
                let _phase = dsf_flight::phase(dsf_flight::Phase::Shift);
                self.shift(v)
            };
            // step 4c: only nodes whose density *decreased* can newly fall
            // under g(·,⅓): those containing the source but not the dest.
            if let Some(source) = outcome.source {
                if outcome.moved > 0 {
                    for x in self.cal.up_path(source, outcome.dest) {
                        self.lower_if_cold(x);
                    }
                }
            }
            self.emit_flag_stable(Moment::AfterStep4c);
        }
    }

    /// Step 2: lower any warned node on the leaf-to-root path of `slot`
    /// whose density is now `≤ g(·,⅓)`.
    fn lower_flags_on_path(&mut self, slot: u32) {
        let mut n = self.cal.leaf_of(slot);
        loop {
            self.lower_if_cold(n);
            match n.parent() {
                Some(p) => n = p,
                None => break,
            }
        }
    }

    fn lower_if_cold(&mut self, n: NodeId) {
        // Ablation: `narrow_hysteresis` collapses the band by lowering
        // already at g(·,2/3) instead of g(·,1/3).
        let q = if self.cfg.tweaks.narrow_hysteresis {
            2
        } else {
            1
        };
        if self.cal.is_warned(n) && self.cal.p_le(n, q) {
            self.cal.set_warning(n, false);
            self.stats.flags_lowered += 1;
            dsf_flight::record_flag_lowered(u64::from(n.0));
            self.emit(|| StepEvent::WarningLowered { node: n });
        }
    }

    /// Step 3: ACTIVATE unwarned non-root path nodes that reached
    /// `p(w) ≥ g(w,⅔)`, shallowest first so that deeper activations roll
    /// back the pointers their ancestors just received.
    fn activate_on_path(&mut self, slot: u32) {
        let mut path = Vec::with_capacity(self.cal.log_slots() as usize + 1);
        let mut n = self.cal.leaf_of(slot);
        loop {
            path.push(n);
            match n.parent() {
                Some(p) => n = p,
                None => break,
            }
        }
        for &w in path.iter().rev() {
            if w != NodeId::ROOT && !self.cal.is_warned(w) && self.cal.p_ge(w, 2) {
                self.activate(w);
            }
        }
    }

    /// The paper's ACTIVATE(w).
    pub(crate) fn activate(&mut self, w: NodeId) {
        debug_assert!(w != NodeId::ROOT, "the root is never activated");
        let _phase = dsf_flight::phase(dsf_flight::Phase::Activate);
        // 1. Raise w into a warning state.
        self.cal.set_warning(w, true);
        self.stats.activations += 1;
        // 2. Aim DEST(w) at the far end of the father's range.
        let fw = w.parent().expect("non-root");
        let (flo, fhi) = self.cal.range(fw);
        let dest = if w.is_right_child() { flo } else { fhi };
        self.cal.set_dest(w, dest);
        dsf_flight::record_activate(u64::from(w.0), u64::from(dest));
        self.emit(|| StepEvent::Activated { node: w, dest });
        // 3. Roll-back rules: any warned node y with RANGE(f_y) ⊃ RANGE(f_w)
        //    whose DEST traverses RANGE(f_w) is reset to the far edge of
        //    RANGE(f_w), so it can later repair damage done by SHIFT(w).
        //    Such y are exactly the children of proper ancestors of f_w.
        if self.cfg.tweaks.disable_rollback {
            return; // ablation E8: measure what thrashing costs
        }
        let mut anc = fw.parent();
        while let Some(a) = anc {
            let (l, r) = self.cal.children(a).expect("ancestors are internal");
            for y in [l, r] {
                if !self.cal.exists(y) || !self.cal.is_warned(y) {
                    continue;
                }
                let dy = self.cal.dest(y);
                if y.is_right_child() {
                    // Roll-back rule 1 (DIR(y)=1): A⁻(f_w)+1 ≤ DEST(y) ≤ A⁺(f_w).
                    if dy > flo && dy <= fhi {
                        self.cal.set_dest(y, flo);
                        self.stats.rollbacks += 1;
                        dsf_flight::record_rollback(u64::from(y.0), u64::from(flo));
                        self.emit(|| StepEvent::RolledBack {
                            node: y,
                            new_dest: flo,
                        });
                    }
                } else {
                    // Roll-back rule 0 (DIR(y)=0): A⁻(f_w) ≤ DEST(y) ≤ A⁺(f_w)−1.
                    if dy >= flo && dy < fhi {
                        self.cal.set_dest(y, fhi);
                        self.stats.rollbacks += 1;
                        dsf_flight::record_rollback(u64::from(y.0), u64::from(fhi));
                        self.emit(|| StepEvent::RolledBack {
                            node: y,
                            new_dest: fhi,
                        });
                    }
                }
            }
            anc = a.parent();
        }
    }

    /// The paper's SHIFT(v). Caller guarantees `v` is warned.
    pub(crate) fn shift(&mut self, v: NodeId) -> ShiftOutcome {
        debug_assert!(self.cal.is_warned(v));
        self.stats.shifts += 1;
        let fv = v.parent().expect("warned nodes are non-root");
        let (flo, fhi) = self.cal.range(fv);
        let dest = self.cal.dest(v);
        debug_assert!(
            flo <= dest && dest <= fhi,
            "DEST must stay inside RANGE(f_v)"
        );
        let rightwards_source = v.is_right_child(); // records flow left

        // 1. SOURCE(v): nearest non-empty page beyond DEST in shift direction.
        let source = if rightwards_source {
            (dest < fhi)
                .then(|| self.cal.next_nonempty(dest + 1, fhi))
                .flatten()
        } else {
            (dest > flo)
                .then(|| self.cal.prev_nonempty(flo, dest - 1))
                .flatten()
        };
        let Some(source) = source else {
            // Defensive: the paper's proof implies v's flag drops before
            // this state is reachable (DESIGN.md §3.6). Counted, no-op.
            self.stats.no_source_shifts += 1;
            self.emit(|| StepEvent::ShiftNoSource { node: v });
            return ShiftOutcome {
                source: None,
                dest,
                moved: 0,
            };
        };

        // 2. Move records until SOURCE empties or an UP(v) node reaches
        //    g(·,0). UP(v) = nodes containing DEST but not SOURCE.
        let up = self.cal.up_path(dest, source);
        let quota = up
            .iter()
            .map(|&x| self.cal.records_until_ge(x, 0))
            .min()
            .expect("UP is non-empty");
        let n = quota.min(self.store.len(source) as u64);
        if n > 0 {
            let n_usize = n as usize;
            if rightwards_source {
                // DEST < SOURCE: the lowest keys of SOURCE append to DEST.
                let recs = self.store.take(source, n_usize, End::Front);
                self.store.put(dest, recs, End::Back);
            } else {
                // SOURCE < DEST: the highest keys of SOURCE prepend to DEST.
                let recs = self.store.take(source, n_usize, End::Back);
                self.store.put(dest, recs, End::Front);
            }
            self.cal.add_count(source, -(n as i64));
            self.cal.add_count(dest, n as i64);
            self.cal.refresh_min(source, self.store.min_key(source));
            self.cal.refresh_min(dest, self.store.min_key(dest));
            self.stats.records_shifted += n;
        } else {
            self.stats.empty_shifts += 1;
        }

        // 3. Advance DEST past the least-deep saturated UP(v) node, if any.
        let mut xstar: Option<NodeId> = None;
        for &x in &up {
            // `up` is ordered deepest-first; the last match is the least deep.
            if self.cal.p_ge(x, 0) {
                xstar = Some(x);
            }
        }
        let new_dest = xstar.map(|xs| {
            let (xlo, xhi) = self.cal.range(xs);
            if rightwards_source {
                xhi + 1
            } else {
                xlo - 1
            }
        });
        if let Some(nd) = new_dest {
            self.cal.set_dest(v, nd);
        }
        dsf_flight::record_shift(u64::from(v.0), u64::from(source), u64::from(dest), n);
        self.emit(|| StepEvent::Shifted {
            node: v,
            source,
            dest,
            moved: n,
            new_dest,
        });
        ShiftOutcome {
            source: Some(source),
            dest,
            moved: n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{DenseFileConfig, MacroBlocking};
    use crate::trace::CommandKind;

    /// The Example 5.2 file: M=8, d=9, D=18, J=3, K forced to 1.
    fn example_file() -> DenseFile<u64, ()> {
        let cfg = DenseFileConfig::control2(8, 9, 18)
            .with_j(3)
            .with_macro_blocking(MacroBlocking::Disabled);
        let mut f = DenseFile::new(cfg).unwrap();
        // t₀ layout: [16, 1, 0, 1, 9, 9, 9, 16]; keys spaced so that slot s
        // holds keys in (s·1000, (s+1)·1000).
        let counts = [16usize, 1, 0, 1, 9, 9, 9, 16];
        let layout: Vec<Vec<(u64, ())>> = counts
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n)
                    .map(|i| (s as u64 * 1000 + i as u64 + 1, ()))
                    .collect()
            })
            .collect();
        f.bulk_load_per_slot(layout).unwrap();
        f
    }

    fn counts(f: &DenseFile<u64, ()>) -> Vec<u64> {
        f.slot_counts()
    }

    #[test]
    fn example_5_2_command_z1_reproduces_rows_t1_to_t4() {
        let mut f = example_file();
        assert_eq!(counts(&f), vec![16, 1, 0, 1, 9, 9, 9, 16]);
        assert_eq!(f.cal.warned_total(), 0, "t₀: all nodes non-warning");

        f.enable_step_trace();
        // Z₁: insert a record into page 8 (slot 7): key above slot 7's keys.
        f.insert(7500, ()).unwrap();
        assert_eq!(counts(&f), vec![16, 2, 0, 0, 9, 9, 15, 11], "t₄ row");

        // Verify the flag-stable snapshots t₁..t₄ from the trace.
        let stable: Vec<Vec<u64>> = f
            .take_step_trace()
            .into_iter()
            .filter_map(|e| match e {
                StepEvent::FlagStable { slot_counts, .. } => Some(slot_counts),
                _ => None,
            })
            .collect();
        assert_eq!(
            stable,
            vec![
                vec![16, 1, 0, 1, 9, 9, 9, 17],  // t₁ (after step 3)
                vec![16, 1, 0, 1, 9, 9, 15, 11], // t₂ (SHIFT(L8) moved 6)
                vec![16, 1, 0, 1, 9, 9, 15, 11], // t₃ (SHIFT(v3) moved 0)
                vec![16, 2, 0, 0, 9, 9, 15, 11], // t₄ (page 4 → page 2)
            ]
        );
    }

    #[test]
    fn example_5_2_command_z2_reproduces_rows_t5_to_t8() {
        let mut f = example_file();
        f.insert(7500, ()).unwrap(); // Z₁
        f.enable_step_trace();
        // Z₂: insert into page 1 (slot 0).
        f.insert(500, ()).unwrap();
        assert_eq!(counts(&f), vec![15, 9, 0, 0, 4, 9, 15, 11], "t₈ row");
        assert_eq!(
            f.cal.warned_total(),
            0,
            "all flags lowered at the end of Z₂"
        );

        let stable: Vec<Vec<u64>> = f
            .take_step_trace()
            .into_iter()
            .filter_map(|e| match e {
                StepEvent::FlagStable { slot_counts, .. } => Some(slot_counts),
                _ => None,
            })
            .collect();
        assert_eq!(
            stable,
            vec![
                vec![17, 2, 0, 0, 9, 9, 15, 11], // t₅
                vec![4, 15, 0, 0, 9, 9, 15, 11], // t₆ (13 records, page 1 → 2)
                vec![15, 4, 0, 0, 9, 9, 15, 11], // t₇ (11 records, page 2 → 1)
                vec![15, 9, 0, 0, 4, 9, 15, 11], // t₈ (5 records, page 5 → 2)
            ]
        );
    }

    #[test]
    fn z1_activates_l8_and_v3_with_paper_dest_pointers() {
        let mut f = example_file();
        f.enable_step_trace();
        f.insert(7500, ()).unwrap();
        let evs = f.take_step_trace();
        let activated: Vec<(u32, u32)> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::Activated { node, dest } => Some((node.0, *dest)),
                _ => None,
            })
            .collect();
        // Shallowest first: v3 (heap 3) with DEST = A⁻(root) = slot 0
        // (page 1), then L8 (heap 15) with DEST = A⁻(v7) = slot 6 (page 7).
        assert_eq!(activated, vec![(3, 0), (15, 6)]);
        // No roll-back fires during Z₁.
        assert!(!evs
            .iter()
            .any(|e| matches!(e, StepEvent::RolledBack { .. })));
    }

    #[test]
    fn z2_rollback_rule_1_resets_dest_v3_to_page_1() {
        let mut f = example_file();
        f.insert(7500, ()).unwrap(); // Z₁ leaves DEST(v3) = slot 1 (page 2)
        assert_eq!(f.cal.dest(NodeId(3)), 1);
        f.enable_step_trace();
        f.insert(500, ()).unwrap(); // Z₂
        let evs = f.take_step_trace();
        let rolled: Vec<(u32, u32)> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::RolledBack { node, new_dest } => Some((node.0, *new_dest)),
                _ => None,
            })
            .collect();
        // ACTIVATE(L1): DIR(v3)=1 and DEST(v3)=1 ∈ [A⁻(v4)+1, A⁺(v4)] = [1,1]
        // → roll back to A⁻(v4) = 0 (page 1).
        assert_eq!(rolled, vec![(3, 0)]);
    }

    #[test]
    fn z1_shift_sequence_matches_the_paper() {
        let mut f = example_file();
        f.enable_step_trace();
        f.insert(7500, ()).unwrap();
        let evs = f.take_step_trace();
        let shifts: Vec<(u32, u32, u32, u64, Option<u32>)> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::Shifted {
                    node,
                    source,
                    dest,
                    moved,
                    new_dest,
                } => Some((node.0, *source, *dest, *moved, *new_dest)),
                _ => None,
            })
            .collect();
        assert_eq!(
            shifts,
            vec![
                // SHIFT(L8): source page 8 (slot 7), dest page 7 (slot 6),
                // 6 records, DEST advances past L7 to slot 7.
                (15, 7, 6, 6, Some(7)),
                // SHIFT(v3): source page 2, dest page 1, 0 records (L1 was
                // already ≥ g(L1,0)), DEST advances to page 2 (slot 1).
                (3, 1, 0, 0, Some(1)),
                // SHIFT(v3): source page 4 (slot 3), dest page 2 (slot 1),
                // 1 record moves and empties the source; nothing saturates,
                // so DEST stays.
                (3, 3, 1, 1, None),
            ]
        );
    }

    #[test]
    fn z2_shift_quantities_match_the_paper() {
        let mut f = example_file();
        f.insert(7500, ()).unwrap();
        f.enable_step_trace();
        f.insert(500, ()).unwrap();
        let evs = f.take_step_trace();
        let shifts: Vec<(u32, u32, u32, u64)> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::Shifted {
                    node,
                    source,
                    dest,
                    moved,
                    ..
                } => Some((node.0, *source, *dest, *moved)),
                _ => None,
            })
            .collect();
        assert_eq!(
            shifts,
            vec![
                (8, 0, 1, 13), // SHIFT(L1): 13 records page 1 → 2
                (3, 1, 0, 11), // SHIFT(v3): 11 records page 2 → 1
                (3, 4, 1, 5),  // SHIFT(v3): 5 records page 5 → 2
            ]
        );
    }

    #[test]
    fn flags_lower_in_step_4c_as_densities_fall() {
        let mut f = example_file();
        f.enable_step_trace();
        f.insert(7500, ()).unwrap();
        let evs = f.take_step_trace();
        let lowered: Vec<u32> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::WarningLowered { node } => Some(node.0),
                _ => None,
            })
            .collect();
        // Z₁: L8 (heap 15) drops after its shift; v3 stays warned through t₄.
        assert_eq!(lowered, vec![15]);
        assert!(f.cal.is_warned(NodeId(3)));
        assert!(!f.cal.is_warned(NodeId(15)));
    }

    #[test]
    fn command_kinds_are_traced() {
        let mut f = example_file();
        f.enable_step_trace();
        f.insert(7500, ()).unwrap();
        f.remove(&7500);
        let evs = f.take_step_trace();
        let kinds: Vec<CommandKind> = evs
            .iter()
            .filter_map(|e| match e {
                StepEvent::CommandBegin { kind, .. } => Some(*kind),
                _ => None,
            })
            .collect();
        assert_eq!(kinds, vec![CommandKind::Insert, CommandKind::Delete]);
    }

    /// Roll-back rule 1 in isolation: a warned right-son ancestor-child y
    /// with DEST inside [A⁻(f_w)+1, A⁺(f_w)] is reset to A⁻(f_w).
    #[test]
    fn rollback_rule_1_boundaries() {
        let mut f = example_file();
        let v3 = NodeId(3); // right son of the root, RANGE = slots 4-7
        f.cal.set_warning(v3, true);
        // f_w for w = L1/L2 is v4 = NodeId(4); RANGE(v4) = slots 0-1.

        // DEST(v3) inside (A⁻(v4), A⁺(v4)] = (0, 1] → rolls back to 0.
        f.cal.set_dest(v3, 1);
        f.activate(NodeId(8)); // w = L1, f_w = v4
        assert_eq!(f.cal.dest(v3), 0, "rule 1 must fire");
        assert_eq!(f.stats.rollbacks, 1);
        f.cal.set_warning(NodeId(8), false);

        // DEST(v3) exactly at A⁻(v4) = 0 → outside the rule's interval.
        f.cal.set_dest(v3, 0);
        f.activate(NodeId(9)); // w = L2, f_w = v4 again
        assert_eq!(f.cal.dest(v3), 0, "rule 1 must not fire at the left edge");
        assert_eq!(f.stats.rollbacks, 1);
        f.cal.set_warning(NodeId(9), false);

        // DEST(v3) beyond A⁺(f_w) → untouched.
        f.cal.set_dest(v3, 3);
        f.activate(NodeId(8));
        assert_eq!(f.cal.dest(v3), 3);
        assert_eq!(f.stats.rollbacks, 1);
    }

    /// Roll-back rule 0 in isolation: a warned left-son y with DEST inside
    /// [A⁻(f_w), A⁺(f_w)−1] is reset to A⁺(f_w).
    #[test]
    fn rollback_rule_0_boundaries() {
        let mut f = example_file();
        let v2 = NodeId(2); // left son of the root, RANGE = slots 0-3
        f.cal.set_warning(v2, true);
        // f_w for w = L7/L8 is v7 = NodeId(7); RANGE(v7) = slots 6-7.

        // DEST(v2) inside [A⁻(v7), A⁺(v7)−1] = [6, 6] → rolls back to 7.
        f.cal.set_dest(v2, 6);
        f.activate(NodeId(15)); // w = L8, f_w = v7
        assert_eq!(f.cal.dest(v2), 7, "rule 0 must fire");
        assert_eq!(f.stats.rollbacks, 1);
        f.cal.set_warning(NodeId(15), false);

        // DEST(v2) exactly at A⁺(v7) = 7 → outside the rule's interval.
        f.cal.set_dest(v2, 7);
        f.activate(NodeId(14)); // w = L7
        assert_eq!(f.cal.dest(v2), 7, "rule 0 must not fire at the right edge");
        assert_eq!(f.stats.rollbacks, 1);
        f.cal.set_warning(NodeId(14), false);

        // Siblings (f_y == f_w) are never rolled back: activate L7 while
        // its sibling L8 is warned with DEST in range.
        f.cal.set_warning(NodeId(15), true);
        f.cal.set_dest(NodeId(15), 6);
        f.activate(NodeId(14));
        assert_eq!(f.cal.dest(NodeId(15)), 6, "siblings share f and are exempt");
    }

    /// The ablation knob really disables the rules.
    #[test]
    fn rollback_can_be_disabled() {
        use crate::config::AblationTweaks;
        let cfg = DenseFileConfig::control2(8, 9, 18)
            .with_j(3)
            .with_macro_blocking(MacroBlocking::Disabled)
            .with_tweaks(AblationTweaks {
                disable_rollback: true,
                ..Default::default()
            });
        let mut f: DenseFile<u64, ()> = DenseFile::new(cfg).unwrap();
        let counts = [16usize, 1, 0, 1, 9, 9, 9, 16];
        let layout: Vec<Vec<(u64, ())>> = counts
            .iter()
            .enumerate()
            .map(|(s, &n)| {
                (0..n)
                    .map(|i| (s as u64 * 1000 + i as u64 + 1, ()))
                    .collect()
            })
            .collect();
        f.bulk_load_per_slot(layout).unwrap();
        f.insert(7500, ()).unwrap();
        f.insert(500, ()).unwrap();
        assert_eq!(f.stats.rollbacks, 0);
    }

    #[test]
    fn deletions_lower_flags_but_never_activate() {
        let mut f = example_file();
        f.insert(7500, ()).unwrap(); // leaves v3 warned
        assert!(f.cal.is_warned(NodeId(3)));
        let before = f.stats.activations;
        // Delete records from v3's range until its density drops below g(v3,1/3)=10.
        // p(v3) = 44/4 = 11 after Z₁... the t₄ state has slots 4..8 = 9,9,15,11 = 44.
        for k in [4001u64, 4002, 4003, 4004, 4005] {
            f.remove(&k).unwrap();
        }
        assert_eq!(f.stats.activations, before, "deletes never activate");
        // Deletions (plus the shifts they trigger, which only drain v3's
        // range further) push p(v3) under g(v3,1/3) = 10 → flag lowered.
        assert!(!f.cal.is_warned(NodeId(3)));
    }
}
