//! Batched command application.
//!
//! A caller holding many commands at once (a burst ingest, a replicated-log
//! apply loop, a migration) can hand them to
//! [`DenseFile::apply_batch`] instead of looping over
//! [`insert`](DenseFile::insert)/[`remove`](DenseFile::remove). The batch
//! path executes the commands **in their original order**, each through the
//! full CONTROL 1/CONTROL 2 maintenance pass, chaining each command's
//! *resolved* slot into the next command's calibrator hint — so a run of
//! commands landing in the same page-group pays one `O(1)` hint check per
//! command instead of one root-to-leaf descent, with zero planning
//! allocations. (An earlier revision planned ahead with a sort/dedup pass;
//! profiling showed the planning descents plus the sort dominated the CPU
//! cost of clustered batches, and execution-time chaining gets the same
//! hint-hit rate for free.)
//!
//! What batching amortizes and what it deliberately does not:
//!
//! * amortized — the calibrator descents (each command seeds the next with
//!   its resolved slot, revalidated against the live counters with an
//!   `O(log M)`-worst-case check instead of a fresh descent), and in the
//!   layers above, the WAL write+fsync (group commit in `dsf-durable`),
//!   the shard lock (one acquisition per batch in `dsf-concurrent`), and
//!   buffer-pool evictions (`pin_run` in `dsf-pagestore`);
//! * **not** amortized — the paper's page-access bound. Every command still
//!   runs its own step 1 and its own `J` SHIFT steps, so the
//!   `O(log²M/(D−d))` worst case holds *per command* and the batch costs at
//!   most the sum of its commands' individual bounds. That is what makes
//!   the batched file bit-identical to one-at-a-time application: same
//!   slots, same shifts, same flags, same statistics.

use dsf_pagestore::Key;

use crate::error::DsfError;
use crate::file::DenseFile;

/// One element of a batch: the same structural commands
/// [`DenseFile::insert`] and [`DenseFile::remove`] accept, as data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Command<K, V> {
    /// Insert (or replace) `key` with the value.
    Insert(K, V),
    /// Delete `key` if present.
    Remove(K),
}

impl<K, V> Command<K, V> {
    /// The key this command addresses (what batches are sorted by).
    pub fn key(&self) -> &K {
        match self {
            Command::Insert(k, _) => k,
            Command::Remove(k) => k,
        }
    }
}

/// What one batched command did — the batch-shaped mirror of the return
/// values of [`DenseFile::insert`] (`Ok(None)` / `Ok(Some)` / `Err`) and
/// [`DenseFile::remove`] (`Some` / `None`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommandOutcome<V> {
    /// A new key was inserted (a structural command ran).
    Inserted,
    /// The key existed; its value was replaced (no structural command).
    Replaced(V),
    /// The key was deleted (a structural command ran).
    Removed(V),
    /// A remove missed; nothing changed.
    NotFound,
    /// An insert was refused; nothing changed.
    Rejected(DsfError),
}

impl<V> CommandOutcome<V> {
    /// Whether the command changed the file (and would produce a WAL frame
    /// in the durable layer).
    pub fn is_effective(&self) -> bool {
        matches!(
            self,
            CommandOutcome::Inserted | CommandOutcome::Replaced(_) | CommandOutcome::Removed(_)
        )
    }
}

impl<K: Key, V> DenseFile<K, V> {
    /// Applies a batch of commands, returning one [`CommandOutcome`] per
    /// command in order.
    ///
    /// Equivalent — bit-for-bit, including [`op_stats`](Self::op_stats) and
    /// the per-command worst-case bound — to looping over
    /// [`insert`](Self::insert)/[`remove`](Self::remove) in the same order.
    /// Each command's *resolved* slot becomes the next command's calibrator
    /// hint, revalidated against the live counters before use (commands
    /// move records, so a hint is a hint, never an answer) — clustered
    /// batches resolve most commands with one `O(1)` check instead of a
    /// root-to-leaf descent, and the loop allocates nothing beyond the
    /// outcome vector.
    ///
    /// ```
    /// use dsf_core::{Command, CommandOutcome, DenseFile, DenseFileConfig};
    ///
    /// let mut f: DenseFile<u64, u64> =
    ///     DenseFile::new(DenseFileConfig::control2(64, 8, 40)).unwrap();
    /// let outcomes = f.apply_batch(&[
    ///     Command::Insert(10, 1),
    ///     Command::Insert(20, 2),
    ///     Command::Remove(10),
    ///     Command::Remove(99),
    /// ]);
    /// assert_eq!(outcomes, vec![
    ///     CommandOutcome::Inserted,
    ///     CommandOutcome::Inserted,
    ///     CommandOutcome::Removed(1),
    ///     CommandOutcome::NotFound,
    /// ]);
    /// assert_eq!(f.len(), 1);
    /// ```
    pub fn apply_batch(&mut self, cmds: &[Command<K, V>]) -> Vec<CommandOutcome<V>>
    where
        V: Clone,
    {
        self.apply_batch_with(cmds, |_, _| {})
    }

    /// [`apply_batch`](Self::apply_batch) with a per-command observer,
    /// called with `(index, outcome)` immediately after each command
    /// completes (while the flight recorder's sequence number for that
    /// command is still current). This is the hook the durable layer's
    /// group commit uses to buffer one WAL frame per effective command with
    /// exact per-command cost attribution.
    pub fn apply_batch_with<F>(
        &mut self,
        cmds: &[Command<K, V>],
        mut observe: F,
    ) -> Vec<CommandOutcome<V>>
    where
        V: Clone,
        F: FnMut(usize, &CommandOutcome<V>),
    {
        if dsf_telemetry::enabled() {
            let t = crate::tel::tel();
            t.batch_commands.add(cmds.len() as u64);
            t.batch_size.record(cmds.len() as u64);
        }
        let mut out = Vec::with_capacity(cmds.len());
        // The previous command's resolved slot seeds the next command's
        // hinted descent. Always valid to carry across commands: hints are
        // revalidated (find_slot_hinted provably agrees with find_slot for
        // *any* hint), so a stale or wild hint costs one check, never a
        // wrong slot.
        let mut hint: Option<u32> = None;
        for (i, cmd) in cmds.iter().enumerate() {
            let outcome = match cmd {
                Command::Insert(k, v) => match self.insert_hinted(*k, v.clone(), hint) {
                    Ok((None, slot)) => {
                        hint = Some(slot);
                        CommandOutcome::Inserted
                    }
                    Ok((Some(old), slot)) => {
                        hint = Some(slot);
                        CommandOutcome::Replaced(old)
                    }
                    Err(e) => CommandOutcome::Rejected(e),
                },
                Command::Remove(k) => {
                    let (removed, slot) = self.remove_hinted(k, hint);
                    if let Some(slot) = slot {
                        hint = Some(slot);
                    }
                    match removed {
                        Some(old) => CommandOutcome::Removed(old),
                        None => CommandOutcome::NotFound,
                    }
                }
            };
            observe(i, &outcome);
            out.push(outcome);
        }
        out
    }
}
