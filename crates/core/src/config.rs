//! Configuration of a dense sequential file.
//!
//! The user-facing [`DenseFileConfig`] speaks the paper's vocabulary — `M`
//! physical pages, densities `d < D`, the shift budget `J` — and is resolved
//! into a [`ResolvedConfig`] that also fixes the macro-block factor `K`
//! (Theorem 5.7) and the calibrator depth `L = ⌈log₂ M⌉`.

/// Which maintenance algorithm drives the file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Algorithm {
    /// The paper's §3 algorithm: one-shot redistribution of the highest
    /// unbalanced subtree. Amortized `O(log²M/(D−d))` page accesses per
    /// command, but individual commands may cost `O(M)`.
    Control1,
    /// The paper's §4 algorithm: evolutionary record shifting bounded by
    /// `J` SHIFT operations per command — worst-case `O(log²M/(D−d))`.
    Control2,
}

/// Macro-block policy (paper §5, Theorem 5.7).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MacroBlocking {
    /// Apply the paper's rule: if `D−d ≤ 3⌈log₂M⌉`, group `K` pages per
    /// block with `K` the least integer satisfying `K(D−d) > 3⌈log₂M⌉`
    /// (eq. 5.3); otherwise `K = 1`.
    Auto,
    /// Never group pages (`K = 1`), even when the paper's simplifying
    /// assumption `D−d > 3⌈log₂M⌉` fails. The worst-case guarantee is then
    /// void — useful only for the ablation experiments.
    Disabled,
    /// Use exactly this `K` (must be ≥ 1).
    Force(u32),
}

/// Knobs that deliberately *break* parts of CONTROL 2, for the ablation
/// experiment (EXPERIMENTS.md, E8). All off in normal operation; each one
/// removes a design element the paper argues is necessary, so that its
/// effect (thrashing, balance violations, cost spikes) can be measured.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AblationTweaks {
    /// Skip ACTIVATE's roll-back rules — the paper's anti-thrashing device
    /// for overlapping DEST traversals.
    pub disable_rollback: bool,
    /// Collapse the warning hysteresis: lower flags already at `g(·,⅔)`
    /// instead of `g(·,⅓)`, so flags flap and shifts lose their aim.
    pub narrow_hysteresis: bool,
    /// Make SELECT return the *shallowest* warned descendant instead of the
    /// deepest, inverting the paper's prioritization.
    pub select_shallowest: bool,
}

impl AblationTweaks {
    /// Whether any knob is set.
    pub fn any(&self) -> bool {
        self.disable_rollback || self.narrow_hysteresis || self.select_shallowest
    }
}

/// User-facing configuration of a [`crate::DenseFile`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DenseFileConfig {
    /// Number of physical pages `M` the file occupies. When macro-blocking
    /// applies, the actual allocation is rounded up to a multiple of `K`.
    pub pages: u32,
    /// Lower density `d`: the file holds at most `N = d·M` records.
    pub min_density: u32,
    /// Upper density `D`: no physical page ever holds more than `D` records
    /// at the end of a command.
    pub max_density: u32,
    /// Number of SHIFT operations per command (CONTROL 2's `J`).
    /// `None` selects [`DenseFileConfig::recommended_j`].
    pub j: Option<u32>,
    /// Maintenance algorithm.
    pub algorithm: Algorithm,
    /// Macro-block policy.
    pub macro_blocking: MacroBlocking,
    /// Ablation knobs (experiments only; default all-off).
    pub tweaks: AblationTweaks,
}

impl DenseFileConfig {
    /// A CONTROL 2 configuration with automatic `J` and macro-blocking.
    pub fn control2(pages: u32, min_density: u32, max_density: u32) -> Self {
        DenseFileConfig {
            pages,
            min_density,
            max_density,
            j: None,
            algorithm: Algorithm::Control2,
            macro_blocking: MacroBlocking::Auto,
            tweaks: AblationTweaks::default(),
        }
    }

    /// A CONTROL 1 configuration (amortized baseline).
    pub fn control1(pages: u32, min_density: u32, max_density: u32) -> Self {
        DenseFileConfig {
            algorithm: Algorithm::Control1,
            ..Self::control2(pages, min_density, max_density)
        }
    }

    /// Overrides the shift budget `J`.
    pub fn with_j(mut self, j: u32) -> Self {
        self.j = Some(j);
        self
    }

    /// Overrides the macro-block policy.
    pub fn with_macro_blocking(mut self, mb: MacroBlocking) -> Self {
        self.macro_blocking = mb;
        self
    }

    /// Sets ablation knobs (experiments only).
    pub fn with_tweaks(mut self, tweaks: AblationTweaks) -> Self {
        self.tweaks = tweaks;
        self
    }

    /// The default shift budget for a file of `slots` logical pages with
    /// per-slot density gap `gap = D#−d#`.
    ///
    /// The paper proves `J ≅ 90⌈log²M⌉/(D−d)` sufficient and immediately
    /// notes that a sharper proof reduces the constant "by at least one
    /// order of magnitude (and probably by 1½ magnitudes)", with `J ≈ 18`
    /// typical. We default to a constant of 12 — comfortably above every
    /// empirical minimum found by the `exp_j_sweep` experiment (which probes
    /// adversarial workloads across `M` and `D−d`) while staying within the
    /// paper's `O(log²M/(D−d))` budget.
    pub fn recommended_j(slots: u32, gap: u64) -> u32 {
        let l = ceil_log2(slots).max(1) as u64;
        let j = (12 * l * l).div_ceil(gap.max(1));
        j.clamp(4, u64::from(u32::MAX)) as u32
    }

    /// Validates and resolves the configuration.
    pub fn resolve(self) -> Result<ResolvedConfig, ConfigError> {
        if self.pages == 0 {
            return Err(ConfigError::ZeroPages);
        }
        if self.min_density == 0 {
            return Err(ConfigError::ZeroMinDensity);
        }
        if self.min_density >= self.max_density {
            return Err(ConfigError::DensityOrder {
                d: self.min_density,
                big_d: self.max_density,
            });
        }
        if self.j == Some(0) {
            return Err(ConfigError::ZeroJ);
        }

        let l_phys = ceil_log2(self.pages).max(1);
        let gap = u64::from(self.max_density - self.min_density);
        let k = match self.macro_blocking {
            MacroBlocking::Disabled => 1,
            MacroBlocking::Force(0) => return Err(ConfigError::ZeroK),
            MacroBlocking::Force(k) => k,
            MacroBlocking::Auto => {
                // Least K with K(D−d) > 3⌈log₂M⌉ (paper eq. 5.3).
                let need = u64::from(3 * l_phys) + 1;
                need.div_ceil(gap).max(1) as u32
            }
        };
        let slots = self.pages.div_ceil(k);
        let physical_pages = u64::from(slots) * u64::from(k);
        let slot_min = u64::from(self.min_density) * u64::from(k);
        let slot_max = u64::from(self.max_density) * u64::from(k);
        let log_slots = ceil_log2(slots).max(1);
        let slot_gap = slot_max - slot_min;
        let j = match self.j {
            Some(j) => j,
            None => Self::recommended_j(slots, slot_gap),
        };
        Ok(ResolvedConfig {
            algorithm: self.algorithm,
            requested_pages: self.pages,
            physical_pages,
            slots,
            k,
            page_capacity: self.max_density,
            slot_min,
            slot_max,
            log_slots,
            j,
            meets_gap_assumption: slot_gap > u64::from(3 * log_slots) && !self.tweaks.any(),
            tweaks: self.tweaks,
        })
    }
}

/// Fully-resolved parameters of a dense sequential file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResolvedConfig {
    /// Maintenance algorithm.
    pub algorithm: Algorithm,
    /// The `M` the caller asked for.
    pub requested_pages: u32,
    /// Physical pages actually allocated (`slots × k ≥ requested_pages`).
    pub physical_pages: u64,
    /// Logical pages / macro-blocks: the calibrator's `M`.
    pub slots: u32,
    /// Pages per macro-block (`K`; 1 in the base regime).
    pub k: u32,
    /// Records per physical page (the user's `D`).
    pub page_capacity: u32,
    /// Per-slot lower density `d# = K·d`.
    pub slot_min: u64,
    /// Per-slot upper density `D# = K·D`.
    pub slot_max: u64,
    /// Calibrator depth bound `L = max(1, ⌈log₂ slots⌉)`.
    pub log_slots: u32,
    /// SHIFT operations per command.
    pub j: u32,
    /// Whether Theorem 5.5's preconditions hold: the density-gap assumption
    /// `D#−d# > 3L` *and* no ablation tweak is active. `false` (possible
    /// only with `MacroBlocking::Disabled`, a forced `K`, or ablation
    /// tweaks) voids the worst-case guarantee and relaxes the Fact 5.1(b)
    /// invariant check accordingly.
    pub meets_gap_assumption: bool,
    /// Ablation knobs carried through from the configuration.
    pub tweaks: AblationTweaks,
}

impl ResolvedConfig {
    /// Maximum number of records the file may hold (`N = d#·M#`).
    pub fn capacity(&self) -> u64 {
        self.slot_min * u64::from(self.slots)
    }
}

/// Configuration errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConfigError {
    /// `pages` was zero.
    ZeroPages,
    /// `min_density` was zero (the file could hold no records).
    ZeroMinDensity,
    /// `min_density ≥ max_density`; the paper requires `d < D`.
    DensityOrder {
        /// The offending `d`.
        d: u32,
        /// The offending `D`.
        big_d: u32,
    },
    /// An explicit `J` of zero.
    ZeroJ,
    /// `MacroBlocking::Force(0)`.
    ZeroK,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::ZeroPages => write!(f, "`pages` must be non-zero"),
            ConfigError::ZeroMinDensity => write!(f, "`min_density` must be non-zero"),
            ConfigError::DensityOrder { d, big_d } => {
                write!(f, "densities must satisfy d < D, got d={d}, D={big_d}")
            }
            ConfigError::ZeroJ => write!(f, "`j` must be non-zero"),
            ConfigError::ZeroK => write!(f, "forced macro-block factor K must be non-zero"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// `⌈log₂ m⌉` (0 for `m ≤ 1`).
pub fn ceil_log2(m: u32) -> u32 {
    if m <= 1 {
        0
    } else {
        32 - (m - 1).leading_zeros()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_log2_matches_definition() {
        assert_eq!(ceil_log2(1), 0);
        assert_eq!(ceil_log2(2), 1);
        assert_eq!(ceil_log2(3), 2);
        assert_eq!(ceil_log2(4), 2);
        assert_eq!(ceil_log2(5), 3);
        assert_eq!(ceil_log2(8), 3);
        assert_eq!(ceil_log2(9), 4);
        assert_eq!(ceil_log2(1 << 20), 20);
        assert_eq!(ceil_log2((1 << 20) + 1), 21);
    }

    #[test]
    fn rejects_invalid_parameters() {
        assert_eq!(
            DenseFileConfig::control2(0, 1, 2).resolve(),
            Err(ConfigError::ZeroPages)
        );
        assert_eq!(
            DenseFileConfig::control2(8, 0, 2).resolve(),
            Err(ConfigError::ZeroMinDensity)
        );
        assert_eq!(
            DenseFileConfig::control2(8, 5, 5).resolve(),
            Err(ConfigError::DensityOrder { d: 5, big_d: 5 })
        );
        assert_eq!(
            DenseFileConfig::control2(8, 6, 5).resolve(),
            Err(ConfigError::DensityOrder { d: 6, big_d: 5 })
        );
        assert_eq!(
            DenseFileConfig::control2(8, 1, 2).with_j(0).resolve(),
            Err(ConfigError::ZeroJ)
        );
        assert_eq!(
            DenseFileConfig::control2(8, 1, 2)
                .with_macro_blocking(MacroBlocking::Force(0))
                .resolve(),
            Err(ConfigError::ZeroK)
        );
    }

    #[test]
    fn paper_example_resolves_without_blocking() {
        // Example 5.2: M=8, d=9, D=18 → D−d=9 = 3⌈log 8⌉... the paper runs
        // the example with K=1 regardless; note 9 > 3·3 is false (9 ≤ 9), so
        // Auto would block. The example harness forces K=1 as the paper does.
        let r = DenseFileConfig::control2(8, 9, 18)
            .with_j(3)
            .with_macro_blocking(MacroBlocking::Disabled)
            .resolve()
            .unwrap();
        assert_eq!(r.slots, 8);
        assert_eq!(r.k, 1);
        assert_eq!(r.slot_min, 9);
        assert_eq!(r.slot_max, 18);
        assert_eq!(r.log_slots, 3);
        assert_eq!(r.j, 3);
        assert_eq!(r.capacity(), 72);
        assert!(!r.meets_gap_assumption); // 9 > 9 fails — boundary case
    }

    #[test]
    fn auto_blocking_kicks_in_for_small_gaps() {
        // M=1024 → L=10, D−d=2 ≤ 30 → K = least with 2K > 30 → 16.
        let r = DenseFileConfig::control2(1024, 6, 8).resolve().unwrap();
        assert_eq!(r.k, 16);
        assert_eq!(r.slots, 64);
        assert_eq!(r.slot_min, 96);
        assert_eq!(r.slot_max, 128);
        assert!(r.meets_gap_assumption); // 32 > 3·⌈log 64⌉ = 18
        assert_eq!(r.physical_pages, 1024);
    }

    #[test]
    fn auto_blocking_stays_at_one_for_wide_gaps() {
        let r = DenseFileConfig::control2(1024, 8, 64).resolve().unwrap();
        assert_eq!(r.k, 1);
        assert_eq!(r.slots, 1024);
        assert!(r.meets_gap_assumption); // 56 > 30
    }

    #[test]
    fn pages_round_up_to_a_multiple_of_k() {
        let r = DenseFileConfig::control2(1000, 6, 8).resolve().unwrap();
        assert_eq!(r.k, 16);
        assert_eq!(r.slots, 63);
        assert_eq!(r.physical_pages, 1008);
        assert!(r.physical_pages >= 1000);
        assert!(r.physical_pages < 1000 + u64::from(r.k));
    }

    #[test]
    fn recommended_j_follows_the_paper_shape() {
        // J grows with log²M and shrinks with the density gap.
        let j_small = DenseFileConfig::recommended_j(1 << 8, 30);
        let j_big = DenseFileConfig::recommended_j(1 << 16, 30);
        assert!(j_big > j_small);
        let j_wide = DenseFileConfig::recommended_j(1 << 16, 120);
        assert!(j_wide < j_big);
        assert!(DenseFileConfig::recommended_j(2, 1000) >= 4); // clamped floor
    }

    #[test]
    fn capacity_matches_d_times_requested_pages_when_unblocked() {
        let r = DenseFileConfig::control2(256, 10, 50).resolve().unwrap();
        assert_eq!(r.capacity(), 2560);
    }
}
