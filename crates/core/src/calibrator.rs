//! The calibrator tree (paper §3).
//!
//! An implicit binary tree over the file's `M` logical page addresses. Every
//! node `v` covers a contiguous address range `RANGE(v) = [A⁻ᵥ, A⁺ᵥ]` and
//! stores a *rank counter* `N_v` — the number of records currently stored in
//! that range. The root covers the whole file; an internal node with range
//! `[lo, hi]` splits at `mid = ⌊(lo+hi)/2⌋` into `[lo, mid]` and
//! `[mid+1, hi]`; a leaf covers exactly one page.
//!
//! On top of the paper's counters this implementation keeps:
//!
//! * a `min_key` per node — the concretization (DESIGN.md §3.1) that lets
//!   the calibrator act as the binary search tree of step 1;
//! * per-node `WARNING` flags and `DEST` pointers for CONTROL 2, plus two
//!   subtree aggregates (`warn_count`, `max_warn_depth`) that make the
//!   paper's SELECT subroutine an `O(log M)` walk;
//! * **exact integer** density-threshold comparisons: with `L = ⌈log₂M⌉`
//!   and thresholds `g(v, q/3) = d + (depth(v) + q/3 − 1)/L · (D−d)`,
//!   the test `p(v) ≥ g(v, q/3)` is evaluated as
//!   `3L·N_v ≥ M_v·(3L·d + (3·depth(v)+q−3)(D−d))` — no floating point
//!   anywhere in the invariant logic.
//!
//! The calibrator is an in-memory structure; consulting or updating it
//! charges no page accesses, exactly as in the paper's cost model.

use dsf_pagestore::Key;
use std::cmp::Ordering;

use crate::config::ceil_log2;

/// Identifier of a calibrator node: its 1-based heap index (root = 1,
/// children of `i` are `2i` and `2i+1`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The root node.
    pub const ROOT: NodeId = NodeId(1);

    /// Depth of this node (root = 0, the paper's convention).
    pub fn depth(self) -> u32 {
        self.0.ilog2()
    }

    /// Parent node (`None` for the root).
    pub fn parent(self) -> Option<NodeId> {
        if self.0 <= 1 {
            None
        } else {
            Some(NodeId(self.0 >> 1))
        }
    }

    /// The paper's `DIR(v)`: `true` iff `v` is the right son of its father.
    pub fn is_right_child(self) -> bool {
        self.0 > 1 && self.0 & 1 == 1
    }

    fn left(self) -> NodeId {
        NodeId(self.0 << 1)
    }

    fn right(self) -> NodeId {
        NodeId((self.0 << 1) | 1)
    }
}

const NO_RANGE: u32 = u32::MAX;

/// The calibrator tree over `slots` logical pages.
#[derive(Debug, Clone)]
pub struct Calibrator<K> {
    slots: u32,
    /// `L = max(1, ⌈log₂ slots⌉)` — the threshold denominator.
    log_slots: u32,
    /// Per-slot lower density `d#`.
    dmin: u64,
    /// Per-slot upper density `D#`.
    dmax: u64,
    lo: Vec<u32>,
    hi: Vec<u32>,
    count: Vec<u64>,
    min_key: Vec<Option<K>>,
    warning: Vec<bool>,
    dest: Vec<u32>,
    /// Number of warned nodes in the subtree (including the node itself).
    warn_count: Vec<u32>,
    /// Maximum depth of a warned node in the subtree, or -1.
    max_warn_depth: Vec<i32>,
    leaf: Vec<u32>,
    total: u64,
}

impl<K: Key> Calibrator<K> {
    /// Builds the calibrator for `slots` pages with per-slot densities
    /// `dmin < dmax`.
    pub fn new(slots: u32, dmin: u64, dmax: u64) -> Self {
        assert!(slots > 0, "calibrator needs at least one slot");
        assert!(dmin < dmax, "calibrator needs dmin < dmax");
        let l = ceil_log2(slots);
        let size = 1usize << (l + 1);
        let mut cal = Calibrator {
            slots,
            log_slots: l.max(1),
            dmin,
            dmax,
            lo: vec![NO_RANGE; size],
            hi: vec![NO_RANGE; size],
            count: vec![0; size],
            min_key: vec![None; size],
            warning: vec![false; size],
            dest: vec![0; size],
            warn_count: vec![0; size],
            max_warn_depth: vec![-1; size],
            leaf: vec![0; slots as usize],
            total: 0,
        };
        // Iterative construction of the range decomposition.
        let mut stack = vec![(NodeId::ROOT, 0u32, slots - 1)];
        while let Some((n, lo, hi)) = stack.pop() {
            cal.lo[n.0 as usize] = lo;
            cal.hi[n.0 as usize] = hi;
            if lo == hi {
                cal.leaf[lo as usize] = n.0;
            } else {
                let mid = lo + (hi - lo) / 2; // == ⌊(lo+hi)/2⌋ without overflow
                stack.push((n.left(), lo, mid));
                stack.push((n.right(), mid + 1, hi));
            }
        }
        cal
    }

    // ------------------------------------------------------------------
    // Geometry.
    // ------------------------------------------------------------------

    /// Number of slots (the calibrator's `M`).
    pub fn slots(&self) -> u32 {
        self.slots
    }

    /// The threshold denominator `L = max(1, ⌈log₂ slots⌉)`.
    pub fn log_slots(&self) -> u32 {
        self.log_slots
    }

    /// Per-slot density bounds `(d#, D#)`.
    pub fn densities(&self) -> (u64, u64) {
        (self.dmin, self.dmax)
    }

    /// Whether `n` is a node of this tree.
    pub fn exists(&self, n: NodeId) -> bool {
        (n.0 as usize) < self.lo.len() && self.lo[n.0 as usize] != NO_RANGE
    }

    /// `RANGE(v) = [A⁻ᵥ, A⁺ᵥ]` in 0-based slot addresses.
    pub fn range(&self, n: NodeId) -> (u32, u32) {
        debug_assert!(self.exists(n));
        (self.lo[n.0 as usize], self.hi[n.0 as usize])
    }

    /// `M_v`: the number of slots in `RANGE(v)`.
    pub fn width(&self, n: NodeId) -> u64 {
        let (lo, hi) = self.range(n);
        u64::from(hi - lo) + 1
    }

    /// Whether `n` is a leaf (covers a single slot).
    pub fn is_leaf(&self, n: NodeId) -> bool {
        let (lo, hi) = self.range(n);
        lo == hi
    }

    /// The children of an internal node.
    pub fn children(&self, n: NodeId) -> Option<(NodeId, NodeId)> {
        if self.is_leaf(n) {
            None
        } else {
            Some((n.left(), n.right()))
        }
    }

    /// The leaf covering `slot`.
    pub fn leaf_of(&self, slot: u32) -> NodeId {
        NodeId(self.leaf[slot as usize])
    }

    /// Whether `slot ∈ RANGE(n)`.
    pub fn contains(&self, n: NodeId, slot: u32) -> bool {
        let (lo, hi) = self.range(n);
        lo <= slot && slot <= hi
    }

    // ------------------------------------------------------------------
    // Rank counters and search keys.
    // ------------------------------------------------------------------

    /// The rank counter `N_v`.
    pub fn count(&self, n: NodeId) -> u64 {
        self.count[n.0 as usize]
    }

    /// Total records in the file (`N_root`).
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Minimum key stored in `RANGE(n)`, if any.
    pub fn min_key(&self, n: NodeId) -> Option<K> {
        self.min_key[n.0 as usize]
    }

    /// The leaf-to-root path of `slot`, leaf first.
    pub fn path_to_root(&self, slot: u32) -> impl Iterator<Item = NodeId> {
        let mut cur = Some(self.leaf_of(slot));
        std::iter::from_fn(move || {
            let n = cur?;
            cur = n.parent();
            Some(n)
        })
    }

    /// Applies a record-count delta along the leaf-to-root path of `slot`.
    pub fn add_count(&mut self, slot: u32, delta: i64) {
        for n in self.path_to_root(slot) {
            let c = &mut self.count[n.0 as usize];
            *c = c
                .checked_add_signed(delta)
                .expect("calibrator count underflow");
        }
        self.total = self
            .total
            .checked_add_signed(delta)
            .expect("calibrator total underflow");
    }

    /// Refreshes the cached minimum key along the leaf-to-root path of
    /// `slot`, given the slot's new minimum.
    pub fn refresh_min(&mut self, slot: u32, slot_min: Option<K>) {
        let leaf = self.leaf_of(slot);
        self.min_key[leaf.0 as usize] = slot_min;
        let mut n = leaf;
        while let Some(p) = n.parent() {
            let (l, r) = (p.left(), p.right());
            let lm = self.min_key[l.0 as usize];
            let rm = if self.exists(r) {
                self.min_key[r.0 as usize]
            } else {
                None
            };
            let new = match (lm, rm) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            if self.min_key[p.0 as usize] == new {
                break; // ancestors unchanged
            }
            self.min_key[p.0 as usize] = new;
            n = p;
        }
    }

    /// Sets a leaf's counter and minimum without propagating (bulk-load /
    /// redistribution helper; pair with [`Calibrator::recompute_subtree`]).
    pub fn set_leaf_raw(&mut self, slot: u32, count: u64, min: Option<K>) {
        let leaf = self.leaf_of(slot);
        self.count[leaf.0 as usize] = count;
        self.min_key[leaf.0 as usize] = min;
    }

    /// Recomputes counters and minimum keys of every internal node in the
    /// subtree of `n` from its leaves, then refreshes `total`.
    pub fn recompute_subtree(&mut self, n: NodeId) {
        self.recompute_inner(n);
        // Propagate count/min deltas above n: ancestors sum their children.
        let mut cur = n;
        while let Some(p) = cur.parent() {
            let (l, r) = (p.left(), p.right());
            let rc = if self.exists(r) {
                self.count[r.0 as usize]
            } else {
                0
            };
            self.count[p.0 as usize] = self.count[l.0 as usize] + rc;
            let lm = self.min_key[l.0 as usize];
            let rm = if self.exists(r) {
                self.min_key[r.0 as usize]
            } else {
                None
            };
            self.min_key[p.0 as usize] = match (lm, rm) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, None) => a,
                (None, b) => b,
            };
            cur = p;
        }
        self.total = self.count[NodeId::ROOT.0 as usize];
    }

    fn recompute_inner(&mut self, n: NodeId) {
        if self.is_leaf(n) {
            return;
        }
        let (l, r) = (n.left(), n.right());
        self.recompute_inner(l);
        self.recompute_inner(r);
        self.count[n.0 as usize] = self.count[l.0 as usize] + self.count[r.0 as usize];
        let (lm, rm) = (self.min_key[l.0 as usize], self.min_key[r.0 as usize]);
        self.min_key[n.0 as usize] = match (lm, rm) {
            (Some(a), Some(b)) => Some(a.min(b)),
            (a, None) => a,
            (None, b) => b,
        };
    }

    // ------------------------------------------------------------------
    // Density thresholds (exact integer arithmetic).
    // ------------------------------------------------------------------

    /// Compares `p(v)` with `g(v, q/3)` exactly. `q ∈ {0, 1, 2, 3}` selects
    /// the threshold (`g(v,0)`, `g(v,⅓)`, `g(v,⅔)`, `g(v,1)`).
    pub fn density_cmp(&self, n: NodeId, q: u8) -> Ordering {
        debug_assert!(q <= 3);
        let l = i128::from(self.log_slots);
        let lhs = 3 * l * i128::from(self.count(n));
        let rhs = self.g_numerator(n, q);
        lhs.cmp(&rhs)
    }

    /// `M_v · 3L · g(v, q/3)` as an exact integer.
    fn g_numerator(&self, n: NodeId, q: u8) -> i128 {
        let l = i128::from(self.log_slots);
        let depth = i128::from(n.depth());
        let gap = i128::from(self.dmax - self.dmin);
        let per_slot = 3 * l * i128::from(self.dmin) + (3 * depth + i128::from(q) - 3) * gap;
        i128::from(self.width(n)) * per_slot
    }

    /// `p(v) ≥ g(v, q/3)`.
    pub fn p_ge(&self, n: NodeId, q: u8) -> bool {
        self.density_cmp(n, q) != Ordering::Less
    }

    /// `p(v) ≤ g(v, q/3)`.
    pub fn p_le(&self, n: NodeId, q: u8) -> bool {
        self.density_cmp(n, q) != Ordering::Greater
    }

    /// `p(v) > g(v, q/3)`.
    pub fn p_gt(&self, n: NodeId, q: u8) -> bool {
        self.density_cmp(n, q) == Ordering::Greater
    }

    /// The smallest number of records whose addition to `RANGE(n)` makes
    /// `p(n) ≥ g(n, q/3)` (0 if already there). This is SHIFT's step-2 stop
    /// computation, done in closed form instead of record-at-a-time.
    pub fn records_until_ge(&self, n: NodeId, q: u8) -> u64 {
        let l = i128::from(self.log_slots);
        let lhs = 3 * l * i128::from(self.count(n));
        let rhs = self.g_numerator(n, q);
        if lhs >= rhs {
            0
        } else {
            let deficit = rhs - lhs;
            let step = 3 * l;
            ((deficit + step - 1) / step) as u64
        }
    }

    /// `g(v, q/3)` as a float, for display only (figures, diagnostics).
    pub fn g_display(&self, n: NodeId, q: u8) -> f64 {
        self.g_numerator(n, q) as f64 / (3.0 * f64::from(self.log_slots) * self.width(n) as f64)
    }

    /// `p(v)` as a float, for display only.
    pub fn p_display(&self, n: NodeId) -> f64 {
        self.count(n) as f64 / self.width(n) as f64
    }

    // ------------------------------------------------------------------
    // Key search (the paper's "use the calibrator as a binary search tree").
    // ------------------------------------------------------------------

    /// The slot that holds the greatest record with key ≤ `key` — the slot
    /// step 1 addresses for both lookups and insertions. Falls back to the
    /// leftmost descent when no such record exists (inserting there keeps
    /// the file sorted). Returns slot 0 for an empty file.
    pub fn find_slot(&self, key: &K) -> u32 {
        let mut n = NodeId::ROOT;
        while let Some((l, r)) = self.children(n) {
            let go_right = self.count[r.0 as usize] > 0
                && self.min_key[r.0 as usize].is_some_and(|m| m <= *key);
            n = if go_right { r } else { l };
        }
        self.range(n).0
    }

    /// [`find_slot`](Self::find_slot) seeded with a caller-supplied `hint`
    /// — the slot a nearby command in the same batch resolved to. The hint
    /// is *validated*, never trusted: it is returned only when the counters
    /// prove it is exactly what the full descent would compute, so batched
    /// and one-at-a-time application resolve identical slots. A stale or
    /// nonsensical hint silently falls back to the full descent.
    ///
    /// Like everything else in the calibrator this is in-memory and charges
    /// no page accesses; the saving is CPU only (an `O(log M)` counter check
    /// instead of an `O(log M)` descent with key comparisons at every
    /// level, and for sorted batches the check usually exits early).
    pub fn find_slot_hinted(&self, key: &K, hint: u32) -> u32 {
        if self.hint_holds(key, hint) {
            hint
        } else {
            self.find_slot(key)
        }
    }

    /// `hint == find_slot(key)` iff `hint` is non-empty with minimum ≤
    /// `key` while the *next* non-empty slot's minimum exceeds `key`
    /// (cross-slot order makes slot minima ascend, so checking one
    /// successor suffices).
    fn hint_holds(&self, key: &K, hint: u32) -> bool {
        if hint >= self.slots {
            return false;
        }
        let leaf = self.leaf_of(hint);
        if self.count(leaf) == 0 || self.min_key(leaf).is_none_or(|m| m > *key) {
            return false;
        }
        // This check is the batch pipeline's hot path: it must cost less
        // than the root descent it replaces. Density keeps the successor
        // within a few slots almost always, so probe linearly before
        // falling back to the counter-tree scan.
        let hi = self.slots - 1;
        let mut s = hint + 1;
        while s <= hi.min(hint + 8) {
            let l = self.leaf_of(s);
            if self.count(l) != 0 {
                return self.min_key(l).is_some_and(|m| m > *key);
            }
            s += 1;
        }
        match self.next_nonempty(s, hi) {
            None => true,
            Some(s) => self.min_key(self.leaf_of(s)).is_some_and(|m| m > *key),
        }
    }

    /// Smallest non-empty slot in `[from, hi]`, using the counters only.
    pub fn next_nonempty(&self, from: u32, hi: u32) -> Option<u32> {
        self.scan_nonempty(NodeId::ROOT, from, hi, true)
    }

    /// Largest non-empty slot in `[lo, upto]`, using the counters only.
    pub fn prev_nonempty(&self, lo: u32, upto: u32) -> Option<u32> {
        self.scan_nonempty(NodeId::ROOT, lo, upto, false)
    }

    fn scan_nonempty(&self, n: NodeId, qlo: u32, qhi: u32, first: bool) -> Option<u32> {
        if qlo > qhi {
            return None;
        }
        let (lo, hi) = self.range(n);
        if hi < qlo || lo > qhi || self.count[n.0 as usize] == 0 {
            return None;
        }
        match self.children(n) {
            None => Some(lo),
            Some((l, r)) => {
                let (a, b) = if first { (l, r) } else { (r, l) };
                self.scan_nonempty(a, qlo, qhi, first)
                    .or_else(|| self.scan_nonempty(b, qlo, qhi, first))
            }
        }
    }

    // ------------------------------------------------------------------
    // Warning flags, DEST pointers, SELECT support.
    // ------------------------------------------------------------------

    /// `WARNING(v)`.
    pub fn is_warned(&self, n: NodeId) -> bool {
        self.warning[n.0 as usize]
    }

    /// Raises or lowers `WARNING(v)`, maintaining the subtree aggregates
    /// that make SELECT an `O(log M)` operation.
    pub fn set_warning(&mut self, n: NodeId, on: bool) {
        if self.warning[n.0 as usize] == on {
            return;
        }
        self.warning[n.0 as usize] = on;
        let mut cur = n;
        loop {
            let i = cur.0 as usize;
            if on {
                self.warn_count[i] += 1;
            } else {
                self.warn_count[i] -= 1;
            }
            // Recompute max warned depth from self + children.
            let mut mwd = if self.warning[i] {
                cur.depth() as i32
            } else {
                -1
            };
            if let Some((l, r)) = self.children(cur) {
                mwd = mwd.max(self.max_warn_depth[l.0 as usize]);
                if self.exists(r) {
                    mwd = mwd.max(self.max_warn_depth[r.0 as usize]);
                }
            }
            self.max_warn_depth[i] = mwd;
            match cur.parent() {
                Some(p) => cur = p,
                None => break,
            }
        }
    }

    /// Number of warned nodes in the whole tree.
    pub fn warned_total(&self) -> u32 {
        self.warn_count[NodeId::ROOT.0 as usize]
    }

    /// `DEST(v)` — meaningful only while `v` is warned.
    pub fn dest(&self, n: NodeId) -> u32 {
        self.dest[n.0 as usize]
    }

    /// Sets `DEST(v)`.
    pub fn set_dest(&mut self, n: NodeId, slot: u32) {
        self.dest[n.0 as usize] = slot;
    }

    /// The paper's `SELECT(L)` for the leaf of `slot`:
    ///
    /// 1. find the lowest ancestor `α` of the leaf with a warned *proper*
    ///    descendant;
    /// 2. return a deepest warned descendant of `α` (leftmost on ties).
    ///
    /// Returns `None` when no node in the tree is warned.
    pub fn select(&self, slot: u32) -> Option<NodeId> {
        let a = self.lowest_ancestor_with_warned_descendant(slot)?;
        // Deepest warned proper descendant of `a`.
        let (l, r) = self
            .children(a)
            .expect("α has a proper descendant, so is internal");
        let lm = self.max_warn_depth[l.0 as usize];
        let rm = if self.exists(r) {
            self.max_warn_depth[r.0 as usize]
        } else {
            -1
        };
        let target = lm.max(rm);
        debug_assert!(target >= 0);
        let mut cur = if lm >= rm { l } else { r };
        while cur.depth() as i32 != target || !self.warning[cur.0 as usize] {
            let (l, r) = self
                .children(cur)
                .expect("descent invariant: a deep-enough warned node exists below");
            let lm = self.max_warn_depth[l.0 as usize];
            cur = if lm == target { l } else { r };
        }
        Some(cur)
    }

    /// SELECT step 1: the lowest ancestor `α` of `slot`'s leaf with a
    /// warned *proper* descendant (shared by SELECT and its ablation
    /// variant so the two cannot drift).
    fn lowest_ancestor_with_warned_descendant(&self, slot: u32) -> Option<NodeId> {
        let mut a = self.leaf_of(slot).parent()?;
        loop {
            let proper = self.warn_count[a.0 as usize] - u32::from(self.warning[a.0 as usize]);
            if proper > 0 {
                return Some(a);
            }
            a = a.parent()?; // root without warned proper descendants → None
        }
    }

    /// Ablation variant of SELECT (E8): the *shallowest* warned proper
    /// descendant of the paper's `α`, breadth-first, instead of the deepest.
    pub fn select_shallowest(&self, slot: u32) -> Option<NodeId> {
        let a = self.lowest_ancestor_with_warned_descendant(slot)?;
        let mut queue = std::collections::VecDeque::new();
        let (l, r) = self.children(a).expect("α is internal");
        queue.push_back(l);
        if self.exists(r) {
            queue.push_back(r);
        }
        while let Some(n) = queue.pop_front() {
            if self.warn_count[n.0 as usize] == 0 {
                continue;
            }
            if self.warning[n.0 as usize] {
                return Some(n);
            }
            if let Some((l, r)) = self.children(n) {
                queue.push_back(l);
                if self.exists(r) {
                    queue.push_back(r);
                }
            }
        }
        None
    }

    /// Every warned node (checker/diagnostics; `O(size)`).
    pub fn warned_nodes(&self) -> Vec<NodeId> {
        (1..self.lo.len() as u32)
            .map(NodeId)
            .filter(|&n| self.exists(n) && self.warning[n.0 as usize])
            .collect()
    }

    /// Every node of the tree in heap order (checker/diagnostics).
    pub fn all_nodes(&self) -> Vec<NodeId> {
        (1..self.lo.len() as u32)
            .map(NodeId)
            .filter(|&n| self.exists(n))
            .collect()
    }

    /// The nodes of `UP(v)` for a shift from `source` towards `dest`: every
    /// node containing `dest` but not `source`, i.e. the path from the leaf
    /// of `dest` up to (excluding) the least common ancestor.
    pub fn up_path(&self, dest: u32, source: u32) -> Vec<NodeId> {
        debug_assert_ne!(dest, source);
        let mut out = Vec::with_capacity(self.log_slots as usize + 1);
        let mut n = self.leaf_of(dest);
        while !self.contains(n, source) {
            out.push(n);
            n = n.parent().expect("root contains every slot");
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The Example 5.2 calibrator: M=8, d=9, D=18 (Figure 3).
    fn example_cal() -> Calibrator<u64> {
        Calibrator::new(8, 9, 18)
    }

    /// Loads the paper's t₀ distribution [16,1,0,1,9,9,9,16].
    fn load_t0(cal: &mut Calibrator<u64>) {
        for (slot, &n) in [16u64, 1, 0, 1, 9, 9, 9, 16].iter().enumerate() {
            let min = if n > 0 {
                Some(slot as u64 * 1000)
            } else {
                None
            };
            cal.set_leaf_raw(slot as u32, n, min);
        }
        cal.recompute_subtree(NodeId::ROOT);
    }

    #[test]
    fn geometry_matches_figure_3() {
        let cal = example_cal();
        assert_eq!(cal.range(NodeId::ROOT), (0, 7));
        let (v2, v3) = cal.children(NodeId::ROOT).unwrap();
        assert_eq!(cal.range(v2), (0, 3)); // pages 1-4 in the paper's 1-based numbering
        assert_eq!(cal.range(v3), (4, 7)); // pages 5-8
        let (v6, v7) = cal.children(v3).unwrap();
        assert_eq!(cal.range(v6), (4, 5));
        assert_eq!(cal.range(v7), (6, 7));
        assert_eq!(cal.leaf_of(7), NodeId(15));
        assert!(cal.is_leaf(NodeId(15)));
        assert_eq!(NodeId(15).depth(), 3);
        assert!(NodeId(15).is_right_child());
        assert!(!NodeId(14).is_right_child());
        assert_eq!(cal.log_slots(), 3);
    }

    #[test]
    fn non_power_of_two_geometry_uses_floor_splits() {
        let cal: Calibrator<u64> = Calibrator::new(5, 1, 100);
        // [0,4] → [0,2] + [3,4]; [0,2] → [0,1] + [2,2].
        assert_eq!(cal.range(NodeId(2)), (0, 2));
        assert_eq!(cal.range(NodeId(3)), (3, 4));
        assert_eq!(cal.range(NodeId(5)), (2, 2));
        assert!(cal.is_leaf(NodeId(5)));
        // Every slot has a leaf and the leaf covers it.
        for s in 0..5 {
            let l = cal.leaf_of(s);
            assert!(cal.is_leaf(l));
            assert_eq!(cal.range(l), (s, s));
        }
    }

    #[test]
    fn thresholds_match_example_5_2_values() {
        // With M=8, d=9, D=18, L=3: for a leaf (depth 3):
        //   g(leaf,0)=15, g(leaf,1/3)=16, g(leaf,2/3)=17, g(leaf,1)=18.
        let cal = example_cal();
        let leaf = cal.leaf_of(0);
        for (q, want) in [(0u8, 15.0), (1, 16.0), (2, 17.0), (3, 18.0)] {
            assert!(
                (cal.g_display(leaf, q) - want).abs() < 1e-12,
                "g(leaf,{q}/3)"
            );
        }
        // v3 (depth 1, pages 5-8): g(v3,0)=9, 1/3→10, 2/3→11, 1→12.
        let v3 = NodeId(3);
        for (q, want) in [(0u8, 9.0), (1, 10.0), (2, 11.0), (3, 12.0)] {
            assert!((cal.g_display(v3, q) - want).abs() < 1e-12, "g(v3,{q}/3)");
        }
        // v4 (depth 2, pages 1-2): g(v4,0)=12, g(v4,1)=15.
        let v4 = NodeId(4);
        assert!((cal.g_display(v4, 0) - 12.0).abs() < 1e-12);
        assert!((cal.g_display(v4, 3) - 15.0).abs() < 1e-12);
        // Root: g(root,1) = d = 9.
        assert!((cal.g_display(NodeId::ROOT, 3) - 9.0).abs() < 1e-12);
    }

    #[test]
    fn density_cmp_agrees_with_example_boundary_cases() {
        let mut cal = example_cal();
        load_t0(&mut cal);
        // After inserting into page 8 (slot 7): p(L8)=17 ≥ g(2/3)=17.
        cal.add_count(7, 1);
        let l8 = cal.leaf_of(7);
        assert!(cal.p_ge(l8, 2));
        assert!(!cal.p_gt(l8, 2)); // exactly at the threshold
        assert!(cal.p_le(l8, 3)); // within BALANCE
                                  // p(v3) = 44/4 = 11 ≥ g(v3,2/3) = 11.
        assert!(cal.p_ge(NodeId(3), 2));
        // p(v7) = 26/2 = 13 < g(v7,2/3) = 14.
        assert!(!cal.p_ge(NodeId(7), 2));
    }

    #[test]
    fn records_until_ge_matches_example_shift_quantities() {
        let mut cal = example_cal();
        load_t0(&mut cal);
        cal.add_count(7, 1); // the Z1 insertion
                             // SHIFT(L8) stops after 6 records: L7 has 9, g(L7,0)=15 → 6 more.
        assert_eq!(cal.records_until_ge(cal.leaf_of(6), 0), 6);
        // L1 has 16 ≥ g(L1,0)=15 already → 0.
        assert_eq!(cal.records_until_ge(cal.leaf_of(0), 0), 0);
        // L2 has 1 → 14 to reach 15.
        assert_eq!(cal.records_until_ge(cal.leaf_of(1), 0), 14);
        // v4 has 17 → 7 to reach 24 (= 12·2).
        assert_eq!(cal.records_until_ge(NodeId(4), 0), 7);
    }

    #[test]
    fn counters_and_total_track_deltas() {
        let mut cal = example_cal();
        load_t0(&mut cal);
        assert_eq!(cal.total(), 61);
        assert_eq!(cal.count(NodeId(3)), 43); // pages 5..8: 9+9+9+16
        cal.add_count(4, 3);
        assert_eq!(cal.count(NodeId(3)), 46);
        assert_eq!(cal.total(), 64);
        cal.add_count(4, -3);
        assert_eq!(cal.total(), 61);
    }

    #[test]
    fn find_slot_follows_min_keys() {
        let mut cal: Calibrator<u64> = Calibrator::new(8, 1, 100);
        // Records: slot 1 → keys {100,200}, slot 5 → keys {500}.
        cal.set_leaf_raw(1, 2, Some(100));
        cal.set_leaf_raw(5, 1, Some(500));
        cal.recompute_subtree(NodeId::ROOT);
        assert_eq!(cal.find_slot(&150), 1); // predecessor 100 lives in slot 1
        assert_eq!(cal.find_slot(&100), 1); // exact key
        assert_eq!(cal.find_slot(&500), 5);
        assert_eq!(cal.find_slot(&9999), 5); // greatest record ≤ key in slot 5
        assert_eq!(cal.find_slot(&50), 0); // below every key → leftmost descent
    }

    #[test]
    fn find_slot_on_empty_tree_returns_zero() {
        let cal: Calibrator<u64> = Calibrator::new(8, 1, 2);
        assert_eq!(cal.find_slot(&42), 0);
    }

    #[test]
    fn find_slot_hinted_always_agrees_with_find_slot() {
        // Batched planning is only *correct* because a hint can steer the
        // answer but never change it: for every key and every hint —
        // right, wrong, stale, or out of range — the hinted lookup must
        // return exactly what a fresh root descent would.
        let mut cal: Calibrator<u64> = Calibrator::new(8, 1, 100);
        cal.set_leaf_raw(1, 2, Some(100));
        cal.set_leaf_raw(3, 1, Some(300));
        cal.set_leaf_raw(5, 1, Some(500));
        cal.recompute_subtree(NodeId::ROOT);
        for key in [0u64, 50, 100, 150, 299, 300, 301, 499, 500, 501, 9999] {
            let want = cal.find_slot(&key);
            for hint in 0..=9u32 {
                // 8 and 9 are out of range on purpose.
                assert_eq!(
                    cal.find_slot_hinted(&key, hint),
                    want,
                    "key {key} hint {hint}"
                );
            }
        }
    }

    #[test]
    fn refresh_min_propagates_and_short_circuits() {
        let mut cal: Calibrator<u64> = Calibrator::new(8, 1, 100);
        cal.set_leaf_raw(3, 1, Some(300));
        cal.recompute_subtree(NodeId::ROOT);
        assert_eq!(cal.min_key(NodeId::ROOT), Some(300));
        cal.add_count(6, 1);
        cal.refresh_min(6, Some(600));
        assert_eq!(cal.min_key(NodeId(3)), Some(600));
        assert_eq!(cal.min_key(NodeId::ROOT), Some(300));
        cal.add_count(3, -1);
        cal.refresh_min(3, None);
        assert_eq!(cal.min_key(NodeId::ROOT), Some(600));
    }

    #[test]
    fn nonempty_scans_use_counters() {
        let mut cal: Calibrator<u64> = Calibrator::new(8, 1, 100);
        for s in [1u32, 4, 6] {
            cal.set_leaf_raw(s, 2, Some(u64::from(s)));
        }
        cal.recompute_subtree(NodeId::ROOT);
        assert_eq!(cal.next_nonempty(0, 7), Some(1));
        assert_eq!(cal.next_nonempty(2, 7), Some(4));
        assert_eq!(cal.next_nonempty(5, 7), Some(6));
        assert_eq!(cal.next_nonempty(7, 7), None);
        assert_eq!(cal.prev_nonempty(0, 7), Some(6));
        assert_eq!(cal.prev_nonempty(0, 5), Some(4));
        assert_eq!(cal.prev_nonempty(0, 0), None);
        assert_eq!(cal.prev_nonempty(2, 3), None);
    }

    #[test]
    fn warning_aggregates_support_select() {
        let mut cal = example_cal();
        load_t0(&mut cal);
        // Raise L8 and v3 as after Z1's step 3.
        cal.set_warning(cal.leaf_of(7), true);
        cal.set_warning(NodeId(3), true);
        assert_eq!(cal.warned_total(), 2);
        // SELECT from L8: deepest warned under the lowest qualifying ancestor is L8 itself.
        assert_eq!(cal.select(7), Some(cal.leaf_of(7)));
        // Lower L8: now only v3 is warned; SELECT from slot 7 climbs to the root.
        cal.set_warning(cal.leaf_of(7), false);
        assert_eq!(cal.select(7), Some(NodeId(3)));
        // SELECT from slot 0 also finds v3 (root is the qualifying ancestor).
        assert_eq!(cal.select(0), Some(NodeId(3)));
        cal.set_warning(NodeId(3), false);
        assert_eq!(cal.select(7), None);
        assert_eq!(cal.warned_total(), 0);
    }

    #[test]
    fn select_prefers_deepest_then_leftmost() {
        let mut cal = example_cal();
        cal.set_warning(NodeId(3), true); // depth 1
        cal.set_warning(NodeId(9), true); // depth 3 (leaf of slot 1)
        cal.set_warning(NodeId(10), true); // depth 3 (leaf of slot 2)
                                           // From slot 7: α = root, deepest warned = depth 3, leftmost = NodeId(9).
        assert_eq!(cal.select(7), Some(NodeId(9)));
    }

    #[test]
    fn up_path_is_dest_side_only() {
        let cal = example_cal();
        // dest slot 1, source slot 4 (the t7→t8 shift): LCA is the root;
        // UP = {L2, v4, v2} = heap {9, 4, 2}.
        let up = cal.up_path(1, 4);
        assert_eq!(up, vec![NodeId(9), NodeId(4), NodeId(2)]);
        // dest 6, source 7: UP = {L7} = {14}.
        assert_eq!(cal.up_path(6, 7), vec![NodeId(14)]);
    }

    #[test]
    fn single_slot_tree_is_just_a_root() {
        let cal: Calibrator<u64> = Calibrator::new(1, 2, 4);
        assert!(cal.is_leaf(NodeId::ROOT));
        assert_eq!(cal.leaf_of(0), NodeId::ROOT);
        assert_eq!(cal.select(0), None);
        assert_eq!(cal.log_slots(), 1); // clamped for threshold arithmetic
    }

    #[test]
    fn recompute_subtree_propagates_to_ancestors() {
        let mut cal: Calibrator<u64> = Calibrator::new(8, 1, 100);
        cal.set_leaf_raw(4, 5, Some(40));
        cal.set_leaf_raw(5, 2, Some(50));
        cal.recompute_subtree(NodeId(6)); // subtree over slots {4,5}
        assert_eq!(cal.count(NodeId(6)), 7);
        assert_eq!(cal.count(NodeId(3)), 7);
        assert_eq!(cal.count(NodeId::ROOT), 7);
        assert_eq!(cal.total(), 7);
        assert_eq!(cal.min_key(NodeId::ROOT), Some(40));
    }
}
