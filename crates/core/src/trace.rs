//! Step-level tracing of the maintenance algorithms.
//!
//! The paper's §5 analysis is phrased in terms of *measurable moments* —
//! instants between the numbered steps of CONTROL 2 — and its Figure 4
//! tabulates the per-page record counts at the *flag-stable* moments
//! `t₀…t₈` of Example 5.2. This module records exactly those moments so the
//! `fig4_example` harness (and the golden test behind it) can reproduce the
//! figure cell for cell.
//!
//! Tracing is opt-in ([`crate::DenseFile::enable_step_trace`]); when off it
//! costs one branch per potential event.

use crate::calibrator::NodeId;

/// Which user command a trace span belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommandKind {
    /// An insertion.
    Insert,
    /// A deletion.
    Delete,
}

/// The flag-stable moment classes of §5 that carry a state snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Moment {
    /// Immediately after step 3 (activation) — e.g. `t₁`, `t₅`.
    AfterStep3,
    /// Immediately after a step-4c flag sweep — e.g. `t₂…t₄`, `t₆…t₈`.
    AfterStep4c,
}

/// One event inside a traced command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StepEvent {
    /// Step 1 located the target page and applied the user's command.
    CommandBegin {
        /// Insert or delete.
        kind: CommandKind,
        /// The slot (logical page) the record went to / came from.
        slot: u32,
    },
    /// Step 2 or 4c lowered a warning flag (`p(x) ≤ g(x,⅓)`).
    WarningLowered {
        /// The node whose flag dropped.
        node: NodeId,
    },
    /// Step 3 raised a node into a warning state via ACTIVATE.
    Activated {
        /// The newly-warned node.
        node: NodeId,
        /// Its initial `DEST` pointer.
        dest: u32,
    },
    /// ACTIVATE's roll-back rule moved another warned node's `DEST`.
    RolledBack {
        /// The node whose pointer was rolled back.
        node: NodeId,
        /// The pointer's new value.
        new_dest: u32,
    },
    /// Step 4a: SELECT chose this node for the next SHIFT.
    Selected {
        /// The chosen warned node.
        node: NodeId,
    },
    /// Step 4b: SHIFT ran.
    Shifted {
        /// The warned node being relieved.
        node: NodeId,
        /// `SOURCE(v)` for this invocation.
        source: u32,
        /// `DEST(v)` at the time records moved.
        dest: u32,
        /// Records moved (0 when an `UP(v)` node was already saturated).
        moved: u64,
        /// `DEST(v)` after step 3 of SHIFT, if it advanced.
        new_dest: Option<u32>,
    },
    /// Step 4b found no non-empty source page (defensive no-op).
    ShiftNoSource {
        /// The node whose shift had nothing to pull.
        node: NodeId,
    },
    /// Step 4 had no warned node to SELECT; remaining iterations skipped.
    ShiftIdle,
    /// A flag-stable moment, with the per-slot record counts (the rows of
    /// the paper's Figure 4).
    FlagStable {
        /// Which stable moment class.
        moment: Moment,
        /// Record count of every slot, in address order.
        slot_counts: Vec<u64>,
    },
    /// The command finished.
    CommandEnd {
        /// Page accesses the command cost.
        accesses: u64,
    },
}

/// Accumulates [`StepEvent`]s while tracing is enabled.
#[derive(Debug, Default)]
pub struct StepRecorder {
    events: Vec<StepEvent>,
}

impl StepRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event.
    pub fn push(&mut self, ev: StepEvent) {
        self.events.push(ev);
    }

    /// Removes and returns everything recorded so far.
    pub fn take(&mut self) -> Vec<StepEvent> {
        std::mem::take(&mut self.events)
    }

    /// Events recorded so far.
    pub fn events(&self) -> &[StepEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recorder_accumulates_and_drains() {
        let mut r = StepRecorder::new();
        r.push(StepEvent::ShiftIdle);
        r.push(StepEvent::CommandEnd { accesses: 2 });
        assert_eq!(r.events().len(), 2);
        let evs = r.take();
        assert_eq!(evs.len(), 2);
        assert!(r.events().is_empty());
        assert!(matches!(evs[0], StepEvent::ShiftIdle));
    }
}
