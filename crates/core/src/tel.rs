//! This crate's handles into the global telemetry spine.
//!
//! [`OpStats`](crate::OpStats) stays the per-file instrument (tests and
//! experiments diff instances against each other); the handles here mirror
//! the same events into the process-wide registry so `dsf serve-metrics`
//! can export them live. Mirroring happens once per *command* (not per
//! counter bump): `DenseFile::insert`/`remove` capture a tiny pre-command
//! snapshot of the [`OpStats`](crate::OpStats) counters when telemetry is
//! enabled and publish the deltas at command end. While the registry is
//! disabled — the default — the entire hook is one branch per command.

use std::sync::atomic::AtomicU64;
use std::sync::{Arc, OnceLock};

use dsf_telemetry::{Counter, Gauge, Histogram};

/// One command in every `SPAN_SAMPLE_EVERY` pushes a span into the global
/// [`SpanRing`](dsf_telemetry::SpanRing) (and pays the `Instant::now`
/// timestamping); the rest skip both. Counters and histograms still see
/// *every* command — sampling only thins the example spans, mirroring the
/// lock-wait sampling in `dsf-concurrent`.
pub const SPAN_SAMPLE_EVERY: u64 = 8;

pub(crate) struct CoreTel {
    /// `dsf_command_page_accesses` — per-command page accesses, bucketed
    /// identically to [`AccessHistogram`](crate::AccessHistogram) so the
    /// exported series reconciles bucket-for-bucket (and max-for-max)
    /// against `OpStats`.
    pub cmd_hist: Arc<Histogram>,
    /// `dsf_commands_total{kind="insert"}`.
    pub inserts: Arc<Counter>,
    /// `dsf_commands_total{kind="delete"}`.
    pub deletes: Arc<Counter>,
    /// `dsf_shifts_total` — CONTROL 2 SHIFT invocations.
    pub shifts: Arc<Counter>,
    /// `dsf_shift_records_moved_total`.
    pub shift_records: Arc<Counter>,
    /// `dsf_activations_total` — ACTIVATE calls.
    pub activations: Arc<Counter>,
    /// `dsf_rollbacks_total` — roll-back rule applications.
    pub rollbacks: Arc<Counter>,
    /// `dsf_flags_lowered_total`.
    pub flags_lowered: Arc<Counter>,
    /// `dsf_redistributions_total` — CONTROL 1 one-shot redistributions.
    pub redistributions: Arc<Counter>,
    /// `dsf_warning_flags` — warned calibrator nodes right now (the raised
    /// flags that drive CONTROL 2's step 4, with their `DEST` pointers).
    pub warning_flags: Arc<Gauge>,
    /// `dsf_records` — records currently held.
    pub records: Arc<Gauge>,
    /// `dsf_balance_headroom_worst` — `1 − max_v p(v)/g(v,1)`: the fraction
    /// of its BALANCE(d,D) threshold the *tightest* calibrator node still
    /// has free. 0 means some node sits exactly at `g(v,1)`; negative means
    /// BALANCE is violated. `O(M)` to compute, so refreshed on demand via
    /// [`DenseFile::refresh_telemetry_gauges`](crate::DenseFile::refresh_telemetry_gauges),
    /// not per command.
    pub balance_headroom: Arc<Gauge>,
    /// `dsf_batch_commands` — commands submitted through
    /// [`DenseFile::apply_batch`](crate::DenseFile::apply_batch) (a subset
    /// of `dsf_commands_total`'s attempts; counted at batch entry, so
    /// replaces/misses/rejections inside a batch are included).
    pub batch_commands: Arc<Counter>,
    /// `dsf_batch_size` — histogram of batch lengths per `apply_batch`
    /// call.
    pub batch_size: Arc<Histogram>,
    /// Monotonic *completed structural command* clock driving the
    /// 1-in-[`SPAN_SAMPLE_EVERY`] span sampling: peeked pre-command,
    /// advanced post-command, so replaces and misses (which bail out
    /// before the post hook) never consume a sampled slot.
    pub span_clock: AtomicU64,
}

pub(crate) fn tel() -> &'static CoreTel {
    static TEL: OnceLock<CoreTel> = OnceLock::new();
    TEL.get_or_init(|| {
        let r = dsf_telemetry::global();
        CoreTel {
            cmd_hist: r.histogram(
                "dsf_command_page_accesses",
                "page accesses per structural command (the paper's cost unit)",
            ),
            inserts: r.counter_with(
                "dsf_commands_total",
                &[("kind", "insert")],
                "structural commands executed",
            ),
            deletes: r.counter_with(
                "dsf_commands_total",
                &[("kind", "delete")],
                "structural commands executed",
            ),
            shifts: r.counter("dsf_shifts_total", "CONTROL 2 SHIFT invocations"),
            shift_records: r.counter(
                "dsf_shift_records_moved_total",
                "records moved by CONTROL 2 SHIFTs",
            ),
            activations: r.counter("dsf_activations_total", "CONTROL 2 ACTIVATE calls"),
            rollbacks: r.counter(
                "dsf_rollbacks_total",
                "CONTROL 2 roll-back rule applications",
            ),
            flags_lowered: r.counter("dsf_flags_lowered_total", "warning flags lowered"),
            redistributions: r.counter(
                "dsf_redistributions_total",
                "CONTROL 1 one-shot redistributions",
            ),
            warning_flags: r.gauge("dsf_warning_flags", "calibrator nodes currently warned"),
            records: r.gauge("dsf_records", "records currently held by the file"),
            balance_headroom: r.gauge(
                "dsf_balance_headroom_worst",
                "1 - max p(v)/g(v,1): BALANCE headroom at the tightest node",
            ),
            batch_commands: r.counter(
                "dsf_batch_commands",
                "commands submitted via apply_batch (incl. replaces/misses)",
            ),
            batch_size: r.histogram("dsf_batch_size", "commands per apply_batch call"),
            span_clock: AtomicU64::new(0),
        }
    })
}
